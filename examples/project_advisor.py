#!/usr/bin/env python
"""Advise an interstitial project before submitting it.

Scenario: a user arrives with "I have N jobs that each need W CPUs for
R minutes — is this a reasonable interstitial project for machine M,
and if not, how should I reshape it?"  The paper's §5 guidelines answer
that without running anything; this script applies them, then verifies
the advice with a short simulation.

Run:  python examples/project_advisor.py
"""

import numpy as np

from repro import InterstitialProject, blue_pacific, run_native, synthetic_trace_for
from repro.core.guidelines import advise, recommend_width
from repro.core.runners import run_omniscient_samples
from repro.units import HOUR
from repro.workload import validate_trace


def main() -> None:
    machine = blue_pacific()
    rng = np.random.default_rng(17)

    # The user's initial idea: 150 x 64-CPU x 10-minute-at-1GHz jobs
    # (sized to finish within the simulated campaign window, so the
    # guideline estimates and the simulation measure the same regime).
    naive = InterstitialProject(
        n_jobs=150, cpus_per_job=64, runtime_1ghz=600.0, name="naive"
    )

    # Measure the machine as-is.
    trace = synthetic_trace_for("blue_pacific", rng=rng, scale=0.1)
    report = validate_trace(trace, machine)
    print(report.describe())
    baseline = run_native(machine, trace.jobs, horizon=trace.duration)
    utilization = baseline.native_utilization
    print(
        f"\n{machine.name}: {machine.cpus} CPUs at utilization "
        f"{utilization:.3f} -> average free pool "
        f"{machine.cpus * (1 - utilization):.0f} CPUs"
    )

    # Guideline check of the naive shape.
    print(f"\n--- naive project: {naive.describe()}")
    print(advise(machine, naive, utilization,
                 log_duration_s=trace.duration).describe())

    # Reshape: same total cycles, recommended width, shorter jobs.
    width = recommend_width(machine, utilization)
    reshaped = InterstitialProject.from_peta_cycles(
        naive.peta_cycles,
        cpus_per_job=width,
        runtime_1ghz=120.0,
        name="reshaped",
    )
    print(f"\n--- reshaped project: {reshaped.describe()}")
    print(advise(machine, reshaped, utilization,
                 log_duration_s=trace.duration).describe())

    # Verify by simulation: omniscient makespans of both shapes.
    for project in (naive, reshaped):
        spans, _ = run_omniscient_samples(
            machine,
            trace.jobs,
            project,
            n_samples=6,
            rng=np.random.default_rng(1),
            native_result=baseline,
        )
        print(
            f"\nsimulated omniscient makespan ({project.name}): "
            f"{spans.mean() / HOUR:.1f} ± {spans.std() / HOUR:.1f} h"
        )


if __name__ == "__main__":
    main()
