#!/usr/bin/env python
"""Quickstart: run an interstitial project on a simulated supercomputer.

This is the five-minute tour of the library:

1. pick a machine (the paper's ASCI Blue Mountain);
2. generate a calibrated synthetic native workload (two simulated weeks);
3. define an interstitial project — many identical small jobs;
4. measure the project's makespan two ways:
   * *omniscient* (the paper's zero-native-impact bound), and
   * *fallible* (realistic, estimate-driven submission);
5. report the impact on the native jobs.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    InterstitialProject,
    blue_mountain,
    ideal_makespan_for,
    run_continual,
    run_native,
    run_omniscient_samples,
    synthetic_trace_for,
    utilization_summary,
    wait_stats,
)
from repro.core.sampling import sample_short_projects
from repro.jobs import JobKind
from repro.units import HOUR


def main() -> None:
    rng = np.random.default_rng(2003)

    # 1. The machine: 4662 CPUs at 262 MHz, LSF-style hierarchical
    #    fair-share scheduling with EASY backfill.
    machine = blue_mountain()
    print(f"machine: {machine}")

    # 2. Two weeks of calibrated synthetic native load (the paper used
    #    84 days of the real log; scale=0.17 keeps this example quick).
    trace = synthetic_trace_for("blue_mountain", rng=rng, scale=0.17)
    print(
        f"native trace: {trace.n_jobs} jobs over "
        f"{trace.duration / 86400:.1f} days, offered utilization "
        f"{trace.offered_utilization(machine):.3f}"
    )

    # 3. An interstitial project: 3000 x 32-CPU x 120 s @ 1 GHz jobs
    #    (about 1.2 peta-cycles).  On Blue Mountain's 262 MHz CPUs each
    #    job actually runs 458 s.
    project = InterstitialProject(
        n_jobs=3000, cpus_per_job=32, runtime_1ghz=120.0, name="sweep"
    )
    print(f"project: {project.describe()}")
    print(
        f"per-job runtime on {machine.name}: "
        f"{project.runtime_on(machine):.0f} s"
    )

    # 4a. Baseline native-only run + omniscient packing (zero impact).
    native = run_native(machine, trace.jobs, horizon=trace.duration)
    print(
        f"\nnative-only utilization: {native.native_utilization:.3f}"
    )
    omni_spans, _ = run_omniscient_samples(
        machine, trace.jobs, project, n_samples=10,
        rng=rng, native_result=native,
    )
    print(
        "omniscient makespan: "
        f"{omni_spans.mean() / HOUR:.1f} ± {omni_spans.std() / HOUR:.1f} h"
        f"  (theory: "
        f"{ideal_makespan_for(project, machine, native.native_utilization) / HOUR:.1f} h)"
    )

    # 4b. Fallible mode: a continual feed (the paper's trick) sampled
    #     for 3000-job projects at random start times.
    boosted, controller = run_continual(
        machine, trace.jobs, project, horizon=trace.duration
    )
    fallible = sample_short_projects(
        boosted.jobs(JobKind.INTERSTITIAL),
        n_jobs=project.n_jobs,
        n_samples=50,
        rng=rng,
    )
    if fallible.size:
        print(
            "fallible makespan:   "
            f"{fallible.mean() / HOUR:.1f} ± {fallible.std() / HOUR:.1f} h"
        )

    # 5. What did the native jobs pay?
    print(f"\n{utilization_summary(boosted).describe()}")
    base_stats = wait_stats(native.native_jobs)
    new_stats = wait_stats(boosted.native_jobs)
    print(f"native waits before: {base_stats.describe()}")
    print(f"native waits after:  {new_stats.describe()}")
    print(
        f"\ninterstitial jobs completed during the log: "
        f"{controller.n_submitted}"
    )


if __name__ == "__main__":
    main()
