#!/usr/bin/env python
"""Fleet demo: a 3-replica sharded service, byte-identical to one.

This example (also CI's fleet smoke test) exercises the scale-out
serving layer (:mod:`repro.service.fleet`) end to end, without
sockets, via :class:`~repro.service.LocalFleet` — real services, real
consistent-hash routing, real work-stealing, direct-call transport:

1. run a reference bulk sweep serially on a single-replica fleet (the
   plain daemon) and keep its rendered results;
2. boot a 3-replica fleet and flood the same sweep through one entry
   replica concurrently — requests route to their ring owners, idle
   replicas steal from loaded backlogs;
3. verify the fleet's results are **byte-identical** to the serial
   single-daemon run (scale-out must be an optimization, never a
   semantic change);
4. repeat the sweep through a *different* replica and verify it is
   served entirely from cache (content-address routing means repeats
   find their owner's store no matter where they enter);
5. print the fleet-aggregated metrics: forwards, steals and peer
   replication that made the sweep spread.

Run:  PYTHONPATH=src python examples/fleet_demo.py
"""

import time
from concurrent.futures import ThreadPoolExecutor

from repro.experiments.config import SCALES
from repro.service import FleetConfig, LocalFleet, ServiceConfig

N_SWEEP = 18
REPLICAS = 3


def synthetic_job(name, scale, store_path, check_invariants):
    """Small fixed-cost stand-in for a simulation run (the demo is
    about routing, not simulation time)."""
    time.sleep(0.05)
    return f"rendered {name} seed={scale.seed}"


def make_fleet(replicas: int) -> LocalFleet:
    return LocalFleet(
        replicas,
        service_config=ServiceConfig(
            workers=2, bulk_cap=0.5, scale=SCALES["quick"]
        ),
        fleet_config=FleetConfig(steal_interval=0.01),
        pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        worker_fn=synthetic_job,
    )


def sweep_payloads() -> list:
    return [
        {"experiment": "table1", "seed": 100 + i, "priority": "bulk"}
        for i in range(N_SWEEP)
    ]


def main() -> None:
    # 1. Reference: the same sweep, serially, on a plain single
    #    daemon (a one-replica fleet is an exact passthrough).
    with make_fleet(1) as solo:
        serial = [solo.run_many([p])[0] for p in sweep_payloads()]
    assert all(r.ok for r in serial)
    reference = [r.payload["result"] for r in serial]
    print(f"serial single-daemon sweep: {len(reference)} results")

    # 2. The 3-replica fleet, same sweep, concurrent, one entry point.
    with make_fleet(REPLICAS) as fleet:
        start = time.perf_counter()
        replies = fleet.run_many(sweep_payloads(), via=0)
        elapsed = time.perf_counter() - start
        assert all(r.ok for r in replies), sorted(
            r.status for r in replies
        )
        results = [r.payload["result"] for r in replies]
        print(
            f"{REPLICAS}-replica fleet sweep: {len(results)} results "
            f"in {elapsed:.2f}s"
        )

        # 3. Byte identity with the serial single-daemon run.
        assert results == reference, "fleet diverged from solo run"
        assert [r.payload["key"] for r in replies] == [
            r.payload["key"] for r in serial
        ]
        print("byte-identical to the single-daemon run")

        # 4. Repeat through a different replica: all cache.
        repeat = fleet.run_many(sweep_payloads(), via=REPLICAS - 1)
        assert all(r.ok and r.payload["cached"] for r in repeat), (
            "repeat sweep was not served from cache"
        )
        print(
            f"repeat sweep via replica r{REPLICAS - 1}: "
            f"{len(repeat)}/{len(repeat)} served from cache"
        )

        # 5. Fleet-aggregated metrics.
        agg = fleet.fleet_metrics()
        totals = agg["totals"]
        print(
            f"fleet of {agg['replica_count']}: "
            f"computes {totals['computes']}, "
            f"forwards {totals['forwards']}, "
            f"steals {totals['steals']} "
            f"(granted {totals['steals_granted']}, "
            f"requeued {totals['steal_requeues']}), "
            f"peer replications {totals['peer_replications']}"
        )
        assert totals["computes"] == N_SWEEP
        assert agg["replica_count"] == REPLICAS

    print("fleet demo passed")


if __name__ == "__main__":
    main()
