#!/usr/bin/env python
"""Plan a parameter-sweep campaign across three supercomputers.

Scenario (the paper's motivating use case): a research team has a
parameter sweep of ~100 000 single-configuration runs, each using a
handful of CPUs for a couple of minutes.  They can submit it as an
interstitial project on any of three machines.  Which machine finishes
it soonest, and how should the jobs be shaped (CPUs per job)?

The script combines the paper's two planning tools:

* the §4.2 analytic model — instant estimates from machine size, clock
  and utilization, with the breakage correction for job width;
* omniscient simulation on calibrated synthetic logs — the ground truth
  the analytic model approximates.

Run:  python examples/parameter_sweep_planning.py
"""

import zlib

import numpy as np

from repro import (
    InterstitialProject,
    breakage_factor,
    format_table,
    ideal_makespan_for,
    preset,
    run_native,
    run_omniscient_samples,
    synthetic_trace_for,
)
from repro.units import HOUR

MACHINES = ("ross", "blue_mountain", "blue_pacific")
#: Total sweep size: ~4.6 peta-cycles at 1 GHz.
SWEEP_PETA_CYCLES = 4.6
#: Candidate job widths to pack the sweep into.
WIDTHS = (1, 8, 32)
RUNTIME_1GHZ = 120.0
TRACE_SCALE = 0.12


def main() -> None:
    rng = np.random.default_rng(7)

    # One native baseline per machine (reused across widths).
    baselines = {}
    traces = {}
    for name in MACHINES:
        machine = preset(name)
        trace = synthetic_trace_for(
            name,
            rng=np.random.default_rng(zlib.crc32(name.encode())),
            scale=TRACE_SCALE,
        )
        traces[name] = trace
        baselines[name] = run_native(
            machine, trace.jobs, horizon=trace.duration
        )

    rows = []
    best = None
    for name in MACHINES:
        machine = preset(name)
        utilization = baselines[name].native_utilization
        for width in WIDTHS:
            project = InterstitialProject.from_peta_cycles(
                SWEEP_PETA_CYCLES, cpus_per_job=width,
                runtime_1ghz=RUNTIME_1GHZ, name="sweep",
            )
            theory = ideal_makespan_for(project, machine, utilization)
            breakage = breakage_factor(machine.cpus, utilization, width)
            corrected = theory * breakage
            makespans, _ = run_omniscient_samples(
                machine,
                traces[name].jobs,
                project,
                n_samples=8,
                rng=rng,
                native_result=baselines[name],
            )
            measured = float(makespans.mean())
            rows.append(
                [
                    machine.name,
                    f"{width}",
                    f"{project.n_jobs}",
                    f"{utilization:.3f}",
                    f"{corrected / HOUR:.1f}",
                    f"{measured / HOUR:.1f}",
                ]
            )
            if best is None or measured < best[2]:
                best = (machine.name, width, measured)

    print(
        format_table(
            [
                "machine",
                "CPUs/job",
                "jobs",
                "utilization",
                "model est. (h)",
                "simulated (h)",
            ],
            rows,
            title=(
                f"Campaign plan: {SWEEP_PETA_CYCLES} peta-cycle sweep as "
                f"{RUNTIME_1GHZ:.0f}s@1GHz jobs"
            ),
        )
    )
    assert best is not None
    print(
        f"\nrecommendation: submit as {best[1]}-CPU jobs on {best[0]} "
        f"(expected completion {best[2] / HOUR:.1f} h)"
    )
    print(
        "rule of thumb (paper §5): keep CPUs/job well below the "
        "machine's average free pool so breakage stays near 1."
    )


if __name__ == "__main__":
    main()
