#!/usr/bin/env python
"""Kill the breakage penalty with elastic interstitial jobs.

Scenario: Blue Pacific averages ~86 free CPUs, but rigid 32-CPU
interstitial jobs can only use 64 of them — the paper's breakage
factor of 1.346.  This script drops the same finite project into the
same native stream under all three width policies (rigid, moldable,
malleable) and prints what elasticity buys: project makespan, the
theory-vs-measured breakage, native mean wait, and the shrink/grow
traffic malleable jobs generate to stay out of the natives' way.

Run:  python examples/elastic_demo.py
"""

import numpy as np

from repro import (
    ElasticitySpec,
    InterstitialProject,
    JobKind,
    blue_pacific,
    breakage_factor,
    elastic_breakage_factor,
    elastic_controller,
    format_table,
    run_with_controller,
    synthetic_trace_for,
)

TRACE_SCALE = 0.04
NOMINAL_CPUS = 32
MIN_WIDTH = 4
MAX_WIDTH = 32
N_JOBS = 120
RUNTIME_1GHZ = 1800.0

POLICIES = (
    ("rigid", ElasticitySpec.rigid()),
    ("moldable", ElasticitySpec.moldable()),
    ("malleable", ElasticitySpec.malleable()),
)


def main() -> None:
    machine = blue_pacific()
    project = InterstitialProject(
        n_jobs=N_JOBS,
        cpus_per_job=NOMINAL_CPUS,
        runtime_1ghz=RUNTIME_1GHZ,
        min_width=MIN_WIDTH,
        max_width=MAX_WIDTH,
        name="elastic-demo",
        user="interstitial",
        group="interstitial",
    )

    def trace():
        return synthetic_trace_for(
            "blue_pacific", rng=np.random.default_rng(42), scale=TRACE_SCALE
        )

    rows = []
    rigid_makespan = None
    for label, spec in POLICIES:
        controller = elastic_controller(machine, project, spec)
        result = run_with_controller(machine, trace().jobs, controller)
        inter = result.jobs(JobKind.INTERSTITIAL)
        natives = result.jobs(JobKind.NATIVE)
        makespan = max(j.finish_time for j in inter)
        if rigid_makespan is None:
            rigid_makespan = makespan
        waits = [j.start_time - j.submit_time for j in natives]
        rows.append(
            [
                label,
                f"{makespan / 3600.0:.1f}",
                f"{makespan / rigid_makespan:.2f}",
                f"{sum(waits) / len(waits):.0f}",
                str(result.counters.preempt_shrinks),
                str(result.counters.grows),
            ]
        )
    util = result.native_utilization
    print(
        format_table(
            ["policy", "makespan h", "vs rigid", "native wait s",
             "shrinks", "grows"],
            rows,
            title=(
                f"Elastic project on {machine.name} "
                f"({N_JOBS} x {NOMINAL_CPUS}CPU nominal, "
                f"widths [{MIN_WIDTH}, {MAX_WIDTH}])"
            ),
        )
    )
    print(
        f"\nTheory at the measured native utilization ({util:.3f}): "
        f"rigid breakage x"
        f"{breakage_factor(machine.cpus, util, NOMINAL_CPUS):.3f}, "
        f"malleable x"
        f"{elastic_breakage_factor(machine.cpus, util, MIN_WIDTH, MAX_WIDTH, malleable=True):.3f}"
    )


if __name__ == "__main__":
    main()
