#!/usr/bin/env python
"""Fault injection: node crashes, retries, and graceful degradation.

The paper's outage story (Figure 4) is drain-style — capacity leaves,
running jobs survive.  This example injects *crash-style* node failures
with the seeded :class:`repro.FaultModel` and shows the full failure
pipeline:

1. run a continual interstitial workload on Blue Mountain without
   faults (the paper's ~100% ceiling);
2. rerun it with a per-node MTBF drawn from a Weibull renewal process:
   FAILURE events kill the jobs on the crashed CPUs;
3. fault-killed *native* jobs are resubmitted with exponential backoff
   per a :class:`repro.RetryPolicy` (and dead-lettered when retries are
   exhausted), while killed *interstitial* jobs are simply re-credited
   to the project — the cheap-resubmission advantage of scavenger work;
4. the controller throttles interstitial submission while the machine
   is flaky (``throttle_after_failures``) and resumes after a quiet
   period.

Run:  python examples/fault_injection.py
"""

import numpy as np

from repro import (
    FaultModel,
    InterstitialController,
    InterstitialProject,
    RetryPolicy,
    blue_mountain,
    run_with_controller,
    synthetic_trace_for,
)
from repro.jobs import JobKind
from repro.units import DAY, HOUR


def report(label, result, controller):
    killed_native = sum(
        1 for j in result.killed if j.kind is JobKind.NATIVE
    )
    killed_inter = len(result.killed) - killed_native
    print(f"--- {label} ---")
    print(f"  overall utilization : {result.utilization():.3f}")
    print(
        f"  native utilization  : "
        f"{result.utilization(JobKind.NATIVE):.3f}"
    )
    print(f"  node failures       : {result.n_failures}")
    print(f"  killed (nat/int)    : {killed_native}/{killed_inter}")
    print(f"  native retries      : {sum(result.attempts.values())}")
    print(f"  dead-lettered       : {len(result.dead_lettered)}")
    print(f"  faults seen by ctrl : {controller.n_faults_seen}")


def main() -> None:
    machine = blue_mountain()
    trace = synthetic_trace_for(
        "blue_mountain", rng=np.random.default_rng(2003), scale=0.1
    )
    project = InterstitialProject(
        n_jobs=1, cpus_per_job=32, runtime_1ghz=120.0, name="sweep"
    )

    # Crash model: 16-CPU failure domains, 20-day per-node MTBF with an
    # ageing (Weibull) time-between-failures, 4 h mean repair.  The same
    # seed always produces the same schedule, kills and final result.
    faults = FaultModel(
        mtbf=20.0 * DAY,
        mttr=4.0 * HOUR,
        cpus_per_node=16,
        distribution="weibull",
        shape=1.5,
        seed=7,
    )
    retry = RetryPolicy(
        max_attempts=5,
        base_delay=60.0,
        backoff_factor=2.0,
        max_delay=1.0 * HOUR,
    )

    def controller_for():
        return InterstitialController(
            machine=machine,
            project=project,
            continual=True,
            throttle_after_failures=8,
            throttle_window=1.0 * HOUR,
            throttle_quiet_period=2.0 * HOUR,
        )

    baseline_ctrl = controller_for()
    baseline = run_with_controller(
        machine, trace.jobs, baseline_ctrl, horizon=trace.duration
    )
    report("no faults", baseline, baseline_ctrl)

    faulty_ctrl = controller_for()
    faulty = run_with_controller(
        machine,
        [j.copy_unscheduled() for j in trace.jobs],
        faulty_ctrl,
        faults=faults,
        retry=retry,
        horizon=trace.duration,
    )
    report(f"MTBF {faults.mtbf / DAY:.0f} d/node", faulty, faulty_ctrl)

    lost = baseline.utilization() - faulty.utilization()
    print(
        f"\ncrash tax: {lost:.3f} utilization "
        f"({faults.expected_failures(machine, trace.duration):.0f} "
        f"failures expected, {faulty.n_failures} drawn)"
    )


if __name__ == "__main__":
    main()
