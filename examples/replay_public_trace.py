#!/usr/bin/env python
"""Replay a Standard Workload Format (SWF) trace with interstitial jobs.

The reproduction uses calibrated synthetic workloads because the
paper's ASCI logs are proprietary — but any public SWF log from the
Parallel Workloads Archive drops straight in.  This script:

1. writes a small demonstration SWF file (in practice: download one,
   e.g. the LANL CM-5 or SDSC SP2 logs);
2. reads it back and reports its statistics;
3. replays it natively and with a continual interstitial stream;
4. prints the utilization gained and the native impact.

Run:  python examples/replay_public_trace.py [trace.swf]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import (
    InterstitialProject,
    Machine,
    compute_stats,
    read_swf,
    run_continual,
    run_native,
    synthetic_trace_for,
    utilization_summary,
    wait_stats,
    write_swf,
)

#: Machine to replay on when the SWF has no metadata: size it to the
#: widest job in the log.
FALLBACK_CLOCK_GHZ = 0.5


def demo_swf_path() -> Path:
    """Create a small demo SWF (a synthetic Ross-like log) on disk."""
    trace = synthetic_trace_for(
        "ross", rng=np.random.default_rng(5), scale=0.05
    )
    path = Path(tempfile.gettempdir()) / "repro_demo_trace.swf"
    write_swf(trace, path)
    print(f"wrote demonstration SWF to {path}")
    return path


def main() -> None:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else demo_swf_path()

    trace = read_swf(path)
    widest = max(job.cpus for job in trace.jobs)
    machine = Machine(
        name=f"replay({path.name})",
        cpus=max(widest, int(widest * 1.5)),
        clock_ghz=FALLBACK_CLOCK_GHZ,
        queue_algorithm="LSF",
    )
    print(compute_stats(trace, machine).describe())

    native = run_native(machine, trace.jobs, horizon=trace.duration)
    print(
        f"\nnative-only utilization: {native.native_utilization:.3f} "
        f"({len(native.finished)} jobs replayed)"
    )

    project = InterstitialProject(
        n_jobs=1,
        cpus_per_job=max(1, widest // 16),
        runtime_1ghz=120.0,
        name="scavenger",
    )
    boosted, controller = run_continual(
        machine, trace.jobs, project, horizon=trace.duration
    )
    print(utilization_summary(boosted).describe())
    print(
        f"interstitial jobs completed: {controller.n_submitted} "
        f"({project.cpus_per_job} CPUs x "
        f"{project.runtime_on(machine):.0f} s each)"
    )
    print(f"\nnative waits before: {wait_stats(native.native_jobs).describe()}")
    print(f"native waits after:  {wait_stats(boosted.native_jobs).describe()}")


if __name__ == "__main__":
    main()
