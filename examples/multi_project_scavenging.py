#!/usr/bin/env python
"""Two teams share one machine's interstices.

Scenario: Team Physics runs a narrow parameter sweep (2-CPU jobs) and
Team Climate a wider one (16-CPU jobs), both as continual interstitial
streams on Blue Mountain.  The facility must decide how the two
scavengers share the leftovers: rotate fairly (``round_robin``) or let
one take precedence (``priority``).  This script runs both policies and
shows harvest shares and native impact.

Run:  python examples/multi_project_scavenging.py
"""

import numpy as np

from repro import (
    InterstitialController,
    InterstitialProject,
    blue_mountain,
    format_table,
    run_native,
    run_with_controller,
    synthetic_trace_for,
    wait_stats,
)
from repro.core.composite import CompositeInterstitialSource

TRACE_SCALE = 0.1


def build_sources(machine):
    physics = InterstitialController(
        machine=machine,
        project=InterstitialProject(
            n_jobs=1, cpus_per_job=2, runtime_1ghz=120.0,
            name="physics-sweep", user="physics", group="scavengers",
        ),
        continual=True,
    )
    climate = InterstitialController(
        machine=machine,
        project=InterstitialProject(
            n_jobs=1, cpus_per_job=16, runtime_1ghz=240.0,
            name="climate-ensemble", user="climate", group="scavengers",
        ),
        continual=True,
    )
    return physics, climate


def main() -> None:
    machine = blue_mountain()
    trace = synthetic_trace_for(
        "blue_mountain", rng=np.random.default_rng(23), scale=TRACE_SCALE
    )
    baseline = run_native(machine, trace.jobs, horizon=trace.duration)
    base_median = wait_stats(baseline.native_jobs).median_wait_s

    rows = []
    for policy in ("round_robin", "priority"):
        physics, climate = build_sources(machine)
        composite = CompositeInterstitialSource(
            [physics, climate], policy=policy
        )
        result = run_with_controller(
            machine, trace.jobs, composite, horizon=trace.duration
        )
        stats = wait_stats(result.native_jobs)
        total = physics.n_submitted + climate.n_submitted
        physics_cpu_h = sum(
            j.area for j in result.interstitial_jobs
            if j.user == "physics"
        ) / 3600.0
        climate_cpu_h = sum(
            j.area for j in result.interstitial_jobs
            if j.user == "climate"
        ) / 3600.0
        rows.append(
            [
                policy,
                str(physics.n_submitted),
                str(climate.n_submitted),
                f"{physics_cpu_h:.0f} / {climate_cpu_h:.0f}",
                f"{result.overall_utilization:.3f}",
                f"{stats.median_wait_s:.0f}",
            ]
        )
        share = physics_cpu_h / max(1e-9, physics_cpu_h + climate_cpu_h)
        print(
            f"{policy}: {total} interstitial jobs; physics holds "
            f"{share:.0%} of the harvested CPU-hours"
        )

    print()
    print(
        format_table(
            [
                "policy",
                "physics jobs",
                "climate jobs",
                "CPU-h split",
                "overall util",
                "native median wait (s)",
            ],
            rows,
            title=(
                "Two interstitial projects on Blue Mountain "
                f"(native baseline median wait {base_median:.0f} s)"
            ),
        )
    )


if __name__ == "__main__":
    main()
