#!/usr/bin/env python
"""Simulation-as-a-service demo: boot the daemon, mix request classes.

This example (also CI's service smoke test) exercises the full serving
path end to end:

1. start ``repro serve`` as a real subprocess on a free port;
2. wait for ``/healthz`` to come up;
3. drive ~50 mixed interactive/bulk requests through
   :class:`~repro.service.ServiceClient` — mostly repeated
   configurations, so the run store and request coalescing absorb most
   of the load;
4. read ``/metrics`` and show how few simulations actually ran;
5. stop the daemon with SIGTERM and verify it drains cleanly.

Run:  PYTHONPATH=src python examples/service_demo.py
"""

import os
import signal
import socket
import subprocess
import sys

from repro.service import ServiceClient

N_REQUESTS = 50
UNIQUE_SEEDS = 10


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def main() -> None:
    port = free_port()
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--scale", "quick", "--port", str(port), "--workers", "2"],
        env=dict(os.environ),
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        client = ServiceClient(port=port)
        client.wait_until_healthy(timeout=60.0)
        health = client.healthz().payload
        print(
            f"daemon up on port {port}: repro {health['version']}, "
            f"{health['workers']} workers, "
            f"bulk cap {health['bulk_cap']}"
        )

        # 50 requests over 10 unique configurations, every third one
        # bulk-class: the store and coalescer should collapse this to
        # ~10 actual simulation runs.
        payloads = [
            {
                "experiment": "table1",
                "seed": i % UNIQUE_SEEDS,
                "priority": "bulk" if i % 3 == 0 else "interactive",
            }
            for i in range(N_REQUESTS)
        ]
        replies = client.run_many(payloads, max_workers=8)
        statuses = sorted({r.status for r in replies})
        ok = sum(r.ok for r in replies)
        cached = sum(bool(r.cached) for r in replies)
        print(
            f"{ok}/{N_REQUESTS} requests succeeded "
            f"(statuses seen: {statuses}; {cached} served from cache)"
        )
        assert ok == N_REQUESTS, f"failures: {statuses}"

        counters = client.metrics().payload["counters"]
        print(
            f"simulations actually run: {counters['computes']} "
            f"(cache hits {counters['cache_hits']}, "
            f"coalesced {counters['coalesced_hits']})"
        )
        assert counters["computes"] <= UNIQUE_SEEDS
        assert (
            counters["computes"]
            + counters["cache_hits"]
            + counters["coalesced_hits"]
        ) == N_REQUESTS
    finally:
        server.send_signal(signal.SIGTERM)
        _, stderr = server.communicate(timeout=60.0)

    print(f"daemon exited with code {server.returncode}")
    assert server.returncode == 0, stderr
    assert "drained cleanly" in stderr, stderr
    print("clean SIGTERM drain verified")


if __name__ == "__main__":
    main()
