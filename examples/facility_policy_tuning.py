#!/usr/bin/env python
"""Tune a facility's interstitial admission policy.

Scenario: a computing-center administrator wants the free cycles but
answers to the native users.  The paper's §4.3.2.2 lever is a
utilization cap on interstitial submission.  This script sweeps the cap
on a Blue Mountain-like machine and prints the full trade-off curve —
interstitial throughput and overall utilization vs native wait-time
impact — plus a recommendation under an explicit service-level rule.

Run:  python examples/facility_policy_tuning.py
"""

import numpy as np

from repro import (
    InterstitialProject,
    blue_mountain,
    format_table,
    run_continual,
    run_native,
    synthetic_trace_for,
)
from repro.metrics.waits import largest_fraction, wait_times

CAPS = (0.85, 0.90, 0.95, 0.98, None)
TRACE_SCALE = 0.12
#: Admissible increase of the largest-jobs median wait (seconds).
SLA_EXTRA_WAIT_S = 3600.0


def median_waits(result):
    natives = result.native_jobs
    all_w = wait_times(natives)
    big_w = wait_times(largest_fraction(natives, 0.05))
    return (
        float(np.median(all_w)) if all_w.size else 0.0,
        float(np.median(big_w)) if big_w.size else 0.0,
    )


def main() -> None:
    machine = blue_mountain()
    trace = synthetic_trace_for(
        "blue_mountain", rng=np.random.default_rng(11), scale=TRACE_SCALE
    )
    project = InterstitialProject(
        n_jobs=1, cpus_per_job=32, runtime_1ghz=120.0, name="scavenger"
    )

    baseline = run_native(machine, trace.jobs, horizon=trace.duration)
    base_all, base_big = median_waits(baseline)

    rows = [
        [
            "native only",
            "0",
            f"{baseline.overall_utilization:.3f}",
            f"{base_all:.0f}",
            f"{base_big:.0f}",
            "-",
        ]
    ]
    recommendation = None
    for cap in CAPS:
        result, controller = run_continual(
            machine,
            trace.jobs,
            project,
            max_utilization=cap,
            horizon=trace.duration,
        )
        med_all, med_big = median_waits(result)
        within_sla = med_big <= base_big + SLA_EXTRA_WAIT_S
        label = "uncapped" if cap is None else f"{cap:.0%}"
        rows.append(
            [
                label,
                str(controller.n_submitted),
                f"{result.overall_utilization:.3f}",
                f"{med_all:.0f}",
                f"{med_big:.0f}",
                "yes" if within_sla else "NO",
            ]
        )
        if within_sla:
            # Caps are swept in increasing order, so this keeps the
            # most permissive compliant policy.
            recommendation = (label, controller.n_submitted)

    print(
        format_table(
            [
                "cap",
                "interstitial jobs",
                "overall util",
                "median wait all (s)",
                "median wait 5% largest (s)",
                "within SLA",
            ],
            rows,
            title=(
                "Interstitial admission-policy sweep on Blue Mountain "
                f"(SLA: largest-jobs median wait grows < "
                f"{SLA_EXTRA_WAIT_S:.0f} s)"
            ),
        )
    )
    if recommendation:
        print(
            f"\nrecommendation: cap interstitial submission at "
            f"{recommendation[0]} — {recommendation[1]} interstitial "
            "jobs per log period with acceptable native impact."
        )
    else:
        print("\nno cap satisfies the SLA; disable interstitial intake.")


if __name__ == "__main__":
    main()
