"""Shim for legacy editable installs (pip install -e . without network
access to build-isolation dependencies); all metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
