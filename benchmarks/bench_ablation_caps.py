"""Ablation — fine utilization-cap sweep on Blue Mountain.

Shape claims checked: interstitial throughput and overall utilization
grow monotonically in the cap, bounded by the uncapped run.
"""

from repro.experiments import ablation_caps


def bench_ablation_caps(run_and_show, ctx):
    result = run_and_show(ablation_caps, ctx)
    data = result.data
    caps = ["82%", "86%", "90%", "94%", "98%"]
    jobs = [data[c]["interstitial_jobs"] for c in caps]
    utils = [data[c]["overall_utilization"] for c in caps]
    assert jobs == sorted(jobs)
    assert utils == sorted(utils)
    assert jobs[-1] <= data["uncapped"]["interstitial_jobs"]
