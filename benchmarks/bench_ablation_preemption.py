"""Ablation — preemptible interstitial jobs.

Shape claims checked: preemption restores the native median wait to the
baseline while wasting a nonzero but bounded amount of interstitial
CPU-time.
"""

from repro.experiments import ablation_preemption


def bench_ablation_preemption(run_and_show, ctx):
    result = run_and_show(ablation_preemption, ctx)
    data = result.data
    baseline = data["native_baseline"]
    nonpre = data["non-preemptive (paper)"]
    pre = data["preemptible"]
    assert pre["median_wait_all_s"] <= nonpre["median_wait_all_s"]
    # Preemption only guards the *head* job, so a residual median wait
    # remains for jobs deeper in the queue — but it stays within
    # minutes of the baseline rather than an interstitial runtime.
    assert (
        pre["median_wait_all_s"]
        <= baseline["median_wait_all_s"] + 600.0
    )
    assert pre["n_preempted"] > 0
    assert pre["wasted_cpu_h"] > 0.0
