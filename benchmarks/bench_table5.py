"""Table 5 — native job performance impact on Blue Mountain.

Shape claims checked: both continual interstitial streams worsen native
median waits; longer interstitial jobs hurt at least as much as short
ones; the 5%-largest jobs suffer more than the population in absolute
wait.
"""

from repro.experiments import table5


def bench_table5(run_and_show, ctx):
    result = run_and_show(table5, ctx)
    all_stats = result.data["all"]
    big_stats = result.data["largest5"]
    labels = list(all_stats)
    baseline, short, long_ = (all_stats[label] for label in labels)
    assert short["median_wait_s"] >= baseline["median_wait_s"]
    assert long_["median_wait_s"] >= short["median_wait_s"]
    for label in labels:
        assert (
            big_stats[label]["median_wait_s"]
            >= all_stats[label]["median_wait_s"]
        )
