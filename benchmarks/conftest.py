"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures via its
experiment driver, times the run with pytest-benchmark (single round —
these are simulations, not micro-benchmarks) and prints the paper-style
table so ``pytest benchmarks/ --benchmark-only`` output can be compared
with the paper side by side.

Scale is controlled by ``REPRO_BENCH_SCALE`` (quick / default / paper);
see ``repro.experiments.config``.  Drivers share process-level caches
(traces, native baselines, continual runs), so later benches reusing an
earlier bench's continual log report only their incremental cost — that
sharing mirrors the paper's own §4.3.1 methodology.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import current_scale


@pytest.fixture(scope="session")
def scale():
    """The active experiment scale for this bench session."""
    return current_scale()


@pytest.fixture
def run_and_show(benchmark, capsys):
    """Run a driver under the benchmark timer and print its table."""

    def _run(driver, scale):
        result = benchmark.pedantic(
            driver.run, args=(scale,), rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(result.render())
        return result

    return _run
