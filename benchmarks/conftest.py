"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures via its
experiment driver, times the run with pytest-benchmark (single round —
these are simulations, not micro-benchmarks) and prints the paper-style
table so ``pytest benchmarks/ --benchmark-only`` output can be compared
with the paper side by side.

Scale is controlled by ``REPRO_BENCH_SCALE`` (quick / default / paper);
see ``repro.experiments.config``.  All benches share one session
:class:`~repro.experiments.context.RunContext`, so later benches
reusing an earlier bench's continual log report only their incremental
cost — that sharing mirrors the paper's own §4.3.1 methodology.  Set
``REPRO_STORE_DIR`` to back the context with an on-disk run store and
share simulations across bench sessions (and with ``repro report
--store``) as well.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import current_scale
from repro.experiments.context import RunContext
from repro.store import RunStore


@pytest.fixture(scope="session")
def scale():
    """The active experiment scale for this bench session."""
    return current_scale()


@pytest.fixture(scope="session")
def ctx(scale):
    """Session-wide run context; all benches share its run store."""
    return RunContext(
        scale=scale, store=RunStore(os.environ.get("REPRO_STORE_DIR"))
    )


@pytest.fixture
def run_and_show(benchmark, capsys):
    """Run a driver under the benchmark timer and print its table."""

    def _run(driver, ctx):
        result = benchmark.pedantic(
            driver.run, args=(ctx,), rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(result.render())
        return result

    return _run
