"""Figure 5 — wait-time histogram of all native jobs on Blue Mountain.

Shape claims checked: each histogram is a probability distribution; the
baseline's never-waited [0,1) mass shrinks under interstitial load and
moves into the bins at/after one interstitial runtime.
"""

import pytest

from repro.experiments import fig5


def bench_fig5(run_and_show, ctx):
    result = run_and_show(fig5, ctx)
    data = result.data
    labels = list(data)
    for hist in data.values():
        assert sum(hist) == pytest.approx(1.0)
    baseline = data[labels[0]]
    for label in labels[1:]:
        assert data[label][0] <= baseline[0] + 1e-9
        # Mass beyond 100 s grows (one 458 s/3664 s interstitial job).
        assert sum(data[label][2:]) >= sum(baseline[2:]) - 1e-9
