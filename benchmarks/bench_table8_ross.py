"""Table 8a — continual interstitial computing on Ross.

Shape claims checked: the lowest-utilization machine gains the most
overall utilization; native throughput preserved; the long interstitial
jobs inflate the 5%-largest median wait more than the short ones
(Ross's week-long natives are the victims).
"""

from repro.experiments import table8_ross


def bench_table8_ross(run_and_show, ctx):
    result = run_and_show(table8_ross, ctx)
    cols = result.data["columns"]
    labels = list(cols)
    baseline, short, long_ = (cols[label] for label in labels)
    assert short["overall_utilization"] > (
        baseline["overall_utilization"] + 0.2
    )
    assert short["native_jobs"] == baseline["native_jobs"]
    assert (
        long_["median_wait_largest_s"]
        >= short["median_wait_largest_s"]
    )
