"""Table 4 — fallible (estimate-driven) short-project makespans.

Shape claims checked: every Blue Pacific makespan exceeds its Blue
Mountain counterpart (where both complete), and within a machine the
large projects take longer than the small ones.
"""

import numpy as np

from repro.experiments import table4


def bench_table4(run_and_show, ctx):
    result = run_and_show(table4, ctx)
    samples = result.data["samples"]

    def mean(machine, peta, kjobs, cpus, runtime):
        values = samples.get((machine, peta, kjobs, cpus, runtime), [])
        return np.mean(values) if values else None

    for peta, kjobs, cpus, runtime in (
        (7.7, 2.0, 32, 120.0),
        (123.0, 32.0, 32, 120.0),
    ):
        bm = mean("blue_mountain", peta, kjobs, cpus, runtime)
        bp = mean("blue_pacific", peta, kjobs, cpus, runtime)
        if bm is not None and bp is not None:
            assert bp > bm, (peta, kjobs, cpus, runtime)
    small = mean("blue_mountain", 7.7, 2.0, 32, 120.0)
    large = mean("blue_mountain", 123.0, 32.0, 32, 120.0)
    assert small is not None and large is not None
    assert large > small
