"""Table 3 — breakage: 32-CPU vs 1-CPU makespan ratios.

Shape claims checked: theory at the paper's utilizations reproduces
{1.035, 1.020, 1.346}; measured ratios are near 1 on the big machines
and largest on Blue Pacific.
"""

import math

import pytest

from repro.experiments import table3


def bench_table3(run_and_show, ctx):
    result = run_and_show(table3, ctx)
    theory = result.data["theory_paper_u"]
    assert theory["ross"] == pytest.approx(1.035, abs=0.001)
    assert theory["blue_mountain"] == pytest.approx(1.020, abs=0.001)
    assert theory["blue_pacific"] == pytest.approx(1.346, abs=0.001)
    actual = result.data["actual"]
    for machine, ratio in actual.items():
        assert math.isfinite(ratio)
        assert 0.7 < ratio < 2.0, (machine, ratio)
