"""Ablation — user estimate quality (extends the paper's §4.3
discussion of gross overestimates).

Shape claims checked: perfect estimates give natives median waits no
worse than default estimates; interstitial throughput stays within 25%
across regimes (the Figure-1 gate adapts).
"""

from repro.experiments import ablation_estimates


def bench_ablation_estimates(run_and_show, ctx):
    result = run_and_show(ablation_estimates, ctx)
    data = result.data
    assert (
        data["perfect"]["median_wait_all_s"]
        <= data["default"]["median_wait_all_s"] + 60.0
    )
    base = data["default"]["interstitial_jobs"]
    for mode in ("perfect", "inflated"):
        assert abs(data[mode]["interstitial_jobs"] - base) < 0.25 * base
