"""Table 6 — continual interstitial computing on Blue Mountain.

Shape claims checked: overall utilization gains >0.1 while native
throughput (job count) and native utilization stay put; far more short
interstitial jobs complete than long ones.
"""

import pytest

from repro.experiments import table6


def bench_table6(run_and_show, ctx):
    result = run_and_show(table6, ctx)
    cols = result.data["columns"]
    labels = list(cols)
    baseline, short, long_ = (cols[label] for label in labels)
    assert short["overall_utilization"] > (
        baseline["overall_utilization"] + 0.10
    )
    assert long_["overall_utilization"] > (
        baseline["overall_utilization"] + 0.10
    )
    for boosted in (short, long_):
        assert boosted["native_jobs"] == baseline["native_jobs"]
        assert boosted["native_utilization"] == pytest.approx(
            baseline["native_utilization"], abs=0.05
        )
    # Short jobs: ~8x more of them per unit time (paper: 408k vs 49k).
    assert short["interstitial_jobs"] > 4 * long_["interstitial_jobs"]
