"""Figure 4 (outage variant) — "100% except for outages".

Shape claims checked: with continual interstitial computing,
utilization outside outages stays near 1.0; the full-machine outage day
drops to near 0 and the half-machine day to roughly half.
"""

from repro.experiments import fig4_outages


def bench_fig4_outages(run_and_show, ctx):
    result = run_and_show(fig4_outages, ctx)
    data = result.data
    assert data["outside outages"] > 0.9
    assert data["full outage day"] < 0.3
    assert 0.2 < data["half outage day"] < 0.85
    assert data["full outage day"] < data["half outage day"]
