"""Ablation — raising native load vs interstitial computing (the
paper's §5 headline policy claim).

Shape claims checked: the interstitial configuration reaches a higher
overall utilization than every native-only load level, at a native mean
wait within 2x of its own baseline load's — while the M/M/c reference
(and the measured sweep at larger scales) shows direct native-load
increases blowing waits up super-linearly.
"""

from repro.experiments import ablation_load


def bench_ablation_load(run_and_show, ctx):
    result = run_and_show(ablation_load, ctx)
    data = result.data
    native_only = [v for k, v in data.items() if k.startswith("native:")]
    boosted = data["interstitial"]
    assert boosted["overall_utilization"] > max(
        v["overall_utilization"] for v in native_only
    )
    baseline = data[f"native:{ablation_load.NATIVE_LOADS[1]}"]
    assert (
        boosted["mean_wait_all_s"]
        <= 2.0 * max(baseline["mean_wait_all_s"], 600.0)
    )
