"""Table 7 — continual interstitial computing on Blue Pacific.

Shape claims checked: the utilization gain is smaller than Blue
Mountain's (the machine already runs >.9); the long-job stream pushes
far fewer jobs through than the short-job stream; native throughput is
preserved.
"""

from repro.experiments import table6, table7


def bench_table7(run_and_show, ctx):
    result = run_and_show(table7, ctx)
    cols = result.data["columns"]
    labels = list(cols)
    baseline, short, long_ = (cols[label] for label in labels)
    bp_gain = short["overall_utilization"] - baseline["overall_utilization"]
    bm_cols = table6.run(ctx).data["columns"]
    bm_labels = list(bm_cols)
    bm_gain = (
        bm_cols[bm_labels[1]]["overall_utilization"]
        - bm_cols[bm_labels[0]]["overall_utilization"]
    )
    assert bp_gain < bm_gain
    assert short["interstitial_jobs"] > 4 * long_["interstitial_jobs"]
    assert short["native_jobs"] == baseline["native_jobs"]
