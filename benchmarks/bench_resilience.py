"""Resilience bench — recovery time and latency under worker chaos.

Two claims about the self-healing serving layer, measured in-process
with synthetic fixed-duration jobs (same rationale as the service
bench: the resilience machinery controls *re-execution and queueing
delay*, so fixed-cost jobs isolate exactly its overhead):

1. **Recovery**: a daemon restarted over a journal of N accepted-but-
   unsettled bulk requests replays and settles all of them; we report
   wall-clock from ``start()`` to a fully settled journal.
2. **Latency under chaos**: with a seeded ~10% per-dispatch worker-kill
   rate, every request still completes (retries, never dead-letters)
   and interactive p99 stays within a generous factor of the
   fault-free baseline — the supervisor's pool replacement and backoff
   are the only added cost.

Results land in ``BENCH_resilience.json``.  Run directly
(``python benchmarks/bench_resilience.py``) or via pytest.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import threading
import time
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor
from pathlib import Path

from repro.experiments.config import SCALES
from repro.faults import FaultModel, RetryPolicy
from repro.service import (
    BulkJournal,
    InProcessClient,
    ServiceConfig,
    SimulationService,
    percentile,
)

WORKERS = 2
JOB_DURATION_S = 0.05
N_REPLAY = 24
N_INTERACTIVE = 12
N_BULK = 8
KILL_RATE = 0.10
CHAOS_SEED = 7
#: Generous: chaos adds at most a few retry/backoff cycles per tail
#: request on a CI box; the claim is "bounded", not "free".
MAX_CHAOS_P99_FACTOR = 4.0
MAX_RECOVERY_S = 30.0

FAST_RETRY = RetryPolicy(
    max_attempts=3, base_delay=0.02, backoff_factor=1.5, max_delay=0.2
)


def synthetic_job(name, scale, store_path, check_invariants):
    time.sleep(JOB_DURATION_S)
    return f"synthetic {name} seed={scale.seed}"


class FaultyWorker:
    """Synthetic job that loses its worker (``BrokenExecutor``) on a
    seeded ~``KILL_RATE`` fraction of dispatches."""

    def __init__(self, kill_rate: float, seed: int) -> None:
        self._rng = FaultModel(mtbf=3600.0, seed=seed).victim_rng()
        self._kill_rate = kill_rate
        self._lock = threading.Lock()
        self.kills = 0

    def __call__(self, name, scale, store_path, check_invariants):
        with self._lock:
            killed = float(self._rng.random()) < self._kill_rate
            if killed:
                self.kills += 1
        if killed:
            raise BrokenExecutor("bench chaos: worker killed")
        return synthetic_job(name, scale, store_path, check_invariants)


# ----------------------------------------------------------------------
def _bench_recovery() -> dict:
    """Journal N accepts with no settles (a crashed daemon's WAL),
    then time a restart: start() -> every entry settled."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-wal-") as tmp:
        journal_path = Path(tmp) / "journal.jsonl"
        journal = BulkJournal(journal_path)
        for i in range(N_REPLAY):
            journal.record_accept(
                key=f"bench-{i}", experiment="table1", scale="quick",
                seed=i,
            )
        journal.sync()
        journal.close()

        config = ServiceConfig(
            workers=WORKERS,
            scale=SCALES["quick"],
            journal_path=str(journal_path),
            retry=FAST_RETRY,
        )
        service = SimulationService(
            config,
            pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
            worker_fn=synthetic_job,
        )

        async def recover() -> float:
            t0 = time.perf_counter()
            await service.start()
            await service.drain()
            elapsed = time.perf_counter() - t0
            await service.stop()
            return elapsed

        elapsed = asyncio.run(recover())
        assert service.replayed == N_REPLAY
        assert service.journal.open_count == 0, "backlog not settled"
        assert elapsed < MAX_RECOVERY_S, (
            f"recovery of {N_REPLAY} entries took {elapsed:.1f}s"
        )
        return {
            "replayed_entries": N_REPLAY,
            "recovery_s": round(elapsed, 4),
            "per_entry_ms": round(1000.0 * elapsed / N_REPLAY, 2),
        }


def _measure_mixed_load(client) -> dict:
    """Sequential timed interactive requests over a concurrent bulk
    flood (the service-bench shape)."""
    payloads = [
        {"experiment": "table1", "seed": 500 + i, "priority": "bulk"}
        for i in range(N_BULK)
    ]
    bulk_replies: list = []
    bulk_thread = threading.Thread(
        target=lambda: bulk_replies.extend(
            client.run_many(payloads, max_workers=N_BULK)
        )
    )
    bulk_thread.start()
    latencies = []
    for i in range(N_INTERACTIVE):
        t0 = time.perf_counter()
        reply = client.run("table1", seed=1000 + i)
        latencies.append(time.perf_counter() - t0)
        assert reply.ok, reply.payload
    bulk_thread.join()
    assert all(r.ok for r in bulk_replies), (
        f"bulk failures: {sorted(r.status for r in bulk_replies)}"
    )
    counters = client.metrics().payload["counters"]
    return {
        "interactive_p50_s": round(percentile(latencies, 50), 4),
        "interactive_p99_s": round(percentile(latencies, 99), 4),
        "bulk_completed": len(bulk_replies),
        "retries": counters["retries"],
        "dead_letters": counters["dead_letters"],
        "worker_replacements": counters["worker_replacements"],
    }


def _bench_chaos_latency() -> dict:
    config = ServiceConfig(
        workers=WORKERS, scale=SCALES["quick"], retry=FAST_RETRY
    )
    with InProcessClient(
        config,
        pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        worker_fn=synthetic_job,
    ) as client:
        baseline = _measure_mixed_load(client)

    faulty = FaultyWorker(KILL_RATE, CHAOS_SEED)
    with InProcessClient(
        config,
        pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        worker_fn=faulty,
    ) as client:
        chaos = _measure_mixed_load(client)
    chaos["worker_kills"] = faulty.kills

    assert chaos["dead_letters"] == 0
    assert chaos["bulk_completed"] == N_BULK
    if faulty.kills:
        assert chaos["retries"] >= faulty.kills
    bound = MAX_CHAOS_P99_FACTOR * max(
        baseline["interactive_p99_s"], JOB_DURATION_S
    )
    assert chaos["interactive_p99_s"] <= bound, (
        f"chaos interactive p99 {chaos['interactive_p99_s']:.3f}s "
        f"exceeds {bound:.3f}s "
        f"({MAX_CHAOS_P99_FACTOR}x the fault-free baseline)"
    )
    return {"fault_free": baseline, "chaos": chaos}


def run_bench(output: Path) -> dict:
    recovery = _bench_recovery()
    latency = _bench_chaos_latency()
    result = {
        "bench": "resilience",
        "workers": WORKERS,
        "job_duration_s": JOB_DURATION_S,
        "kill_rate": KILL_RATE,
        "chaos_seed": CHAOS_SEED,
        "recovery": recovery,
        "latency": latency,
    }
    output.write_text(json.dumps(result, indent=2) + "\n")

    print(f"\nresilience bench -> {output}")
    print(
        f"recovery: {recovery['replayed_entries']} journaled entries "
        f"replayed in {recovery['recovery_s']:.2f}s "
        f"({recovery['per_entry_ms']:.1f} ms/entry)"
    )
    for phase in ("fault_free", "chaos"):
        row = latency[phase]
        extra = (
            f", kills={row.get('worker_kills', 0)}"
            f", retries={row['retries']}"
            if phase == "chaos" else ""
        )
        print(
            f"{phase:<11} interactive p50={row['interactive_p50_s']:.3f}s "
            f"p99={row['interactive_p99_s']:.3f}s "
            f"bulk done={row['bulk_completed']}{extra}"
        )
    return result


def bench_resilience():
    run_bench(Path("BENCH_resilience.json"))


if __name__ == "__main__":
    run_bench(Path("BENCH_resilience.json"))
