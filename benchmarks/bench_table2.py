"""Table 2 — omniscient interstitial makespans.

Shape claims checked: makespans grow with project size on every
machine; Blue Pacific is the slowest machine for every project (small
capacity x high utilization).
"""

import numpy as np

from repro.experiments import table2


def bench_table2(run_and_show, ctx):
    result = run_and_show(table2, ctx)
    points = result.data["points"]
    # Growth in project size per (machine, width) series: the largest
    # project always outlasts the smallest (interior points can wobble
    # at reduced sample counts, as the paper's own large stds suggest).
    for machine, pts in points.items():
        for width in (1, 32):
            series = sorted(
                (p["peta_cycles"], p["mean_makespan_s"])
                for p in pts
                if p["cpus_per_job"] == width
            )
            assert series[-1][1] > series[0][1], (machine, width)
    # Blue Pacific slowest for the largest projects (paper's ordering;
    # compared at the biggest size where dispersion matters least).
    largest = max(p["peta_cycles"] for p in points["ross"])
    spans_at_largest = {
        m: np.mean(
            [
                p["mean_makespan_s"]
                for p in pts
                if p["peta_cycles"] >= 0.9 * largest
            ]
        )
        for m, pts in points.items()
    }
    assert spans_at_largest["blue_pacific"] == max(
        spans_at_largest.values()
    )
