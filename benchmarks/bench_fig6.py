"""Figure 6 — wait-time histogram of the 5% largest native jobs.

Shape claims checked: distributions are normalized, and the largest
jobs' distributions shift right at least as much as the population's
(they are the preferred victims of poached backfill windows).
"""

import numpy as np
import pytest

from repro.experiments import fig5, fig6


def mean_bin(hist):
    return float(np.average(np.arange(len(hist)), weights=hist))


def bench_fig6(run_and_show, ctx):
    result = run_and_show(fig6, ctx)
    data = result.data
    labels = list(data)
    for hist in data.values():
        assert sum(hist) == pytest.approx(1.0)
    all_jobs = fig5.run(ctx).data
    for label in labels[1:]:
        # Large jobs wait in higher bins than the population at large.
        assert mean_bin(data[label]) >= mean_bin(all_jobs[label]) - 0.5
