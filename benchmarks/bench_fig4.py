"""Figure 4 — Blue Mountain hourly utilization without/with continual
interstitial computing.

Shape claims checked: the interstitial series is both higher and far
flatter (paper: pinned near 1.0), with most hours above 95%.
"""

import numpy as np

from repro.experiments import fig4


def bench_fig4(run_and_show, ctx):
    result = run_and_show(fig4, ctx)
    without = np.asarray(
        result.data["without interstitial"]["utilization"]
    )
    with_i = np.asarray(result.data["with interstitial"]["utilization"])
    assert with_i.mean() > without.mean() + 0.1
    assert with_i.std() < without.std()
    assert np.mean(with_i > 0.95) > 0.5
