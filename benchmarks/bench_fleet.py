"""Fleet bench — sweep throughput scale-out and interactive shielding.

Boots in-process fleets (:class:`repro.service.LocalFleet`: real
services, members, ring routing and work-stealing, direct-call
transport) of 1, 2 and 4 replicas and measures:

1. **Aggregate bulk sweep throughput** — one client floods a
   24-request sweep of distinct seeds through a single entry replica.
   On one replica the utilization cap leaves a single bulk lane
   (workers=2, cap=0.5), so the sweep serializes; on N replicas,
   consistent-hash routing spreads the sweep's keys to their owners
   and idle replicas steal from loaded backlogs, so throughput should
   approach N lanes.  The acceptance bar: 4 replicas ≥ 2.5x the
   single-replica throughput.
2. **Interactive p99 under bulk load** — while the 4-replica sweep
   runs, interactive requests are timed through the same entry
   replica.  Per-replica admission still holds a worker free of bulk
   (the Table 8 cap), so the bar is p99 ≤ 1.5x the no-load
   single-replica baseline.
3. **Byte identity** — the 4-replica concurrent sweep must return
   results byte-identical to the same sweep run serially on one
   replica (deterministic simulations + content-addressed routing
   make the fleet an optimization, never a semantic change).

Jobs are synthetic fixed-duration sleeps for the same reason as in
``bench_service.py``: scale-out moves *queueing*, and fixed-duration
jobs isolate exactly that (real simulations would contend for the CI
host's cores and conflate scheduling with contention).

Results land in ``BENCH_fleet.json``.  Run directly
(``python benchmarks/bench_fleet.py``) or via pytest.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.experiments.config import SCALES
from repro.service import (
    FleetConfig,
    LocalFleet,
    ServiceConfig,
    percentile,
)

FLEET_SIZES = (1, 2, 4)
N_SWEEP = 24
N_INTERACTIVE = 8
WORKERS = 2
BULK_CAP = 0.5  # one bulk lane per replica: scale-out is the only win
JOB_DURATION_S = 0.2
MIN_SPEEDUP_4X = 2.5
MAX_P99_REGRESSION = 1.5


def synthetic_job(name, scale, store_path, check_invariants):
    """Fixed-duration stand-in for a simulation run."""
    time.sleep(JOB_DURATION_S)
    return f"synthetic {name} seed={scale.seed}"


def _make_fleet(replicas: int) -> LocalFleet:
    return LocalFleet(
        replicas,
        service_config=ServiceConfig(
            workers=WORKERS, bulk_cap=BULK_CAP, scale=SCALES["quick"]
        ),
        fleet_config=FleetConfig(steal_interval=0.01),
        pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        worker_fn=synthetic_job,
    )


def _sweep_payloads() -> list:
    return [
        {"experiment": "table1", "seed": 500 + i, "priority": "bulk"}
        for i in range(N_SWEEP)
    ]


def _measure_sweep(
    fleet: LocalFleet, *, interactive: bool
) -> tuple:
    """Flood the sweep through replica 0; optionally time interactive
    requests through the same replica while it runs."""
    results: list = []
    sweep_elapsed: list = []

    def sweep():
        t0 = time.perf_counter()
        results.extend(fleet.run_many(_sweep_payloads(), via=0))
        sweep_elapsed.append(time.perf_counter() - t0)

    thread = threading.Thread(target=sweep)
    thread.start()
    latencies = []
    if interactive:
        for i in range(N_INTERACTIVE):
            t0 = time.perf_counter()
            reply = fleet.run("table1", seed=1000 + i)
            latencies.append(time.perf_counter() - t0)
            assert reply.ok, reply.payload
    thread.join()
    assert all(r.ok for r in results), sorted(
        r.status for r in results
    )
    return results, sweep_elapsed[0], latencies


def run_bench(output: Path) -> dict:
    # No-load interactive baseline on a single replica.
    with _make_fleet(1) as solo:
        baseline_lat = []
        for i in range(N_INTERACTIVE):
            t0 = time.perf_counter()
            reply = solo.run("table1", seed=2000 + i)
            baseline_lat.append(time.perf_counter() - t0)
            assert reply.ok
        # Serial reference sweep for the byte-identity check (fresh
        # seeds all uncached: run one at a time).
        serial_results = [
            solo.run_many([p])[0] for p in _sweep_payloads()
        ]
    baseline_p99 = percentile(baseline_lat, 99)

    sweeps = {}
    interactive_p99 = None
    fleet_results = None
    for size in FLEET_SIZES:
        with _make_fleet(size) as fleet:
            results, elapsed, latencies = _measure_sweep(
                fleet, interactive=size == max(FLEET_SIZES)
            )
            totals = fleet.fleet_metrics()["totals"]
            sweeps[str(size)] = {
                "replicas": size,
                "sweep_requests": N_SWEEP,
                "elapsed_s": round(elapsed, 3),
                "throughput_rps": round(N_SWEEP / elapsed, 3),
                "forwards": totals["forwards"],
                "steals": totals["steals"],
                "steal_requeues": totals["steal_requeues"],
                "peer_replications": totals["peer_replications"],
                "computes": totals["computes"],
            }
            if size == max(FLEET_SIZES):
                interactive_p99 = percentile(latencies, 99)
                fleet_results = results

    for size in FLEET_SIZES:
        sweeps[str(size)]["speedup_vs_1"] = round(
            sweeps[str(size)]["throughput_rps"]
            / sweeps["1"]["throughput_rps"],
            2,
        )

    byte_identical = [
        r.payload["result"] for r in fleet_results
    ] == [r.payload["result"] for r in serial_results] and [
        r.payload["key"] for r in fleet_results
    ] == [
        r.payload["key"] for r in serial_results
    ]

    result = {
        "bench": "fleet",
        "workers_per_replica": WORKERS,
        "bulk_cap": BULK_CAP,
        "job_duration_s": JOB_DURATION_S,
        "sweeps": sweeps,
        "interactive": {
            "requests": N_INTERACTIVE,
            "baseline_p99_s": round(baseline_p99, 4),
            "under_load_p99_s": round(interactive_p99, 4),
            "regression_x": round(
                interactive_p99 / baseline_p99, 2
            ),
        },
        "byte_identical_to_serial": byte_identical,
    }
    output.write_text(json.dumps(result, indent=2) + "\n")

    print(f"\nfleet bench (workers={WORKERS}/replica, "
          f"cap={BULK_CAP}, job={JOB_DURATION_S}s) -> {output}")
    print(f"{'replicas':<9} {'elapsed (s)':>11} {'req/s':>7} "
          f"{'speedup':>8} {'steals':>7} {'forwards':>9}")
    for size in FLEET_SIZES:
        row = sweeps[str(size)]
        print(
            f"{size:<9} {row['elapsed_s']:>11.2f} "
            f"{row['throughput_rps']:>7.2f} "
            f"{row['speedup_vs_1']:>7.2f}x "
            f"{row['steals']:>7d} {row['forwards']:>9d}"
        )
    print(
        f"interactive p99: baseline {baseline_p99:.3f}s, under "
        f"4-replica bulk load {interactive_p99:.3f}s "
        f"({interactive_p99 / baseline_p99:.2f}x); byte-identical: "
        f"{byte_identical}"
    )

    top = sweeps[str(max(FLEET_SIZES))]
    assert top["speedup_vs_1"] >= MIN_SPEEDUP_4X, (
        f"4-replica sweep speedup {top['speedup_vs_1']}x below the "
        f"{MIN_SPEEDUP_4X}x bar"
    )
    assert interactive_p99 <= MAX_P99_REGRESSION * baseline_p99, (
        f"interactive p99 {interactive_p99:.3f}s exceeds "
        f"{MAX_P99_REGRESSION}x no-load baseline {baseline_p99:.3f}s"
    )
    assert byte_identical, (
        "fleet sweep results diverged from the serial solo run"
    )
    return result


def bench_fleet():
    run_bench(Path("BENCH_fleet.json"))


if __name__ == "__main__":
    run_bench(Path("BENCH_fleet.json"))
