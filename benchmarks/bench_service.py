"""Service bench — interactive latency under bulk load.

Boots the in-process daemon and measures interactive p50/p99 latency
and total throughput in three phases:

1. interactive-only baseline (no bulk traffic),
2. mixed load with the default bulk cap (bulk admitted only while a
   worker slot stays free — the paper's Table 8 utilization cap), and
3. the same mixed load with the cap disabled.

The policy claim under test: with the cap on, interactive p99 stays
within 25% of the baseline while every bulk request still completes;
with the cap off, bulk floods the pool and interactive latency
measurably degrades.

Jobs are synthetic fixed-duration sleeps rather than real simulations:
the admission policy controls *queueing delay*, and fixed-duration
jobs on a thread pool isolate exactly that quantity.  Real simulations
would additionally timeshare the host CPU (a single-core CI runner
degrades interactive latency under any policy), conflating scheduling
with contention the daemon cannot control.  Per-request simulation
cost has its own benches.

A fifth phase measures two-tenant fairness: a flood tenant queues a
10-deep bulk backlog on a single serialized lane, then a light tenant
submits; fair-share dequeue must interleave the newcomer ahead of the
flood's backlog, so its mean latency stays far below the FIFO bound
(``N_FLOOD × job``), recorded as ``fairness_ratio``.

A fourth phase measures the HTTP transport itself: the same run of
cache-hit requests driven over a real socket front end with one
connection per call (the pre-keep-alive client) versus one persistent
keep-alive connection.  Request cost there is ~zero (cached), so the
two numbers isolate pure connection overhead — the handshake tax
keep-alive removes from every fleet peer RPC and client call.

Results land in ``BENCH_service.json`` to seed the perf trajectory.
Run directly (``python benchmarks/bench_service.py``) or via pytest.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.experiments.config import SCALES
from repro.service import (
    HttpFrontend,
    InProcessClient,
    ServiceClient,
    ServiceConfig,
    SimulationService,
    percentile,
)

#: Interactive requests timed per phase / bulk requests flooded per
#: mixed phase.
N_INTERACTIVE = 12
N_BULK = 8
WORKERS = 2
CAPPED = 0.9
#: Synthetic job duration — long enough that queueing delay (a whole
#: multiple of it) dominates service-layer overhead (~1 ms).
JOB_DURATION_S = 0.25
MAX_P99_REGRESSION = 1.25


def synthetic_job(name, scale, store_path, check_invariants):
    """Fixed-duration stand-in for a simulation run."""
    time.sleep(JOB_DURATION_S)
    return f"synthetic {name} seed={scale.seed}"


def _measure_phase(client, *, bulk: bool) -> dict:
    """Drive one phase and return its latency/throughput summary.

    Interactive requests run sequentially from this thread and are
    timed client-side; the bulk flood, when enabled, runs concurrently
    in the background.  Every phase gets a fresh service (and so a
    fresh in-memory store), which lets all phases replay the same seed
    sequence without cache hits.
    """
    bulk_replies: list = []
    bulk_thread = None
    if bulk:
        payloads = [
            {"experiment": "table1", "seed": 500 + i,
             "priority": "bulk"}
            for i in range(N_BULK)
        ]
        bulk_thread = threading.Thread(
            target=lambda: bulk_replies.extend(
                client.run_many(payloads, max_workers=N_BULK)
            )
        )

    start = time.perf_counter()
    if bulk_thread is not None:
        bulk_thread.start()
    latencies = []
    for i in range(N_INTERACTIVE):
        t0 = time.perf_counter()
        reply = client.run("table1", seed=1000 + i)
        latencies.append(time.perf_counter() - t0)
        assert reply.ok, reply.payload
    if bulk_thread is not None:
        bulk_thread.join()
        assert all(r.ok for r in bulk_replies), (
            f"bulk requests failed: "
            f"{sorted(r.status for r in bulk_replies)}"
        )
    elapsed = time.perf_counter() - start

    completed = N_INTERACTIVE + len(bulk_replies)
    return {
        "interactive_p50_s": round(percentile(latencies, 50), 4),
        "interactive_p99_s": round(percentile(latencies, 99), 4),
        "interactive_mean_s": round(
            sum(latencies) / len(latencies), 4
        ),
        "bulk_completed": len(bulk_replies),
        "throughput_rps": round(completed / elapsed, 3),
        "elapsed_s": round(elapsed, 3),
    }


def _run_phase(bulk_cap: float, *, bulk: bool) -> dict:
    config = ServiceConfig(
        workers=WORKERS, bulk_cap=bulk_cap, scale=SCALES["quick"]
    )
    with InProcessClient(
        config,
        pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        worker_fn=synthetic_job,
    ) as client:
        return _measure_phase(client, bulk=bulk)


#: Cache-hit HTTP requests timed per connection mode.
N_HTTP = 200


def _instant_job(name, scale, store_path, check_invariants):
    return f"instant {name} seed={scale.seed}"


def _measure_http_keep_alive() -> dict:
    """Connection overhead: N cache-hit requests over fresh
    connections vs one persistent connection."""
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()

    def call(coro):
        return asyncio.run_coroutine_threadsafe(coro, loop).result(
            timeout=60.0
        )

    service = SimulationService(
        ServiceConfig(workers=WORKERS, scale=SCALES["quick"]),
        pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        worker_fn=_instant_job,
    )
    call(service.start())
    frontend = HttpFrontend(service, port=0)
    call(frontend.start())
    try:
        # Warm the cache once so every timed request is a pure
        # transport round trip.
        ServiceClient(port=frontend.port).run("table1", seed=1)
        modes = {}
        for mode, keep_alive in (
            ("close_per_call", False),
            ("keep_alive", True),
        ):
            client = ServiceClient(
                port=frontend.port, keep_alive=keep_alive
            )
            start = time.perf_counter()
            for _ in range(N_HTTP):
                reply = client.run("table1", seed=1)
                assert reply.ok and reply.cached
            elapsed = time.perf_counter() - start
            client.close()
            modes[mode] = {
                "requests": N_HTTP,
                "elapsed_s": round(elapsed, 4),
                "rps": round(N_HTTP / elapsed, 1),
                "mean_us": round(1e6 * elapsed / N_HTTP, 1),
            }
        modes["speedup"] = round(
            modes["keep_alive"]["rps"]
            / modes["close_per_call"]["rps"],
            2,
        )
        return modes
    finally:
        call(frontend.stop())
        call(service.stop())
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10.0)
        loop.close()


#: Two-tenant fairness phase: one tenant floods the bulk queue, a
#: light tenant arrives after the whole flood is queued.
N_FLOOD = 10
N_LIGHT = 3
TENANT_JOB_S = 0.1


def _tenant_job(name, scale, store_path, check_invariants):
    time.sleep(TENANT_JOB_S)
    return f"tenant {name} seed={scale.seed}"


def _measure_two_tenant() -> dict:
    """Fair-share admission under a flood: the light tenant's bulk
    requests, submitted *after* a 10-deep flood from another tenant,
    must be interleaved ahead of the flood's backlog rather than
    waiting out the whole queue FIFO-style.

    One worker and ``bulk_cap=1.0`` serialize the bulk lane, so the
    dequeue order is the entire experiment: FIFO would make the light
    tenant wait ~``N_FLOOD × job`` seconds; fair share (the flood's
    decayed usage charges against it) should cost the light tenant
    only the in-service job plus at most a couple of interleaves.
    """
    config = ServiceConfig(
        workers=1, bulk_cap=1.0, scale=SCALES["quick"]
    )
    with InProcessClient(
        config,
        pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        worker_fn=_tenant_job,
    ) as client:
        flood_replies: list = []
        flood_payloads = [
            {"experiment": "table1", "seed": 600 + i,
             "priority": "bulk", "tenant": "flood"}
            for i in range(N_FLOOD)
        ]
        start = time.perf_counter()
        flood_thread = threading.Thread(
            target=lambda: flood_replies.extend(
                client.run_many(flood_payloads, max_workers=N_FLOOD)
            )
        )
        flood_thread.start()
        # Let the flood queue up and get a little usage charged.
        time.sleep(2.5 * TENANT_JOB_S)
        light_latencies = []
        for i in range(N_LIGHT):
            t0 = time.perf_counter()
            reply = client.run(
                "table1", seed=700 + i, priority="bulk",
                tenant="light",
            )
            light_latencies.append(time.perf_counter() - t0)
            assert reply.ok, reply.payload
        flood_thread.join()
        elapsed = time.perf_counter() - start
        assert all(r.ok for r in flood_replies)
        tenants = client.metrics().payload["tenants"]

    light_mean = sum(light_latencies) / len(light_latencies)
    fifo_wait = N_FLOOD * TENANT_JOB_S
    return {
        "flood_requests": N_FLOOD,
        "light_requests": N_LIGHT,
        "job_duration_s": TENANT_JOB_S,
        "light_mean_s": round(light_mean, 4),
        "light_worst_s": round(max(light_latencies), 4),
        "fifo_wait_bound_s": round(fifo_wait, 4),
        "fairness_ratio": round(light_mean / fifo_wait, 3),
        "elapsed_s": round(elapsed, 3),
        "flood_completed": tenants["flood"]["counters"]["completed"],
        "light_completed": tenants["light"]["counters"]["completed"],
    }


def run_bench(output: Path) -> dict:
    phases = {
        "baseline": _run_phase(CAPPED, bulk=False),
        "capped": _run_phase(CAPPED, bulk=True),
        "uncapped": _run_phase(1.0, bulk=True),
        "http_keep_alive": _measure_http_keep_alive(),
        "two_tenant": _measure_two_tenant(),
    }
    result = {
        "bench": "service",
        "workers": WORKERS,
        "bulk_cap": CAPPED,
        "job_duration_s": JOB_DURATION_S,
        "interactive_requests": N_INTERACTIVE,
        "bulk_requests": N_BULK,
        "phases": phases,
    }
    output.write_text(json.dumps(result, indent=2) + "\n")

    print(f"\nservice bench (workers={WORKERS}, cap={CAPPED}, "
          f"job={JOB_DURATION_S}s) -> {output}")
    header = (
        f"{'phase':<10} {'p50 (s)':>9} {'p99 (s)':>9} "
        f"{'mean (s)':>9} {'req/s':>7} {'bulk done':>9}"
    )
    print(header)
    for name, row in phases.items():
        if name in ("http_keep_alive", "two_tenant"):
            continue
        print(
            f"{name:<10} {row['interactive_p50_s']:>9.3f} "
            f"{row['interactive_p99_s']:>9.3f} "
            f"{row['interactive_mean_s']:>9.3f} "
            f"{row['throughput_rps']:>7.2f} "
            f"{row['bulk_completed']:>9d}"
        )
    ka = phases["http_keep_alive"]
    print(
        f"http       close/call {ka['close_per_call']['rps']:>8.1f} "
        f"req/s | keep-alive {ka['keep_alive']['rps']:>8.1f} req/s "
        f"({ka['speedup']:.2f}x)"
    )

    baseline_p99 = phases["baseline"]["interactive_p99_s"]
    capped = phases["capped"]
    uncapped = phases["uncapped"]
    assert capped["bulk_completed"] == N_BULK
    assert capped["interactive_p99_s"] <= (
        MAX_P99_REGRESSION * baseline_p99
    ), (
        f"capped interactive p99 {capped['interactive_p99_s']:.3f}s "
        f"exceeds {MAX_P99_REGRESSION}x baseline {baseline_p99:.3f}s"
    )
    assert uncapped["interactive_p99_s"] > (
        MAX_P99_REGRESSION * baseline_p99
    ), "disabling the cap should visibly degrade interactive latency"
    # Keep-alive must never make the transport slower; the usual win
    # on loopback is well above 1x (a connect round trip per call).
    assert phases["http_keep_alive"]["speedup"] > 0.9, (
        "persistent connections slower than per-call connections: "
        f"{phases['http_keep_alive']}"
    )
    two = phases["two_tenant"]
    print(
        f"two-tenant fairness: light mean "
        f"{two['light_mean_s']:.3f}s vs FIFO bound "
        f"{two['fifo_wait_bound_s']:.3f}s "
        f"(ratio {two['fairness_ratio']:.2f})"
    )
    assert two["flood_completed"] == N_FLOOD
    assert two["light_completed"] == N_LIGHT
    # The fairness claim: the late-arriving tenant pays an interleave
    # or two, not the whole flood's FIFO queue.
    assert two["light_mean_s"] < 0.5 * two["fifo_wait_bound_s"], (
        f"light tenant waited FIFO-style behind the flood: {two}"
    )
    return result


def bench_service():
    run_bench(Path("BENCH_service.json"))


if __name__ == "__main__":
    run_bench(Path("BENCH_service.json"))
