"""Figure 3 — makespan CDF on Blue Mountain.

Shape claims checked: both projects' makespans exceed the empty-machine
theory minimum; distributions have the paper's long right tail
(q90 well above the median).
"""

import numpy as np

from repro.experiments import fig3


def bench_fig3(run_and_show, ctx):
    result = run_and_show(fig3, ctx)
    for label, series in result.data.items():
        samples = np.asarray(series["samples_s"])
        if samples.size < 10:
            continue
        assert samples.min() >= 0.9 * series["theory_empty_s"]
        q50, q90 = np.quantile(samples, [0.5, 0.9])
        assert q90 > q50  # right tail present
