"""Table 8b — limited (utilization-capped) continual interstitial on
Blue Mountain.

Shape claims checked: interstitial throughput and overall utilization
rise monotonically with the cap and stay below the uncapped run; the
90%-capped run's native median wait is no worse than the uncapped one.
"""

from repro.experiments import table8_limited


def bench_table8_limited(run_and_show, ctx):
    result = run_and_show(table8_limited, ctx)
    cols = result.data["columns"]
    caps = ["util < 90%", "util < 95%", "util < 98%"]
    jobs = [cols[c]["interstitial_jobs"] for c in caps]
    utils = [cols[c]["overall_utilization"] for c in caps]
    assert jobs == sorted(jobs)
    assert utils == sorted(utils)
    uncapped = cols["uncapped"]
    assert jobs[-1] <= uncapped["interstitial_jobs"]
    assert (
        cols[caps[0]]["median_wait_all_s"]
        <= uncapped["median_wait_all_s"]
    )
