"""Table 1 — machine comparison.

Regenerates the paper's machine/workload summary and checks the
calibration-level shape claims: offered utilizations match the paper's
targets and the realized utilization ordering is Blue Pacific > Blue
Mountain > Ross.
"""

import pytest

from repro.experiments import table1


def bench_table1(run_and_show, ctx):
    result = run_and_show(table1, ctx)
    data = result.data
    for machine in ("ross", "blue_mountain", "blue_pacific"):
        assert data[machine]["offered_utilization"] == pytest.approx(
            data[machine]["paper_utilization"], abs=0.05
        )
    assert data["blue_mountain"]["tera_cycles"] == pytest.approx(
        1.221, abs=0.001
    )
