"""Fault ablation — the Figure-4 outage story with stochastic crashes.

Shape claims checked: the no-fault continual run stays near the paper's
~100% ceiling; failure counts grow as per-node MTBF shrinks;
utilization erodes under the heaviest fault load; and fault-killed
natives are retried per the RetryPolicy.
"""

from repro.experiments import fault_ablation


def bench_fault_ablation(run_and_show, ctx):
    result = run_and_show(fault_ablation, ctx)
    data = result.data
    baseline = data["no faults"]
    worst = data["MTBF 10 d/node"]
    mid = data["MTBF 30 d/node"]
    assert baseline["n_failures"] == 0
    assert baseline["overall_utilization"] > 0.9
    # More frequent failures, more crash events and more killed work.
    assert 0 < data["MTBF 90 d/node"]["n_failures"] < mid["n_failures"]
    assert mid["n_failures"] < worst["n_failures"]
    assert worst["killed_interstitial"] > 0
    assert worst["killed_native"] > 0
    # Crash downtime erodes the ceiling, but the machine keeps working.
    assert worst["overall_utilization"] < baseline["overall_utilization"]
    assert worst["overall_utilization"] > 0.5
    # Every native kill is either retried or dead-lettered.
    assert worst["retries"] >= worst["killed_native"] - worst["dead_lettered"]
    assert worst["retries"] > 0
