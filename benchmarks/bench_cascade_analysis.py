"""§4.3.2.1 — delay-cascade decomposition on Blue Mountain.

Shape claims checked: cascade-delayed jobs are a minority of natives
but carry the majority of the total extra wait — the paper's mechanism
for mean-wait blow-up at modest median impact.
"""

from repro.experiments import cascade_analysis
from repro.experiments.continual_tables import CONTINUAL_RUNTIMES_1GHZ


def bench_cascade_analysis(run_and_show, ctx):
    result = run_and_show(cascade_analysis, ctx)
    for runtime in CONTINUAL_RUNTIMES_1GHZ:
        report = result.data[runtime]["report"]
        assert report.cascade_fraction < 0.5  # a minority of jobs...
        if report.n_cascade > 0:
            # ...carrying the bulk of the damage.
            assert report.cascade_share_of_extra_wait > 0.5
