"""§4.2 — the affine makespan fit (paper: 5256 + 1.16x).

Shape claims checked: positive intercept of the same order as the
paper's, slope above 1 (dispersion + breakage) and a strong fit.
"""

from repro.experiments import fit_theory


def bench_fit_theory(run_and_show, ctx):
    result = run_and_show(fit_theory, ctx)
    fit = result.data["fit"]
    assert fit.slope > 0.8
    assert fit.r_squared > 0.5
