"""Ablation — Figure-1 harvest efficiency vs the omniscient bound.

Shape claims checked: the fallible controller reaches a substantial
fraction (>=60%) of the provable zero-impact harvest on every machine,
without exceeding ~1.5x of it (it can pass 100% only by delaying
natives, which is bounded).
"""

from repro.experiments import ablation_efficiency


def bench_ablation_efficiency(run_and_show, ctx):
    result = run_and_show(ablation_efficiency, ctx)
    for machine, data in result.data.items():
        assert data["bound"] > 0, machine
        assert 0.6 <= data["efficiency"] <= 1.5, (machine, data)
