"""Elastic bench — the breakage penalty, measured, policy by policy.

Reconstructs the paper's Table-5 arithmetic as a live simulation: a
paced native workload pins each machine at its paper utilization
(``lanes`` equal-width native lanes, back-to-back rounds, exact
estimates), leaving the Table-5 free remainder — 86 CPUs on Blue
Pacific — for one finite interstitial project (32-CPU nominal jobs,
widths [4, 32]).  Every fourth round a wide native drops in mid-round,
so the policies also face a blocked native head, not just a steady
hole.  The project runs to drain under each
:class:`~repro.elastic.WidthPolicy` and the bench reports:

* project makespan per policy and the measured rigid/malleable ratio
  (the breakage factor, realized — theory says 1.346 on Blue Pacific),
* native mean wait per policy (elasticity must not slow natives), and
* the resize counters (kills / shrinks / grows / molded starts).

Everything here is simulation time — no wall clocks — so the committed
``BENCH_elastic.json`` is exactly reproducible and ``--check`` compares
recomputed numbers for equality, then re-asserts the headline claims:
on Blue Pacific the malleable makespan beats rigid strictly and the
malleable native mean wait stays within 5% of rigid's.

Run directly for the full protocol (rewrites ``BENCH_elastic.json``)::

    PYTHONPATH=src python benchmarks/bench_elastic.py

CI smoke: ``--quick`` computes the small protocol only and
``--check BENCH_elastic.json`` verifies the committed quick section.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Dict, List

from repro.core.runners import run_with_controller
from repro.elastic import ElasticitySpec, elastic_controller
from repro.jobs import InterstitialProject, Job, JobKind
from repro.machines import preset
from repro.sched import BackfillMode, FcfsPolicy, QueueScheduler
from repro.theory import breakage_factor, elastic_breakage_factor
from repro.workload.synthetic import targets

MACHINES = ("ross", "blue_mountain", "blue_pacific")
POLICIES = (
    ("rigid", ElasticitySpec.rigid()),
    ("moldable", ElasticitySpec.moldable()),
    ("malleable", ElasticitySpec.malleable()),
)
#: Native background shape.
LANES = 8
ROUND_S = 3600.0
#: Every CHURN_PERIOD-th round a CHURN_CPUS native arrives mid-round.
CHURN_PERIOD = 4
CHURN_CPUS = 64
CHURN_RUNTIME_S = 1800.0
#: Interstitial project shape (nominal width and elastic range).
NOMINAL_CPUS = 32
MIN_WIDTH = 4
MAX_WIDTH = 32
RUNTIME_1GHZ = 300.0
#: Project sizing: drain time at full elastic throughput, per protocol.
FULL_DRAIN_S = 6 * 3600.0
QUICK_DRAIN_S = 1.5 * 3600.0
#: Native rounds outlast the slowest (rigid) drain by this margin.
ROUNDS_MARGIN = 1.3
#: Headline guard: malleable native mean wait vs rigid (5% + 1 s slack
#: for zero-wait scenarios).
NATIVE_WAIT_TOLERANCE = 1.05
NATIVE_WAIT_SLACK_S = 1.0


def _lane_width(machine, utilization: float) -> int:
    return int(round(machine.cpus * utilization)) // LANES


def _native_jobs(lane_width: int, rounds: int) -> List[Job]:
    """The paced background: LANES back-to-back lanes plus the periodic
    mid-round churn job."""
    jobs: List[Job] = []
    for r in range(rounds):
        for k in range(LANES):
            jobs.append(
                Job(
                    cpus=lane_width,
                    runtime=ROUND_S,
                    estimate=ROUND_S,
                    submit_time=r * ROUND_S,
                    user=f"lane{k}",
                    group="native",
                )
            )
        if r % CHURN_PERIOD == 0:
            jobs.append(
                Job(
                    cpus=CHURN_CPUS,
                    runtime=CHURN_RUNTIME_S,
                    estimate=CHURN_RUNTIME_S,
                    submit_time=r * ROUND_S + ROUND_S / 4.0,
                    user="churn",
                    group="native",
                )
            )
    return jobs


def _scenario(machine_name: str, drain_s: float) -> Dict[str, object]:
    """Deterministic scenario parameters for one machine."""
    machine = preset(machine_name)
    utilization = targets(machine_name).utilization
    lane_width = _lane_width(machine, utilization)
    free = machine.cpus - LANES * lane_width
    runtime_s = RUNTIME_1GHZ / machine.clock_ghz
    quantum = NOMINAL_CPUS * runtime_s
    n_jobs = max(16, round(drain_s * free / quantum))
    rigid_cps = (free // NOMINAL_CPUS) * NOMINAL_CPUS
    rigid_est_s = n_jobs * quantum / rigid_cps
    rounds = int(math.ceil(ROUNDS_MARGIN * rigid_est_s / ROUND_S)) + 1
    return {
        "machine": machine,
        "utilization": utilization,
        "lane_width": lane_width,
        "free_cpus": free,
        "runtime_s": runtime_s,
        "n_jobs": n_jobs,
        "rounds": rounds,
    }


def _run_policy(scenario: Dict[str, object], spec: ElasticitySpec) -> Dict:
    machine = scenario["machine"]
    project = InterstitialProject(
        n_jobs=scenario["n_jobs"],
        cpus_per_job=NOMINAL_CPUS,
        runtime_1ghz=RUNTIME_1GHZ,
        min_width=MIN_WIDTH,
        max_width=MAX_WIDTH,
        name="bench-elastic",
        user="interstitial",
        group="interstitial",
    )
    controller = elastic_controller(machine, project, spec)
    scheduler = QueueScheduler(
        policy=FcfsPolicy(), backfill=BackfillMode.EASY
    )
    natives = _native_jobs(scenario["lane_width"], scenario["rounds"])
    result = run_with_controller(
        machine, natives, controller, scheduler=scheduler,
        check_invariants=True,
    )
    inter = result.jobs(JobKind.INTERSTITIAL)
    if len(inter) != scenario["n_jobs"]:
        raise AssertionError(
            f"{machine.name}/{spec.policy.value}: {len(inter)} of "
            f"{scenario['n_jobs']} interstitial jobs finished"
        )
    finished_natives = result.jobs(JobKind.NATIVE)
    waits = [j.start_time - j.submit_time for j in finished_natives]
    return {
        "makespan_s": round(max(j.finish_time for j in inter), 1),
        "native_mean_wait_s": round(sum(waits) / len(waits), 3),
        "native_max_wait_s": round(max(waits), 1),
        "preempt_kills": result.counters.preempt_kills,
        "preempt_shrinks": result.counters.preempt_shrinks,
        "grows": result.counters.grows,
        "molded_starts": result.counters.molded_starts,
    }


def _measure_section(drain_s: float) -> Dict[str, object]:
    out: Dict[str, object] = {"drain_s": drain_s, "machines": {}}
    for machine_name in MACHINES:
        scenario = _scenario(machine_name, drain_s)
        machine = scenario["machine"]
        busy_util = LANES * scenario["lane_width"] / machine.cpus
        entry: Dict[str, object] = {
            "free_cpus": scenario["free_cpus"],
            "n_jobs": scenario["n_jobs"],
            "rounds": scenario["rounds"],
            "theory_breakage_rigid": round(
                breakage_factor(machine.cpus, busy_util, NOMINAL_CPUS), 4
            ),
            "theory_breakage_malleable": round(
                elastic_breakage_factor(
                    machine.cpus, busy_util, MIN_WIDTH, MAX_WIDTH,
                    malleable=True,
                ),
                4,
            ),
        }
        for policy, spec in POLICIES:
            entry[policy] = _run_policy(scenario, spec)
        entry["measured_rigid_vs_malleable"] = round(
            entry["rigid"]["makespan_s"] / entry["malleable"]["makespan_s"],
            4,
        )
        out["machines"][machine_name] = entry  # type: ignore[index]
        print(
            f"{machine_name:<14} free {scenario['free_cpus']:>4d}  "
            f"rigid {entry['rigid']['makespan_s']:>9.0f}s  "
            f"malleable {entry['malleable']['makespan_s']:>9.0f}s  "
            f"ratio x{entry['measured_rigid_vs_malleable']:.3f} "
            f"(theory x{entry['theory_breakage_rigid']:.3f})  "
            f"native wait {entry['rigid']['native_mean_wait_s']:.1f}s -> "
            f"{entry['malleable']['native_mean_wait_s']:.1f}s"
        )
    return out


def verify(section: Dict[str, object]) -> List[str]:
    """The headline claims, checked on every section."""
    failures: List[str] = []
    machines: Dict[str, Dict] = section["machines"]  # type: ignore
    bp = machines["blue_pacific"]
    if bp["malleable"]["makespan_s"] >= bp["rigid"]["makespan_s"]:
        failures.append(
            "blue_pacific: malleable makespan "
            f"{bp['malleable']['makespan_s']}s is not strictly better "
            f"than rigid {bp['rigid']['makespan_s']}s"
        )
    wait_floor = (
        NATIVE_WAIT_TOLERANCE * bp["rigid"]["native_mean_wait_s"]
        + NATIVE_WAIT_SLACK_S
    )
    if bp["malleable"]["native_mean_wait_s"] > wait_floor:
        failures.append(
            "blue_pacific: malleable native mean wait "
            f"{bp['malleable']['native_mean_wait_s']}s exceeds "
            f"{wait_floor:.1f}s (5% over rigid)"
        )
    for name, entry in machines.items():
        for policy in ("rigid", "moldable", "malleable"):
            if entry[policy]["preempt_kills"] != 0:
                failures.append(
                    f"{name}/{policy}: non-preemptible run reported "
                    f"{entry[policy]['preempt_kills']} preempt kills"
                )
    return failures


def run_bench(out_path: Path, quick_only: bool = False) -> int:
    data: Dict[str, object] = {
        "protocol": {
            "lanes": LANES,
            "round_s": ROUND_S,
            "churn": {
                "period_rounds": CHURN_PERIOD,
                "cpus": CHURN_CPUS,
                "runtime_s": CHURN_RUNTIME_S,
            },
            "nominal_cpus": NOMINAL_CPUS,
            "widths": [MIN_WIDTH, MAX_WIDTH],
            "runtime_1ghz": RUNTIME_1GHZ,
            "timing": "simulation-deterministic (no wall clock)",
        },
    }
    if not quick_only:
        print(f"# full protocol (drain {FULL_DRAIN_S:.0f}s)")
        data["full"] = _measure_section(FULL_DRAIN_S)
    print(f"# quick protocol (drain {QUICK_DRAIN_S:.0f}s)")
    data["quick"] = _measure_section(QUICK_DRAIN_S)
    failures = []
    for key in ("full", "quick"):
        if key in data:
            failures.extend(verify(data[key]))  # type: ignore[arg-type]
    if failures:
        print("bench-elastic FAILED:")
        for line in failures:
            print(f"  {line}")
        return 1
    out_path.write_text(json.dumps(data, indent=1) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")
    return 0


def check_against(committed_path: Path) -> int:
    """CI smoke: recompute the quick section and compare exactly (the
    protocol is simulation-deterministic), then re-assert the claims."""
    committed = json.loads(committed_path.read_text())
    measured = _measure_section(QUICK_DRAIN_S)
    failures = verify(measured)
    if measured != committed["quick"]:
        failures.append(
            "recomputed quick section differs from committed "
            f"{committed_path} (determinism or protocol drift); rerun "
            "the bench to regenerate"
        )
    if failures:
        print("elastic-smoke FAILED:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(
        f"elastic-smoke OK: {len(measured['machines'])} machines "
        "deterministic, headline claims hold"
    )
    return 0


# ----------------------------------------------------------------------
# pytest entry: the quick protocol's headline claims
# ----------------------------------------------------------------------
def test_quick_protocol_headline_claims() -> None:
    section = _measure_section(QUICK_DRAIN_S)
    assert verify(section) == []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="compute only the quick protocol",
    )
    parser.add_argument(
        "--check", metavar="PATH", type=Path, default=None,
        help="compare the quick protocol against a committed "
        "BENCH_elastic.json instead of writing results",
    )
    parser.add_argument(
        "--out", metavar="PATH", type=Path,
        default=Path("BENCH_elastic.json"),
        help="output path (default: ./BENCH_elastic.json)",
    )
    args = parser.parse_args(argv)
    if args.check is not None:
        return check_against(args.check)
    return run_bench(args.out, quick_only=args.quick)


if __name__ == "__main__":
    sys.exit(main())
