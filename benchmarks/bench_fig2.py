"""Figure 2 — actual vs theoretical makespan scatter.

Shape claims checked: actual makespans correlate strongly with the
P/(NC(1-U)) theory line and sit on or above it (the paper's points hug
the diagonal from above).
"""

import numpy as np

from repro.experiments import fig2


def bench_fig2(run_and_show, ctx):
    result = run_and_show(fig2, ctx)
    points = result.data["points_1cpu"] + result.data["points_32cpu"]
    theory = np.array([t for t, _ in points])
    actual = np.array([a for _, a in points])
    corr = np.corrcoef(theory, actual)[0, 1]
    assert corr > 0.6
    # The bulk of points lie above the diagonal (real machines are
    # never better than the constant-utilization fluid limit).
    assert np.mean(actual >= 0.9 * theory) > 0.8
