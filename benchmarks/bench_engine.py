"""Engine bench — events/sec of the incremental scheduler hot path.

Replays synthetic traces for the paper's three machines through three
scenarios — ``native`` (trace only), ``faulted`` (trace + node
failures) and ``continual`` (trace + a continual interstitial project
under a periodic scheduler wake cycle, the production operating mode)
— and measures engine throughput in events/sec for:

* the incremental :class:`~repro.sched.QueueScheduler` (DESIGN §13),
* the retained naive :class:`~repro.sched.ReferenceQueueScheduler`
  (the pre-overhaul formulation, kept as the behavioral oracle), and
* the calendar event queue vs the binary heap on the busiest scenario.

Event counts are deterministic per (seed, scale, scenario); only the
wall-clock varies, so each configuration reports the best of
``REPEATS`` runs.  The committed ``BENCH_engine.json`` additionally
embeds the pre-overhaul engine's measured throughput (``pre_pr``) as
the fixed "before" point of the perf trajectory.

Run directly for the full protocol (rewrites ``BENCH_engine.json``)::

    PYTHONPATH=src python benchmarks/bench_engine.py

CI smoke: ``--quick`` measures the small-scale protocol only and
``--check BENCH_engine.json`` compares the measured incremental-vs-
reference speedups against the committed quick-scale ones, failing on
a >20% retention regression (ratios of two in-process runs are stable
where absolute events/sec on shared CI runners are not).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from time import perf_counter
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.runners import run_continual, run_native
from repro.faults import FaultModel
from repro.jobs import InterstitialProject
from repro.machines import preset
from repro.sched import (
    BackfillMode,
    HierarchicalFairSharePolicy,
    QueueScheduler,
    ReferenceQueueScheduler,
    TimeOfDayPolicy,
    UserFairSharePolicy,
    UserGroupFairSharePolicy,
)
from repro.sim.engine import Engine, SimConfig
from repro.workload.synthetic import synthetic_trace_for

SEED = 20260808
FULL_SCALE = 0.2
QUICK_SCALE = 0.05
REPEATS = 3
#: Scheduler dispatch-cycle period for the continual scenario, in
#: seconds.  Production batch systems re-run the scheduling pass "at
#: given time intervals" (the paper's Figure 1 loop; LSF's default
#: dispatch cycle is one minute), not only on job arrivals/completions,
#: so the continual scenario wakes the scheduler every minute.  These
#: wake passes rarely change any scheduling input, which is precisely
#: what the pass-skip layer (DESIGN §13) is built to exploit.
WAKE_INTERVAL = 60.0
MACHINES = ("ross", "blue_mountain", "blue_pacific")
SCENARIOS = ("native", "faulted", "continual")
#: CI guard: the measured incremental/reference speedup must retain at
#: least this fraction of the committed same-scale speedup.
MIN_SPEEDUP_RETENTION = 0.8
#: Only scenarios whose committed speedup is at least this are
#: ratio-gated.  Where the win is within noise of 1x (the reference
#: scheduler shares the engine-layer gains, so some native/faulted
#: replays are nearly tied) a retention gate measures scheduler noise,
#: not regressions; those scenarios are checked for event-count
#: determinism only.
SPEEDUP_GATE_MIN = 1.5

#: Pre-overhaul engine throughput, measured once with this exact
#: protocol (seed/scale/repeats above) immediately before the
#: incremental-scheduler change landed.
PRE_PR_BASELINE = Path("/tmp/bench_baseline_pre_pr.json")


def _scheduler(machine_name: str, machine, cls: type):
    """Mirror :mod:`repro.sched.presets` for either scheduler class."""
    if machine_name == "ross":
        return cls(
            policy=UserFairSharePolicy(),
            backfill=BackfillMode.CONSERVATIVE,
        )
    if machine_name == "blue_mountain":
        return cls(
            policy=HierarchicalFairSharePolicy(),
            backfill=BackfillMode.EASY,
        )
    return cls(
        policy=UserGroupFairSharePolicy(),
        backfill=BackfillMode.EASY,
        timeofday=TimeOfDayPolicy(max_day_cpus=max(1, machine.cpus // 4)),
    )


def _trace(machine_name: str, scenario: str, scale: float):
    salt = SCENARIOS.index(scenario)
    return synthetic_trace_for(
        machine_name, rng=np.random.default_rng((SEED, salt)), scale=scale
    )


def _faults(scenario: str) -> Optional[FaultModel]:
    if scenario != "faulted":
        return None
    return FaultModel(mtbf=2.0e5, mttr=7200.0, cpus_per_node=16, seed=SEED)


def _measure(
    machine_name: str,
    scenario: str,
    scale: float,
    scheduler_cls: type,
) -> Tuple[int, float]:
    """(deterministic event count, best-of-REPEATS seconds)."""
    machine = preset(machine_name)
    trace = _trace(machine_name, scenario, scale)
    best = math.inf
    events = 0
    for _ in range(REPEATS):
        scheduler = _scheduler(machine_name, machine, scheduler_cls)
        t0 = perf_counter()
        if scenario == "continual":
            project = InterstitialProject(
                n_jobs=1,
                cpus_per_job=max(1, machine.cpus // 8),
                runtime_1ghz=1800.0,
                user="bench",
                group="bench",
            )
            result, _ctl = run_continual(
                machine, trace, project, scheduler=scheduler,
                wake_interval=WAKE_INTERVAL,
            )
        else:
            result = run_native(
                machine, trace, scheduler=scheduler,
                faults=_faults(scenario),
            )
        best = min(best, perf_counter() - t0)
        events = result.counters.events
    return events, best


def _measure_event_queues(scale: float) -> Dict[str, Dict[str, float]]:
    """Heap vs calendar queue on the event-densest scenario
    (faulted blue_mountain), incremental scheduler on both sides."""
    machine_name = "blue_mountain"
    machine = preset(machine_name)
    trace = _trace(machine_name, "faulted", scale)
    out: Dict[str, Dict[str, float]] = {}
    for event_queue in ("heap", "calendar"):
        best = math.inf
        events = 0
        for _ in range(REPEATS):
            engine = Engine(
                machine=machine,
                scheduler=_scheduler(machine_name, machine, QueueScheduler),
                trace=[job.copy_unscheduled() for job in trace],
                faults=_faults("faulted"),
                config=SimConfig(event_queue=event_queue),
            )
            t0 = perf_counter()
            result = engine.run()
            best = min(best, perf_counter() - t0)
            events = result.counters.events
        out[event_queue] = {
            "events": events,
            "seconds": round(best, 4),
            "events_per_sec": round(events / best, 1),
        }
    return out


def _measure_section(scale: float) -> Dict[str, object]:
    scenarios: Dict[str, Dict[str, float]] = {}
    for machine_name in MACHINES:
        for scenario in SCENARIOS:
            key = f"{scenario}-{machine_name}"
            inc_events, inc_s = _measure(
                machine_name, scenario, scale, QueueScheduler
            )
            ref_events, ref_s = _measure(
                machine_name, scenario, scale, ReferenceQueueScheduler
            )
            if inc_events != ref_events:
                raise AssertionError(
                    f"{key}: incremental processed {inc_events} events but "
                    f"reference processed {ref_events}; the schedulers "
                    "diverged"
                )
            scenarios[key] = {
                "events": inc_events,
                "incremental_events_per_sec": round(inc_events / inc_s, 1),
                "reference_events_per_sec": round(ref_events / ref_s, 1),
                "speedup": round(ref_s / inc_s, 2),
            }
            print(
                f"{key:<28} {inc_events:>7d} ev  "
                f"inc {inc_events / inc_s:>9.0f} ev/s  "
                f"ref {ref_events / ref_s:>9.0f} ev/s  "
                f"x{ref_s / inc_s:.2f}"
            )
    return {
        "scale": scale,
        "scenarios": scenarios,
        "event_queue": _measure_event_queues(scale),
    }


def run_bench(out_path: Path, quick_only: bool = False) -> Dict[str, object]:
    data: Dict[str, object] = {
        "protocol": {
            "seed": SEED,
            "full_scale": FULL_SCALE,
            "quick_scale": QUICK_SCALE,
            "repeats": REPEATS,
            "continual_wake_interval_s": WAKE_INTERVAL,
            "timing": "best-of-repeats, events/sec",
        },
    }
    if not quick_only:
        print(f"# full protocol (scale {FULL_SCALE})")
        data["full"] = _measure_section(FULL_SCALE)
    print(f"# quick protocol (scale {QUICK_SCALE})")
    data["quick"] = _measure_section(QUICK_SCALE)
    if PRE_PR_BASELINE.exists():
        pre = json.loads(PRE_PR_BASELINE.read_text())
        data["pre_pr"] = pre
        if "full" in data:
            full = data["full"]["scenarios"]  # type: ignore[index]
            data["speedup_vs_pre_pr"] = {
                key: round(
                    full[key]["incremental_events_per_sec"]
                    / pre[key]["events_per_sec"],
                    2,
                )
                for key in full
                if key in pre
            }
    out_path.write_text(json.dumps(data, indent=1) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")
    return data


def check_against(committed_path: Path) -> int:
    """CI smoke: quick-scale speedups vs the committed quick section."""
    committed = json.loads(committed_path.read_text())
    expected = committed["quick"]["scenarios"]
    measured = _measure_section(QUICK_SCALE)["scenarios"]
    failures = []
    gated = 0
    for key, entry in expected.items():
        got = measured[key]
        if got["events"] != entry["events"]:
            failures.append(
                f"{key}: event count {got['events']} != committed "
                f"{entry['events']} (protocol or determinism drift)"
            )
            continue
        if entry["speedup"] < SPEEDUP_GATE_MIN:
            continue
        gated += 1
        floor = MIN_SPEEDUP_RETENTION * entry["speedup"]
        if got["speedup"] < floor:
            failures.append(
                f"{key}: speedup x{got['speedup']} fell below "
                f"x{floor:.2f} ({MIN_SPEEDUP_RETENTION:.0%} of committed "
                f"x{entry['speedup']})"
            )
    if failures:
        print("bench-smoke FAILED:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(
        f"bench-smoke OK: {len(expected)} scenarios deterministic, "
        f"{gated} speedup-gated within bounds"
    )
    return 0


# ----------------------------------------------------------------------
# pytest entry: determinism only (timing asserts would flake on CI)
# ----------------------------------------------------------------------
def test_schedulers_process_identical_event_streams() -> None:
    inc_events, _ = _measure("ross", "continual", QUICK_SCALE, QueueScheduler)
    ref_events, _ = _measure(
        "ross", "continual", QUICK_SCALE, ReferenceQueueScheduler
    )
    assert inc_events == ref_events


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="measure only the quick-scale protocol",
    )
    parser.add_argument(
        "--check", metavar="PATH", type=Path, default=None,
        help="compare quick-scale speedups against a committed "
        "BENCH_engine.json instead of writing results",
    )
    parser.add_argument(
        "--out", metavar="PATH", type=Path, default=Path("BENCH_engine.json"),
        help="output path (default: ./BENCH_engine.json)",
    )
    args = parser.parse_args(argv)
    if args.check is not None:
        return check_against(args.check)
    run_bench(args.out, quick_only=args.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
