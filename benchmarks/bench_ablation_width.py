"""Ablation — interstitial width sweep on Blue Pacific (breakage
staircase).

Shape claims checked: measured makespan ratios climb with width overall
(1-CPU fastest, widest slowest) and the analytic breakage factor is
monotone over the sweep.
"""

import math

from repro.experiments import ablation_width


def bench_ablation_width(run_and_show, ctx):
    result = run_and_show(ablation_width, ctx)
    data = result.data
    widths = sorted(data)
    theories = [data[w]["theory_breakage"] for w in widths]
    finite = [t for t in theories if math.isfinite(t)]
    assert finite == sorted(finite)
    # Endpoint ordering of the measurement (interior steps are noisy).
    assert data[widths[-1]]["ratio_vs_1cpu"] >= data[widths[0]][
        "ratio_vs_1cpu"
    ]
