"""Ablation — NWS-style per-user runtime prediction (§4.3.1
suggestion).

Shape claims checked: the predictor does not hurt native median waits,
and both configurations sustain substantial interstitial throughput.
"""

from repro.experiments import ablation_predictor


def bench_ablation_predictor(run_and_show, ctx):
    result = run_and_show(ablation_predictor, ctx)
    data = result.data
    raw = data["raw user estimates"]
    predicted = data["EWMA predictor"]
    assert (
        predicted["median_wait_all_s"]
        <= raw["median_wait_all_s"] + 120.0
    )
    assert predicted["interstitial_jobs"] > 0.5 * raw["interstitial_jobs"]
