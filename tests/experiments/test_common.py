"""Tests for the shared experiment infrastructure."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import (
    fmt_h,
    fmt_k,
    fmt_pm_h,
    project_from,
    rng_for,
    scaled_kjobs,
)
from repro.jobs import JobKind


class TestFormatting:
    def test_fmt_h(self):
        assert fmt_h(7200.0) == "2.0"

    def test_fmt_pm_h(self):
        assert fmt_pm_h(7200.0, 3600.0) == "2.0 ± 1.0"

    def test_fmt_k_small(self):
        assert fmt_k(42.0) == "42"

    def test_fmt_k_large(self):
        assert fmt_k(4400.0) == "4.4k"

    def test_fmt_k_boundary(self):
        # The switch to "k" happens where rounding would print "1000".
        assert fmt_k(999.4) == "999"
        assert fmt_k(999.6) == "1.0k"

    def test_fmt_k_drops_decimal_at_100k(self):
        # Above ~100k the decimal carries no information ("123.4k" ->
        # "123k"); the docstring promised this but the old
        # implementation kept one decimal forever.
        assert fmt_k(99_900.0) == "99.9k"
        assert fmt_k(99_960.0) == "100k"
        assert fmt_k(123_400.0) == "123k"

    def test_fmt_k_never_prints_inconsistent_rounding(self):
        # 99 950 is the exact hand-off: "{:.1f}" would round it to
        # "100.0k", so the integer format must already own it.
        assert fmt_k(99_950.0) == "100k"


class TestScaling:
    def test_scaled_kjobs(self, micro_scale):
        # 32 kJobs at 0.01 project scale -> 320 jobs.
        assert scaled_kjobs(32.0, micro_scale) == 320

    def test_scaled_kjobs_floor_one(self, micro_scale):
        assert scaled_kjobs(0.01, micro_scale) == 1

    def test_project_from(self, micro_scale):
        project = project_from(2.0, 32, 120.0, micro_scale)
        assert project.n_jobs == 20
        assert project.cpus_per_job == 32


class TestRng:
    def test_deterministic(self, micro_scale):
        a = rng_for(micro_scale, "x").integers(0, 1 << 30)
        b = rng_for(micro_scale, "x").integers(0, 1 << 30)
        assert a == b

    def test_salt_differentiates(self, micro_scale):
        a = rng_for(micro_scale, "x").integers(0, 1 << 30)
        b = rng_for(micro_scale, "y").integers(0, 1 << 30)
        assert a != b


class TestContextCaching:
    def test_trace_cached(self, micro_ctx):
        a = micro_ctx.trace_for("ross")
        b = micro_ctx.trace_for("ross")
        assert a is b

    def test_unknown_machine(self, micro_ctx):
        with pytest.raises(ConfigurationError):
            micro_ctx.trace_for("asci_white")

    def test_native_cached_and_complete(self, micro_ctx):
        result = micro_ctx.native_result_for("ross")
        assert result is micro_ctx.native_result_for("ross")
        trace = micro_ctx.trace_for("ross")
        assert len(result.native_jobs) == trace.n_jobs

    def test_continual_cached(self, micro_ctx):
        a, ctrl_a = micro_ctx.continual_result_for("ross", 32, 120.0)
        b, ctrl_b = micro_ctx.continual_result_for("ross", 32, 120.0)
        assert a is b and ctrl_a is ctrl_b
        assert len(a.jobs(JobKind.INTERSTITIAL)) == ctrl_a.n_submitted

    def test_contexts_are_isolated(self, micro_scale):
        from repro.experiments.context import RunContext

        a = RunContext(scale=micro_scale)
        b = RunContext(scale=micro_scale)
        assert a.trace_for("ross") is not b.trace_for("ross")

    def test_store_clear_recomputes(self, micro_scale):
        from repro.experiments.context import RunContext

        ctx = RunContext(scale=micro_scale)
        a = ctx.trace_for("ross")
        ctx.store.clear()
        b = ctx.trace_for("ross")
        assert a is not b
