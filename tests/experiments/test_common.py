"""Tests for the shared experiment infrastructure."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import (
    clear_caches,
    continual_result_for,
    fmt_h,
    fmt_k,
    fmt_pm_h,
    native_result_for,
    project_from,
    rng_for,
    scaled_kjobs,
    trace_for,
)
from repro.jobs import JobKind


class TestFormatting:
    def test_fmt_h(self):
        assert fmt_h(7200.0) == "2.0"

    def test_fmt_pm_h(self):
        assert fmt_pm_h(7200.0, 3600.0) == "2.0 ± 1.0"

    def test_fmt_k_small(self):
        assert fmt_k(42.0) == "42"

    def test_fmt_k_large(self):
        assert fmt_k(4400.0) == "4.4k"

    def test_fmt_k_boundary(self):
        assert fmt_k(999.4) == "999"
        assert fmt_k(999.6) == "1.0k"


class TestScaling:
    def test_scaled_kjobs(self, micro_scale):
        # 32 kJobs at 0.01 project scale -> 320 jobs.
        assert scaled_kjobs(32.0, micro_scale) == 320

    def test_scaled_kjobs_floor_one(self, micro_scale):
        assert scaled_kjobs(0.01, micro_scale) == 1

    def test_project_from(self, micro_scale):
        project = project_from(2.0, 32, 120.0, micro_scale)
        assert project.n_jobs == 20
        assert project.cpus_per_job == 32


class TestRng:
    def test_deterministic(self, micro_scale):
        a = rng_for(micro_scale, "x").integers(0, 1 << 30)
        b = rng_for(micro_scale, "x").integers(0, 1 << 30)
        assert a == b

    def test_salt_differentiates(self, micro_scale):
        a = rng_for(micro_scale, "x").integers(0, 1 << 30)
        b = rng_for(micro_scale, "y").integers(0, 1 << 30)
        assert a != b


class TestCaches:
    def test_trace_cached(self, micro_scale):
        a = trace_for("ross", micro_scale)
        b = trace_for("ross", micro_scale)
        assert a is b

    def test_unknown_machine(self, micro_scale):
        with pytest.raises(ConfigurationError):
            trace_for("asci_white", micro_scale)

    def test_native_cached_and_complete(self, micro_scale):
        result = native_result_for("ross", micro_scale)
        assert result is native_result_for("ross", micro_scale)
        trace = trace_for("ross", micro_scale)
        assert len(result.native_jobs) == trace.n_jobs

    def test_continual_cached(self, micro_scale):
        a, ctrl_a = continual_result_for("ross", micro_scale, 32, 120.0)
        b, ctrl_b = continual_result_for("ross", micro_scale, 32, 120.0)
        assert a is b and ctrl_a is ctrl_b
        assert len(a.jobs(JobKind.INTERSTITIAL)) == ctrl_a.n_submitted

    def test_clear_caches(self, micro_scale):
        a = trace_for("ross", micro_scale)
        clear_caches()
        b = trace_for("ross", micro_scale)
        assert a is not b
