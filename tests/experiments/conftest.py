"""Micro experiment scale shared by driver tests: small enough to run
every driver in the unit-test suite, large enough to exercise the full
pipeline."""

import pytest

from repro.experiments.config import ExperimentScale


@pytest.fixture(scope="session")
def micro_scale() -> ExperimentScale:
    return ExperimentScale(
        name="micro-test",
        trace_scale=0.02,
        project_scale=0.01,
        omniscient_samples=3,
        sampled_projects=20,
        seed=99,
    )
