"""Micro experiment scale shared by driver tests: small enough to run
every driver in the unit-test suite, large enough to exercise the full
pipeline.  ``micro_ctx`` is the session-wide RunContext so the ~25
driver tests share simulation runs through one store, the way the
report generator does."""

import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.context import RunContext


@pytest.fixture(scope="session")
def micro_scale() -> ExperimentScale:
    return ExperimentScale(
        name="micro-test",
        trace_scale=0.02,
        project_scale=0.01,
        omniscient_samples=3,
        sampled_projects=20,
        seed=99,
    )


@pytest.fixture(scope="session")
def micro_ctx(micro_scale) -> RunContext:
    return RunContext(scale=micro_scale)
