"""Tests for experiment scaling configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import (
    SCALE_ENV_VAR,
    SCALES,
    ExperimentScale,
    current_scale,
)


class TestScales:
    def test_presets_exist(self):
        assert {"quick", "default", "paper"} <= set(SCALES)

    def test_paper_is_full_scale(self):
        paper = SCALES["paper"]
        assert paper.trace_scale == 1.0
        assert paper.project_scale == 1.0
        assert paper.omniscient_samples == 20
        assert paper.sampled_projects == 500

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentScale("bad", 0.0, 0.1, 1, 1)
        with pytest.raises(ConfigurationError):
            ExperimentScale("bad", 0.1, 2.0, 1, 1)
        with pytest.raises(ConfigurationError):
            ExperimentScale("bad", 0.1, 0.1, 0, 1)


class TestCurrentScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(SCALE_ENV_VAR, raising=False)
        assert current_scale().name == "default"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "quick")
        assert current_scale().name == "quick"

    def test_unknown_env(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "galactic")
        with pytest.raises(ConfigurationError):
            current_scale()
