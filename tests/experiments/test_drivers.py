"""End-to-end tests of every experiment driver at micro scale.

Each driver must produce a well-formed TableResult whose machine-
readable data satisfies the paper's *shape* claims that survive micro
scale (orderings and monotonicities; absolute values are checked at
larger scale in the benchmark harness, not here).
"""

import math

import pytest

from repro.experiments import (
    ablation_caps,
    ablation_efficiency,
    ablation_estimates,
    ablation_load,
    ablation_predictor,
    ablation_preemption,
    ablation_width,
    cascade_analysis,
    fault_ablation,
    fig2,
    fig3,
    fig4,
    fig4_outages,
    fig5,
    fig6,
    fit_theory,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8_limited,
    table8_ross,
)

ALL_DRIVERS = [
    table1, table2, table3, table4, table5, table6, table7,
    table8_ross, table8_limited, fig2, fig3, fig4, fig4_outages,
    fig5, fig6,
    fit_theory, ablation_caps, ablation_efficiency, ablation_estimates,
    ablation_load, ablation_predictor, ablation_preemption,
    ablation_width, cascade_analysis, fault_ablation,
]


@pytest.mark.parametrize(
    "driver", ALL_DRIVERS, ids=lambda d: d.__name__.rsplit(".", 1)[-1]
)
def test_driver_produces_wellformed_table(driver, micro_ctx):
    result = driver.run(micro_ctx)
    assert result.exp_id
    assert result.title
    assert result.headers
    assert result.rows
    for row in result.rows:
        assert len(row) == len(result.headers)
    rendered = result.render()
    assert result.headers[0] in rendered


class TestShapeClaims:
    def test_table1_machines_configured(self, micro_ctx):
        data = table1.run(micro_ctx).data
        assert data["blue_mountain"]["cpus"] == 4662
        assert data["blue_pacific"]["measured_utilization"] > 0.3
        # Offered load is calibrated to the paper's target exactly.
        for m in ("ross", "blue_mountain", "blue_pacific"):
            assert data[m]["offered_utilization"] == pytest.approx(
                data[m]["paper_utilization"], abs=0.05
            )

    def test_table2_makespan_grows_with_size(self, micro_ctx):
        points = table2.run(micro_ctx).data["points"]
        for machine, pts in points.items():
            by_width = {}
            for p in pts:
                by_width.setdefault(p["cpus_per_job"], []).append(
                    (p["peta_cycles"], p["mean_makespan_s"])
                )
            for series in by_width.values():
                series.sort()
                sizes = [s for s, _ in series]
                spans = [m for _, m in series]
                assert spans == sorted(spans), (machine, series)

    def test_table3_breakage_finite_and_ordered(self, micro_ctx):
        data = table3.run(micro_ctx).data
        # Blue Pacific has the worst theoretical breakage of the three
        # (its free pool is the smallest multiple of 32).
        theory = data["theory_paper_u"]
        assert theory["blue_pacific"] > theory["ross"] > theory[
            "blue_mountain"
        ]
        for ratio in data["actual"].values():
            assert math.isfinite(ratio) and ratio > 0.5

    def test_fit_theory_positive_slope(self, micro_ctx):
        fit = fit_theory.run(micro_ctx).data["fit"]
        assert fit.slope > 0.5

    def test_table6_utilization_gain(self, micro_ctx):
        cols = table6.run(micro_ctx).data["columns"]
        labels = list(cols)
        baseline = cols[labels[0]]
        boosted = cols[labels[1]]
        assert boosted["overall_utilization"] > (
            baseline["overall_utilization"] + 0.1
        )
        assert boosted["native_jobs"] == baseline["native_jobs"]

    def test_table8_limited_monotone_caps(self, micro_ctx):
        cols = table8_limited.run(micro_ctx).data["columns"]
        jobs = [
            cols[label]["interstitial_jobs"]
            for label in ("util < 90%", "util < 95%", "util < 98%")
        ]
        assert jobs == sorted(jobs)
        assert jobs[-1] <= cols["uncapped"]["interstitial_jobs"]

    def test_fig4_interstitial_flattens_utilization(self, micro_ctx):
        data = fig4.run(micro_ctx).data
        import numpy as np

        without = np.array(data["without interstitial"]["utilization"])
        with_i = np.array(data["with interstitial"]["utilization"])
        assert with_i.mean() > without.mean()
        assert with_i.std() < without.std()

    def test_fig5_histograms_normalized(self, micro_ctx):
        data = fig5.run(micro_ctx).data
        for hist in data.values():
            assert sum(hist) == pytest.approx(1.0)

    def test_fig5_interstitial_shifts_mass_right(self, micro_ctx):
        data = fig5.run(micro_ctx).data
        labels = list(data)
        baseline_first_bin = data[labels[0]][0]
        for label in labels[1:]:
            assert data[label][0] <= baseline_first_bin + 1e-9

    def test_ablation_width_theory_monotone(self, micro_ctx):
        data = ablation_width.run(micro_ctx).data
        theories = [v["theory_breakage"] for v in data.values()]
        finite = [t for t in theories if math.isfinite(t)]
        assert finite == sorted(finite)

    def test_ablation_preemption_waste_counted(self, micro_ctx):
        data = ablation_preemption.run(micro_ctx).data
        pre = data["preemptible"]
        assert pre["wasted_cpu_h"] >= 0.0
        assert pre["n_preempted"] >= 0

    def test_fault_ablation_failures_scale_with_rate(self, micro_ctx):
        data = fault_ablation.run(micro_ctx).data
        assert data["no faults"]["n_failures"] == 0
        assert data["no faults"]["dead_lettered"] == 0
        counts = [
            data[label]["n_failures"]
            for label in (
                "MTBF 90 d/node", "MTBF 30 d/node", "MTBF 10 d/node"
            )
        ]
        assert counts == sorted(counts)
        assert counts[-1] > counts[0] > 0
        worst = data["MTBF 10 d/node"]
        assert worst["killed_interstitial"] > 0
        assert worst["overall_utilization"] < data["no faults"][
            "overall_utilization"
        ]
