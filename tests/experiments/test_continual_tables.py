"""Tests for the shared continual-table builder."""

import pytest

from repro.experiments.continual_tables import (
    CONTINUAL_CPUS,
    CONTINUAL_RUNTIMES_1GHZ,
    build,
    column_stats,
)
from repro.sim.results import SimResult

from tests.conftest import make_job


class TestColumnStats:
    def test_counts_and_utilization(self, tiny_machine):
        native = make_job(cpus=8, runtime=100.0)
        native.start_time = 0.0
        native.finish_time = 100.0
        result = SimResult(
            machine=tiny_machine,
            finished=[native],
            end_time=200.0,
            horizon=200.0,
        )
        stats = column_stats(result)
        assert stats["native_jobs"] == 1
        assert stats["interstitial_jobs"] == 0
        assert stats["overall_utilization"] == pytest.approx(0.5)
        assert stats["median_wait_all_s"] == 0.0

    def test_largest_population_nonempty(self, tiny_machine):
        jobs = []
        for i in range(20):
            job = make_job(cpus=1 + i % 4, runtime=100.0, submit=0.0)
            job.start_time = float(i)
            job.finish_time = job.start_time + 100.0
            jobs.append(job)
        result = SimResult(
            machine=tiny_machine,
            finished=jobs,
            end_time=300.0,
            horizon=300.0,
        )
        stats = column_stats(result)
        assert stats["median_wait_largest_s"] >= 0.0


class TestBuild:
    def test_standard_shape(self, micro_ctx):
        result = build(
            "test_exp", "ross", micro_ctx, "Ross (test)"
        )
        assert result.exp_id == "test_exp"
        # Baseline + one column per continual runtime.
        assert len(result.headers) == 2 + len(CONTINUAL_RUNTIMES_1GHZ)
        assert len(result.data["columns"]) == 1 + len(
            CONTINUAL_RUNTIMES_1GHZ
        )
        labels = list(result.data["columns"])
        assert labels[0] == "Native Jobs"
        assert str(CONTINUAL_CPUS) in labels[1]

    def test_cap_variant(self, micro_ctx):
        capped = build(
            "test_capped", "ross", micro_ctx, "Ross (test)",
            max_utilization=0.9,
        )
        assert "90%" in capped.title
