"""Tests for the parallel/worker executor machinery.

The serving daemon reuses :func:`render_experiment` on a *long-lived*
``ProcessPoolExecutor``, so a worker raising mid-run must fail only
that submission — the pool has to stay usable for everything after it.
"""

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.experiments.config import SCALES
from repro.experiments.context import RunContext
from repro.experiments.executor import (
    render_experiment,
    run_experiments,
)


class TestRenderExperiment:
    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            render_experiment("not-a-table", SCALES["quick"])

    def test_renders_in_process(self):
        text = render_experiment("table1", SCALES["quick"])
        assert "Table 1" in text

    def test_matches_serial_driver(self):
        ctx = RunContext(scale=SCALES["quick"])
        serial = run_experiments(["table1"], ctx)["table1"]
        assert render_experiment("table1", SCALES["quick"]) == serial


class TestLongLivedPool:
    def test_worker_raise_does_not_wedge_pool(self):
        """A raising worker fails its own future; later submissions on
        the *same* pool still succeed (the serving contract)."""
        with ProcessPoolExecutor(max_workers=1) as pool:
            bad = pool.submit(
                render_experiment, "not-a-table", SCALES["quick"]
            )
            with pytest.raises(KeyError, match="unknown experiment"):
                bad.result(timeout=120)
            good = pool.submit(
                render_experiment, "table1", SCALES["quick"]
            )
            assert "Table 1" in good.result(timeout=120)

    def test_interleaved_failures_and_successes(self):
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(
                    render_experiment, name, SCALES["quick"]
                )
                for name in ("nope-a", "table1", "nope-b")
            ]
            with pytest.raises(KeyError):
                futures[0].result(timeout=120)
            assert "Table 1" in futures[1].result(timeout=120)
            with pytest.raises(KeyError):
                futures[2].result(timeout=120)


class TestRunExperiments:
    def test_unknown_names_rejected_before_pool(self):
        ctx = RunContext(scale=SCALES["quick"])
        with pytest.raises(KeyError, match="unknown experiments"):
            run_experiments(["table1", "bogus"], ctx, jobs=4)
