"""Cache-correctness properties of :class:`RunContext`.

The content-addressed store is only sound if (a) a cached hit is
bit-for-bit the same run a cold context would compute, (b) runs that
differ in any configuration field — down to a fault seed — never share
a store entry, and (c) knobs that cannot change results (invariant
checking) never fragment the cache.
"""


from repro.experiments.context import RunContext
from repro.faults import FaultModel, RetryPolicy
from repro.store import RunStore


def fingerprint(result):
    """Stable digest of a SimResult's observable behaviour."""
    return (
        sorted(
            (j.job_id, j.kind.name, j.start_time, j.finish_time)
            for j in result.finished
        ),
        sorted(
            (j.job_id, j.start_time, j.finish_time) for j in result.killed
        ),
        sorted(result.attempts.items()),
        result.n_failures,
        result.end_time,
        result.utilization(),
    )


FAULTS = FaultModel(mtbf=30_000.0, mttr=1_000.0, cpus_per_node=8, seed=5)
RETRY = RetryPolicy(max_attempts=3, base_delay=30.0)


class TestHitEqualsColdCompute:
    def test_native(self, micro_scale):
        warm = RunContext(scale=micro_scale)
        warm.native_result_for("ross")
        hit = warm.native_result_for("ross")
        cold = RunContext(scale=micro_scale).native_result_for("ross")
        assert fingerprint(hit) == fingerprint(cold)

    def test_native_faulted(self, micro_scale):
        warm = RunContext(scale=micro_scale)
        warm.native_result_for("ross", faults=FAULTS, retry=RETRY)
        hit = warm.native_result_for("ross", faults=FAULTS, retry=RETRY)
        cold = RunContext(scale=micro_scale).native_result_for(
            "ross", faults=FAULTS, retry=RETRY
        )
        assert fingerprint(hit) == fingerprint(cold)

    def test_continual(self, micro_scale):
        warm = RunContext(scale=micro_scale)
        warm.continual_result_for("ross", 32, 120.0)
        hit, hit_ctrl = warm.continual_result_for("ross", 32, 120.0)
        cold, cold_ctrl = RunContext(
            scale=micro_scale
        ).continual_result_for("ross", 32, 120.0)
        assert fingerprint(hit) == fingerprint(cold)
        assert hit_ctrl.n_submitted == cold_ctrl.n_submitted

    def test_disk_hit_equals_cold_compute(self, micro_scale, tmp_path):
        writer = RunContext(
            scale=micro_scale, store=RunStore(tmp_path / "runs")
        )
        written = writer.native_result_for("ross")
        reader = RunContext(
            scale=micro_scale, store=RunStore(tmp_path / "runs")
        )
        unpickled = reader.native_result_for("ross")
        assert reader.store.disk_hits == 1
        assert unpickled is not written
        assert fingerprint(unpickled) == fingerprint(written)


class TestKeySeparation:
    def test_fault_seeds_never_collide(self, micro_scale):
        ctx = RunContext(scale=micro_scale)
        a = ctx.native_result_for(
            "ross", faults=FaultModel(mtbf=30_000.0, mttr=1_000.0, seed=1)
        )
        b = ctx.native_result_for(
            "ross", faults=FaultModel(mtbf=30_000.0, mttr=1_000.0, seed=2)
        )
        assert a is not b
        assert ctx.store.misses == 3  # trace + two distinct runs

    def test_faulted_never_collides_with_healthy(self, micro_scale):
        ctx = RunContext(scale=micro_scale)
        healthy = ctx.native_result_for("ross")
        faulted = ctx.native_result_for("ross", faults=FAULTS, retry=RETRY)
        assert healthy is not faulted
        assert faulted.n_failures > 0 and healthy.n_failures == 0

    def test_continual_shapes_never_collide(self, micro_scale):
        ctx = RunContext(scale=micro_scale)
        a, _ = ctx.continual_result_for("ross", 32, 120.0)
        b, _ = ctx.continual_result_for("ross", 32, 600.0)
        c, _ = ctx.continual_result_for("ross", 16, 120.0)
        d, _ = ctx.continual_result_for(
            "ross", 32, 120.0, max_utilization=0.9
        )
        assert len({id(r) for r in (a, b, c, d)}) == 4

    def test_scales_never_collide(self, micro_scale):
        from dataclasses import replace

        store = RunStore()
        a = RunContext(scale=micro_scale, store=store).trace_for("ross")
        other = replace(micro_scale, name="micro-2", seed=100)
        b = RunContext(scale=other, store=store).trace_for("ross")
        assert a is not b


class TestInvariantFlagSharesEntries:
    def test_check_invariants_excluded_from_keys(self, micro_scale):
        # Validation never changes results, so a checked run and an
        # unchecked run of the same configuration share one entry.
        store = RunStore()
        plain = RunContext(scale=micro_scale, store=store)
        checked = RunContext(
            scale=micro_scale, store=store, check_invariants=True
        )
        a = checked.native_result_for("ross")
        assert plain.native_result_for("ross") is a
        assert store.hits == 1
