"""Tests for the experiment registry and report generator."""

import pytest

from repro.experiments.registry import EXPERIMENTS, REPORT_ORDER
from repro.experiments.report import generate_report, write_report


class TestRegistry:
    def test_report_order_covers_registry(self):
        assert set(REPORT_ORDER) == set(EXPERIMENTS)

    def test_no_duplicates_in_order(self):
        assert len(REPORT_ORDER) == len(set(REPORT_ORDER))

    def test_paper_artifacts_present(self):
        for name in (
            "table1", "table2", "table3", "table4", "table5",
            "table6", "table7", "table8-ross", "table8-limited",
            "fig2", "fig3", "fig4", "fig5", "fig6", "fit-theory",
        ):
            assert name in EXPERIMENTS

    def test_all_runners_callable(self):
        assert all(callable(fn) for fn in EXPERIMENTS.values())


class TestReport:
    def test_generate_subset(self, micro_scale):
        text = generate_report(
            scale=micro_scale, experiments=["table1"]
        )
        assert "# Reproduction report" in text
        assert "## table1" in text
        assert "Blue Mt." in text
        assert "micro-test" in text

    def test_unknown_experiment(self, micro_scale):
        with pytest.raises(KeyError):
            generate_report(scale=micro_scale, experiments=["table99"])

    def test_write_report(self, micro_scale, tmp_path):
        path = write_report(
            tmp_path / "report.md",
            scale=micro_scale,
            experiments=["table1", "table3"],
        )
        content = path.read_text(encoding="utf-8")
        assert "## table1" in content
        assert "## table3" in content
        # Sections appear in the requested order.
        assert content.index("## table1") < content.index("## table3")
