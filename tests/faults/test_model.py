"""Tests for the stochastic node failure/repair model."""

import pytest

from repro.errors import FaultError
from repro.faults import DISTRIBUTIONS, FaultModel, FaultSchedule, NodeFault


class TestNodeFault:
    def test_duration(self):
        assert NodeFault(10.0, 25.0, 4).duration == 15.0

    def test_rejects_empty_window(self):
        with pytest.raises(FaultError):
            NodeFault(10.0, 10.0, 4)

    def test_rejects_reversed_window(self):
        with pytest.raises(FaultError):
            NodeFault(10.0, 5.0, 4)

    def test_rejects_zero_cpus(self):
        with pytest.raises(FaultError):
            NodeFault(0.0, 1.0, 0)

    def test_rejects_non_finite_times(self):
        with pytest.raises(FaultError):
            NodeFault(0.0, float("inf"), 1)


class TestFaultSchedule:
    def test_empty(self):
        schedule = FaultSchedule()
        assert not schedule
        assert len(schedule) == 0
        assert schedule.max_concurrent_down() == 0
        assert schedule.down_at(5.0) == 0
        assert schedule.total_downtime_cpu_seconds() == 0.0

    def test_down_at_half_open(self):
        schedule = FaultSchedule([NodeFault(10.0, 20.0, 8)])
        assert schedule.down_at(9.999) == 0
        assert schedule.down_at(10.0) == 8
        assert schedule.down_at(19.999) == 8
        assert schedule.down_at(20.0) == 0

    def test_overlap_stacks(self):
        schedule = FaultSchedule(
            [NodeFault(0.0, 10.0, 4), NodeFault(5.0, 15.0, 6)]
        )
        assert schedule.down_at(7.0) == 10
        assert schedule.max_concurrent_down() == 10

    def test_transitions_balanced_and_sorted(self):
        schedule = FaultSchedule(
            [NodeFault(0.0, 10.0, 4), NodeFault(5.0, 15.0, 6)]
        )
        transitions = schedule.transitions()
        assert sum(d for _, d in transitions) == 0
        assert [t for t, _ in transitions] == sorted(
            t for t, _ in transitions
        )

    def test_total_downtime(self):
        schedule = FaultSchedule(
            [NodeFault(0.0, 10.0, 4), NodeFault(100.0, 110.0, 2)]
        )
        assert schedule.total_downtime_cpu_seconds() == 60.0

    def test_abutting_windows_do_not_stack(self):
        # Repair and the next failure at the same timestamp: the -4
        # sorts first, so the peak never double-counts the boundary.
        schedule = FaultSchedule(
            [NodeFault(0.0, 10.0, 4), NodeFault(10.0, 20.0, 4)]
        )
        assert schedule.max_concurrent_down() == 4
        assert schedule.down_at(10.0) == 4
        assert list(schedule.transitions()) == [
            (0.0, 4), (10.0, -4), (10.0, 4), (20.0, -4)
        ]

    def test_iteration_sorted(self):
        schedule = FaultSchedule(
            [NodeFault(50.0, 60.0, 1), NodeFault(0.0, 10.0, 1)]
        )
        assert [f.start for f in schedule] == [0.0, 50.0]


class TestFaultModelValidation:
    def test_rejects_bad_mtbf(self):
        with pytest.raises(FaultError):
            FaultModel(mtbf=0.0)
        with pytest.raises(FaultError):
            FaultModel(mtbf=float("nan"))

    def test_rejects_bad_mttr(self):
        with pytest.raises(FaultError):
            FaultModel(mtbf=100.0, mttr=-1.0)

    def test_rejects_bad_cpus_per_node(self):
        with pytest.raises(FaultError):
            FaultModel(mtbf=100.0, cpus_per_node=0)

    def test_rejects_unknown_distribution(self):
        with pytest.raises(FaultError):
            FaultModel(mtbf=100.0, distribution="lognormal")

    def test_rejects_bad_shape(self):
        with pytest.raises(FaultError):
            FaultModel(mtbf=100.0, distribution="weibull", shape=0.0)

    def test_distributions_registry(self):
        assert "exponential" in DISTRIBUTIONS
        assert "weibull" in DISTRIBUTIONS


class TestFaultModelSampling:
    def test_n_nodes_partitions_machine(self, small_machine):
        assert FaultModel(mtbf=1e4, cpus_per_node=16).n_nodes(
            small_machine
        ) == 4
        # A trailing partial node is ignored.
        assert FaultModel(mtbf=1e4, cpus_per_node=48).n_nodes(
            small_machine
        ) == 1

    def test_rejects_node_wider_than_machine(self, tiny_machine):
        with pytest.raises(FaultError):
            FaultModel(mtbf=1e4, cpus_per_node=16).n_nodes(tiny_machine)

    def test_rejects_bad_until(self, small_machine):
        with pytest.raises(FaultError):
            FaultModel(mtbf=1e4).sample(small_machine, -1.0)

    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    def test_sample_windows_wellformed(self, small_machine, distribution):
        model = FaultModel(
            mtbf=5_000.0,
            mttr=500.0,
            cpus_per_node=16,
            distribution=distribution,
            seed=3,
        )
        schedule = model.sample(small_machine, 100_000.0)
        assert schedule  # MTBF far below the horizon: failures happen
        for fault in schedule:
            assert 0.0 <= fault.start < 100_000.0
            assert fault.end > fault.start
            assert fault.cpus == 16
        # Nodes partition the machine, so concurrent failures can never
        # exceed its size.
        assert schedule.max_concurrent_down() <= small_machine.cpus

    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    def test_sample_deterministic_in_seed(self, small_machine, distribution):
        kwargs = dict(
            mtbf=5_000.0,
            mttr=500.0,
            cpus_per_node=8,
            distribution=distribution,
        )
        a = FaultModel(seed=11, **kwargs).sample(small_machine, 50_000.0)
        b = FaultModel(seed=11, **kwargs).sample(small_machine, 50_000.0)
        assert [(f.start, f.end, f.cpus) for f in a] == [
            (f.start, f.end, f.cpus) for f in b
        ]

    def test_sample_varies_with_seed(self, small_machine):
        kwargs = dict(mtbf=5_000.0, mttr=500.0, cpus_per_node=8)
        a = FaultModel(seed=1, **kwargs).sample(small_machine, 50_000.0)
        b = FaultModel(seed=2, **kwargs).sample(small_machine, 50_000.0)
        assert [(f.start, f.end) for f in a] != [(f.start, f.end) for f in b]

    def test_failure_count_near_renewal_rate(self, small_machine):
        model = FaultModel(mtbf=2_000.0, mttr=200.0, cpus_per_node=4, seed=0)
        until = 200_000.0
        schedule = model.sample(small_machine, until)
        expected = model.expected_failures(small_machine, until)
        assert expected == pytest.approx(
            small_machine.cpus / 4 * until / 2_200.0
        )
        # Renewal theory gives the mean; a 40% band is generous enough
        # to be seed-stable while still catching rate bugs.
        assert 0.6 * expected < len(schedule) < 1.4 * expected

    def test_weibull_mean_calibrated_to_mtbf(self, small_machine):
        """The Weibull scale is chosen so the mean TBF equals mtbf, so
        exponential and Weibull models produce similar failure counts."""
        kwargs = dict(mtbf=2_000.0, mttr=200.0, cpus_per_node=4, seed=0)
        exp = FaultModel(distribution="exponential", **kwargs)
        wei = FaultModel(distribution="weibull", shape=1.5, **kwargs)
        n_exp = len(exp.sample(small_machine, 200_000.0))
        n_wei = len(wei.sample(small_machine, 200_000.0))
        assert 0.7 * n_exp < n_wei < 1.3 * n_exp

    def test_victim_rng_independent_and_deterministic(self):
        model = FaultModel(mtbf=1e4, seed=42)
        a = model.victim_rng().integers(0, 2**31, size=8)
        b = model.victim_rng().integers(0, 2**31, size=8)
        assert (a == b).all()
        # Different seeds give different victim streams.
        c = FaultModel(mtbf=1e4, seed=43).victim_rng().integers(
            0, 2**31, size=8
        )
        assert (a != c).any()
