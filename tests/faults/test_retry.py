"""Tests for the retry/backoff policy."""

import pytest

from repro.errors import FaultError
from repro.faults import RetryPolicy


class TestValidation:
    def test_defaults_valid(self):
        RetryPolicy()

    def test_rejects_negative_attempts(self):
        with pytest.raises(FaultError):
            RetryPolicy(max_attempts=-1)

    def test_rejects_negative_base_delay(self):
        with pytest.raises(FaultError):
            RetryPolicy(base_delay=-1.0)

    def test_rejects_shrinking_backoff(self):
        with pytest.raises(FaultError):
            RetryPolicy(backoff_factor=0.5)

    def test_rejects_cap_below_base(self):
        with pytest.raises(FaultError):
            RetryPolicy(base_delay=100.0, max_delay=50.0)


class TestAllows:
    def test_bounded_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows(1)
        assert policy.allows(3)
        assert not policy.allows(4)

    def test_zero_attempts_always_dead_letters(self):
        assert not RetryPolicy(max_attempts=0).allows(1)

    def test_none_retries_forever(self):
        assert RetryPolicy(max_attempts=None).allows(10**9)


class TestDelay:
    def test_exponential_growth(self):
        policy = RetryPolicy(
            base_delay=10.0, backoff_factor=2.0, max_delay=1e9
        )
        assert policy.delay(1) == 10.0
        assert policy.delay(2) == 20.0
        assert policy.delay(4) == 80.0

    def test_capped(self):
        policy = RetryPolicy(
            base_delay=10.0, backoff_factor=2.0, max_delay=35.0
        )
        assert policy.delay(3) == 35.0
        assert policy.delay(10) == 35.0

    def test_flat_backoff(self):
        policy = RetryPolicy(base_delay=60.0, backoff_factor=1.0)
        assert policy.delay(5) == 60.0

    def test_rejects_non_positive_attempt(self):
        with pytest.raises(FaultError):
            RetryPolicy().delay(0)
