"""Tests for the consistent-hash ring.

The fleet routes without consensus *because* the ring is a pure
function of the member list — so these tests pin the properties that
make that safe: determinism across construction orders and across
processes (a subprocess recomputes the same assignment digest), and
stability under membership change (add moves only the keys the new
replica takes, ≈K/N of them; remove moves only the removed replica's
keys, each to the owner it would have had anyway).
"""

import hashlib
import subprocess
import sys

import pytest

from repro.errors import ConfigurationError
from repro.service.ring import DEFAULT_VNODES, HashRing, _point


def _keys(n):
    """n content-address-shaped keys (sha256 hex of small ints)."""
    return [
        hashlib.sha256(str(i).encode()).hexdigest() for i in range(n)
    ]


class TestBasics:
    def test_empty_ring_owns_nothing(self):
        ring = HashRing()
        assert ring.owner("abc") is None
        assert ring.owners("abc", 2) == []
        assert len(ring) == 0

    def test_single_replica_owns_everything(self):
        ring = HashRing(["r0"])
        assert all(ring.owner(k) == "r0" for k in _keys(50))

    def test_membership_api(self):
        ring = HashRing(["r0", "r1"])
        assert "r0" in ring and "r2" not in ring
        assert ring.replicas == ["r0", "r1"]
        ring.add("r2")
        assert len(ring) == 3
        ring.remove("r2")
        ring.remove("r2")  # idempotent
        assert len(ring) == 2

    def test_add_is_idempotent(self):
        ring = HashRing(["r0"])
        before = len(ring._points)
        ring.add("r0")
        assert len(ring._points) == before

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            HashRing(vnodes=0)
        with pytest.raises(ConfigurationError):
            HashRing([""])

    def test_owners_distinct_and_ordered(self):
        ring = HashRing(["r0", "r1", "r2"])
        for key in _keys(20):
            owners = ring.owners(key, 2)
            assert len(owners) == 2
            assert len(set(owners)) == 2
            assert owners[0] == ring.owner(key)
        assert len(ring.owners("k", 5)) == 3  # capped at membership


class TestDeterminism:
    def test_insertion_order_irrelevant(self):
        keys = _keys(200)
        forward = HashRing(["r0", "r1", "r2", "r3"])
        backward = HashRing(["r3", "r2", "r1", "r0"])
        assert [forward.owner(k) for k in keys] == [
            backward.owner(k) for k in keys
        ]

    def test_assignment_digest_stable(self):
        keys = _keys(100)
        a = HashRing(["r0", "r1", "r2"]).assignment_digest(keys)
        b = HashRing(["r2", "r0", "r1"]).assignment_digest(keys)
        assert a == b

    def test_pinned_routing_digest(self):
        """Byte-stable routed-key -> owner mapping under a pinned
        member list and key set.  This constant changing means every
        deployed fleet would disagree with its former self — never
        update it casually."""
        digest = HashRing(["r0", "r1", "r2"]).assignment_digest(
            _keys(64)
        )
        assert digest == (
            "9da6e8b932836670fbf000385c56e5487d3df79fa2efc18606"
            "3e11973a8f4417"
        )

    def test_cross_process_determinism(self):
        """A fresh interpreter (fresh PYTHONHASHSEED) computes the
        identical assignment digest — routing never depends on
        process identity."""
        keys = _keys(64)
        local = HashRing(["r0", "r1", "r2"]).assignment_digest(keys)
        script = (
            "import hashlib\n"
            "from repro.service.ring import HashRing\n"
            "keys = [hashlib.sha256(str(i).encode()).hexdigest() "
            "for i in range(64)]\n"
            "print(HashRing(['r0','r1','r2'])"
            ".assignment_digest(keys))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == local


class TestStability:
    def test_add_moves_only_keys_to_new_replica(self):
        """Growing the fleet reassigns keys *only* to the newcomer:
        no key moves between surviving replicas, so their caches stay
        warm."""
        keys = _keys(1000)
        ring = HashRing(["r0", "r1", "r2"])
        before = {k: ring.owner(k) for k in keys}
        ring.add("r3")
        for key in keys:
            after = ring.owner(key)
            if after != before[key]:
                assert after == "r3"

    def test_add_moves_about_k_over_n(self):
        """The newcomer takes ≈K/N of the keys (its fair share), not
        ~all of them (the modulo-hash failure mode)."""
        keys = _keys(2000)
        ring = HashRing(["r0", "r1", "r2"])
        before = {k: ring.owner(k) for k in keys}
        ring.add("r3")
        moved = sum(ring.owner(k) != before[k] for k in keys)
        expected = len(keys) / 4
        assert 0.4 * expected < moved < 2.0 * expected

    def test_remove_is_exact_inverse_of_absence(self):
        """Removing r2 reassigns each of its keys to exactly the
        owner it would have had if r2 never existed — an exact
        property of the construction, no tolerance needed."""
        keys = _keys(1000)
        with_r2 = HashRing(["r0", "r1", "r2"])
        without_r2 = HashRing(["r0", "r1"])
        before = {k: with_r2.owner(k) for k in keys}
        with_r2.remove("r2")
        for key in keys:
            assert with_r2.owner(key) == without_r2.owner(key)
            if before[key] != "r2":
                assert with_r2.owner(key) == before[key]

    def test_ownership_roughly_balanced(self):
        """With DEFAULT_VNODES the max/mean ownership skew stays
        bounded — no replica silently becomes a hotspot."""
        keys = _keys(4000)
        ring = HashRing(["r0", "r1", "r2", "r3"])
        counts = {rid: 0 for rid in ring.replicas}
        for key in keys:
            counts[ring.owner(key)] += 1
        mean = len(keys) / len(counts)
        assert max(counts.values()) < 2.0 * mean
        assert min(counts.values()) > 0.35 * mean


class TestPointFunction:
    def test_point_is_64_bit(self):
        for label in ("a", "r0#0", "x" * 100):
            assert 0 <= _point(label) < 1 << 64

    def test_vnodes_constant(self):
        assert DEFAULT_VNODES == 64
        assert len(HashRing(["r0"])._points) == 64
