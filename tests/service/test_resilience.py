"""Tests for the resilience layer: the durable bulk journal, the
worker supervisor, and their integration into the daemon (replay,
settles, dead-lettering, drain racing)."""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor

import pytest

from repro.errors import DeadLetterError, ServiceError
from repro.experiments.config import SCALES
from repro.faults import RetryPolicy
from repro.obs import ServiceCounters
from repro.service import (
    BulkJournal,
    ServiceConfig,
    SimulationService,
    WorkerSupervisor,
)
from repro.service.requests import BULK, INTERACTIVE, SimRequest
from repro.service.resilience import COMPLETED, DEAD_LETTERED, FAILED
from repro.store import content_key

from tests.service.conftest import quick_worker, run_async

#: Tight retry budget so supervisor tests fail fast.
FAST_RETRY = RetryPolicy(
    max_attempts=2, base_delay=0.01, backoff_factor=1.0, max_delay=0.01
)


def _accept(journal, n=1):
    ids = []
    for i in range(n):
        ids.append(
            journal.record_accept(
                key=f"k{i}", experiment="table2", scale="quick", seed=i
            )
        )
    return ids


class TestBulkJournal:
    def test_accept_settle_recover_roundtrip(self, tmp_path):
        path = tmp_path / "wal" / "journal.jsonl"
        journal = BulkJournal(path)
        a, b, c = _accept(journal, 3)
        journal.record_settle(b, COMPLETED)
        journal.sync()
        journal.close()

        fresh = BulkJournal(path)
        entries = fresh.recover()
        assert [rec["id"] for rec in entries] == [a, c]
        assert fresh.open_count == 2
        assert fresh.torn_records == 0
        # New accepts continue the id sequence past the recovered max.
        assert fresh.record_accept(
            key="k9", experiment="table2", scale=None, seed=None
        ) == c + 1

    def test_settle_is_idempotent(self, tmp_path):
        journal = BulkJournal(tmp_path / "j.jsonl")
        (entry_id,) = _accept(journal)
        journal.record_settle(entry_id, COMPLETED)
        journal.record_settle(entry_id, FAILED)  # no-op
        journal.record_settle(999, COMPLETED)  # unknown: no-op
        journal.close()
        accepts, settles, torn = BulkJournal.read(tmp_path / "j.jsonl")
        assert len(accepts) == 1
        assert len(settles) == 1
        assert settles[0]["outcome"] == COMPLETED
        assert torn == 0

    def test_rejects_unknown_outcome(self, tmp_path):
        journal = BulkJournal(tmp_path / "j.jsonl")
        (entry_id,) = _accept(journal)
        with pytest.raises(ServiceError):
            journal.record_settle(entry_id, "exploded")

    def test_torn_final_record_truncated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = BulkJournal(path)
        _accept(journal, 2)
        journal.sync()
        journal.close()
        clean_size = path.stat().st_size
        # A crash mid-append leaves a partial record with no newline.
        with path.open("ab") as fh:
            fh.write(b'{"rec":"accept","id":3,"ke')

        fresh = BulkJournal(path)
        entries = fresh.recover()
        assert [rec["id"] for rec in entries] == [1, 2]
        assert fresh.torn_records == 1
        assert path.stat().st_size == clean_size
        # Appends after recovery start on a clean line boundary.
        new_id = fresh.record_accept(
            key="k9", experiment="table2", scale=None, seed=None
        )
        fresh.close()
        accepts, _settles, torn = BulkJournal.read(path)
        assert torn == 0
        assert [rec["id"] for rec in accepts] == [1, 2, new_id]

    def test_interior_corruption_skipped_not_truncated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = BulkJournal(path)
        _accept(journal, 1)
        journal.close()
        with path.open("ab") as fh:
            fh.write(b"\x00garbage line\n")
        journal = BulkJournal(path)
        _accept(journal, 0)
        with path.open("ab") as fh:
            fh.write(
                b'{"experiment":"table2","id":2,"key":"k2",'
                b'"rec":"accept","scale":null,"seed":null}\n'
            )

        fresh = BulkJournal(path)
        entries = fresh.recover()
        # Records after the corrupt line survive.
        assert [rec["id"] for rec in entries] == [1, 2]
        assert fresh.torn_records == 1

    def test_compaction_drops_settled_pairs(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = BulkJournal(path, compact_every=4)
        ids = _accept(journal, 6)
        for entry_id in ids[:4]:  # 4th settle triggers compaction
            journal.record_settle(entry_id, COMPLETED)
        journal.close()
        accepts, settles, torn = BulkJournal.read(path)
        assert [rec["id"] for rec in accepts] == ids[4:]
        assert settles == []
        assert torn == 0
        # The compacted log still recovers correctly.
        fresh = BulkJournal(path)
        assert [rec["id"] for rec in fresh.recover()] == ids[4:]

    def test_recover_missing_file_is_empty(self, tmp_path):
        journal = BulkJournal(tmp_path / "nope.jsonl")
        assert journal.recover() == []
        assert journal.torn_records == 0


class CrashNTimes:
    """A fake worker that raises BrokenExecutor for its first ``n``
    calls, then succeeds — the supervisor should retry through it."""

    def __init__(self, n):
        self.n = n
        self.calls = 0

    def __call__(self, *args):
        self.calls += 1
        if self.calls <= self.n:
            raise BrokenExecutor("worker process died")
        return "survived"


def make_supervisor(**kwargs):
    counters = ServiceCounters()
    kwargs.setdefault("retry", FAST_RETRY)
    supervisor = WorkerSupervisor(
        lambda n: ThreadPoolExecutor(max_workers=n),
        2,
        counters=counters,
        **kwargs,
    )
    return supervisor, counters


class TestWorkerSupervisor:
    def test_crash_is_retried_to_success(self):
        async def scenario():
            supervisor, counters = make_supervisor()
            await supervisor.start()
            try:
                worker = CrashNTimes(1)
                assert await supervisor.run(worker) == "survived"
            finally:
                await supervisor.stop()
            return supervisor, counters, worker

        supervisor, counters, worker = run_async(scenario())
        assert worker.calls == 2
        assert counters.retries == 1
        assert counters.worker_replacements == 1
        assert counters.dead_letters == 0
        assert supervisor.generation == 1

    def test_dead_letter_after_budget(self):
        async def scenario():
            supervisor, counters = make_supervisor()
            await supervisor.start()
            try:
                with pytest.raises(DeadLetterError):
                    await supervisor.run(CrashNTimes(99))
            finally:
                await supervisor.stop()
            return counters

        counters = run_async(scenario())
        # max_attempts=2 allows two retries: 3 attempts total.
        assert counters.retries == 2
        assert counters.dead_letters == 1
        assert counters.worker_replacements == 3

    def test_worker_exception_not_retried(self):
        def deterministic_failure(*args):
            raise ValueError("bad config")

        async def scenario():
            supervisor, counters = make_supervisor()
            await supervisor.start()
            try:
                with pytest.raises(ValueError):
                    await supervisor.run(deterministic_failure)
            finally:
                await supervisor.stop()
            return supervisor, counters

        supervisor, counters = run_async(scenario())
        assert counters.retries == 0
        assert supervisor.generation == 0

    def test_hung_worker_hits_deadline_and_is_replaced(self):
        hang = threading.Event()

        def hung_then_fast(*args):
            if not hang.is_set():
                hang.set()
                hang.wait(0)  # first call hangs...
                import time

                time.sleep(5.0)
                return "too late"
            return "fast"

        async def scenario():
            supervisor, counters = make_supervisor(request_timeout=0.2)
            await supervisor.start()
            try:
                result = await supervisor.run(hung_then_fast)
            finally:
                await supervisor.stop()
            return result, supervisor, counters

        result, supervisor, counters = run_async(scenario())
        assert result == "fast"
        assert counters.request_timeouts == 1
        assert counters.worker_replacements == 1
        assert supervisor.generation == 1

    def test_shutdown_pool_is_replaced(self):
        async def scenario():
            supervisor, counters = make_supervisor()
            await supervisor.start()
            try:
                # Break the pool behind the supervisor's back.
                supervisor._pool.shutdown(wait=True)
                return await supervisor.run(lambda *a: "ok"), supervisor
            finally:
                await supervisor.stop()

        result, supervisor = run_async(scenario())
        assert result == "ok"
        assert supervisor.generation == 1

    def test_heartbeat_replaces_dead_idle_pool(self):
        async def scenario():
            supervisor, counters = make_supervisor(
                heartbeat_interval=0.05
            )
            await supervisor.start()
            try:
                supervisor._pool.shutdown(wait=True)
                for _ in range(100):
                    if supervisor.generation:
                        break
                    await asyncio.sleep(0.02)
                return supervisor.generation, counters
            finally:
                await supervisor.stop()

        generation, counters = run_async(scenario())
        assert generation == 1
        assert counters.worker_replacements == 1

    def test_stopped_supervisor_refuses_work(self):
        async def scenario():
            supervisor, _counters = make_supervisor()
            await supervisor.start()
            await supervisor.stop()
            with pytest.raises(ServiceError):
                await supervisor.run(lambda *a: "x")

        run_async(scenario())

    def test_replace_reaps_processpool_style_workers(self):
        """ProcessPoolExecutor.shutdown() sets ``_processes`` to None;
        the reap in ``_replace`` must snapshot the procs *before*
        shutting down (regression: AttributeError on every replacement
        with the real process pool)."""

        class FakeProc:
            def __init__(self):
                self.killed = False

            def kill(self):
                self.killed = True

        created = []

        class ProcessPoolStyle(ThreadPoolExecutor):
            def __init__(self, max_workers):
                super().__init__(max_workers=max_workers)
                self._processes = {
                    i: FakeProc() for i in range(max_workers)
                }
                created.extend(self._processes.values())

            def shutdown(self, wait=True, *, cancel_futures=False):
                self._processes = None  # what the real pool does
                super().shutdown(wait, cancel_futures=cancel_futures)

        async def scenario():
            counters = ServiceCounters()
            supervisor = WorkerSupervisor(
                ProcessPoolStyle, 2, counters=counters, retry=FAST_RETRY
            )
            await supervisor.start()
            try:
                worker = CrashNTimes(1)
                assert await supervisor.run(worker) == "survived"
            finally:
                await supervisor.stop()
            return supervisor, counters

        supervisor, counters = run_async(scenario())
        assert supervisor.generation == 1
        assert counters.worker_replacements == 1
        # The first (replaced) pool's workers were reaped; the
        # replacement's were merely shut down.
        assert [proc.killed for proc in created] == (
            [True, True, False, False]
        )

    def test_worker_runtime_error_mentioning_shutdown_propagates(self):
        """A deterministic worker RuntimeError whose message happens
        to contain 'shutdown' must propagate unretried — only a
        submission-time RuntimeError (refused by a shut-down pool)
        counts as an infrastructure failure."""

        def flaky_teardown(*args):
            raise RuntimeError("simulation shutdown hook failed")

        async def scenario():
            supervisor, counters = make_supervisor()
            await supervisor.start()
            try:
                with pytest.raises(RuntimeError, match="shutdown hook"):
                    await supervisor.run(flaky_teardown)
            finally:
                await supervisor.stop()
            return supervisor, counters

        supervisor, counters = run_async(scenario())
        assert counters.retries == 0
        assert counters.worker_replacements == 0
        assert supervisor.generation == 0


def make_resilient_service(tmp_path, worker_fn=None, **overrides):
    config = ServiceConfig(
        workers=2,
        scale=SCALES["quick"],
        journal_path=str(tmp_path / "journal.jsonl"),
        retry=overrides.pop("retry", FAST_RETRY),
        **overrides,
    )
    return SimulationService(
        config,
        pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        worker_fn=worker_fn or quick_worker,
    )


class TestDaemonJournalIntegration:
    def test_bulk_requests_are_journaled_and_settled(self, tmp_path):
        async def scenario():
            service = make_resilient_service(tmp_path)
            await service.start()
            response = await service.submit(
                SimRequest(experiment="table2", priority=BULK)
            )
            await service.stop()
            return response

        response = run_async(scenario())
        assert response.status == 200
        accepts, settles, torn = BulkJournal.read(
            tmp_path / "journal.jsonl"
        )
        assert len(accepts) == 1
        assert [rec["outcome"] for rec in settles] == [COMPLETED]
        assert torn == 0

    def test_interactive_requests_not_journaled(self, tmp_path):
        async def scenario():
            service = make_resilient_service(tmp_path)
            await service.start()
            await service.submit(
                SimRequest(experiment="table2", priority=INTERACTIVE)
            )
            await service.stop()

        run_async(scenario())
        accepts, settles, _torn = BulkJournal.read(
            tmp_path / "journal.jsonl"
        )
        assert accepts == [] and settles == []

    def test_open_entries_replayed_on_start(self, tmp_path):
        # Simulate a crash: an accept with no settle left in the WAL.
        journal = BulkJournal(tmp_path / "journal.jsonl")
        journal.record_accept(
            key="stale-key", experiment="table2", scale="quick", seed=None
        )
        journal.sync()
        journal.close()

        calls = []

        def counting_worker(name, scale, store_path, check_invariants):
            calls.append(name)
            return f"rendered {name}"

        async def scenario():
            service = make_resilient_service(
                tmp_path, worker_fn=counting_worker
            )
            await service.start()
            replayed = service.replayed
            await service.drain()  # waits for replay tasks
            snapshot = service.metrics_snapshot()
            await service.stop()
            return replayed, snapshot

        replayed, snapshot = run_async(scenario())
        assert replayed == 1
        assert calls == ["table2"]
        assert snapshot["resilience"]["replayed_on_start"] == 1
        assert snapshot["resilience"]["journal_open"] == 0
        _accepts, settles, _torn = BulkJournal.read(
            tmp_path / "journal.jsonl"
        )
        assert [rec["outcome"] for rec in settles] == [COMPLETED]

    def test_replay_of_invalid_entry_settles_failed(self, tmp_path):
        journal = BulkJournal(tmp_path / "journal.jsonl")
        journal.record_accept(
            key="k", experiment="no-such-experiment", scale=None, seed=None
        )
        journal.sync()
        journal.close()

        async def scenario():
            service = make_resilient_service(tmp_path)
            await service.start()
            await service.stop()

        run_async(scenario())
        _accepts, settles, _torn = BulkJournal.read(
            tmp_path / "journal.jsonl"
        )
        assert [rec["outcome"] for rec in settles] == [FAILED]

    def test_torn_tail_reported_and_dropped_on_start(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = BulkJournal(path)
        journal.record_accept(
            key="k", experiment="table2", scale="quick", seed=None
        )
        journal.sync()
        journal.close()
        with path.open("ab") as fh:
            fh.write(b'{"rec":"accept","id":2')  # torn mid-append

        async def scenario():
            service = make_resilient_service(tmp_path)
            await service.start()
            replayed = service.replayed
            torn = service.journal.torn_records
            await service.stop()
            return replayed, torn

        replayed, torn = run_async(scenario())
        assert replayed == 1  # the durable accept replays
        assert torn == 1  # the torn one is dropped, not resurrected

    def test_dead_letter_surfaces_in_response_and_journal(self, tmp_path):
        def always_crashing(*args):
            raise BrokenExecutor("worker killed")

        async def scenario():
            service = make_resilient_service(
                tmp_path, worker_fn=always_crashing
            )
            await service.start()
            response = await service.submit(
                SimRequest(experiment="table2", priority=BULK)
            )
            snapshot = service.metrics_snapshot()
            await service.stop()
            return response, snapshot

        response, snapshot = run_async(scenario())
        assert response.status == 500
        assert response.payload["dead_lettered"] is True
        assert snapshot["counters"]["dead_letters"] == 1
        assert snapshot["counters"]["retries"] == 2
        _accepts, settles, _torn = BulkJournal.read(
            tmp_path / "journal.jsonl"
        )
        assert [rec["outcome"] for rec in settles] == [DEAD_LETTERED]


class TestDrainRacesInflight:
    def test_drain_waits_for_inflight_interactive(self, gated):
        """A SIGTERM drain that races an in-flight interactive request
        must let it finish (200) while refusing new arrivals (503)."""
        from tests.service.conftest import make_service

        async def scenario():
            service = make_service(worker_fn=gated)
            await service.start()
            inflight = asyncio.ensure_future(
                service.submit(
                    SimRequest(experiment="table2", priority=INTERACTIVE)
                )
            )
            while service._busy == 0:  # dispatched, now blocked in-pool
                await asyncio.sleep(0.01)
            drain = asyncio.ensure_future(service.drain())
            await asyncio.sleep(0.05)
            assert not drain.done()  # drain must wait, not bail
            late = await service.submit(
                SimRequest(experiment="table2", priority=INTERACTIVE)
            )
            gated.release()
            first = await inflight
            await drain
            await service.stop()
            return first, late

        first, late = run_async(scenario())
        assert first.status == 200
        assert late.status == 503
        assert late.payload["status"] == "draining"

    def test_drain_completes_queued_bulk(self, gated):
        from tests.service.conftest import make_service

        async def scenario():
            service = make_service(workers=1, bulk_cap=1.0, worker_fn=gated)
            await service.start()
            first = asyncio.ensure_future(
                service.submit(
                    SimRequest(experiment="table2", priority=BULK)
                )
            )
            second = asyncio.ensure_future(
                service.submit(
                    SimRequest(experiment="table4", priority=BULK)
                )
            )
            while service._busy == 0:
                await asyncio.sleep(0.01)
            drain = asyncio.ensure_future(service.drain())
            await asyncio.sleep(0.05)
            gated.release()
            responses = await asyncio.gather(first, second)
            await drain
            await service.stop()
            return responses

        responses = run_async(scenario())
        assert [r.status for r in responses] == [200, 200]


class TestCoalescingJournalRaces:
    """The journal-accept fsync yields between the inflight check and
    the rest of ``submit`` — these pin the two races that opens."""

    def test_waiter_survives_completion_during_journal_fsync(
        self, tmp_path
    ):
        """The coalesced path must capture the in-flight future before
        the fsync await: the primary may complete (and pop its entry)
        during it (regression: KeyError crash + permanently open
        journal entry)."""

        async def scenario():
            service = make_resilient_service(tmp_path)
            await service.start()
            request = SimRequest(experiment="table2", priority=BULK)
            scale = request.resolve_scale(service._scale)
            key = content_key(request.run_payload(scale))
            future = asyncio.get_running_loop().create_future()
            service._inflight[key] = future
            task = asyncio.ensure_future(service.submit(request))
            await asyncio.sleep(0)  # task is parked on the fsync await
            # The primary finishes while the waiter's accept fsyncs.
            service._inflight.pop(key)
            future.set_result(("ok", "rendered elsewhere"))
            response = await task
            await service.stop()
            return response

        response = run_async(scenario())
        assert response.status == 200
        assert response.payload["coalesced"] is True
        _accepts, settles, _torn = BulkJournal.read(
            tmp_path / "journal.jsonl"
        )
        assert [rec["outcome"] for rec in settles] == [COMPLETED]

    def test_same_tick_submits_compute_once(self, tmp_path):
        """Two bulk submits for the same key in one event-loop tick
        both pass the inflight check before either registers; the
        post-fsync re-check must coalesce the loser instead of
        computing twice."""
        calls = []

        def counting_worker(name, scale, store_path, check_invariants):
            calls.append(name)
            return quick_worker(name, scale, store_path, check_invariants)

        async def scenario():
            service = make_resilient_service(
                tmp_path, worker_fn=counting_worker
            )
            await service.start()
            responses = await asyncio.gather(
                service.submit(
                    SimRequest(experiment="table2", priority=BULK)
                ),
                service.submit(
                    SimRequest(experiment="table2", priority=BULK)
                ),
            )
            snapshot = service.metrics_snapshot()
            await service.stop()
            return responses, snapshot

        responses, snapshot = run_async(scenario())
        assert [r.status for r in responses] == [200, 200]
        assert len(calls) == 1
        assert snapshot["counters"]["computes"] == 1
        assert snapshot["counters"]["coalesced_hits"] == 1
        assert sorted(r.payload["coalesced"] for r in responses) == (
            [False, True]
        )
        _accepts, settles, _torn = BulkJournal.read(
            tmp_path / "journal.jsonl"
        )
        assert [rec["outcome"] for rec in settles] == (
            [COMPLETED, COMPLETED]
        )
