"""Tests for service metrics: latency reservoirs and counters."""

import pytest

from repro.obs import ServiceCounters
from repro.service import LatencyStats, ServiceMetrics, percentile


class TestPercentile:
    def test_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(samples, 50) == 3.0
        assert percentile(samples, 99) == 5.0
        assert percentile(samples, 20) == 1.0

    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestLatencyStats:
    def test_records_and_snapshots(self):
        stats = LatencyStats()
        for value in (0.1, 0.2, 0.3):
            stats.record(value)
        snap = stats.snapshot()
        assert snap["count"] == 3
        assert snap["mean_s"] == pytest.approx(0.2)
        assert snap["p50_s"] == pytest.approx(0.2)
        assert snap["p99_s"] == pytest.approx(0.3)

    def test_reservoir_bounded_but_count_total(self):
        stats = LatencyStats(maxlen=10)
        for i in range(100):
            stats.record(float(i))
        assert stats.count == 100
        # Percentiles come from the newest 10 samples only.
        assert stats.quantile(50) >= 90.0

    def test_empty_snapshot(self):
        snap = LatencyStats().snapshot()
        assert snap == {
            "count": 0, "mean_s": 0.0, "p50_s": 0.0, "p99_s": 0.0
        }


class TestServiceCounters:
    def test_merge_is_additive(self):
        a = ServiceCounters(requests=2, cache_hits=1)
        b = ServiceCounters(requests=3, computes=4)
        a.merge(b)
        assert a.requests == 5
        assert a.cache_hits == 1
        assert a.computes == 4

    def test_bool_and_dict(self):
        assert not ServiceCounters()
        c = ServiceCounters(admits=1)
        assert c
        assert c.as_dict()["admits"] == 1
        assert list(c.as_dict())[0] == "requests"

    def test_fleet_fields_present_and_zeroed(self):
        """The /metrics surface the fleet aggregation sums over —
        clients key on these names, so their presence is contract."""
        counters = ServiceCounters().as_dict()
        for name in (
            "forwards",
            "peer_hits",
            "peer_misses",
            "peer_replications",
            "steals",
            "steals_granted",
            "steal_requeues",
        ):
            assert counters[name] == 0

    def test_fleet_fields_merge_additively(self):
        a = ServiceCounters(forwards=2, steals=1, peer_hits=3)
        b = ServiceCounters(
            forwards=1, steals_granted=4, steal_requeues=2
        )
        a.merge(b)
        assert a.forwards == 3
        assert a.steals == 1
        assert a.peer_hits == 3
        assert a.steals_granted == 4
        assert a.steal_requeues == 2


class TestServiceMetrics:
    def test_snapshot_shape(self):
        metrics = ServiceMetrics()
        metrics.record_latency("interactive", 0.5)
        metrics.counters.requests += 1
        snap = metrics.snapshot()
        assert snap["counters"]["requests"] == 1
        assert snap["latency"]["interactive"]["count"] == 1
        assert snap["latency"]["bulk"]["count"] == 0
