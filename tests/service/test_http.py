"""Tests for the HTTP front end and the two clients.

A real ``asyncio`` server is booted on an ephemeral port with the
thread-pool stub worker behind it, and driven through
:class:`ServiceClient` (plus one raw socket for wire-level cases).
"""

import asyncio
import json
import socket
import threading

import pytest

from repro.errors import ServiceError
from repro.experiments.config import SCALES
from repro.service import (
    HttpFrontend,
    InProcessClient,
    ServiceClient,
    ServiceConfig,
)
from tests.service.conftest import make_service, quick_worker


class ServedFixture:
    """A service + HTTP front end running on a background loop."""

    def __init__(self, **service_kwargs):
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )
        self.thread.start()
        self.service = make_service(**service_kwargs)
        self.call(self.service.start())
        self.frontend = HttpFrontend(self.service, port=0)
        self.call(self.frontend.start())
        self.client = ServiceClient(port=self.frontend.port)

    def call(self, coro, timeout=30.0):
        return asyncio.run_coroutine_threadsafe(
            coro, self.loop
        ).result(timeout)

    def close(self):
        self.call(self.frontend.stop())
        self.call(self.service.stop())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)
        self.loop.close()

    def raw(self, payload: bytes) -> bytes:
        """Send raw bytes, return the full response."""
        with socket.create_connection(
            ("127.0.0.1", self.frontend.port), timeout=10.0
        ) as sock:
            sock.sendall(payload)
            sock.shutdown(socket.SHUT_WR)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    return b"".join(chunks)
                chunks.append(chunk)


@pytest.fixture
def served():
    fixture = ServedFixture()
    yield fixture
    fixture.close()


class TestEndpoints:
    def test_healthz(self, served):
        reply = served.client.healthz()
        assert reply.ok
        assert reply.payload["status"] == "ok"
        assert reply.payload["workers"] == 2
        assert reply.payload["bulk_cap"] == pytest.approx(0.9)
        assert reply.payload["version"]
        assert reply.payload["uptime_s"] >= 0.0

    def test_run_and_cache(self, served):
        first = served.client.run("table1", seed=11)
        again = served.client.run("table1", seed=11)
        assert first.ok and again.ok
        assert first.result == "rendered table1 seed=11"
        assert not first.cached
        assert again.cached
        metrics = served.client.metrics()
        assert metrics.payload["counters"]["computes"] == 1
        assert metrics.payload["counters"]["cache_hits"] == 1

    def test_bulk_priority_accepted(self, served):
        reply = served.client.run("table1", seed=12, priority="bulk")
        assert reply.ok
        assert reply.payload["priority"] == "bulk"
        metrics = served.client.metrics()
        assert metrics.payload["counters"]["bulk_requests"] == 1

    def test_metrics_shape(self, served):
        served.client.run("table1", seed=13)
        snap = served.client.metrics().payload
        assert "counters" in snap and "latency" in snap
        assert snap["store"]["entries"] == 1
        assert snap["latency"]["interactive"]["count"] == 1

    def test_validation_errors(self, served):
        assert served.client.run("nope").status == 400
        assert served.client.run(
            "table1", scale="galactic"
        ).status == 400

    def test_draining_run_rejected(self, served):
        served.call(served.service.drain())
        reply = served.client.run("table1", seed=14)
        assert reply.status == 503
        assert served.client.healthz().payload["status"] == "draining"


class TestWireLevel:
    def test_unknown_path_404(self, served):
        raw = served.raw(b"GET /nope HTTP/1.1\r\n\r\n")
        assert raw.startswith(b"HTTP/1.1 404")

    def test_method_not_allowed(self, served):
        raw = served.raw(b"POST /healthz HTTP/1.1\r\n\r\n")
        assert raw.startswith(b"HTTP/1.1 405")
        raw = served.raw(b"GET /run HTTP/1.1\r\n\r\n")
        assert raw.startswith(b"HTTP/1.1 405")

    def test_malformed_request_line(self, served):
        raw = served.raw(b"garbage\r\n\r\n")
        assert raw.startswith(b"HTTP/1.1 400")

    def test_bad_json_body(self, served):
        body = b"{not json"
        raw = served.raw(
            b"POST /run HTTP/1.1\r\nContent-Length: "
            + str(len(body)).encode() + b"\r\n\r\n" + body
        )
        assert raw.startswith(b"HTTP/1.1 400")

    def test_unknown_request_field(self, served):
        body = json.dumps(
            {"experiment": "table1", "prioritty": "bulk"}
        ).encode()
        raw = served.raw(
            b"POST /run HTTP/1.1\r\nContent-Length: "
            + str(len(body)).encode() + b"\r\n\r\n" + body
        )
        assert raw.startswith(b"HTTP/1.1 400")
        assert b"prioritty" in raw

    def test_bad_content_length(self, served):
        raw = served.raw(
            b"POST /run HTTP/1.1\r\nContent-Length: banana\r\n\r\n"
        )
        assert raw.startswith(b"HTTP/1.1 400")

    def test_oversized_body_rejected(self, served):
        raw = served.raw(
            b"POST /run HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n"
        )
        assert raw.startswith(b"HTTP/1.1 413")

    def test_truncated_body(self, served):
        raw = served.raw(
            b"POST /run HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"
        )
        assert raw.startswith(b"HTTP/1.1 400")

    def test_http11_keeps_alive_and_declares_it(self, served):
        raw = served.raw(b"GET /healthz HTTP/1.1\r\n\r\n")
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"Content-Type: application/json" in head
        assert b"Connection: keep-alive" in head
        assert json.loads(body)["status"] == "ok"

    def test_connection_close_honored(self, served):
        raw = served.raw(
            b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        head, _, _ = raw.partition(b"\r\n\r\n")
        assert b"Connection: close" in head

    def test_http10_closes_by_default(self, served):
        raw = served.raw(b"GET /healthz HTTP/1.0\r\n\r\n")
        head, _, _ = raw.partition(b"\r\n\r\n")
        assert b"Connection: close" in head

    def test_two_requests_one_connection(self, served):
        """Keep-alive actually reuses the socket: two requests go in
        one connection and both answers come back on it."""
        with socket.create_connection(
            ("127.0.0.1", served.frontend.port), timeout=10.0
        ) as sock:
            message = b"GET /healthz HTTP/1.1\r\n\r\n"
            sock.sendall(message)
            first = _read_one_response(sock)
            sock.sendall(message)
            second = _read_one_response(sock)
        assert first.startswith(b"HTTP/1.1 200")
        assert second.startswith(b"HTTP/1.1 200")


class TestBackpressureHeaders:
    def test_retry_after_header_present(self):
        import time

        fixture = ServedFixture(workers=1, bulk_cap=1.0, max_queue=1)
        try:
            def slow(name, scale, store_path, check):
                time.sleep(0.6)
                return "slow"

            fixture.service._worker_fn = slow
            # Occupy the single worker, fill the one-slot queue, then
            # the next bulk arrival must bounce with Retry-After.
            results = []

            def bulk(seed):
                results.append(
                    fixture.client.run(
                        "table1", seed=seed, priority="bulk"
                    )
                )

            threads = []
            for seed in (1, 2):
                thread = threading.Thread(target=bulk, args=(seed,))
                thread.start()
                threads.append(thread)
                time.sleep(0.15)
            rejected = fixture.client.run(
                "table1", seed=3, priority="bulk"
            )
            for thread in threads:
                thread.join(timeout=10.0)
            assert rejected.status == 429
            assert rejected.retry_after >= 1.0
            assert sorted(r.status for r in results) == [200, 200]
        finally:
            fixture.close()


class TestClientKeepAlive:
    def test_persistent_connection_reused(self, served):
        """Sequential calls ride one socket: after the first call the
        client holds a connection, and the daemon sees exactly one
        accepted connection for all three."""
        for seed in (61, 62, 63):
            assert served.client.run("table1", seed=seed).ok
        assert getattr(served.client._local, "conn", None) is not None
        assert len(served.frontend._connections) == 1
        served.client.close()
        assert getattr(served.client._local, "conn", None) is None

    def test_keep_alive_false_closes_per_call(self, served):
        client = ServiceClient(
            port=served.frontend.port, keep_alive=False
        )
        assert client.healthz().ok
        assert getattr(client._local, "conn", None) is None

    def test_retry_once_after_daemon_restart(self, served):
        """Regression: a persistent connection severed by a daemon
        restart must not surface as an error — the client retries
        once on the reset and the resubmission is absorbed by the
        content-addressed cache."""
        first = served.client.run("table1", seed=71)
        assert first.ok and not first.cached
        # Restart the front end on the same port: every persistent
        # connection (including the client's) is closed.
        port = served.frontend.port
        served.call(served.frontend.stop())
        served.frontend = HttpFrontend(
            served.service, port=port
        )
        served.call(served.frontend.start())
        again = served.client.run("table1", seed=71)
        assert again.ok
        assert again.cached  # same computation, served from store

    def test_timeout_is_not_retried(self, served):
        """A slow server surfaces as a timeout, not a doubled wait."""
        import time

        gate = threading.Event()

        def stalled(name, scale, store_path, check):
            gate.wait(5.0)
            return "late"

        served.service._worker_fn = stalled
        client = ServiceClient(port=served.frontend.port, timeout=0.5)
        start = time.monotonic()
        with pytest.raises(TimeoutError):
            client.run("table1", seed=72)
        elapsed = time.monotonic() - start
        gate.set()
        assert elapsed < 2.0  # one timeout's worth, not two


class TestClientSurface:
    def test_run_many_preserves_order(self, served):
        payloads = [
            {"experiment": "table1", "seed": i} for i in (21, 22, 23)
        ]
        replies = served.client.run_many(payloads, max_workers=3)
        assert [r.payload["seed"] for r in replies] == [21, 22, 23]

    def test_wait_until_healthy_times_out_fast(self):
        client = ServiceClient(port=1, timeout=0.2)
        with pytest.raises(ServiceError, match="not healthy"):
            client.wait_until_healthy(timeout=0.3, interval=0.05)


class TestInProcessClient:
    def test_context_manager_roundtrip(self):
        config = ServiceConfig(workers=2, scale=SCALES["quick"])
        with InProcessClient(
            config,
            pool_factory=_thread_pool,
            worker_fn=quick_worker,
        ) as client:
            first = client.run("table1", seed=31)
            again = client.run("table1", seed=31)
            assert first.ok and not first.cached
            assert again.cached
            assert client.healthz().payload["status"] == "ok"
            snap = client.metrics().payload
            assert snap["counters"]["computes"] == 1

    def test_run_many_coalesces(self):
        config = ServiceConfig(workers=2, scale=SCALES["quick"])
        with InProcessClient(
            config,
            pool_factory=_thread_pool,
            worker_fn=quick_worker,
        ) as client:
            payloads = [
                {"experiment": "table1", "seed": 41} for _ in range(5)
            ]
            replies = client.run_many(payloads)
            assert all(r.ok for r in replies)
            counters = client.service.metrics.counters
            assert counters.computes == 1
            assert counters.coalesced_hits == 4


def _read_one_response(sock: socket.socket) -> bytes:
    """Read exactly one HTTP response off a keep-alive socket."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(65536)
        if not chunk:
            return data
        data += chunk
    head, _, rest = data.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    while len(rest) < length:
        chunk = sock.recv(65536)
        if not chunk:
            break
        rest += chunk
    return head + b"\r\n\r\n" + rest


def _thread_pool(n):
    from concurrent.futures import ThreadPoolExecutor

    return ThreadPoolExecutor(max_workers=n)
