#!/usr/bin/env python
"""Seeded chaos harness for the serving daemon's resilience layer.

Each *round* is driven by a :class:`ChaosPlan` sampled from the same
deterministic RNG machinery the simulation engine uses for fault
injection (:meth:`repro.faults.FaultModel.victim_rng`), so a seed
fully determines which havoc is wreaked:

* **worker kills** — chosen requests lose their worker mid-simulation
  (the pool raises ``BrokenExecutor``); the supervisor must replace
  the pool and retry them to success;
* **store corruption** — chosen response-cache entries are truncated
  or bit-flipped on disk between phases; the integrity layer must
  quarantine them and recompute;
* **lease-holder death** — a stale computation lease (its owner long
  dead) is planted in front of one request; the store must break it
  instead of deadlocking;
* **daemon SIGKILL** (subprocess rounds) — a real ``repro serve
  --journal`` daemon is killed between journal append and completion;
  the restarted daemon must replay the accepted backlog.  The round
  submits as two tenants, and recovery must preserve each accepted
  request's tenant attribution (journal v2 records carry the tenant).

Every round asserts the two resilience invariants:

1. **exactly-one terminal state** — every journaled accept has exactly
   one settle record;
2. **byte-identical results** — every product equals the fault-free
   baseline for the same configuration.

Run (fast, in-process rounds only)::

    PYTHONPATH=src python tests/service/chaos.py --seeds 10

Add ``--sigkill-seeds N`` for the full kill/restart recovery rounds
(each boots two real daemons; seconds per round).
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

REPO_SRC = Path(__file__).resolve().parents[2] / "src"
if str(REPO_SRC) not in sys.path:  # `python tests/service/chaos.py`
    sys.path.insert(0, str(REPO_SRC))

from repro.experiments.config import SCALES  # noqa: E402
from repro.faults import FaultModel, RetryPolicy  # noqa: E402
from repro.service import (  # noqa: E402
    BulkJournal,
    ServiceClient,
    ServiceConfig,
    SimulationService,
)
from repro.service.requests import BULK, SimRequest  # noqa: E402
from repro.service.resilience import COMPLETED  # noqa: E402
from repro.store import RunStore, content_key  # noqa: E402

#: The in-process round's request mix: (experiment, seed override).
JOBS: List[Tuple[str, int]] = [
    ("table2", 0), ("table2", 1), ("table2", 2), ("table2", 3),
    ("table1", 0), ("table1", 1), ("table1", 2), ("table1", 3),
]
JOB_INDEX = {job: i for i, job in enumerate(JOBS)}

#: Tight budgets so a round completes in milliseconds.
CHAOS_RETRY = RetryPolicy(
    max_attempts=3, base_delay=0.01, backoff_factor=1.0, max_delay=0.01
)
CHAOS_LEASE_TIMEOUT = 0.2


@dataclass(frozen=True)
class ChaosPlan:
    """One seed's worth of havoc, sampled deterministically."""

    seed: int
    #: Request indices whose first dispatch loses its worker.
    worker_kills: FrozenSet[int]
    #: Request indices whose cached entry is corrupted after phase 1.
    corruptions: FrozenSet[int]
    #: Subset of ``corruptions`` truncated instead of bit-flipped.
    truncations: FrozenSet[int]
    #: Request index that finds a dead owner's stale lease.
    stale_lease_victim: int
    #: Accepted requests before the daemon is SIGKILLed (subprocess).
    kill_after_accepts: int

    @classmethod
    def sample(cls, seed: int) -> "ChaosPlan":
        """Derive a plan from ``seed`` via the engine's fault-injection
        RNG — same stream discipline as simulated node failures."""
        rng = FaultModel(mtbf=3600.0, seed=seed).victim_rng()
        n = len(JOBS)
        kills = rng.choice(n, size=int(rng.integers(1, 4)), replace=False)
        corrupt = rng.choice(
            n, size=int(rng.integers(1, 4)), replace=False
        )
        truncations = frozenset(
            int(i) for i in corrupt if rng.random() < 0.5
        )
        return cls(
            seed=seed,
            worker_kills=frozenset(int(i) for i in kills),
            corruptions=frozenset(int(i) for i in corrupt),
            truncations=truncations,
            stale_lease_victim=int(rng.integers(0, n)),
            kill_after_accepts=1 + int(rng.integers(0, 3)),
        )


# ----------------------------------------------------------------------
# In-process rounds: stub workers, real journal/supervisor/store.
# ----------------------------------------------------------------------
def product_payload(name: str, seed: int) -> Dict[str, Any]:
    return {"kind": "chaos-product", "experiment": name, "seed": seed}


def fault_free_product(name: str, seed: int) -> str:
    """The baseline result: deterministic, worker-independent."""
    blob = f"chaos:{name}:{seed}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def service_run_key(name: str, seed: int) -> str:
    """The daemon's response-cache key for one job at quick scale."""
    request = SimRequest(experiment=name, seed=seed, priority=BULK)
    scale = request.resolve_scale(SCALES["quick"])
    return content_key(request.run_payload(scale))


class ChaosWorker:
    """Stub worker under the plan's thumb: the chosen requests lose
    their worker (``BrokenExecutor``) on first dispatch; every request
    computes its product through a disk :class:`RunStore` so the
    planted stale lease is actually contended."""

    def __init__(self, plan: ChaosPlan, store_dir: str) -> None:
        self.plan = plan
        self.store_dir = store_dir
        self._lock = threading.Lock()
        self._crashed: set = set()

    def __call__(self, name, scale, store_path, check_invariants) -> str:
        idx = JOB_INDEX[(name, scale.seed)]
        with self._lock:
            if idx in self.plan.worker_kills and idx not in self._crashed:
                self._crashed.add(idx)
                raise BrokenExecutor(f"chaos: killed worker of job {idx}")
        store = RunStore(
            self.store_dir,
            lease_timeout=CHAOS_LEASE_TIMEOUT,
            poll_interval=0.02,
        )
        return store.get_or_compute(
            product_payload(name, scale.seed),
            lambda: fault_free_product(name, scale.seed),
        )


def _corrupt_entries(plan: ChaosPlan, store_dir: Path) -> int:
    """Damage the planned response-cache entries on disk: truncate
    (torn write) or flip a payload byte (bit rot)."""
    damaged = 0
    for idx in sorted(plan.corruptions):
        name, seed = JOBS[idx]
        entry = store_dir / f"{service_run_key(name, seed)}.pkl"
        if not entry.is_file():
            continue
        data = bytearray(entry.read_bytes())
        if idx in plan.truncations:
            entry.write_bytes(bytes(data[: max(1, len(data) // 2)]))
        else:
            data[-1] ^= 0xFF
            entry.write_bytes(bytes(data))
        damaged += 1
    return damaged


def _assert_journal_invariant(journal_path: Path) -> Dict[str, int]:
    """Invariant 1: exactly one terminal record per accepted request."""
    accepts, settles, torn = BulkJournal.read(journal_path)
    settle_counts: Dict[int, int] = {}
    for rec in settles:
        settle_counts[rec["id"]] = settle_counts.get(rec["id"], 0) + 1
    for rec in accepts:
        count = settle_counts.get(rec["id"], 0)
        assert count == 1, (
            f"accept id={rec['id']} has {count} terminal records "
            f"(exactly one required)"
        )
    orphans = set(settle_counts) - {rec["id"] for rec in accepts}
    assert not orphans, f"settles without accepts: {sorted(orphans)}"
    return {
        "accepts": len(accepts),
        "settles": len(settles),
        "torn": torn,
    }


def run_inprocess(seed: int) -> Dict[str, Any]:
    """One seeded in-process chaos round; returns a summary dict.
    Raises ``AssertionError`` on any invariant violation."""
    plan = ChaosPlan.sample(seed)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        tmp_path = Path(tmp)
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        journal_path = tmp_path / "journal.jsonl"

        # Plant the dead lease holder in front of its victim.
        victim = JOBS[plan.stale_lease_victim]
        lease = store_dir / f"{content_key(product_payload(*victim))}.lock"
        lease.write_text("99999")
        stale = time.time() - 3600.0
        os.utime(lease, (stale, stale))

        worker = ChaosWorker(plan, str(store_dir))
        config = ServiceConfig(
            workers=2,
            scale=SCALES["quick"],
            store_path=str(store_dir),
            journal_path=str(journal_path),
            retry=CHAOS_RETRY,
            lease_timeout=CHAOS_LEASE_TIMEOUT,
        )
        service = SimulationService(
            config,
            pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
            worker_fn=worker,
        )

        async def round_trip() -> Dict[str, Any]:
            await service.start()
            requests = [
                SimRequest(experiment=name, seed=job_seed, priority=BULK)
                for name, job_seed in JOBS
            ]
            first = await asyncio.gather(
                *(service.submit(req) for req in requests)
            )
            # Phase 2: damage cached entries, drop the memory layer,
            # and re-request the victims through the integrity path.
            damaged = _corrupt_entries(plan, store_dir)
            service.store.clear()
            second = await asyncio.gather(
                *(
                    service.submit(requests[idx])
                    for idx in sorted(plan.corruptions)
                )
            )
            await service.drain()
            snapshot = service.metrics_snapshot()
            await service.stop()
            return {
                "first": first,
                "second": second,
                "damaged": damaged,
                "snapshot": snapshot,
            }

        out = asyncio.run(round_trip())

        # Invariant 2: byte-identical to the fault-free baseline.
        for (name, job_seed), response in zip(JOBS, out["first"]):
            assert response.status == 200, response.payload
            expected = fault_free_product(name, job_seed)
            assert response.payload["result"] == expected, (
                f"job ({name}, {job_seed}) diverged from baseline"
            )
        for idx, response in zip(
            sorted(plan.corruptions), out["second"]
        ):
            name, job_seed = JOBS[idx]
            assert response.status == 200, response.payload
            assert response.payload["result"] == (
                fault_free_product(name, job_seed)
            ), f"recomputed job {idx} diverged from baseline"

        journal = _assert_journal_invariant(journal_path)
        store_counters = out["snapshot"]["store"]
        counters = out["snapshot"]["counters"]
        assert not lease.exists(), "stale lease never broken"
        if out["damaged"]:
            assert store_counters["integrity_failures"] >= out["damaged"]
        if plan.worker_kills:
            assert counters["retries"] >= len(plan.worker_kills)
            assert counters["worker_replacements"] >= 1
        assert counters["dead_letters"] == 0

        return {
            "mode": "inprocess",
            "seed": seed,
            "jobs": len(JOBS),
            "worker_kills": len(plan.worker_kills),
            "corruptions": out["damaged"],
            "retries": counters["retries"],
            "replacements": counters["worker_replacements"],
            "quarantined": store_counters["quarantined"],
            "lease_breaks": store_counters["lease_breaks"],
            **journal,
        }


# ----------------------------------------------------------------------
# SIGKILL rounds: a real daemon, killed and restarted.
# ----------------------------------------------------------------------
SIGKILL_JOBS: List[Tuple[str, int]] = [
    ("table1", 0), ("table1", 1), ("table1", 2), ("table1", 3),
]

#: The kill round runs two tenants — the journal must preserve which
#: tenant each accepted request belongs to across the crash, and the
#: restarted daemon must re-attribute the replayed work.
SIGKILL_TENANTS: Tuple[str, str] = ("alice", "bob")


def sigkill_tenant(job_seed: int) -> str:
    """Tenant for one kill-round job (alternating by seed)."""
    return SIGKILL_TENANTS[job_seed % len(SIGKILL_TENANTS)]


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn_daemon(
    port: int, store: Path, journal: Path
) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--scale", "quick", "--port", str(port), "--workers", "1",
            "--bulk-cap", "1.0",  # one lane: a fractional cap starves
            "--store", str(store), "--journal", str(journal),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,  # lets _kill_group reap the workers
    )


def _submit_in_background(
    port: int, jobs: List[Tuple[str, int]]
) -> List[threading.Thread]:
    client = ServiceClient(port=port, timeout=120.0)

    def fire(name: str, seed: int) -> None:
        try:
            client.run(
                name, seed=seed, priority="bulk",
                tenant=sigkill_tenant(seed),
            )
        except OSError:
            pass  # the daemon died mid-request: that is the point

    threads = [
        threading.Thread(target=fire, args=job, daemon=True)
        for job in jobs
    ]
    for thread in threads:
        thread.start()
    return threads


def _kill_group(daemon: subprocess.Popen) -> None:
    """SIGKILL the daemon *and* its fork-started pool workers.  The
    daemon is its own session leader (``start_new_session``), so the
    group kill is atomic: a worker forked a moment before the kill
    cannot escape, and a SIGKILLed parent could never reap it."""
    try:
        os.killpg(daemon.pid, signal.SIGKILL)
    except (OSError, ProcessLookupError):  # pragma: no cover - gone
        daemon.kill()


def _wait_for(
    predicate, timeout: float, interval: float = 0.05, what: str = ""
) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting: {what}"
        time.sleep(interval)


def run_sigkill(seed: int) -> Dict[str, Any]:
    """One kill/restart recovery round against a real daemon."""
    from repro.experiments.executor import render_experiment

    plan = ChaosPlan.sample(seed)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-kill-") as tmp:
        tmp_path = Path(tmp)
        store = tmp_path / "store"
        journal = tmp_path / "journal.jsonl"

        port = _free_port()
        daemon = _spawn_daemon(port, store, journal)
        killed_at: Optional[int] = None
        try:
            ServiceClient(port=port).wait_until_healthy(timeout=60.0)
            _submit_in_background(port, SIGKILL_JOBS)
            # Kill between journal append and completion: as soon as
            # the WAL shows the planned number of durable accepts.
            target = plan.kill_after_accepts

            def enough_accepts() -> bool:
                accepts, _settles, _torn = BulkJournal.read(journal)
                return len(accepts) >= target

            _wait_for(
                enough_accepts, 60.0, 0.01,
                f">= {target} journaled accepts",
            )
            _kill_group(daemon)
            daemon.wait(timeout=30.0)
            accepts, settles, _torn = BulkJournal.read(journal)
            killed_at = len(accepts)
            open_ids = {rec["id"] for rec in accepts} - {
                rec["id"] for rec in settles
            }
        finally:
            if daemon.poll() is None:  # pragma: no cover - cleanup
                _kill_group(daemon)
                daemon.wait(timeout=30.0)

        # Restart on a fresh port; the journal must drive recovery.
        port2 = _free_port()
        daemon2 = _spawn_daemon(port2, store, journal)
        try:
            ServiceClient(port=port2).wait_until_healthy(timeout=60.0)

            def backlog_settled() -> bool:
                accepts, settles, _torn = BulkJournal.read(journal)
                return {rec["id"] for rec in accepts} <= {
                    rec["id"] for rec in settles
                }

            _wait_for(
                backlog_settled, 300.0, 0.1, "journal backlog settled"
            )
            # Replayed work must stay attributed: whatever per-tenant
            # accounting the recovery daemon built can only name the
            # round's two tenants (cached replays settle without
            # counters, so subset — never a stranger, never "default").
            recovered = ServiceClient(port=port2).metrics().payload
            recovered_tenants = set(recovered.get("tenants", {}))
            assert recovered_tenants <= set(SIGKILL_TENANTS), (
                f"replay misattributed tenants: {recovered_tenants}"
            )
            daemon2.send_signal(signal.SIGTERM)
            assert daemon2.wait(timeout=60.0) == 0, "unclean drain"
        finally:
            if daemon2.poll() is None:  # pragma: no cover - cleanup
                _kill_group(daemon2)
                daemon2.wait(timeout=30.0)

        journal_stats = _assert_journal_invariant(journal)
        accepts, settles, _torn = BulkJournal.read(journal)
        outcome_by_id = {rec["id"]: rec["outcome"] for rec in settles}
        reader = RunStore(store)
        verified = 0
        for rec in accepts:
            assert outcome_by_id[rec["id"]] == COMPLETED, rec
            # Attribution survived the SIGKILL: the journaled accept
            # carries the submitting tenant, matching the round's map.
            assert rec.get("tenant") == sigkill_tenant(rec["seed"]), (
                f"accept id={rec['id']} lost its tenant: {rec}"
            )
            got = reader.get(rec["key"], default=None)
            assert got is not None, f"no store entry for {rec}"
            scale = SCALES["quick"]
            if rec.get("seed") is not None:
                scale = replace(scale, seed=rec["seed"])
            baseline = render_experiment(
                rec["experiment"], scale, None, False
            )
            assert got == baseline, (
                f"recovered result for {rec} diverged from the "
                f"fault-free baseline"
            )
            verified += 1

        return {
            "mode": "sigkill",
            "seed": seed,
            "accepts_at_kill": killed_at,
            "open_at_kill": len(open_ids),
            "verified_byte_identical": verified,
            "tenants": sorted(
                {rec["tenant"] for rec in accepts}
            ),
            **journal_stats,
        }


# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Seeded chaos rounds against the serving daemon's "
            "resilience layer (see module docstring)."
        )
    )
    parser.add_argument(
        "--seeds", type=int, default=5, metavar="N",
        help="in-process chaos rounds to run (seeds 0..N-1; default 5)",
    )
    parser.add_argument(
        "--base-seed", type=int, default=0, metavar="S",
        help="first seed (default 0)",
    )
    parser.add_argument(
        "--sigkill-seeds", type=int, default=0, metavar="N",
        help=(
            "additional SIGKILL/restart recovery rounds (each boots "
            "two real daemons; default 0)"
        ),
    )
    args = parser.parse_args(argv)
    summaries = []
    for seed in range(args.base_seed, args.base_seed + args.seeds):
        summary = run_inprocess(seed)
        summaries.append(summary)
        print(json.dumps(summary, sort_keys=True), flush=True)
    for seed in range(
        args.base_seed, args.base_seed + args.sigkill_seeds
    ):
        summary = run_sigkill(seed)
        summaries.append(summary)
        print(json.dumps(summary, sort_keys=True), flush=True)
    print(
        f"chaos: {len(summaries)} round(s) passed "
        f"(exactly-one terminal state and byte-identical results "
        f"held throughout)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
