"""Tests for the service core: admission control, coalescing, caching,
backpressure and drain.

Most tests drive a thread-pool-backed service with stub workers (see
``conftest``) so timing is deterministic; the final test runs the real
``ProcessPoolExecutor`` + registry worker once to pin the end-to-end
acceptance contract (N identical concurrent requests, one simulation).
"""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import SCALES
from repro.service import ServiceConfig, SimRequest, SimulationService
from tests.service.conftest import (
    GatedWorker,
    make_service,
    run_async,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(workers=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(bulk_cap=0.0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(bulk_cap=1.5)
        with pytest.raises(ConfigurationError):
            ServiceConfig(max_queue=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(max_backlog=-1)

    def test_effective_scale_default(self):
        assert ServiceConfig().effective_scale().name in (
            "quick", "default", "paper"
        )
        assert ServiceConfig(
            scale=SCALES["quick"]
        ).effective_scale().name == "quick"


class TestPipeline:
    def test_interactive_roundtrip_and_cache(self):
        async def scenario():
            service = make_service()
            await service.start()
            first = await service.submit(SimRequest("table1", seed=1))
            again = await service.submit(SimRequest("table1", seed=1))
            await service.stop()
            return service, first, again

        service, first, again = run_async(scenario())
        assert first.status == 200
        assert first.payload["result"] == "rendered table1 seed=1"
        assert not first.payload["cached"]
        assert again.payload["cached"]
        assert again.payload["result"] == first.payload["result"]
        counters = service.metrics.counters
        assert counters.computes == 1
        assert counters.cache_hits == 1
        assert counters.admits == 1
        assert service.metrics.latency["interactive"].count == 1

    def test_coalescing_one_compute_for_n_requests(self):
        async def scenario():
            service = make_service()
            await service.start()
            requests = [SimRequest("table1", seed=7) for _ in range(6)]
            responses = await asyncio.gather(
                *[service.submit(r) for r in requests]
            )
            await service.stop()
            return service, responses

        service, responses = run_async(scenario())
        assert [r.status for r in responses] == [200] * 6
        assert len({r.payload["result"] for r in responses}) == 1
        counters = service.metrics.counters
        assert counters.computes == 1
        assert counters.coalesced_hits == 5
        assert sum(r.payload["coalesced"] for r in responses) == 5

    def test_priorities_share_cache_and_inflight(self):
        async def scenario():
            service = make_service()
            await service.start()
            responses = await asyncio.gather(
                service.submit(SimRequest("table1", seed=5)),
                service.submit(
                    SimRequest("table1", seed=5, priority="bulk")
                ),
            )
            await service.stop()
            return service, responses

        service, responses = run_async(scenario())
        assert [r.status for r in responses] == [200, 200]
        assert service.metrics.counters.computes == 1

    def test_unknown_experiment_and_scale_rejected(self):
        async def scenario():
            service = make_service()
            await service.start()
            unknown = await service.submit(SimRequest("nope"))
            badscale = await service.submit(
                SimRequest("table1", scale="galactic")
            )
            await service.stop()
            return unknown, badscale

        unknown, badscale = run_async(scenario())
        assert unknown.status == 400
        assert "unknown experiment" in unknown.payload["error"]
        assert badscale.status == 400
        assert "unknown scale" in badscale.payload["error"]

    def test_worker_failure_fails_request_not_pool(self):
        async def scenario():
            gated = GatedWorker(fail=True)
            service = make_service(worker_fn=gated)
            await service.start()
            gated.release()
            failed = await service.submit(SimRequest("table1", seed=1))
            # Pool must stay serviceable after the failure.
            service._worker_fn = lambda n, s, p, c: "recovered"
            ok = await service.submit(SimRequest("table1", seed=2))
            await service.stop()
            return service, failed, ok

        service, failed, ok = run_async(scenario())
        assert failed.status == 500
        assert "injected worker failure" in failed.payload["error"]
        assert ok.status == 200
        counters = service.metrics.counters
        assert counters.failures == 1
        assert counters.computes == 1

    def test_failure_propagates_to_coalesced_waiters(self):
        async def scenario():
            gated = GatedWorker(fail=True)
            service = make_service(worker_fn=gated)
            await service.start()
            tasks = [
                asyncio.ensure_future(
                    service.submit(SimRequest("table1", seed=1))
                )
                for _ in range(3)
            ]
            while not service._inflight:
                await asyncio.sleep(0.01)
            gated.release()
            responses = await asyncio.gather(*tasks)
            await service.stop()
            return service, responses

        service, responses = run_async(scenario())
        assert [r.status for r in responses] == [500] * 3
        counters = service.metrics.counters
        assert counters.failures == 1
        assert counters.coalesced_hits == 2
        # Failures are never cached: nothing to poison later requests.
        assert len(service.store) == 0


class TestAdmission:
    def test_cap_holds_bulk_back_while_pool_busy(self, gated):
        async def scenario():
            service = make_service(workers=2, bulk_cap=0.9,
                                   worker_fn=gated)
            await service.start()
            b1 = asyncio.ensure_future(
                service.submit(
                    SimRequest("table1", seed=1, priority="bulk")
                )
            )
            b2 = asyncio.ensure_future(
                service.submit(
                    SimRequest("table1", seed=2, priority="bulk")
                )
            )
            await asyncio.sleep(0.05)
            # One bulk admitted ((0+1)/2 <= 0.9); the second would
            # push utilization to 1.0 > 0.9 and must wait in queue.
            busy, depth = service._busy, service.bulk_queue_depth()
            gated.release()
            responses = await asyncio.gather(b1, b2)
            await service.stop()
            return service, busy, depth, responses

        service, busy, depth, responses = run_async(scenario())
        assert busy == 1
        assert depth == 1
        assert [r.status for r in responses] == [200, 200]
        counters = service.metrics.counters
        assert counters.cap_deferrals >= 1
        assert counters.admits == 2

    def test_interactive_dispatches_past_queued_bulk(self, gated):
        async def scenario():
            service = make_service(workers=2, bulk_cap=0.9,
                                   worker_fn=gated)
            await service.start()
            bulk = [
                asyncio.ensure_future(
                    service.submit(
                        SimRequest("table1", seed=i, priority="bulk")
                    )
                )
                for i in (1, 2, 3)
            ]
            await asyncio.sleep(0.05)
            interactive = asyncio.ensure_future(
                service.submit(SimRequest("table1", seed=9))
            )
            await asyncio.sleep(0.05)
            # The interactive went straight into the pool even though
            # bulk work was queued ahead of it.
            busy, depth = service._busy, service.bulk_queue_depth()
            gated.release()
            responses = await asyncio.gather(interactive, *bulk)
            await service.stop()
            return busy, depth, responses

        busy, depth, responses = run_async(scenario())
        assert busy == 2  # 1 admitted bulk + 1 interactive
        assert depth == 2
        assert [r.status for r in responses] == [200] * 4

    def test_disabled_cap_lets_bulk_fill_pool(self, gated):
        async def scenario():
            service = make_service(workers=2, bulk_cap=1.0,
                                   worker_fn=gated)
            await service.start()
            tasks = [
                asyncio.ensure_future(
                    service.submit(
                        SimRequest("table1", seed=i, priority="bulk")
                    )
                )
                for i in (1, 2)
            ]
            await asyncio.sleep(0.05)
            busy, depth = service._busy, service.bulk_queue_depth()
            gated.release()
            responses = await asyncio.gather(*tasks)
            await service.stop()
            return busy, depth, responses

        busy, depth, responses = run_async(scenario())
        assert busy == 2
        assert depth == 0
        assert [r.status for r in responses] == [200, 200]

    def test_utilization_reporting(self, gated):
        async def scenario():
            service = make_service(workers=2, worker_fn=gated)
            await service.start()
            task = asyncio.ensure_future(
                service.submit(SimRequest("table1", seed=1))
            )
            await asyncio.sleep(0.05)
            mid = service.utilization()
            gated.release()
            await task
            await service.stop()
            return mid, service.utilization()

        mid, after = run_async(scenario())
        assert mid == pytest.approx(0.5)
        assert after == 0.0


class TestBackpressure:
    def test_full_bulk_queue_rejected_with_retry_after(self, gated):
        async def scenario():
            service = make_service(workers=1, bulk_cap=1.0,
                                   max_queue=1, worker_fn=gated)
            await service.start()
            running = asyncio.ensure_future(
                service.submit(
                    SimRequest("table1", seed=1, priority="bulk")
                )
            )
            await asyncio.sleep(0.05)
            queued = asyncio.ensure_future(
                service.submit(
                    SimRequest("table1", seed=2, priority="bulk")
                )
            )
            await asyncio.sleep(0.05)
            rejected = await service.submit(
                SimRequest("table1", seed=3, priority="bulk")
            )
            gated.release()
            responses = await asyncio.gather(running, queued)
            await service.stop()
            return service, rejected, responses

        service, rejected, responses = run_async(scenario())
        assert rejected.status == 429
        assert rejected.payload["status"] == "rejected"
        assert rejected.retry_after >= 1.0
        assert rejected.payload["retry_after_s"] == rejected.retry_after
        assert [r.status for r in responses] == [200, 200]
        assert service.metrics.counters.rejections == 1

    def test_interactive_backlog_bounded(self, gated):
        async def scenario():
            service = make_service(workers=1, max_backlog=0,
                                   worker_fn=gated)
            await service.start()
            running = asyncio.ensure_future(
                service.submit(SimRequest("table1", seed=1))
            )
            await asyncio.sleep(0.05)
            rejected = await service.submit(
                SimRequest("table1", seed=2)
            )
            gated.release()
            ok = await running
            await service.stop()
            return service, rejected, ok

        service, rejected, ok = run_async(scenario())
        assert rejected.status == 429
        assert "interactive backlog" in rejected.payload["error"]
        assert ok.status == 200
        assert service.metrics.counters.rejections == 1

    def test_retry_after_scales_with_observed_latency(self):
        service = make_service(workers=2)
        service.metrics.record_latency("bulk", 8.0)
        assert service._retry_after("bulk", 4) == pytest.approx(16.0)
        # No bulk observations: fall back to interactive, then 1s.
        fresh = make_service(workers=2)
        assert fresh._retry_after("bulk", 4) == pytest.approx(2.0)


class TestDrain:
    def test_drain_finishes_queued_work_then_rejects(self, gated):
        async def scenario():
            service = make_service(workers=2, bulk_cap=0.9,
                                   worker_fn=gated)
            await service.start()
            admitted = asyncio.ensure_future(
                service.submit(
                    SimRequest("table1", seed=1, priority="bulk")
                )
            )
            queued = asyncio.ensure_future(
                service.submit(
                    SimRequest("table1", seed=2, priority="bulk")
                )
            )
            await asyncio.sleep(0.05)
            drain = asyncio.ensure_future(service.drain())
            await asyncio.sleep(0.05)
            late = await service.submit(SimRequest("table1", seed=3))
            assert not drain.done()
            gated.release()
            responses = await asyncio.gather(admitted, queued)
            await drain
            await service.stop()
            return service, late, responses

        service, late, responses = run_async(scenario())
        assert late.status == 503
        assert late.payload["status"] == "draining"
        # Work accepted before the drain still completed.
        assert [r.status for r in responses] == [200, 200]
        assert service.metrics.counters.drain_rejections == 1
        assert service.draining

    def test_healthz_reflects_drain(self):
        async def scenario():
            service = make_service()
            await service.start()
            before = service.healthz()
            await service.drain()
            after = service.healthz()
            await service.stop()
            return before, after

        before, after = run_async(scenario())
        assert before["status"] == "ok"
        assert after["status"] == "draining"
        assert before["workers"] == 2
        assert isinstance(before["version"], str) and before["version"]


class TestMetricsSnapshot:
    def test_snapshot_includes_store_and_queue_state(self):
        async def scenario():
            service = make_service()
            await service.start()
            await service.submit(SimRequest("table1", seed=1))
            await service.submit(SimRequest("table1", seed=1))
            snap = service.metrics_snapshot()
            await service.stop()
            return snap

        snap = run_async(scenario())
        assert snap["counters"]["computes"] == 1
        assert snap["counters"]["cache_hits"] == 1
        assert snap["store"]["entries"] == 1
        assert snap["bulk_queue_depth"] == 0
        assert snap["inflight"] == 0
        assert snap["latency"]["interactive"]["count"] == 1


class TestRealPool:
    def test_n_identical_requests_one_simulation(self, tmp_path):
        """Acceptance: N identical concurrent requests to an uncached
        config run exactly one underlying simulation (real registry
        worker, real process pool), verified by the obs counters."""

        async def scenario():
            config = ServiceConfig(
                workers=2,
                scale=SCALES["quick"],
                store_path=str(tmp_path / "store"),
            )
            service = SimulationService(config)
            await service.start()
            requests = [
                SimRequest("table1", seed=4242) for _ in range(5)
            ]
            responses = await asyncio.gather(
                *[service.submit(r) for r in requests]
            )
            cached = await service.submit(
                SimRequest("table1", seed=4242)
            )
            await service.stop()
            return service, responses, cached

        service, responses, cached = run_async(scenario())
        assert [r.status for r in responses] == [200] * 5
        texts = {r.payload["result"] for r in responses}
        assert len(texts) == 1
        assert "Table 1" in texts.pop()
        counters = service.metrics.counters
        assert counters.computes == 1
        assert counters.coalesced_hits == 4
        assert counters.cache_hits == 1
        assert cached.payload["cached"]
        # Exactly one response product was stored for this key.
        assert len(service.store) == 1
