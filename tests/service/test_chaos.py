"""Seeded chaos rounds as tier-1 tests.

The harness itself lives in :mod:`tests.service.chaos` (runnable
standalone for the CI chaos-smoke job); here we pin ten in-process
seeds and one full SIGKILL/restart recovery round.  Every round
asserts the two resilience invariants internally — exactly one
terminal journal record per accepted request, and results
byte-identical to the fault-free baseline.
"""

from __future__ import annotations

import pytest

from tests.service.chaos import ChaosPlan, run_inprocess, run_sigkill


def test_plans_are_deterministic():
    for seed in range(10):
        assert ChaosPlan.sample(seed) == ChaosPlan.sample(seed)
    assert ChaosPlan.sample(0) != ChaosPlan.sample(1)


def test_plans_cover_every_fault_kind():
    """Across the pinned seed range, every chaos dimension fires."""
    plans = [ChaosPlan.sample(seed) for seed in range(10)]
    assert any(p.worker_kills for p in plans)
    assert any(p.corruptions for p in plans)
    assert any(p.truncations for p in plans)
    assert any(p.corruptions - p.truncations for p in plans)


@pytest.mark.parametrize("seed", range(10))
def test_inprocess_chaos_round(seed):
    summary = run_inprocess(seed)
    assert summary["settles"] == summary["accepts"]
    assert summary["jobs"] == 8


def test_sigkill_recovery_round():
    """Boot a real daemon, SIGKILL it mid-backlog, restart, and verify
    the journal drives complete, byte-identical recovery.  The round
    submits as two tenants, so it also pins that the journal carries
    tenant attribution across the crash (asserted per accept record
    inside the round)."""
    summary = run_sigkill(0)
    assert summary["settles"] == summary["accepts"]
    assert summary["verified_byte_identical"] == summary["accepts"]
    assert set(summary["tenants"]) <= {"alice", "bob"}
    assert summary["tenants"], "no tenant ever journaled"
