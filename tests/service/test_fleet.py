"""Tests for the consistent-hash sharded serving fleet.

Three layers:

* :class:`LocalFleet` (direct-call transport) pins the fleet *logic*
  — routing by content address, single-member passthrough, peer cache
  hits/replication, work-stealing with timeout requeue, fleet-level
  backpressure and metrics aggregation — plus the acceptance property
  that a fleet sweep is byte-identical to a serial solo run.
* An in-process HTTP fleet (two real front ends, joined over
  ``/fleet/join`` with :class:`HttpPeerTransport` peers) pins the
  wire protocol.
* One subprocess test boots two real ``repro serve`` daemons with
  ``--join`` and drives them through :class:`ServiceClient` — the
  exact deployment shape.
"""

import asyncio
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.service import (
    FleetConfig,
    FleetMember,
    HttpFrontend,
    LocalFleet,
    ServiceClient,
    ServiceConfig,
)
from repro.service.requests import SimRequest
from tests.service.conftest import make_service, quick_worker

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def _thread_pool(n):
    return ThreadPoolExecutor(max_workers=n)


def _fleet(replicas, **fleet_kwargs):
    fleet_kwargs.setdefault("steal_interval", 0.01)
    fleet_kwargs.setdefault("steal_timeout", 5.0)
    return LocalFleet(
        replicas,
        service_config=ServiceConfig(workers=2, bulk_cap=0.5),
        fleet_config=FleetConfig(**fleet_kwargs),
        pool_factory=_thread_pool,
        worker_fn=quick_worker,
    )


class TestConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(max_backlog=0)
        with pytest.raises(ConfigurationError):
            FleetConfig(steal_batch=0)
        with pytest.raises(ConfigurationError):
            FleetConfig(steal_interval=0)
        with pytest.raises(ConfigurationError):
            FleetConfig(steal_timeout=-1)
        with pytest.raises(ConfigurationError):
            LocalFleet(0)


class TestSingleMember:
    def test_passthrough_matches_solo_daemon(self):
        """A one-replica fleet is behaviorally the solo daemon: same
        payload shape, same counters, no fleet machinery in the path."""
        with _fleet(1) as fleet:
            reply = fleet.run("table1", seed=1)
            assert reply.ok
            assert reply.payload["result"] == "rendered table1 seed=1"
            again = fleet.run("table1", seed=1)
            assert again.cached
            counters = fleet.members[0].counters
            assert counters.forwards == 0
            assert counters.steals == 0
            snap = fleet.metrics()
            assert snap["fleet"]["replica_count"] == 1


class TestRouting:
    def test_requests_route_to_ring_owner(self):
        """Whatever replica takes the request, the compute lands on
        the key's ring owner — so a repeat through a *different*
        replica is a cache hit, not a recompute."""
        with _fleet(3) as fleet:
            first = fleet.run("table1", seed=2, via=0)
            assert first.ok and not first.payload["cached"]
            for via in (1, 2):
                again = fleet.run("table1", seed=2, via=via)
                assert again.ok
                assert again.payload["cached"]
            totals = fleet.fleet_metrics()["totals"]
            assert totals["computes"] == 1
            assert totals["cache_hits"] == 2

    def test_forward_counter_counts_routing(self):
        with _fleet(3) as fleet:
            for seed in range(12):
                assert fleet.run("table1", seed=seed).ok
            totals = fleet.fleet_metrics()["totals"]
            # ~2/3 of 12 keys are owned by a non-receiving replica;
            # at least one must have forwarded unless the hash is
            # broken.
            assert totals["forwards"] > 0
            assert totals["computes"] == 12

    def test_bulk_sweep_completes_across_replicas(self):
        with _fleet(3) as fleet:
            payloads = [
                {"experiment": "table1", "seed": s, "priority": "bulk"}
                for s in range(24)
            ]
            replies = fleet.run_many(payloads)
            assert all(r.ok for r in replies)
            assert [r.payload["seed"] for r in replies] == list(
                range(24)
            )
            totals = fleet.fleet_metrics()["totals"]
            assert totals["computes"] == 24


class TestByteIdentity:
    def test_fleet_results_identical_to_serial_solo(self):
        """The acceptance property: a 3-replica concurrent sweep
        returns byte-identical results to the same sweep run serially
        on a single daemon."""
        payloads = [
            {"experiment": "table1", "seed": s, "priority": "bulk"}
            for s in range(16)
        ]
        with _fleet(1) as solo:
            serial = [solo.run_many([p])[0] for p in payloads]
        with _fleet(3) as fleet:
            swept = fleet.run_many(payloads)
        assert [r.payload["result"] for r in swept] == [
            r.payload["result"] for r in serial
        ]
        assert [r.payload["key"] for r in swept] == [
            r.payload["key"] for r in serial
        ]


class TestPeerCache:
    def test_stolen_compute_checks_owner_cache_and_replicates(self):
        """Directly exercise the non-owner compute path: a replica
        computing a key it does not own asks the owner first (miss),
        computes, and replicates the result into the owner's store."""
        with _fleet(2) as fleet:
            m0, m1 = fleet.members
            request = SimRequest(
                experiment="table1", seed=90, priority="bulk"
            )
            key = request.run_key(m0.service.default_scale)
            owner = m0.ring.owner(key)
            other = fleet.members[0 if owner != "r0" else 1]
            owner_member = m0 if owner == "r0" else m1
            response = fleet._await(
                other._run_remote_owned(request, key, owner)
            )
            assert response.ok
            assert other.counters.peer_misses == 1
            assert other.counters.peer_replications == 1
            assert owner_member.service.store.counters.peer_puts == 1
            # Second pass from the other side: the owner's store now
            # answers, no compute.
            response2 = fleet._await(
                other._run_remote_owned(request, key, owner)
            )
            assert response2.ok
            assert response2.payload["cached"]
            assert response2.payload["peer"] == owner
            assert other.counters.peer_hits == 1

    def test_cache_handlers_roundtrip(self):
        with _fleet(2) as fleet:
            member = fleet.members[0]
            hit, _ = member.handle_cache_get("nope")
            assert not hit
            member.handle_cache_put("k1", "value-1")
            hit, value = member.handle_cache_get("k1")
            assert hit and value == "value-1"
            # peer_put never overwrites (first write wins; values are
            # immutable so this is only defensive).
            member.handle_cache_put("k1", "value-2")
            _, value = member.handle_cache_get("k1")
            assert value == "value-1"
            store = member.service.store.counters
            assert store.peer_gets == 3
            assert store.peer_puts == 2


class TestWorkStealing:
    def test_idle_replica_steals_queued_bulk(self):
        """Pile a sweep onto one replica with stealing-friendly keys:
        idle peers pull from its backlog and the granted/stolen
        counters reconcile."""
        with _fleet(3) as fleet:
            # Build a backlog on r0 by submitting keys r0 owns (so no
            # forwarding empties it) — find seeds whose keys r0 owns.
            m0 = fleet.members[0]
            seeds = []
            seed = 0
            while len(seeds) < 12:
                request = SimRequest(
                    experiment="table1", seed=seed, priority="bulk"
                )
                key = request.run_key(m0.service.default_scale)
                if m0.ring.owner(key) == "r0":
                    seeds.append(seed)
                seed += 1
            payloads = [
                {"experiment": "table1", "seed": s, "priority": "bulk"}
                for s in seeds
            ]
            replies = fleet.run_many(payloads, via=0)
            assert all(r.ok for r in replies)
            granted = m0.counters.steals_granted
            stolen = sum(
                m.counters.steals for m in fleet.members[1:]
            )
            assert granted > 0, "no stealing happened"
            assert granted == stolen
            assert m0.counters.steal_requeues == 0

    def test_steal_grant_respects_batch_and_flags(self):
        with _fleet(2, steal_batch=2) as fleet:
            member = fleet.members[0]

            def setup():
                member._closing = False
                for seed in range(5):
                    request = SimRequest(
                        experiment="table1",
                        seed=seed,
                        priority="bulk",
                    )
                    entry = member._new_entry(request, f"key-{seed}")
                    member._backlog.append(entry)
                member._backlog[-1].stealable = False
                return member.handle_steal("r1", 10)

            granted = fleet._await(_as_coro(setup))
            # batch cap (2) binds before max_n (10); the unstealable
            # tail entry is skipped.
            assert len(granted) == 2
            assert member.counters.steals_granted == 2
            assert len(member._stolen_out) == 2
            assert len(member._backlog) == 3
            # Settle the parked entries so teardown's wait_idle is
            # clean.
            for rec in granted:
                fleet._await(
                    _as_coro(
                        lambda rec=rec: member.handle_stolen(
                            rec["entry_id"], 200, {"status": "ok"}
                        )
                    )
                )
            fleet._await(_as_coro(lambda: member._backlog.clear()))

    def test_steal_timeout_requeues_entry(self):
        """A thief that never reports: the victim's deadline fires,
        the entry re-enters the backlog, and the original waiter
        still gets an answer."""
        with _fleet(2, steal_timeout=0.2) as fleet:
            member = fleet.members[0]
            # Stop the real pump/steal loops from touching the entry
            # until the deadline fires, by granting it to a fake
            # thief by hand.
            done = []

            def grab():
                request = SimRequest(
                    experiment="table1", seed=777, priority="bulk"
                )
                key = request.run_key(member.service.default_scale)
                entry = member._new_entry(request, key)
                entry.future = member._loop.create_future()
                entry.future.add_done_callback(done.append)
                member._backlog.append(entry)
                granted = member.handle_steal("ghost", 1)
                assert len(granted) == 1
                return granted

            fleet._await(_as_coro(grab))
            deadline = time.monotonic() + 5.0
            while not done and time.monotonic() < deadline:
                time.sleep(0.02)
            assert done, "requeued entry never completed"
            response = done[0].result()
            assert response.ok
            assert member.counters.steal_requeues == 1

    def test_draining_member_grants_nothing(self):
        with _fleet(2) as fleet:
            member = fleet.members[0]

            def check():
                request = SimRequest(
                    experiment="table1", seed=5, priority="bulk"
                )
                entry = member._new_entry(request, "some-key")
                member._backlog.append(entry)
                member._closing = True
                granted = member.handle_steal("r1", 4)
                member._closing = False
                member._backlog.clear()
                return granted

            assert fleet._await(_as_coro(check)) == []


class TestBackpressure:
    def test_backlog_bound_bounces_429(self):
        with _fleet(2, max_backlog=2) as fleet:
            member = fleet.members[0]

            async def overfill():
                # Pre-fill the backlog past the bound with inert
                # entries, then submit a key this replica owns.
                m0 = member
                for i in range(2):
                    request = SimRequest(
                        experiment="table1",
                        seed=1000 + i,
                        priority="bulk",
                    )
                    m0._backlog.append(
                        m0._new_entry(request, f"inert-{i}")
                    )
                # Keep the pump from draining them mid-test.
                m0._pump_inflight = m0.service.bulk_slots()
                seed = 0
                while True:
                    request = SimRequest(
                        experiment="table1",
                        seed=2000 + seed,
                        priority="bulk",
                    )
                    key = request.run_key(m0.service.default_scale)
                    if m0.ring.owner(key) == m0.replica_id:
                        break
                    seed += 1
                response = await m0.handle_owned(request, key)
                m0._pump_inflight = 0
                m0._backlog.clear()
                return response

            response = fleet._await(overfill())
            assert response.status == 429
            assert response.payload["retry_after_s"] >= 1.0
            assert member.counters.rejections == 1


class TestMetrics:
    def test_snapshot_has_fleet_section(self):
        with _fleet(3) as fleet:
            snap = fleet.metrics(via=1)
            fl = snap["fleet"]
            assert fl["replica_id"] == "r1"
            assert fl["replica_count"] == 3
            assert fl["replicas"] == ["r0", "r1", "r2"]
            assert fl["backlog_depth"] == 0
            assert fl["stolen_outstanding"] == 0

    def test_fleet_metrics_aggregates_all_replicas(self):
        with _fleet(2) as fleet:
            fleet.run("table1", seed=8)
            agg = fleet.fleet_metrics()
            assert agg["replica_count"] == 2
            assert sorted(agg["replicas"]) == ["r0", "r1"]
            assert agg["totals"]["requests"] >= 1
            for name in (
                "forwards",
                "peer_hits",
                "peer_misses",
                "peer_replications",
                "steals",
                "steals_granted",
                "steal_requeues",
            ):
                assert name in agg["totals"]


class TestTenancy:
    def test_stolen_entries_keep_tenant_attribution(self):
        """A stolen bulk entry travels with its tenant id: whichever
        replica computes it charges the *originating* tenant's
        fair-share usage and counters — stealing must not launder a
        flood into the thief's default tenant."""
        with _fleet(3) as fleet:
            m0 = fleet.members[0]
            seeds = []
            seed = 0
            while len(seeds) < 12:
                request = SimRequest(
                    experiment="table1", seed=seed, priority="bulk"
                )
                key = request.run_key(m0.service.default_scale)
                if m0.ring.owner(key) == "r0":
                    seeds.append(seed)
                seed += 1
            payloads = [
                {"experiment": "table1", "seed": s, "priority": "bulk",
                 "tenant": "alice"}
                for s in seeds
            ]
            replies = fleet.run_many(payloads, via=0)
            assert all(r.ok for r in replies)
            assert m0.counters.steals_granted > 0, "no stealing"
            now = time.monotonic()
            thieves_crediting_alice = 0
            for member in fleet.members:
                tenants = member.service.metrics.tenants
                # No replica invented a tenant: every computed entry
                # stayed attributed to the submitter.
                assert set(tenants) <= {"alice"}, sorted(tenants)
                alice = tenants.get("alice")
                if member is not m0 and alice and alice.computes:
                    thieves_crediting_alice += 1
                    usage = member.service.tenancy.tracker.usage(
                        "alice", now
                    )
                    assert usage > 0.0, (
                        f"{member.replica_id} computed alice's stolen "
                        f"work without charging her fair share"
                    )
            assert thieves_crediting_alice > 0, (
                "stolen work never surfaced in a thief's tenant "
                "accounting"
            )
            total_computes = sum(
                m.service.metrics.tenants["alice"].computes
                for m in fleet.members
                if "alice" in m.service.metrics.tenants
            )
            assert total_computes == len(seeds)

    def test_fleet_metrics_aggregate_per_tenant(self):
        """``/fleet/metrics`` sums each tenant's counters across every
        replica, wherever routing placed the work."""
        with _fleet(2) as fleet:
            assert fleet.run("table1", seed=8, tenant="alice").ok
            assert fleet.run(
                "table1", seed=9, tenant="alice", via=1
            ).ok
            assert fleet.run(
                "table2", seed=8, tenant="bob", via=1
            ).ok
            agg = fleet.fleet_metrics()
            totals = agg["tenant_totals"]
            assert set(totals) == {"alice", "bob"}
            assert totals["alice"]["accepted"] == 2
            assert totals["alice"]["completed"] == 2
            assert totals["bob"]["completed"] == 1
            assert totals["bob"]["quota_rejections"] == 0

    def test_fleet_backlog_share_quota_bounces_flood(self):
        """The fleet backlog enforces the per-tenant share ahead of
        the generic full-backlog 429: the flooding tenant is bounced
        with a tenant-scoped quota reason while the other tenant's
        lane stays open."""
        from repro.service import TenantQuota

        fleet = LocalFleet(
            1,
            service_config=ServiceConfig(
                workers=2, bulk_cap=0.5,
                tenant_quota=TenantQuota(8, 0.25),
            ),
            fleet_config=FleetConfig(max_backlog=8),
            pool_factory=_thread_pool,
            worker_fn=quick_worker,
        )
        with fleet:
            member = fleet.members[0]

            async def overfill():
                # Per-tenant share: max(1, 0.25 * 8) = 2 queued.
                # Pre-fill alice's share with inert entries and pin
                # the pump so nothing drains mid-test.
                for i in range(2):
                    member._backlog.append(
                        member._new_entry(
                            SimRequest(
                                "table2", seed=1000 + i,
                                priority="bulk", tenant="alice",
                            ),
                            f"inert-{i}",
                        )
                    )
                member._pump_inflight = member.service.bulk_slots()
                alice = SimRequest(
                    "table2", seed=0, priority="bulk", tenant="alice"
                )
                bounced = await member.handle_owned(
                    alice, alice.run_key(member.service.default_scale)
                )
                # Bob's share is untouched: his request queues.
                bob = SimRequest(
                    "table2", seed=1, priority="bulk", tenant="bob"
                )
                bob_task = asyncio.ensure_future(
                    member.handle_owned(
                        bob, bob.run_key(member.service.default_scale)
                    )
                )
                await asyncio.sleep(0.05)
                bob_queued = not bob_task.done()
                depth = len(member._backlog)
                # Drop the inert fillers (fake keys) and let bob's
                # real entry pump through.
                for entry in [
                    e for e in member._backlog
                    if e.key.startswith("inert-")
                ]:
                    member._backlog.remove(entry)
                member._pump_inflight = 0
                member._kick()
                return bounced, bob_queued, depth, await bob_task

            bounced, bob_queued, depth, bob_reply = fleet._await(
                overfill()
            )
            assert bounced.status == 429
            assert bounced.payload["quota"] is True
            assert bounced.payload["tenant"] == "alice"
            assert "fleet backlog share" in bounced.payload["error"]
            assert bounced.payload["retry_after_s"] >= 1.0
            assert bob_queued and depth == 3
            assert bob_reply.status == 200
            tenant = member.service.metrics.tenants["alice"]
            assert tenant.quota_rejections == 1
            assert tenant.rejections == 1


class TestHttpFleet:
    """Two real HTTP front ends joined over the wire protocol."""

    def test_join_route_and_ring_convergence(self):
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()

        def call(coro, timeout=30.0):
            return asyncio.run_coroutine_threadsafe(
                coro, loop
            ).result(timeout)

        services = [make_service() for _ in range(2)]
        members = []
        frontends = []
        try:
            for i, service in enumerate(services):
                call(service.start())
                member = FleetMember(
                    service,
                    FleetConfig(
                        coordinator=i == 0,
                        steal_interval=0.01,
                        steal_timeout=5.0,
                    ),
                )
                call(member.start())
                frontend = HttpFrontend(service, port=0, member=member)
                call(frontend.start())
                member.set_advertise("127.0.0.1", frontend.port)
                members.append(member)
                frontends.append(frontend)
            reply = call(
                members[1].join("127.0.0.1", frontends[0].port)
            )
            assert reply["id"] == "r1"
            assert len(reply["members"]) == 2
            # Both rings converged on the same membership.
            assert members[0].ring.replicas == ["r0", "r1"]
            assert members[1].ring.replicas == ["r0", "r1"]
            # A request through either port computes once; the repeat
            # through the *other* port is a cache hit.
            c0 = ServiceClient(port=frontends[0].port)
            c1 = ServiceClient(port=frontends[1].port)
            first = c0.run("table1", seed=55)
            assert first.ok and not first.cached
            again = c1.run("table1", seed=55)
            assert again.ok and again.cached
            # Fleet metrics aggregate over HTTP.
            agg = c0.fleet_metrics()
            assert agg.ok
            assert agg.payload["replica_count"] == 2
            assert agg.payload["totals"]["computes"] == 1
            # A second join against the NON-coordinator is refused.
            with pytest.raises(ServiceError, match="coordinator"):
                call(members[0].peers["r1"].join("127.0.0.1", 1))
            c0.close()
            c1.close()
        finally:
            for member in members:
                member.begin_close()
            for member in members:
                try:
                    call(member.wait_idle(timeout=10.0))
                except ServiceError:
                    pass
            for frontend in frontends:
                call(frontend.stop())
            for member in members:
                call(member.finish_close())
            for service in services:
                call(service.stop())
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10.0)
            loop.close()


class TestSubprocessFleet:
    def test_two_daemons_join_and_share_cache(self, tmp_path):
        """The deployment shape: two ``repro serve`` subprocesses,
        the second with ``--join``, sharing one fleet."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC)

        def spawn(port, extra):
            return subprocess.Popen(
                [
                    sys.executable, "-m", "repro.cli", "serve",
                    "--scale", "quick", "--port", str(port),
                    "--workers", "1", "--bulk-cap", "1.0",
                ]
                + extra,
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )

        port_a, port_b = _free_port(), _free_port()
        proc_a = spawn(port_a, [])
        client_a = ServiceClient(port=port_a, timeout=60.0)
        proc_b = None
        try:
            client_a.wait_until_healthy(timeout=30.0)
            proc_b = spawn(
                port_b, ["--join", f"127.0.0.1:{port_a}"]
            )
            client_b = ServiceClient(port=port_b, timeout=60.0)
            client_b.wait_until_healthy(timeout=30.0)
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                agg = client_a.fleet_metrics()
                if agg.ok and agg.payload["replica_count"] == 2:
                    break
                time.sleep(0.2)
            assert agg.payload["replica_count"] == 2
            first = client_a.run("table1", seed=3)
            assert first.ok, first.payload
            again = client_b.run("table1", seed=3)
            assert again.ok
            assert again.cached
            totals = client_a.fleet_metrics().payload["totals"]
            assert totals["computes"] == 1
            client_b.close()
        finally:
            client_a.close()
            for proc in (proc_b, proc_a):
                if proc is None:
                    continue
                proc.send_signal(signal.SIGTERM)
            for proc in (proc_b, proc_a):
                if proc is None:
                    continue
                try:
                    assert proc.wait(timeout=30.0) == 0
                except subprocess.TimeoutExpired:
                    proc.kill()
                    raise


# ----------------------------------------------------------------------
def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


async def _as_coro(fn):
    return fn()
