"""Tests for service request types, validation and content keys."""

import pytest

from repro.errors import ServiceError
from repro.experiments.config import SCALES
from repro.service import ServiceResponse, SimRequest


class TestValidation:
    def test_minimal_request(self):
        req = SimRequest("table1")
        assert req.priority == "interactive"
        assert req.scale is None and req.seed is None

    def test_rejects_empty_experiment(self):
        with pytest.raises(ServiceError):
            SimRequest("")

    def test_rejects_bad_priority(self):
        with pytest.raises(ServiceError):
            SimRequest("table1", priority="urgent")

    def test_rejects_bad_seed(self):
        with pytest.raises(ServiceError):
            SimRequest("table1", seed="seven")
        with pytest.raises(ServiceError):
            SimRequest("table1", seed=True)

    def test_rejects_bad_scale_type(self):
        with pytest.raises(ServiceError):
            SimRequest("table1", scale=3)


class TestFromPayload:
    def test_roundtrip(self):
        req = SimRequest.from_payload(
            {"experiment": "fig5", "scale": "quick", "seed": 9,
             "priority": "bulk"}
        )
        assert req == SimRequest("fig5", scale="quick", seed=9,
                                 priority="bulk")

    def test_null_fields_are_defaults(self):
        req = SimRequest.from_payload(
            {"experiment": "fig5", "scale": None, "seed": None,
             "priority": None}
        )
        assert req == SimRequest("fig5")

    def test_rejects_unknown_fields(self):
        with pytest.raises(ServiceError, match="prioritty"):
            SimRequest.from_payload(
                {"experiment": "fig5", "prioritty": "bulk"}
            )

    def test_rejects_missing_experiment(self):
        with pytest.raises(ServiceError, match="experiment"):
            SimRequest.from_payload({"scale": "quick"})

    def test_rejects_non_object(self):
        with pytest.raises(ServiceError):
            SimRequest.from_payload(["table1"])


class TestKeys:
    def test_priority_excluded_from_key(self):
        default = SCALES["quick"]
        a = SimRequest("table1", seed=3, priority="interactive")
        b = SimRequest("table1", seed=3, priority="bulk")
        assert a.run_key(default) == b.run_key(default)

    def test_seed_changes_key(self):
        default = SCALES["quick"]
        assert SimRequest("table1", seed=3).run_key(default) != (
            SimRequest("table1", seed=4).run_key(default)
        )

    def test_default_scale_matches_named(self):
        # No scale means the service default; naming the same preset
        # must land on the same cache entry.
        default = SCALES["quick"]
        assert SimRequest("table1").run_key(default) == (
            SimRequest("table1", scale="quick").run_key(default)
        )

    def test_unknown_scale_rejected(self):
        with pytest.raises(ServiceError, match="unknown scale"):
            SimRequest("table1", scale="galactic").run_key(
                SCALES["quick"]
            )

    def test_seed_override_applied(self):
        scale = SimRequest("table1", seed=99).resolve_scale(
            SCALES["quick"]
        )
        assert scale.seed == 99
        assert scale.trace_scale == SCALES["quick"].trace_scale


class TestServiceResponse:
    def test_ok_range(self):
        assert ServiceResponse(200, {}).ok
        assert not ServiceResponse(429, {}).ok
        assert not ServiceResponse(500, {}).ok
