"""Shared helpers for the service test suite.

The daemon tests swap the real ``ProcessPoolExecutor`` + experiment
worker for a thread pool running tiny stub workers, so admission,
coalescing, caching and backpressure can be driven deterministically
in milliseconds.  One integration test (and the HTTP suite's smoke
path) keeps the real pool to pin the end-to-end contract.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments.config import SCALES
from repro.service import ServiceConfig, SimulationService


def run_async(coro):
    """Run one coroutine to completion on a fresh event loop."""
    return asyncio.run(coro)


def quick_worker(name, scale, store_path, check_invariants):
    """Instant fake worker: deterministic text per (name, seed)."""
    time.sleep(0.01)
    return f"rendered {name} seed={scale.seed}"


class GatedWorker:
    """A fake worker that blocks until :meth:`release` — the handle
    the admission tests use to hold the pool busy."""

    def __init__(self, fail=False):
        self._gate = threading.Event()
        self._fail = fail
        self.calls = 0

    def release(self):
        self._gate.set()

    def __call__(self, name, scale, store_path, check_invariants):
        self.calls += 1
        if not self._gate.wait(timeout=30.0):
            raise TimeoutError("gated worker never released")
        if self._fail:
            raise RuntimeError("injected worker failure")
        return f"rendered {name} seed={scale.seed}"


def make_service(
    workers=2,
    bulk_cap=0.9,
    max_queue=64,
    max_backlog=8,
    worker_fn=None,
    store_path=None,
):
    """A service wired to a thread pool and a stub worker."""
    config = ServiceConfig(
        workers=workers,
        bulk_cap=bulk_cap,
        max_queue=max_queue,
        max_backlog=max_backlog,
        scale=SCALES["quick"],
        store_path=store_path,
    )
    return SimulationService(
        config,
        pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        worker_fn=worker_fn or quick_worker,
    )


@pytest.fixture
def gated():
    return GatedWorker()
