"""Tests for multi-tenant predictive admission.

Layers, innermost out:

* :class:`TenantQuota` / :class:`TenantFairQueue` /
  :class:`TenantAdmission` — pure scheduling units under an injected
  clock (quota parsing, paper-priority dequeue, fair-share interleave,
  wait-term starvation guard, deterministic replay of a seeded mix);
* :class:`WorkerAutoscaler` — the decide/tick control loop against a
  stub service and against the real daemon (grow opens the interstice
  a fractional cap closed on a one-worker pool; shrink returns to the
  floor once idle);
* the service pipeline — a flooding tenant cannot starve a newcomer,
  results and content keys stay byte-identical to the single-tenant
  path (the cache is shared across tenants), quotas 429 with
  tenant-scoped reasons, and Retry-After is priced from the tenant's
  own history and learned prediction ratio;
* the wire — an in-process HTTP front end with per-client tenants,
  and one subprocess test driving a real ``repro serve
  --tenant-quota`` daemon with two concurrent :class:`ServiceClient`
  tenants (the CI tenancy-smoke shape).
"""

from __future__ import annotations

import asyncio
import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import SCALES
from repro.sched.fairshare import FairShareTracker
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceMetrics,
    SimRequest,
    SimulationService,
    TenantAdmission,
    TenantFairQueue,
    TenantQuota,
    WorkerAutoscaler,
)
from repro.service.http import HttpFrontend
from tests.service.conftest import (
    GatedWorker,
    make_service,
    quick_worker,
    run_async,
)

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


class FakeClock:
    """An injectable monotonic clock the tests advance by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _thread_pool(n):
    return ThreadPoolExecutor(max_workers=n)


def make_tenant_service(worker_fn=None, **config_kwargs):
    """Like ``make_service`` but accepting the tenancy config knobs."""
    config_kwargs.setdefault("scale", SCALES["quick"])
    config = ServiceConfig(**config_kwargs)
    return SimulationService(
        config,
        pool_factory=_thread_pool,
        worker_fn=worker_fn or quick_worker,
    )


# ----------------------------------------------------------------------
# Quota parsing and bounds
# ----------------------------------------------------------------------
class TestTenantQuota:
    def test_parse_inflight_only(self):
        quota = TenantQuota.parse("4")
        assert quota.max_inflight == 4
        assert quota.max_backlog_share == 0.5

    def test_parse_with_share(self):
        quota = TenantQuota.parse("2:0.25")
        assert quota.max_inflight == 2
        assert quota.max_backlog_share == 0.25

    @pytest.mark.parametrize(
        "spec", ["", "x", "2:zz", "0", "2:0", "2:1.5", "-1"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            TenantQuota.parse(spec)

    def test_max_backlog_floor(self):
        assert TenantQuota(4, 0.25).max_backlog(8) == 2
        assert TenantQuota(4, 0.5).max_backlog(64) == 32
        # A tiny share never blocks a tenant's first queued request.
        assert TenantQuota(1, 0.01).max_backlog(8) == 1

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(autoscale_min=1)  # max missing
        with pytest.raises(ConfigurationError):
            ServiceConfig(autoscale_min=4, autoscale_max=2)
        with pytest.raises(ConfigurationError):
            # workers must start inside the autoscale range
            ServiceConfig(
                workers=1, autoscale_min=2, autoscale_max=4
            )
        with pytest.raises(ConfigurationError):
            ServiceConfig(tenant_half_life_s=0.0)


# ----------------------------------------------------------------------
# The fair queue
# ----------------------------------------------------------------------
class TestTenantFairQueue:
    def _queue(self, clock=None, **kwargs):
        clock = clock or FakeClock()
        tracker = FairShareTracker(half_life_s=300.0)
        return TenantFairQueue(tracker, clock=clock, **kwargs), clock

    def test_fifo_within_one_tenant(self):
        queue, _clock = self._queue()
        queue.push("a", "first")
        queue.push("a", "second")
        assert queue.pop().item == "first"
        assert queue.pop().item == "second"
        assert queue.pop() is None

    def test_depth_and_len(self):
        queue, _clock = self._queue()
        queue.push("a", 1)
        queue.push("a", 2)
        queue.push("b", 3)
        assert len(queue) == 3
        assert queue.depth("a") == 2
        assert queue.depth("b") == 1
        assert queue.depth("c") == 0
        assert sorted(queue.tenants()) == ["a", "b"]
        queue.pop()
        assert len(queue) == 2

    def test_charged_tenant_yields_to_newcomer(self):
        """The starvation shape in miniature: a flood queued first is
        interleaved behind a fresh tenant once it has been charged."""
        queue, clock = self._queue()
        for i in range(3):
            queue.push("flood", f"flood-{i}")
        queue.push("fresh", "fresh-0")
        queue.tracker.charge("flood", 10.0, clock.now)
        order = [queue.pop().tenant for _ in range(4)]
        assert order == ["fresh", "flood", "flood", "flood"]

    def test_uncharged_tenants_dequeue_in_arrival_order(self):
        queue, _clock = self._queue()
        queue.push("a", 1)
        queue.push("b", 2)
        queue.push("a", 3)
        assert [queue.pop().item for _ in range(3)] == [1, 2, 3]

    def test_wait_term_bounds_deprioritization(self):
        """A heavily-charged tenant's waiting head catches back up:
        after ``wait_norm_s`` seconds its score regains a full unit of
        factor, so it eventually beats any newcomer."""
        queue, clock = self._queue(wait_norm_s=1.0)
        queue.push("hog", "old")
        queue.tracker.charge("hog", 1000.0, clock.now)
        clock.now = 5.0  # waited 5 wait-norms: score >= -1 + 5
        queue.push("fresh", "new")  # score <= +1 + 0
        assert queue.pop().item == "old"

    def test_pop_eligibility_defers_not_drops(self):
        queue, _clock = self._queue()
        queue.push("a", 1)
        queue.push("b", 2)
        ticket = queue.pop(lambda tenant: tenant != "a")
        assert ticket.tenant == "b"
        # Nothing eligible: pop returns None and the lane survives.
        assert queue.pop(lambda tenant: False) is None
        assert len(queue) == 1
        assert queue.pop().item == 1

    def test_seeded_mix_replays_identically(self):
        """Determinism: the dequeue order is a pure function of the
        tenant mix, the charges and the clock — same seed, same
        order."""

        def run(seed):
            clock = FakeClock()
            tracker = FairShareTracker(half_life_s=60.0)
            queue = TenantFairQueue(tracker, clock=clock)
            rng = random.Random(seed)
            for i in range(40):
                tenant = rng.choice(["a", "b", "c"])
                queue.push(tenant, i)
                if rng.random() < 0.4:
                    tracker.charge(
                        rng.choice(["a", "b", "c"]),
                        rng.uniform(0.1, 5.0),
                        clock.now,
                    )
                clock.now += rng.uniform(0.0, 2.0)
            order = []
            while len(queue):
                ticket = queue.pop()
                order.append((ticket.tenant, ticket.item))
                clock.now += rng.uniform(0.0, 1.0)
                tracker.charge(ticket.tenant, 0.5, clock.now)
            return order

        assert run(42) == run(42)
        assert run(7) == run(7)


# ----------------------------------------------------------------------
# Admission bookkeeping
# ----------------------------------------------------------------------
class TestTenantAdmission:
    def test_inflight_accounting(self):
        admission = TenantAdmission(clock=FakeClock())
        assert admission.inflight_of("a") == 0
        admission.begin_dispatch("a")
        admission.begin_dispatch("a")
        assert admission.inflight_of("a") == 2
        admission.end_dispatch("a", 0.5, 1.0)
        assert admission.inflight_of("a") == 1
        admission.end_dispatch("a", 0.5, 1.0)
        assert admission.inflight_of("a") == 0

    def test_eligibility_follows_quota(self):
        admission = TenantAdmission(
            quota=TenantQuota(1), clock=FakeClock()
        )
        assert admission.eligible("a")
        admission.begin_dispatch("a")
        assert not admission.eligible("a")
        assert admission.eligible("b")
        admission.end_dispatch("a", 0.1, 0.1)
        assert admission.eligible("a")

    def test_end_dispatch_charges_and_teaches(self):
        clock = FakeClock()
        admission = TenantAdmission(clock=clock)
        admission.begin_dispatch("a")
        # Actual 4s against a 2s quote: usage charged, ratio learned.
        admission.end_dispatch("a", 4.0, 2.0)
        assert admission.tracker.usage("a", clock.now) == pytest.approx(
            4.0
        )
        assert admission.predictor.ratio("a") > 1.0
        assert admission.predicted_service_time("a", 2.0) > 2.0

    def test_unknown_tenant_degrades_to_heuristic(self):
        admission = TenantAdmission(clock=FakeClock())
        assert admission.predicted_service_time("new", 3.0) == 3.0
        assert admission.predicted_service_time(None, 3.0) == 3.0

    def test_pending_of_sums_queue_and_pool(self):
        admission = TenantAdmission(clock=FakeClock())
        admission.queue.push("a", "x")
        admission.begin_dispatch("a")
        assert admission.pending_of("a") == 2


# ----------------------------------------------------------------------
# Tenant-scoped metrics (regression: one tenant's heavy sweeps must
# not inflate the Retry-After quoted to another)
# ----------------------------------------------------------------------
class TestTenantMetrics:
    def test_estimated_service_time_scopes_per_tenant(self):
        metrics = ServiceMetrics()
        metrics.record_latency("bulk", 50.0)  # global mean: polluted
        metrics.record_service_time("heavy", 50.0)
        metrics.record_service_time("light", 0.5)
        assert metrics.estimated_service_time("bulk", "light") == 0.5
        assert metrics.estimated_service_time("bulk", "heavy") == 50.0
        # No tenant history: fall back to the global class chain.
        assert metrics.estimated_service_time("bulk", "new") == 50.0
        assert metrics.estimated_service_time("bulk") == 50.0

    def test_snapshot_has_tenant_section(self):
        metrics = ServiceMetrics()
        metrics.tenant("a").accepted += 2
        metrics.record_service_time("a", 1.5)
        snap = metrics.snapshot()
        assert snap["tenants"]["a"]["counters"]["accepted"] == 2
        assert snap["tenants"]["a"]["service_time"]["count"] == 1

    def test_retry_after_isolated_between_tenants(self):
        service = make_service(workers=2)
        service.metrics.record_latency("bulk", 50.0)
        service.metrics.record_service_time("heavy", 50.0)
        service.metrics.record_service_time("light", 0.5)
        assert service._retry_after(
            "bulk", 4, "heavy"
        ) == pytest.approx(100.0)
        # The light tenant's quote prices its own half-second jobs,
        # not the flood's — floored at the 1s minimum.
        assert service._retry_after(
            "bulk", 4, "light"
        ) == pytest.approx(1.0)
        assert service._retry_after(
            "bulk", 40, "light"
        ) == pytest.approx(10.0)

    def test_retry_after_uses_learned_prediction_ratio(self):
        """Predictor vs heuristic: a tenant whose jobs keep running
        2x their quote is quoted 2x the plain depth*mean/workers
        heuristic."""
        service = make_service(workers=2)
        service.metrics.record_service_time("slow", 4.0)
        heuristic = service._retry_after("bulk", 8, "slow")
        assert heuristic == pytest.approx(8 * 4.0 / 2)
        for _ in range(64):  # converge the EWMA
            service.tenancy.predictor.observe_ratio("slow", 8.0, 4.0)
        predicted = service._retry_after("bulk", 8, "slow")
        assert predicted > heuristic
        assert predicted == pytest.approx(2 * heuristic, rel=0.1)


# ----------------------------------------------------------------------
# Service pipeline: fairness, byte-identity, quotas
# ----------------------------------------------------------------------
class TestStarvation:
    def test_flood_does_not_starve_newcomer(self):
        """Tenant A floods the bulk queue; tenant B's requests,
        submitted after the whole flood, are interleaved ahead of A's
        backlog by fair-share — and every response is served."""
        order = []
        lock = threading.Lock()

        def worker(name, scale, store_path, check_invariants):
            with lock:
                order.append(scale.seed)
            time.sleep(0.02)
            return f"rendered {name} seed={scale.seed}"

        async def scenario():
            service = make_tenant_service(
                worker_fn=worker, workers=1, bulk_cap=1.0,
                max_queue=64,
            )
            await service.start()
            flood = [
                asyncio.ensure_future(
                    service.submit(
                        SimRequest(
                            "table1", seed=100 + i, priority="bulk",
                            tenant="flood",
                        )
                    )
                )
                for i in range(10)
            ]
            await asyncio.sleep(0.05)
            light = [
                asyncio.ensure_future(
                    service.submit(
                        SimRequest(
                            "table1", seed=200 + i, priority="bulk",
                            tenant="light",
                        )
                    )
                )
                for i in range(3)
            ]
            responses = await asyncio.gather(*flood, *light)
            await service.stop()
            return service, responses

        service, responses = run_async(scenario())
        assert [r.status for r in responses] == [200] * 13
        light_seeds = {200, 201, 202}
        positions = [
            i for i, seed in enumerate(order) if seed in light_seeds
        ]
        # FIFO would put the light tenant at positions 10-12; fair
        # share interleaves it ahead of the flood's backlog.
        assert len(positions) == 3
        assert max(positions) <= 7, order
        snap = service.metrics_snapshot()
        assert snap["tenants"]["flood"]["counters"]["completed"] == 10
        assert snap["tenants"]["light"]["counters"]["completed"] == 3

    def test_results_and_keys_identical_across_tenants(self):
        """Tenancy changes scheduling only: the content address
        excludes the tenant, so two tenants requesting one
        configuration share a single compute and byte-identical
        results — and both match the single-tenant path."""

        async def scenario():
            service = make_tenant_service()
            await service.start()
            first = await service.submit(
                SimRequest("table1", seed=9, priority="bulk",
                           tenant="a")
            )
            second = await service.submit(
                SimRequest("table1", seed=9, priority="bulk",
                           tenant="b")
            )
            await service.stop()
            solo = make_tenant_service()
            await solo.start()
            untagged = await solo.submit(
                SimRequest("table1", seed=9, priority="bulk")
            )
            await solo.stop()
            return service, first, second, untagged

        service, first, second, untagged = run_async(scenario())
        assert first.status == second.status == untagged.status == 200
        assert second.payload["cached"], "cache not shared"
        assert (
            first.payload["result"]
            == second.payload["result"]
            == untagged.payload["result"]
        )
        assert (
            first.payload["key"]
            == second.payload["key"]
            == untagged.payload["key"]
        )
        assert service.metrics.counters.computes == 1


class TestQuotas:
    def test_interactive_over_inflight_quota_rejected(self):
        async def scenario():
            gated = GatedWorker()
            service = make_tenant_service(
                worker_fn=gated, workers=2,
                tenant_quota=TenantQuota(1),
            )
            await service.start()
            running = asyncio.ensure_future(
                service.submit(
                    SimRequest("table1", seed=1, tenant="a")
                )
            )
            await asyncio.sleep(0.05)
            rejected = await service.submit(
                SimRequest("table1", seed=2, tenant="a")
            )
            other = asyncio.ensure_future(
                service.submit(
                    SimRequest("table1", seed=3, tenant="b")
                )
            )
            await asyncio.sleep(0.05)
            gated.release()
            ok, ok_other = await asyncio.gather(running, other)
            await service.stop()
            return service, rejected, ok, ok_other

        service, rejected, ok, ok_other = run_async(scenario())
        assert rejected.status == 429
        assert rejected.payload["quota"] is True
        assert rejected.payload["tenant"] == "a"
        assert "max in-flight" in rejected.payload["error"]
        assert rejected.retry_after >= 1.0
        # The other tenant was untouched by a's quota.
        assert ok.status == 200 and ok_other.status == 200
        counters = service.metrics.counters
        assert counters.quota_rejections == 1
        assert counters.rejections == 1  # quota 429s are rejections too
        tenant = service.metrics.tenants["a"]
        assert tenant.quota_rejections == 1
        assert tenant.rejections == 1

    def test_bulk_over_backlog_share_rejected(self):
        async def scenario():
            gated = GatedWorker()
            service = make_tenant_service(
                worker_fn=gated, workers=1, bulk_cap=1.0,
                max_queue=8,
                tenant_quota=TenantQuota(8, 0.25),  # 2 queued max
            )
            await service.start()
            # Hold the single worker with an interactive dispatch so
            # the cap ((1+1)/1 > 1.0) keeps all bulk queued.
            holder = asyncio.ensure_future(
                service.submit(SimRequest("table1", seed=99))
            )
            await asyncio.sleep(0.05)
            queued = [
                asyncio.ensure_future(
                    service.submit(
                        SimRequest(
                            "table1", seed=i, priority="bulk",
                            tenant="a",
                        )
                    )
                )
                for i in (1, 2)
            ]
            await asyncio.sleep(0.05)
            rejected = await service.submit(
                SimRequest("table1", seed=3, priority="bulk",
                           tenant="a")
            )
            other = asyncio.ensure_future(
                service.submit(
                    SimRequest("table1", seed=4, priority="bulk",
                               tenant="b")
                )
            )
            await asyncio.sleep(0.05)
            gated.release()
            responses = await asyncio.gather(holder, other, *queued)
            await service.stop()
            return service, rejected, responses

        service, rejected, responses = run_async(scenario())
        assert rejected.status == 429
        assert rejected.payload["quota"] is True
        assert "backlog share" in rejected.payload["error"]
        # Tenant b still queued freely while a was over its share.
        assert [r.status for r in responses] == [200] * 4
        assert service.metrics.tenants["a"].quota_rejections == 1

    def test_bulk_at_inflight_quota_defers_never_rejects(self):
        """Bulk over the in-flight quota is a scheduling condition,
        not an error: the lane waits for the tenant's slot and every
        request completes."""

        async def scenario():
            service = make_tenant_service(
                workers=2, bulk_cap=1.0,
                tenant_quota=TenantQuota(1),
            )
            await service.start()
            responses = await asyncio.gather(
                *[
                    service.submit(
                        SimRequest(
                            "table1", seed=i, priority="bulk",
                            tenant="a",
                        )
                    )
                    for i in range(4)
                ]
            )
            await service.stop()
            return service, responses

        service, responses = run_async(scenario())
        assert [r.status for r in responses] == [200] * 4
        assert service.metrics.counters.quota_rejections == 0
        assert service.metrics.counters.rejections == 0


# ----------------------------------------------------------------------
# The autoscaler
# ----------------------------------------------------------------------
class _FakeService:
    """Just the signal surface the autoscaler reads."""

    class _Config:
        def __init__(self, bulk_cap):
            self.bulk_cap = bulk_cap

    def __init__(self, workers=2, bulk_cap=0.5):
        self.config = self._Config(bulk_cap)
        self._workers = workers
        self.depth = 0
        self.busy = 0
        self.resized = []

    @property
    def workers(self):
        return self._workers

    def bulk_queue_depth(self):
        return self.depth

    def _cap_allows(self):
        return (
            (self.busy + 1) / self._workers
            <= self.config.bulk_cap + 1e-9
        )

    def utilization(self):
        return self.busy / self._workers

    async def resize_workers(self, n):
        self.resized.append(n)
        self._workers = n


class TestAutoscaler:
    def test_validation(self):
        service = _FakeService()
        with pytest.raises(ConfigurationError):
            WorkerAutoscaler(service, 0, 4)
        with pytest.raises(ConfigurationError):
            WorkerAutoscaler(service, 4, 2)
        with pytest.raises(ConfigurationError):
            WorkerAutoscaler(service, 1, 4, patience=0)
        with pytest.raises(ConfigurationError):
            WorkerAutoscaler(service, 1, 4, shrink_util=1.0)

    def test_grow_needs_patience(self):
        service = _FakeService(workers=2, bulk_cap=0.5)
        service.depth, service.busy = 3, 2  # cap-blocked backlog
        scaler = WorkerAutoscaler(service, 1, 4, patience=2)
        assert scaler.decide() == 0
        assert scaler.decide() == 1
        assert scaler.decide() == 0  # streak reset after a grow

    def test_no_grow_at_maximum(self):
        service = _FakeService(workers=4, bulk_cap=0.5)
        service.depth, service.busy = 3, 4
        scaler = WorkerAutoscaler(service, 1, 4, patience=1)
        assert scaler.decide() == 0

    def test_shrink_when_idle(self):
        service = _FakeService(workers=4, bulk_cap=0.5)
        scaler = WorkerAutoscaler(
            service, 2, 4, patience=2, shrink_util=0.5
        )
        assert scaler.decide() == 0
        assert scaler.decide() == -1

    def test_no_shrink_below_minimum(self):
        service = _FakeService(workers=2, bulk_cap=0.5)
        scaler = WorkerAutoscaler(service, 2, 4, patience=1)
        assert scaler.decide() == 0

    def test_mixed_signals_reset_streaks(self):
        service = _FakeService(workers=2, bulk_cap=0.5)
        scaler = WorkerAutoscaler(service, 1, 4, patience=2)
        service.depth, service.busy = 3, 2
        assert scaler.decide() == 0  # grow streak 1
        service.depth, service.busy = 0, 0
        assert scaler.decide() == 0  # shrink streak 1, grow reset
        service.depth, service.busy = 3, 2
        assert scaler.decide() == 0  # grow streak 1 again
        assert scaler.decide() == 1

    def test_tick_applies_resize(self):
        service = _FakeService(workers=2, bulk_cap=0.5)
        service.depth, service.busy = 3, 2

        async def scenario():
            scaler = WorkerAutoscaler(service, 1, 4, patience=1)
            return await scaler.tick()

        assert run_async(scenario()) == 1
        assert service.resized == [3]

    def test_grow_opens_the_interstice_then_shrinks_back(self):
        """End to end against the real daemon: a one-worker pool under
        a fractional cap can never admit bulk ((0+1)/1 > 0.9); the
        autoscaler grows the pool, the queued request dispatches, and
        once idle the pool shrinks back to the floor."""

        async def scenario():
            service = make_tenant_service(
                workers=1, bulk_cap=0.9,
                autoscale_min=1, autoscale_max=2,
                autoscale_interval=60.0,  # background task dormant
            )
            await service.start()
            task = asyncio.ensure_future(
                service.submit(
                    SimRequest("table1", seed=1, priority="bulk",
                               tenant="a")
                )
            )
            await asyncio.sleep(0.05)
            starved_depth = service.bulk_queue_depth()
            deltas = [await service.autoscaler.tick()]
            deltas.append(await service.autoscaler.tick())
            grown_to = service.workers
            response = await task
            deltas.append(await service.autoscaler.tick())
            deltas.append(await service.autoscaler.tick())
            shrunk_to = service.workers
            health = service.healthz()
            await service.stop()
            return (service, starved_depth, deltas, grown_to,
                    response, shrunk_to, health)

        (service, starved_depth, deltas, grown_to, response,
         shrunk_to, health) = run_async(scenario())
        assert starved_depth == 1  # the cap left no interstice
        assert deltas == [0, 1, 0, -1]
        assert grown_to == 2
        assert response.status == 200
        assert shrunk_to == 1
        assert health["autoscale"] == {"min": 1, "max": 2}
        counters = service.metrics.counters
        assert counters.scale_ups == 1
        assert counters.scale_downs == 1


class TestResize:
    def test_resize_validates_and_counts(self):
        async def scenario():
            service = make_tenant_service(workers=2)
            await service.start()
            with pytest.raises(ConfigurationError):
                await service.resize_workers(0)
            await service.resize_workers(2)  # no-op
            await service.resize_workers(4)
            grew = (service.workers, service.healthz()["workers"])
            await service.resize_workers(3)
            await service.stop()
            return service, grew

        service, grew = run_async(scenario())
        assert grew == (4, 4)
        assert service.workers == 3
        counters = service.metrics.counters
        assert counters.scale_ups == 1
        assert counters.scale_downs == 1

    def test_inflight_work_survives_resize(self, gated):
        """A dispatch riding the pre-resize pool completes on it; the
        swap is not counted as a crash replacement."""

        async def scenario():
            service = make_tenant_service(worker_fn=gated, workers=2)
            await service.start()
            task = asyncio.ensure_future(
                service.submit(SimRequest("table1", seed=1))
            )
            await asyncio.sleep(0.05)
            generation_before = service.supervisor.generation
            await service.resize_workers(3)
            generation_after = service.supervisor.generation
            gated.release()
            response = await task
            await service.stop()
            return (service, response, generation_before,
                    generation_after)

        service, response, gen_before, gen_after = run_async(
            scenario()
        )
        assert response.status == 200
        assert gen_after == gen_before + 1
        assert service.metrics.counters.worker_replacements == 0


# ----------------------------------------------------------------------
# The wire: header-based tenancy over real HTTP
# ----------------------------------------------------------------------
class TestHttpTenancy:
    def test_client_tenant_header_attributes_requests(self):
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()

        def call(coro, timeout=30.0):
            return asyncio.run_coroutine_threadsafe(
                coro, loop
            ).result(timeout)

        service = make_tenant_service(
            workers=2, tenant_quota=TenantQuota(1)
        )
        frontend = HttpFrontend(service, port=0)
        try:
            call(service.start())
            call(frontend.start())
            alice = ServiceClient(
                port=frontend.port, tenant="alice"
            )
            bob = ServiceClient(port=frontend.port, tenant="bob")
            first = alice.run("table1", seed=1, priority="bulk")
            assert first.ok, first.payload
            # Cross-tenant cache over the wire: byte-identical.
            again = bob.run("table1", seed=1, priority="bulk")
            assert again.ok and again.cached
            assert again.result == first.result
            # A per-call tenant in the body overrides the header.
            override = alice.run(
                "table1", seed=2, tenant="carol"
            )
            assert override.ok
            snap = alice.metrics().payload
            tenants = snap["tenants"]
            assert tenants["alice"]["counters"]["computes"] == 1
            assert tenants["bob"]["counters"]["accepted"] == 1
            assert tenants["bob"]["counters"]["computes"] == 0
            assert tenants["carol"]["counters"]["computes"] == 1
            assert "default" not in tenants
            alice.close()
            bob.close()
        finally:
            call(frontend.stop())
            call(service.stop())
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10.0)
            loop.close()


class TestSubprocessTenancy:
    def test_two_tenants_against_real_daemon(self, tmp_path):
        """The CI tenancy-smoke shape: a real ``repro serve`` with a
        tenant quota, one flooding and one light tenant driven by
        concurrent :class:`ServiceClient` instances.  Pins the
        starvation outcome (everyone served or explicitly quota-
        bounced, nothing stuck), per-tenant quota 429s on the wire,
        cross-tenant byte-identity and the per-tenant /metrics
        section."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC)
        port = _free_port()
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--scale", "quick", "--port", str(port),
                "--workers", "1", "--bulk-cap", "1.0",
                "--max-queue", "4", "--tenant-quota", "8:0.25",
                "--store", str(tmp_path / "store"),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        alice = ServiceClient(port=port, timeout=120.0,
                              tenant="alice")
        bob = ServiceClient(port=port, timeout=120.0, tenant="bob")
        try:
            alice.wait_until_healthy(timeout=30.0)
            # Alice floods 5 concurrent bulk requests at a per-tenant
            # backlog share of max(1, 0.25*4) = 1: one dispatches, one
            # queues, the overflow is quota-bounced.
            flood = alice.run_many(
                [
                    {"experiment": "table1", "seed": s,
                     "priority": "bulk"}
                    for s in range(5)
                ],
                max_workers=5,
            )
            # Bob's lane is fresh: his request rides through.
            bob_reply = bob.run("table1", seed=50, priority="bulk")
            assert bob_reply.ok, bob_reply.payload
            statuses = sorted(r.status for r in flood)
            assert set(statuses) <= {200, 429}
            served = [r for r in flood if r.ok]
            bounced = [r for r in flood if r.status == 429]
            assert served, "flood entirely rejected"
            assert bounced, "quota never bounced the flood"
            for reply in bounced:
                assert reply.payload["quota"] is True
                assert reply.payload["tenant"] == "alice"
                assert reply.retry_after >= 1.0
            # Cross-tenant byte-identity on the wire: bob re-requests
            # one of alice's completed seeds and gets her cached bytes.
            seed = served[0].payload["seed"]
            again = bob.run("table1", seed=seed, priority="bulk")
            assert again.ok and again.cached
            assert again.result == served[0].result
            snap = alice.metrics().payload
            tenants = snap["tenants"]
            assert tenants["alice"]["counters"]["quota_rejections"] \
                == len(bounced)
            assert tenants["bob"]["counters"]["completed"] >= 1
            assert snap["counters"]["quota_rejections"] == len(bounced)
        finally:
            alice.close()
            bob.close()
            proc.send_signal(signal.SIGTERM)
            try:
                assert proc.wait(timeout=30.0) == 0
            except subprocess.TimeoutExpired:
                proc.kill()
                raise


# ----------------------------------------------------------------------
def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]
