"""Project width validation where the spec first meets a machine.

A project whose nominal width (or elastic ``max_width``) exceeds the
target machine's CPU count must fail immediately — at job
materialization and controller construction — with an error naming the
machine and its capacity, not deep inside the engine.
"""

from __future__ import annotations

import pytest

from repro.core.controller import InterstitialController
from repro.errors import ConfigurationError, ValidationError
from repro.jobs import InterstitialProject
from repro.machines import Machine


@pytest.fixture
def machine() -> Machine:
    return Machine(name="SmallBox", cpus=32, clock_ghz=1.0)


def _project(**overrides) -> InterstitialProject:
    kwargs = dict(n_jobs=4, cpus_per_job=16, runtime_1ghz=100.0,
                  name="widths")
    kwargs.update(overrides)
    return InterstitialProject(**kwargs)


def test_valid_widths_pass(machine) -> None:
    _project().validate_for(machine)
    _project(min_width=4, max_width=32).validate_for(machine)
    job = _project().make_job(machine)
    assert job.cpus == 16


def test_nominal_width_beyond_machine(machine) -> None:
    project = _project(cpus_per_job=64)
    with pytest.raises(ValidationError) as excinfo:
        project.validate_for(machine)
    # The error names the machine, its capacity and the offending width.
    message = str(excinfo.value)
    assert "SmallBox" in message
    assert "32" in message
    assert "64" in message
    with pytest.raises(ValidationError):
        project.make_job(machine)


def test_elastic_max_width_beyond_machine(machine) -> None:
    project = _project(min_width=4, max_width=64)
    with pytest.raises(ValidationError, match="SmallBox"):
        project.validate_for(machine)


def test_controller_construction_validates_width(machine) -> None:
    with pytest.raises(ConfigurationError, match="SmallBox"):
        InterstitialController(machine, _project(cpus_per_job=64))
    # The elastic range is checked too, even though the nominal fits.
    with pytest.raises(ConfigurationError, match="SmallBox"):
        InterstitialController(
            machine, _project(min_width=4, max_width=64)
        )
