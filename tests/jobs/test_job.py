"""Tests for the Job model."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.jobs import Job, JobKind, JobState

from tests.conftest import make_job


class TestValidation:
    def test_valid_job(self):
        job = make_job(cpus=4, runtime=100.0)
        assert job.cpus == 4
        assert job.state is JobState.CREATED

    def test_rejects_zero_cpus(self):
        with pytest.raises(ValidationError):
            make_job(cpus=0)

    def test_rejects_negative_cpus(self):
        with pytest.raises(ValidationError):
            make_job(cpus=-2)

    def test_rejects_bool_cpus(self):
        with pytest.raises(ValidationError):
            Job(cpus=True, runtime=1.0, estimate=1.0)

    def test_rejects_non_int_cpus(self):
        with pytest.raises(ValidationError):
            Job(cpus=2.5, runtime=1.0, estimate=1.0)

    def test_rejects_negative_runtime(self):
        with pytest.raises(ValidationError):
            make_job(runtime=-1.0)

    def test_rejects_estimate_below_runtime(self):
        # Batch systems kill at the wall limit, so runtime <= estimate.
        with pytest.raises(ValidationError):
            Job(cpus=1, runtime=100.0, estimate=50.0)

    def test_allows_estimate_equal_runtime(self):
        job = Job(cpus=1, runtime=100.0, estimate=100.0)
        assert job.estimate == 100.0

    def test_rejects_negative_submit(self):
        with pytest.raises(ValidationError):
            make_job(submit=-5.0)

    def test_rejects_nan_runtime(self):
        with pytest.raises(ValidationError):
            Job(cpus=1, runtime=math.nan, estimate=1.0)

    def test_rejects_infinite_estimate(self):
        with pytest.raises(ValidationError):
            Job(cpus=1, runtime=1.0, estimate=math.inf)

    def test_unique_auto_ids(self):
        a, b = make_job(), make_job()
        assert a.job_id != b.job_id


class TestDerived:
    def test_area(self):
        assert make_job(cpus=4, runtime=50.0).area == 200.0

    def test_estimated_area(self):
        job = make_job(cpus=4, runtime=50.0, estimate=100.0)
        assert job.estimated_area == 400.0

    def test_kind_flags(self):
        assert make_job().is_native
        assert not make_job().is_interstitial
        ij = make_job(kind=JobKind.INTERSTITIAL)
        assert ij.is_interstitial and not ij.is_native

    def test_wait_time_requires_start(self):
        with pytest.raises(ValueError):
            make_job().wait_time

    def test_wait_time(self):
        job = make_job(submit=10.0)
        job.start_time = 35.0
        assert job.wait_time == 25.0

    def test_expansion_factor_definition(self):
        # Paper: EF = 1 + wait / runtime.
        job = make_job(runtime=100.0, submit=0.0)
        job.start_time = 50.0
        assert job.expansion_factor == 1.5

    def test_expansion_factor_no_wait(self):
        job = make_job(runtime=100.0)
        job.start_time = 0.0
        assert job.expansion_factor == 1.0

    def test_expansion_factor_zero_runtime(self):
        job = Job(cpus=1, runtime=0.0, estimate=0.0)
        job.start_time = 0.0
        assert job.expansion_factor == 1.0
        delayed = Job(cpus=1, runtime=0.0, estimate=0.0)
        delayed.start_time = 5.0
        assert math.isinf(delayed.expansion_factor)

    def test_estimated_finish(self):
        job = make_job(runtime=10.0, estimate=100.0)
        job.start_time = 7.0
        assert job.estimated_finish == 107.0


class TestCopyUnscheduled:
    def test_clears_schedule_state(self):
        job = make_job(cpus=2, runtime=60.0)
        job.start_time = 5.0
        job.finish_time = 65.0
        job.state = JobState.FINISHED
        copy = job.copy_unscheduled()
        assert copy.start_time is None
        assert copy.finish_time is None
        assert copy.state is JobState.CREATED

    def test_preserves_identity_and_shape(self):
        job = make_job(cpus=3, runtime=42.0, estimate=84.0, submit=7.0,
                       user="alice", group="physics")
        copy = job.copy_unscheduled()
        assert copy.job_id == job.job_id
        assert copy.cpus == job.cpus
        assert copy.runtime == job.runtime
        assert copy.estimate == job.estimate
        assert copy.submit_time == job.submit_time
        assert copy.user == job.user
        assert copy.group == job.group
        assert copy.kind == job.kind


@given(
    cpus=st.integers(1, 1024),
    runtime=st.floats(0.0, 1e6),
    over=st.floats(1.0, 100.0),
    submit=st.floats(0.0, 1e8),
)
def test_property_valid_jobs_construct(cpus, runtime, over, submit):
    """Any (cpus>0, runtime>=0, estimate>=runtime) combination is valid
    and derived quantities are consistent."""
    job = Job(
        cpus=cpus, runtime=runtime, estimate=runtime * over,
        submit_time=submit,
    )
    assert job.area == cpus * runtime
    assert job.estimated_area >= job.area
