"""Tests for InterstitialProject."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.jobs import InterstitialProject, JobKind
from repro.machines import blue_mountain


class TestValidation:
    def test_rejects_zero_jobs(self):
        with pytest.raises(ValidationError):
            InterstitialProject(n_jobs=0, cpus_per_job=1, runtime_1ghz=120.0)

    def test_rejects_zero_cpus(self):
        with pytest.raises(ValidationError):
            InterstitialProject(n_jobs=1, cpus_per_job=0, runtime_1ghz=120.0)

    def test_rejects_zero_runtime(self):
        with pytest.raises(ValidationError):
            InterstitialProject(n_jobs=1, cpus_per_job=1, runtime_1ghz=0.0)


class TestSizing:
    def test_paper_77_peta_cycles(self):
        # Table 2 row 1: 64k single-CPU jobs of 120 s @ 1 GHz ~ 7.7 PC.
        project = InterstitialProject(
            n_jobs=64_000, cpus_per_job=1, runtime_1ghz=120.0
        )
        assert project.peta_cycles == pytest.approx(7.68)

    def test_paper_123_peta_cycles(self):
        project = InterstitialProject(
            n_jobs=32_000, cpus_per_job=32, runtime_1ghz=120.0
        )
        assert project.peta_cycles == pytest.approx(122.88)

    def test_from_peta_cycles_roundtrip(self):
        project = InterstitialProject.from_peta_cycles(
            7.7, cpus_per_job=32, runtime_1ghz=120.0
        )
        assert project.peta_cycles == pytest.approx(7.7, rel=0.01)

    def test_from_peta_cycles_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            InterstitialProject.from_peta_cycles(0.0, 1, 120.0)

    @given(
        peta=st.floats(0.001, 500.0),
        cpus=st.integers(1, 64),
        runtime=st.floats(10.0, 7200.0),
    )
    def test_from_peta_cycles_property(self, peta, cpus, runtime):
        project = InterstitialProject.from_peta_cycles(peta, cpus, runtime)
        # Rounding the job count keeps the size within half a job —
        # except tiny requests, which clamp up to a single job.
        per_job = cpus * runtime * 1e9 / 1e15
        if project.n_jobs == 1:
            assert peta <= per_job + per_job / 2 + 1e-12
        else:
            assert abs(project.peta_cycles - peta) <= per_job / 2 + 1e-12


class TestRuntimeNormalization:
    def test_blue_mountain(self):
        project = InterstitialProject(
            n_jobs=1, cpus_per_job=32, runtime_1ghz=120.0
        )
        assert project.runtime_on(blue_mountain()) == pytest.approx(
            458.0, abs=0.1
        )

    def test_960s_on_blue_mountain(self):
        # Paper: 960 s @ 1 GHz -> 3664 s on Blue Mountain.
        project = InterstitialProject(
            n_jobs=1, cpus_per_job=32, runtime_1ghz=960.0
        )
        assert project.runtime_on(blue_mountain()) == pytest.approx(
            3664.1, abs=0.5
        )


class TestJobMaterialization:
    def test_make_job_fields(self, small_machine):
        project = InterstitialProject(
            n_jobs=10, cpus_per_job=4, runtime_1ghz=100.0, user="sweeper",
            group="sweeps",
        )
        job = project.make_job(small_machine, submit_time=55.0)
        assert job.kind is JobKind.INTERSTITIAL
        assert job.cpus == 4
        assert job.submit_time == 55.0
        assert job.user == "sweeper"
        # Interstitial runtimes are exactly known: estimate == runtime.
        assert job.estimate == job.runtime

    def test_make_jobs_count(self, small_machine):
        project = InterstitialProject(
            n_jobs=10, cpus_per_job=1, runtime_1ghz=100.0
        )
        jobs = project.make_jobs(small_machine, 7)
        assert len(jobs) == 7
        assert len({j.job_id for j in jobs}) == 7

    def test_iter_jobs_yields_all(self, small_machine):
        project = InterstitialProject(
            n_jobs=5, cpus_per_job=2, runtime_1ghz=60.0
        )
        assert len(list(project.iter_jobs(small_machine))) == 5

    def test_describe_mentions_size(self):
        project = InterstitialProject(
            n_jobs=64_000, cpus_per_job=1, runtime_1ghz=120.0, name="sweep"
        )
        text = project.describe()
        assert "sweep" in text and "64000" in text
