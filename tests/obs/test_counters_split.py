"""The preemption counter split: kills vs shrinks stay distinguishable.

``preemptions`` historically counted killed interstitial jobs; elastic
shrinks reclaim CPUs without wasting work, so the counter is split into
``preempt_kills`` and ``preempt_shrinks``.  The old name survives as a
read-only alias for the kill count, and both split fields must ride
through ``merge`` like any other counter.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.obs import Counters


def test_preemptions_aliases_kills() -> None:
    counters = Counters(preempt_kills=3, preempt_shrinks=7)
    assert counters.preemptions == 3
    # Shrinks never leak into the historical kill count.
    assert Counters(preempt_shrinks=5).preemptions == 0


def test_preemptions_alias_is_read_only() -> None:
    with pytest.raises(AttributeError):
        Counters().preemptions = 4  # type: ignore[misc]


def test_merge_adds_split_fields() -> None:
    a = Counters(preempt_kills=1, preempt_shrinks=2, grows=3,
                 molded_starts=4)
    b = Counters(preempt_kills=10, preempt_shrinks=20, grows=30,
                 molded_starts=40)
    merged = a.merge(b)
    assert merged.preempt_kills == 11
    assert merged.preempt_shrinks == 22
    assert merged.grows == 33
    assert merged.molded_starts == 44
    assert merged.preemptions == 11


def test_alias_is_not_a_field() -> None:
    """The property must stay off the dataclass fields, or fields()-based
    merging would double-count it."""
    names = {f.name for f in dataclasses.fields(Counters)}
    assert "preemptions" not in names
    assert {"preempt_kills", "preempt_shrinks", "grows",
            "molded_starts"} <= names
