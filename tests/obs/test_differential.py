"""Differential checks: observability must never change the physics.

The recorder is a pure observer — running the same configuration with
``NullRecorder`` (the zero-overhead default) and ``MemoryRecorder``
must produce *identical* ``SimResult``s, and every recorder flavor
must serialize the same record stream to the same bytes.
"""

from __future__ import annotations

import io
from typing import Optional

import numpy as np

from repro.core.runners import run_continual, run_native
from repro.faults import FaultModel
from repro.jobs import InterstitialProject, Job
from repro.machines import Machine
from repro.obs import (
    JsonlRecorder,
    MemoryRecorder,
    NullRecorder,
    TraceRecorder,
)
from repro.sim.results import SimResult
from tests.conftest import random_native_trace

SEED = 20030915


def _machine() -> Machine:
    return Machine(name="DiffBox", cpus=64, clock_ghz=1.0)


def _trace(machine: Machine) -> "list[Job]":
    jobs = random_native_trace(
        np.random.default_rng(SEED), machine, n_jobs=35
    )
    # Job ids default to a process-global counter; pin them so repeated
    # runs of the same configuration are comparable record-for-record.
    for i, job in enumerate(jobs):
        job.job_id = i + 1
    return jobs


def _run(recorder: Optional[TraceRecorder]) -> SimResult:
    machine = _machine()
    faults = FaultModel(mtbf=8.0e4, mttr=1800.0, cpus_per_node=4, seed=SEED)
    project = InterstitialProject(
        n_jobs=1, cpus_per_job=4, runtime_1ghz=600.0
    )
    result, _ = run_continual(
        machine,
        _trace(machine),
        project,
        faults=faults,
        recorder=recorder,
    )
    return result


def _fingerprint(result: SimResult) -> tuple:
    """Everything physics-level about a run, recorder-independent."""
    def job_key(job: Job) -> tuple:
        return (job.job_id, job.cpus, job.submit_time, job.start_time,
                job.finish_time, job.state.name, job.kind.name)

    return (
        tuple(sorted(job_key(j) for j in result.finished)),
        tuple(sorted(job_key(j) for j in result.unfinished)),
        tuple(sorted(job_key(j) for j in result.killed)),
        tuple(sorted(job_key(j) for j in result.dead_lettered)),
        result.end_time,
        result.horizon,
        tuple(sorted(result.attempts.items())),
        tuple(result.fault_transitions),
        result.n_failures,
        result.counters.as_dict(),
    )


def test_null_vs_memory_recorder_identical_results() -> None:
    baseline = _fingerprint(_run(None))
    null = _fingerprint(_run(NullRecorder()))
    memory = _fingerprint(_run(MemoryRecorder()))
    assert null == baseline
    assert memory == baseline


def test_memory_and_jsonl_recorders_agree_byte_for_byte() -> None:
    memory = MemoryRecorder()
    _run(memory)
    buffer = io.StringIO()
    jsonl = JsonlRecorder(buffer)
    _run(jsonl)
    jsonl.close()
    assert buffer.getvalue() == memory.to_jsonl()


def test_jsonl_buffer_size_does_not_change_bytes() -> None:
    outputs = []
    for buffer_records in (1, 7, 4096):
        buffer = io.StringIO()
        recorder = JsonlRecorder(buffer, buffer_records=buffer_records)
        _run(recorder)
        recorder.close()
        outputs.append(buffer.getvalue())
    assert outputs[0] == outputs[1] == outputs[2]


def test_native_run_recorder_invariance(small_machine) -> None:
    """Same holds for the plain native path (no controller, no faults)."""
    trace = _trace(small_machine)
    bare = run_native(small_machine, [j.copy_unscheduled() for j in trace])
    rec = MemoryRecorder()
    observed = run_native(
        small_machine, [j.copy_unscheduled() for j in trace], recorder=rec
    )
    assert _fingerprint(bare) == _fingerprint(observed)
    assert rec.records
