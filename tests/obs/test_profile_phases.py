"""Phase-timer reconciliation: the profile's phases must add up.

The engine brackets event-queue pops, event dispatch and the scheduling
pass; the scheduler brackets its incremental maintenance
(``priority_maintenance``, ``release_timeline``) *inside* the pass, and
fault application nests inside dispatch.  These tests pin the phase
inventory and check the arithmetic: children never exceed their parent,
and the disjoint top-level phases never exceed the measured wall time.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.runners import run_continual, run_native
from repro.faults import FaultModel
from repro.jobs import InterstitialProject
from repro.machines import Machine
from repro.obs import PhaseTimers
from repro.sched import PerUserRuntimePredictor, pbs_scheduler
from tests.conftest import random_native_trace

SEED = 20030915

#: Engine-level phases; disjoint spans of the run loop.
TOP_LEVEL = ("event_queue_ops", "event_dispatch", "scheduling_pass")
#: (child, parent) nesting pairs.
NESTED = (
    ("fault_apply", "event_dispatch"),
    ("priority_maintenance", "scheduling_pass"),
    ("release_timeline", "scheduling_pass"),
)

#: perf_counter jitter allowance per accumulated span pair.
EPS = 5e-3


def _timed_run() -> "tuple[PhaseTimers, float]":
    machine = Machine(name="PhaseBox", cpus=64, clock_ghz=1.0,
                      queue_algorithm="PBS")
    trace = random_native_trace(
        np.random.default_rng(SEED), machine, n_jobs=60
    )
    project = InterstitialProject(
        n_jobs=1, cpus_per_job=4, runtime_1ghz=600.0
    )
    faults = FaultModel(mtbf=8.0e4, mttr=1800.0, cpus_per_node=4, seed=SEED)
    # The predictor makes the scheduler maintain its corrected release
    # cache, so the release_timeline phase is exercised too.
    scheduler = pbs_scheduler(predictor=PerUserRuntimePredictor())
    timers = PhaseTimers()
    wall_t0 = perf_counter()
    run_continual(
        machine, trace, project,
        scheduler=scheduler, faults=faults, timers=timers,
    )
    wall_s = perf_counter() - wall_t0
    return timers, wall_s


def test_all_phases_recorded() -> None:
    timers, _ = _timed_run()
    stats = timers.stats()
    for phase in TOP_LEVEL:
        assert phase in stats, phase
        assert stats[phase].calls > 0
        assert stats[phase].total_s >= 0.0
    # PBS fair share charges on every finish and the predictor learns
    # from it while faults churn the running set, so both maintenance
    # phases and the fault path must have fired.
    for child, _parent in NESTED:
        assert child in stats, child
        assert stats[child].calls > 0


def test_nested_phases_within_parents() -> None:
    timers, _ = _timed_run()
    stats = timers.stats()
    fault = stats["fault_apply"].total_s
    assert fault <= stats["event_dispatch"].total_s + EPS
    maintenance = (
        stats["priority_maintenance"].total_s
        + stats["release_timeline"].total_s
    )
    assert maintenance <= stats["scheduling_pass"].total_s + EPS


def test_top_level_phases_reconcile_with_wall_time() -> None:
    timers, wall_s = _timed_run()
    stats = timers.stats()
    top = sum(stats[phase].total_s for phase in TOP_LEVEL)
    assert top <= wall_s + EPS
    # The hot loop is essentially nothing *but* these phases; they
    # should account for most of the elapsed time, not a sliver.
    assert top >= 0.2 * wall_s


def test_format_reports_wall_share() -> None:
    timers, wall_s = _timed_run()
    table = timers.format(wall_s=wall_s)
    assert "% wall" in table
    for phase in TOP_LEVEL:
        assert phase in table


def test_native_run_without_faults_skips_fault_phase(small_machine) -> None:
    trace = random_native_trace(
        np.random.default_rng(SEED), small_machine, n_jobs=20
    )
    timers = PhaseTimers()
    run_native(small_machine, trace, timers=timers)
    stats = timers.stats()
    assert "fault_apply" not in stats
    for phase in TOP_LEVEL:
        assert phase in stats
