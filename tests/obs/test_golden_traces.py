"""Golden-trace regression suite.

Each canonical configuration in :mod:`tests.obs.golden_cases` is re-run
and its JSONL trace compared *byte for byte* against the checked-in
golden file.  A mismatch means the engine's event-level behavior
changed: scheduling order, tie-breaking, fault victim selection, the
record schema, or float formatting.  If the change is intentional,
regenerate with ``pytest tests/obs --regen-golden`` and review the
golden diff like any other code change.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from tests.obs.golden_cases import CASES, render_case

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_trace(name: str, request) -> None:
    text = render_case(name)
    path = GOLDEN_DIR / f"{name}.jsonl"
    if request.config.getoption("--regen-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text, encoding="utf-8")
        pytest.skip(f"regenerated {path.name}")
    assert path.is_file(), (
        f"missing golden file {path}; generate it with "
        f"'pytest tests/obs --regen-golden'"
    )
    golden = path.read_text(encoding="utf-8")
    assert text == golden, (
        f"engine trace for {name!r} diverged from {path.name} "
        f"({len(text.splitlines())} lines vs {len(golden.splitlines())}); "
        f"if the behavior change is intentional, run "
        f"'pytest tests/obs --regen-golden' and review the diff"
    )


def test_render_is_deterministic() -> None:
    """The harness itself must be replayable: two renders of the same
    case in one process yield identical bytes."""
    name = sorted(CASES)[0]
    assert render_case(name) == render_case(name)
