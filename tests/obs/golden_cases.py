"""Canonical engine configurations pinned by the golden-trace suite.

Each case is a fully seeded simulation small enough to check its JSONL
trace into the repository: per machine preset one *native* baseline,
one *faulted* native run, and one *continual* interstitial run, plus a
single *malleable* elastic run on Blue Pacific (shrink/grow records).
The traces pin scheduling order, tie-breaking, fault victim selection
and the record schema all at once — any engine change that reorders
events shows up as a golden diff instead of a silently shifted table.

Regenerate (and review the diff!) with ``pytest --regen-golden``.
"""

from __future__ import annotations

import io
from typing import Callable, Dict

import numpy as np

from repro.core.runners import run_continual, run_native, run_with_controller
from repro.elastic import ElasticitySpec, elastic_controller
from repro.faults import FaultModel
from repro.jobs import InterstitialProject
from repro.machines import preset
from repro.machines.presets import preset_names
from repro.obs import JsonlRecorder, TraceRecorder
from repro.workload.synthetic import synthetic_trace_for

#: Root seed for the golden traces (independent of experiment scales).
GOLDEN_SEED = 20030915

#: Fraction of each machine's paper log replayed (keeps files small).
GOLDEN_TRACE_SCALE = 0.005


def _trace(machine_name: str, salt: int):
    return synthetic_trace_for(
        machine_name,
        rng=np.random.default_rng((GOLDEN_SEED, salt)),
        scale=GOLDEN_TRACE_SCALE,
    )


def _native(machine_name: str, recorder: TraceRecorder) -> None:
    machine = preset(machine_name)
    trace = _trace(machine_name, 0)
    run_native(machine, trace.jobs, horizon=trace.duration,
               recorder=recorder)


def _faulted(machine_name: str, recorder: TraceRecorder) -> None:
    machine = preset(machine_name)
    trace = _trace(machine_name, 1)
    faults = FaultModel(
        mtbf=2.0e5, mttr=7200.0, cpus_per_node=16, seed=GOLDEN_SEED
    )
    run_native(machine, trace.jobs, faults=faults, horizon=trace.duration,
               recorder=recorder)


def _continual(machine_name: str, recorder: TraceRecorder) -> None:
    machine = preset(machine_name)
    trace = _trace(machine_name, 2)
    project = InterstitialProject(
        n_jobs=1,  # placeholder; continual feeding ignores it
        cpus_per_job=max(1, machine.cpus // 4),
        runtime_1ghz=1800.0,
        name=f"golden-{machine_name}",
        user="golden",
        group="golden",
    )
    run_continual(machine, trace.jobs, project, horizon=trace.duration,
                  recorder=recorder)


def _malleable(machine_name: str, recorder: TraceRecorder) -> None:
    machine = preset(machine_name)
    trace = _trace(machine_name, 3)
    project = InterstitialProject(
        n_jobs=60,
        cpus_per_job=32,
        runtime_1ghz=1800.0,
        min_width=4,
        max_width=32,
        name=f"golden-elastic-{machine_name}",
        user="golden",
        group="golden",
    )
    controller = elastic_controller(
        machine, project, ElasticitySpec.malleable()
    )
    run_with_controller(machine, trace.jobs, controller,
                        horizon=trace.duration, recorder=recorder)


#: Case name -> driver writing the case's trace into a recorder.
CASES: Dict[str, Callable[[str, TraceRecorder], None]] = {}
for _machine in preset_names():
    CASES[f"native-{_machine}"] = (
        lambda rec, m=_machine: _native(m, rec)
    )
    CASES[f"faulted-{_machine}"] = (
        lambda rec, m=_machine: _faulted(m, rec)
    )
    CASES[f"continual-{_machine}"] = (
        lambda rec, m=_machine: _continual(m, rec)
    )
CASES["malleable-blue_pacific"] = (
    lambda rec: _malleable("blue_pacific", rec)
)


def render_case(name: str) -> str:
    """Run one golden case and return its JSONL trace as text."""
    buffer = io.StringIO()
    recorder = JsonlRecorder(buffer, buffer_records=4096)
    CASES[name](recorder)
    recorder.close()
    return buffer.getvalue()
