"""Property-based trace validation over a seed sweep.

Every trace the engine emits — whatever the workload, faults or
preemption behavior a seed produces — must satisfy structural
invariants: monotone timestamps, start-before-finish per job id, busy
CPUs within machine capacity, and counters that reconcile with the
``SimResult`` aggregates.  The sweep draws 30 configurations from
stdlib ``random`` seeds (machine size, workload, fault model and
controller settings all vary per seed) and checks each one.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

import numpy as np
import pytest

from repro.core.controller import InterstitialController
from repro.core.runners import run_native, run_with_controller
from repro.faults import FaultModel
from repro.jobs import InterstitialProject, JobState
from repro.machines import Machine
from repro.obs import MemoryRecorder
from repro.sim.results import SimResult
from tests.conftest import random_native_trace

#: The issue asks for >= 25 seeds; a couple extra cost milliseconds.
SEEDS = tuple(range(30))

#: Record kinds that reference a job.
_JOB_KINDS = ("submit", "start", "finish", "kill", "preempt", "requeue")


def _run_seeded(seed: int) -> Tuple[SimResult, MemoryRecorder, Machine]:
    """One randomized configuration drawn from a stdlib-random seed."""
    py = random.Random(seed)
    machine = Machine(
        name=f"Prop{seed}",
        cpus=py.choice([24, 48, 64, 96]),
        clock_ghz=1.0,
    )
    rng = np.random.default_rng(py.getrandbits(32))
    trace = random_native_trace(
        rng,
        machine,
        n_jobs=py.randint(15, 45),
        horizon=float(py.randint(20_000, 60_000)),
    )
    faults: Optional[FaultModel] = None
    if py.random() < 0.5:
        faults = FaultModel(
            mtbf=float(py.randint(40_000, 400_000)),
            mttr=float(py.randint(600, 7200)),
            cpus_per_node=py.choice([1, 2, 4]),
            seed=py.getrandbits(16),
        )
    recorder = MemoryRecorder()
    if py.random() < 0.5:
        project = InterstitialProject(
            n_jobs=py.randint(5, 40),
            cpus_per_job=py.choice([1, 2, 4, 8]),
            runtime_1ghz=float(py.randint(100, 4000)),
        )
        controller = InterstitialController(
            machine=machine,
            project=project,
            preemptible=py.random() < 0.5,
        )
        result = run_with_controller(
            machine, trace, controller, faults=faults, recorder=recorder
        )
    else:
        result = run_native(machine, trace, faults=faults, recorder=recorder)
    return result, recorder, machine


@pytest.mark.parametrize("seed", SEEDS)
def test_trace_structural_properties(seed: int) -> None:
    result, recorder, machine = _run_seeded(seed)
    records = recorder.records
    assert records, "every run must emit at least run_start/run_end"
    assert records[0].kind == "run_start"
    assert records[-1].kind == "run_end"

    # Monotone timestamps in emission order.
    times = [r.time for r in records]
    assert all(a <= b for a, b in zip(times, times[1:])), (
        f"seed {seed}: trace timestamps went backwards"
    )

    # Occupancy snapshots stay within machine capacity.
    for r in records:
        assert 0 <= r.busy_cpus <= machine.cpus
        assert 0 <= r.free_cpus <= machine.cpus
        assert r.queue_depth >= 0

    # Per-job lifecycle ordering: submit <= start <= terminal record.
    first_start = {}
    first_submit = {}
    for r in records:
        if r.kind not in _JOB_KINDS:
            continue
        assert r.job_id is not None and r.cpus is not None
        if r.kind == "submit":
            first_submit.setdefault(r.job_id, r.time)
        elif r.kind == "start":
            # Requeued jobs restart; track the first incarnation only.
            first_start.setdefault(r.job_id, r.time)
        elif r.kind in ("finish", "kill", "preempt"):
            assert r.job_id in first_start, (
                f"seed {seed}: job {r.job_id} ended without starting"
            )
            assert first_start[r.job_id] <= r.time
    for job_id, started in first_start.items():
        if job_id in first_submit:  # interstitials never emit submits
            assert first_submit[job_id] <= started


@pytest.mark.parametrize("seed", SEEDS)
def test_counters_reconcile_with_result(seed: int) -> None:
    result, recorder, _ = _run_seeded(seed)
    c = result.counters

    # Counters vs. SimResult aggregates.
    assert c.finishes == len(result.finished)
    assert c.failures == result.n_failures
    assert c.fault_kills + c.preemptions == len(result.killed)
    assert c.fault_kills >= sum(result.attempts.values())
    # Runs here are never truncated: every start terminates exactly once.
    still_running = sum(
        1 for job in result.unfinished if job.state is JobState.RUNNING
    )
    assert still_running == 0
    assert c.starts == c.finishes + c.fault_kills + c.preemptions
    assert c.events >= c.submits + c.finishes + c.failures + c.repairs
    assert c.scheduling_passes > 0

    # Counters vs. the trace record stream.
    by_kind = {
        kind: len(recorder.by_kind(kind))
        for kind in ("submit", "start", "finish", "kill", "preempt",
                     "requeue", "failure", "repair", "sched_pass")
    }
    assert by_kind["submit"] == c.submits
    assert by_kind["start"] == c.starts
    assert by_kind["finish"] == c.finishes
    assert by_kind["kill"] == c.fault_kills
    assert by_kind["preempt"] == c.preemptions
    assert by_kind["requeue"] == c.requeues
    assert by_kind["failure"] == c.failures
    assert by_kind["repair"] == c.repairs
    assert by_kind["sched_pass"] == c.scheduling_passes
