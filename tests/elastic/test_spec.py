"""ElasticitySpec / WidthPolicy validation and resolution."""

from __future__ import annotations

import pytest

from repro.elastic import ElasticitySpec, WidthPolicy
from repro.errors import ConfigurationError
from repro.jobs import InterstitialProject


def test_policy_constructors() -> None:
    assert ElasticitySpec.rigid().policy is WidthPolicy.RIGID
    assert ElasticitySpec.rigid().is_rigid
    assert ElasticitySpec.moldable(4, 32).policy is WidthPolicy.MOLDABLE
    assert ElasticitySpec.malleable(4, 32).policy is WidthPolicy.MALLEABLE
    assert not ElasticitySpec.malleable().is_rigid


def test_rejects_non_policy() -> None:
    with pytest.raises(ConfigurationError, match="WidthPolicy"):
        ElasticitySpec(policy="malleable")  # type: ignore[arg-type]


@pytest.mark.parametrize("bad", [0, -4, 2.5, True])
def test_rejects_bad_widths(bad) -> None:
    with pytest.raises(ConfigurationError, match="positive int"):
        ElasticitySpec.moldable(min_width=bad)
    with pytest.raises(ConfigurationError, match="positive int"):
        ElasticitySpec.malleable(max_width=bad)


def test_rejects_inverted_range() -> None:
    with pytest.raises(ConfigurationError, match="must not exceed"):
        ElasticitySpec.malleable(min_width=16, max_width=4)


def test_rigid_takes_no_range() -> None:
    with pytest.raises(ConfigurationError, match="RIGID"):
        ElasticitySpec(policy=WidthPolicy.RIGID, min_width=4, max_width=8)


def test_resolve_spec_wins_over_project() -> None:
    project = InterstitialProject(
        n_jobs=1, cpus_per_job=16, runtime_1ghz=100.0,
        min_width=8, max_width=32,
    )
    assert ElasticitySpec.malleable(4, 16).resolve(project) == (4, 16)
    # Unset ends fall back to the project's declared range.
    assert ElasticitySpec.malleable(max_width=16).resolve(project) == (8, 16)
    assert ElasticitySpec.malleable().resolve(project) == (8, 32)


def test_resolve_falls_back_to_rigid_width() -> None:
    project = InterstitialProject(n_jobs=1, cpus_per_job=16,
                                  runtime_1ghz=100.0)
    assert ElasticitySpec.moldable().resolve(project) == (16, 16)


def test_resolve_rejects_empty_range() -> None:
    project = InterstitialProject(
        n_jobs=1, cpus_per_job=16, runtime_1ghz=100.0,
        min_width=8, max_width=32,
    )
    with pytest.raises(ConfigurationError, match="empty"):
        ElasticitySpec.malleable(min_width=64).resolve(project)
