"""ElasticInterstitialController construction and policy dispatch."""

from __future__ import annotations

import pytest

from repro.core.controller import InterstitialController
from repro.elastic import (
    ElasticInterstitialController,
    ElasticitySpec,
    elastic_controller,
)
from repro.errors import ConfigurationError
from repro.jobs import InterstitialProject
from repro.machines import Machine


@pytest.fixture
def machine() -> Machine:
    return Machine(name="ElasticBox", cpus=64, clock_ghz=1.0)


@pytest.fixture
def project() -> InterstitialProject:
    return InterstitialProject(
        n_jobs=10, cpus_per_job=16, runtime_1ghz=400.0,
        min_width=4, max_width=16,
    )


def test_rejects_rigid_spec(machine, project) -> None:
    with pytest.raises(ConfigurationError, match="RIGID"):
        ElasticInterstitialController(
            machine, project, spec=ElasticitySpec.rigid()
        )


def test_factory_dispatch(machine, project) -> None:
    rigid = elastic_controller(machine, project, ElasticitySpec.rigid())
    assert type(rigid) is InterstitialController
    assert type(elastic_controller(machine, project)) is (
        InterstitialController
    )
    moldable = elastic_controller(
        machine, project, ElasticitySpec.moldable()
    )
    assert isinstance(moldable, ElasticInterstitialController)
    # Only malleable jobs are runtime-resizable, so only the malleable
    # controller turns on the engine's elastic machinery.
    assert not moldable.elastic
    malleable = elastic_controller(
        machine, project, ElasticitySpec.malleable()
    )
    assert malleable.elastic


def test_resolved_range_and_quantum(machine, project) -> None:
    controller = ElasticInterstitialController(
        machine, project, spec=ElasticitySpec.malleable()
    )
    assert (controller.min_width, controller.max_width) == (4, 16)
    # Fixed CPU-seconds per quantum; runtime scales inversely in width.
    assert controller.work_quantum == 16 * 400.0
    assert controller.runtime_at(16) == 400.0
    assert controller.runtime_at(4) == 1600.0


def test_rejects_max_width_beyond_machine(machine) -> None:
    wide = InterstitialProject(
        n_jobs=10, cpus_per_job=16, runtime_1ghz=400.0,
        min_width=4, max_width=128,
    )
    with pytest.raises(ConfigurationError, match="max_width"):
        ElasticInterstitialController(
            machine, wide, spec=ElasticitySpec.malleable()
        )


def test_no_checkpointing_parameter(machine, project) -> None:
    """Elastic controllers do not support checkpoint/restart: quanta
    are fixed-width work units, so the parameter does not exist."""
    with pytest.raises(TypeError):
        ElasticInterstitialController(
            machine, project, spec=ElasticitySpec.malleable(),
            checkpointing=True,
        )
