"""Engine-level elastic behaviour: shrink-to-seat, grow-back, molding.

The centrepiece is a fully hand-computed malleable scenario — every
shrink width, re-scaled finish time and grow-back is derived on paper
(all values binary-exact floats) and asserted exactly, so any drift in
the resize arithmetic or the youngest-first / oldest-first orderings
fails loudly rather than shifting a statistic.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.runners import run_with_controller
from repro.elastic import (
    ElasticInterstitialController,
    ElasticitySpec,
    elastic_controller,
)
from repro.faults import FaultModel
from repro.jobs import InterstitialProject, JobKind, JobState
from repro.machines import Machine
from repro.obs import MemoryRecorder
from repro.sched import BackfillMode, FcfsPolicy, QueueScheduler
from tests.conftest import make_job, random_native_trace


def _machine(cpus: int = 64) -> Machine:
    return Machine(name="ResizeBox", cpus=cpus, clock_ghz=1.0)


def _scheduler() -> QueueScheduler:
    return QueueScheduler(policy=FcfsPolicy(), backfill=BackfillMode.EASY)


def _project(**overrides) -> InterstitialProject:
    kwargs = dict(
        n_jobs=2,
        cpus_per_job=16,
        runtime_1ghz=400.0,
        min_width=4,
        max_width=16,
        user="harvest",
        group="harvest",
    )
    kwargs.update(overrides)
    return InterstitialProject(**kwargs)


# ----------------------------------------------------------------------
# The hand-computed malleable scenario
# ----------------------------------------------------------------------
# Machine: 64 CPUs, clock 1.0.  Natives: A = 32 CPUs x 1000 s at t=0,
# B = 20 CPUs x 500 s at t=100.  Malleable project: 2 jobs, nominal 16
# CPUs x 400 s (quantum 6400 CPU-s), widths [4, 16].
#
#   t=0    A starts (32); j1, j2 offered at width 16 — machine full.
#   t=100  B blocked (deficit 20).  Shrink youngest first: j2 16->4
#          (frees 12), j1 16->8 (frees 8).  B seated at t=100.
#          Remaining work re-scales: j1 300 s @16 -> 600 s @8
#          (finish 700), j2 300 s @16 -> 1200 s @4 (finish 1300).
#   t=400  Both jobs' original FINISH events fire stale and are
#          discarded (expected-finish mismatch).
#   t=600  B finishes; grow oldest first into the 20 freed CPUs:
#          j1 8->16 (remaining 100 s -> 50 s, finish 650),
#          j2 4->16 (remaining 700 s -> 175 s, finish 775).
#   t=1000 A finishes; run ends.
def _run_handcomputed():
    machine = _machine()
    natives = [
        make_job(cpus=32, runtime=1000.0, submit=0.0, user="a"),
        make_job(cpus=20, runtime=500.0, submit=100.0, user="b"),
    ]
    for i, job in enumerate(natives):
        job.job_id = i + 1
    controller = ElasticInterstitialController(
        _machine(), _project(), spec=ElasticitySpec.malleable()
    )
    recorder = MemoryRecorder()
    result = run_with_controller(
        machine, natives, controller,
        scheduler=_scheduler(), recorder=recorder, check_invariants=True,
    )
    return result, recorder, controller


@pytest.fixture(scope="module")
def handcomputed():
    return _run_handcomputed()


def test_all_jobs_finish(handcomputed) -> None:
    result, _, _ = handcomputed
    assert len(result.native_jobs) == 2
    assert len(result.interstitial_jobs) == 2
    assert all(j.state is JobState.FINISHED for j in result.finished)
    assert result.counters.preempt_kills == 0


def test_native_b_seated_by_shrinking(handcomputed) -> None:
    result, _, _ = handcomputed
    b = next(j for j in result.native_jobs if j.user == "b")
    # The shrink carve-out seats B the instant it arrives.
    assert b.start_time == 100.0
    assert b.finish_time == 600.0


def test_shrink_youngest_first_exact_widths(handcomputed) -> None:
    result, _, _ = handcomputed
    j1, j2 = sorted(result.interstitial_jobs, key=lambda j: j.job_id)
    # Youngest first (highest id on the start-time tie): j2 gives its
    # full slack 12, j1 covers the remaining 8 of B's 20-CPU deficit.
    assert j1.width_history == [(0.0, 16), (100.0, 8), (600.0, 16)]
    assert j2.width_history == [(0.0, 16), (100.0, 4), (600.0, 16)]


def test_rescaled_finish_times_exact(handcomputed) -> None:
    result, _, _ = handcomputed
    j1, j2 = sorted(result.interstitial_jobs, key=lambda j: j.job_id)
    assert (j1.start_time, j1.finish_time) == (0.0, 650.0)
    assert (j2.start_time, j2.finish_time) == (0.0, 775.0)
    # runtime is elapsed wall time after the final re-scale.
    assert j1.runtime == 650.0
    assert j2.runtime == 775.0


def test_work_conserved_per_job(handcomputed) -> None:
    result, _, controller = handcomputed
    for job in result.interstitial_jobs:
        segments = list(job.width_history)
        work = sum(
            width * (segments[i + 1][0] - start)
            for i, (start, width) in enumerate(segments[:-1])
        )
        work += segments[-1][1] * (job.finish_time - segments[-1][0])
        assert work == controller.work_quantum == 6400.0


def test_counters_and_controller_tallies(handcomputed) -> None:
    result, _, controller = handcomputed
    counters = result.counters
    assert counters.preempt_shrinks == 2
    assert counters.grows == 2
    assert counters.preempt_kills == 0
    assert counters.molded_starts == 2
    assert controller.n_shrunk == 2
    assert controller.n_grown == 2
    # Back-compat alias tracks the kill counter, not the shrinks.
    assert counters.preemptions == counters.preempt_kills == 0


def test_shrink_and_grow_records(handcomputed) -> None:
    _, recorder, _ = handcomputed
    shrinks = [r for r in recorder.records if r.kind == "shrink"]
    grows = [r for r in recorder.records if r.kind == "grow"]
    assert [(r.time, r.cpus, r.detail) for r in shrinks] == [
        (100.0, 4, 16),  # j2 16 -> 4 first (youngest)
        (100.0, 8, 16),  # then j1 16 -> 8
    ]
    assert [(r.time, r.cpus, r.detail) for r in grows] == [
        (600.0, 16, 8),  # j1 8 -> 16 first (oldest)
        (600.0, 16, 4),  # then j2 4 -> 16
    ]


def test_busy_profile_integrates_width_history(handcomputed) -> None:
    result, _, _ = handcomputed
    interstitial = result.busy_profile(JobKind.INTERSTITIAL)
    # Two quanta of 6400 CPU-s, delivered through the resizes.
    assert interstitial.integrate(0.0, 1000.0) == 12800.0
    # Spot-check the step levels around the resize instants.
    assert interstitial(50.0) == 32
    assert interstitial(100.0) == 12
    assert interstitial(600.0) == 32
    assert interstitial(800.0) == 0


# ----------------------------------------------------------------------
# Moldable: width picked once, never resized, never carved
# ----------------------------------------------------------------------
def test_moldable_molds_to_free_capacity_and_stays_put() -> None:
    machine = _machine()
    natives = [
        make_job(cpus=52, runtime=1000.0, submit=0.0, user="a"),
        make_job(cpus=20, runtime=500.0, submit=100.0, user="b"),
    ]
    for i, job in enumerate(natives):
        job.job_id = i + 1
    controller = ElasticInterstitialController(
        _machine(), _project(), spec=ElasticitySpec.moldable()
    )
    result = run_with_controller(
        machine, natives, controller,
        scheduler=_scheduler(), check_invariants=True,
    )
    j1 = min(result.interstitial_jobs, key=lambda j: j.start_time)
    # Molded to the 12 free CPUs (inside [4, 16]) and frozen there.
    assert j1.start_time == 0.0
    assert j1.min_cpus == j1.max_cpus == j1.cpus == 12
    assert not j1.malleable
    assert j1.width_history is None
    assert j1.finish_time == pytest.approx(6400.0 / 12.0)
    # Moldable jobs are not carved for the blocked native: B waits for
    # a real release instead of shrinking or killing anything.
    b = next(j for j in result.native_jobs if j.user == "b")
    assert b.start_time > 100.0
    counters = result.counters
    assert counters.preempt_shrinks == 0
    assert counters.grows == 0
    assert counters.preempt_kills == 0
    assert counters.molded_starts == 2


# ----------------------------------------------------------------------
# Bounded gate bypass: malleable submits under an imminent head native
# only while the min-width residue fits inside one nominal job
# ----------------------------------------------------------------------
def _gate_scenario(spec: ElasticitySpec) -> tuple:
    machine = _machine()
    natives = [
        make_job(cpus=24, runtime=300.0, submit=0.0, user="a"),
        make_job(cpus=60, runtime=400.0, submit=10.0, user="b"),
    ]
    for i, job in enumerate(natives):
        job.job_id = i + 1
    controller = elastic_controller(
        machine,
        _project(n_jobs=6, cpus_per_job=8, runtime_1ghz=800.0,
                 min_width=4, max_width=8),
        spec,
        start_time=5.0,
    )
    recorder = MemoryRecorder()
    run_with_controller(
        machine, natives, controller,
        scheduler=_scheduler(), recorder=recorder, check_invariants=True,
    )
    return recorder, controller


def test_malleable_gate_bypass_is_residue_bounded() -> None:
    # At t=10 the 60-CPU head native is 290 s away while an 8-wide
    # interstitial runs 800 s: the Figure-1 gate blocks.  Malleable
    # jobs may bypass it while the min-width residue stays within one
    # nominal job (4 + 4 <= 8), so exactly two jobs start at t=10.
    recorder, _ = _gate_scenario(ElasticitySpec.malleable())
    # Interstitial ids are renumbered above the native trace's (1, 2).
    starts_at_gate = [
        r for r in recorder.records
        if r.kind == "start" and r.time == 10.0 and r.job_id > 2
    ]
    assert len(starts_at_gate) == 2


def test_rigid_and_moldable_respect_the_gate() -> None:
    for spec in (ElasticitySpec.rigid(), ElasticitySpec.moldable()):
        recorder, _ = _gate_scenario(spec)
        starts_at_gate = [
            r for r in recorder.records
            if r.kind == "start" and r.time == 10.0 and r.job_id > 2
        ]
        assert starts_at_gate == []


# ----------------------------------------------------------------------
# Randomized work conservation + fault interplay
# ----------------------------------------------------------------------
def test_work_conservation_over_random_malleable_run() -> None:
    machine = _machine(96)
    trace = random_native_trace(
        np.random.default_rng(7), machine, n_jobs=30, horizon=40_000.0
    )
    for i, job in enumerate(trace):
        job.job_id = i + 1
    controller = ElasticInterstitialController(
        machine,
        _project(n_jobs=40, cpus_per_job=16, runtime_1ghz=900.0,
                 min_width=4, max_width=16),
        spec=ElasticitySpec.malleable(),
    )
    result = run_with_controller(
        machine, trace, controller,
        scheduler=_scheduler(), check_invariants=True,
    )
    finished = result.interstitial_jobs
    assert len(finished) == 40
    resized = 0
    for job in finished:
        if job.width_history:
            resized += 1
            segments = list(job.width_history)
            work = sum(
                width * (segments[i + 1][0] - start)
                for i, (start, width) in enumerate(segments[:-1])
            )
            work += segments[-1][1] * (job.finish_time - segments[-1][0])
        else:
            work = job.cpus * (job.finish_time - job.start_time)
        assert math.isclose(work, controller.work_quantum,
                            rel_tol=1e-9, abs_tol=1e-6)
    # The scenario must actually exercise resizing.
    assert resized > 0
    assert result.counters.preempt_shrinks > 0
    assert result.counters.grows > 0


def test_faults_recredit_malleable_work() -> None:
    machine = _machine(96)
    trace = random_native_trace(
        np.random.default_rng(11), machine, n_jobs=25, horizon=40_000.0
    )
    for i, job in enumerate(trace):
        job.job_id = i + 1
    controller = ElasticInterstitialController(
        machine,
        _project(n_jobs=30, cpus_per_job=16, runtime_1ghz=900.0,
                 min_width=4, max_width=16),
        spec=ElasticitySpec.malleable(),
    )
    result = run_with_controller(
        machine, trace, controller,
        scheduler=_scheduler(), check_invariants=True,
        faults=FaultModel(mtbf=4.0e4, mttr=1800.0, cpus_per_node=8,
                          seed=11),
    )
    # Fault kills re-credit the controller's budget, so the project
    # still delivers all 30 quanta; kills come from faults, not the
    # carve-out (malleable jobs shrink instead).
    assert len(result.interstitial_jobs) == 30
    assert result.counters.preempt_kills == 0
