"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import pytest

from repro.jobs import Job, JobKind
from repro.machines import Machine
from repro.sched import fcfs_scheduler
from repro.sched.queue_scheduler import BackfillMode


def pytest_addoption(parser) -> None:
    """``--regen-golden`` rewrites ``tests/obs/golden/*.jsonl`` from the
    current engine instead of asserting against them.  Use it (and
    review the diff!) after an *intentional* change to scheduling order
    or the trace schema; an unintentional diff is a regression."""
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="regenerate the golden engine traces under tests/obs/golden/",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator per test."""
    return np.random.default_rng(20030915)


@pytest.fixture
def small_machine() -> Machine:
    """A 64-CPU, 1 GHz machine — big enough for interesting packings,
    small enough to reason about by hand."""
    return Machine(name="TestBox", cpus=64, clock_ghz=1.0, site="lab",
                   queue_algorithm="FCFS")


@pytest.fixture
def tiny_machine() -> Machine:
    """An 8-CPU machine for hand-computed schedules."""
    return Machine(name="Nano", cpus=8, clock_ghz=1.0)


def make_job(
    cpus: int = 1,
    runtime: float = 100.0,
    estimate: Optional[float] = None,
    submit: float = 0.0,
    user: str = "u0",
    group: str = "g0",
    kind: JobKind = JobKind.NATIVE,
) -> Job:
    """Terse job factory used across the suite."""
    return Job(
        cpus=cpus,
        runtime=runtime,
        estimate=runtime if estimate is None else estimate,
        submit_time=submit,
        user=user,
        group=group,
        kind=kind,
    )


def fcfs() -> "object":
    """Fresh FCFS+EASY scheduler (schedulers hold queue state, so tests
    must not share instances)."""
    return fcfs_scheduler()


def fcfs_plain() -> "object":
    """FCFS without backfill."""
    return fcfs_scheduler(backfill=BackfillMode.NONE)


def random_native_trace(
    rng: np.random.Generator,
    machine: Machine,
    n_jobs: int = 40,
    horizon: float = 50_000.0,
    max_width_fraction: float = 0.5,
) -> List[Job]:
    """A random rigid-job trace for property tests (estimates >= runtimes,
    widths within the machine)."""
    jobs = []
    max_width = max(1, int(machine.cpus * max_width_fraction))
    for _ in range(n_jobs):
        runtime = float(rng.uniform(10.0, 5000.0))
        jobs.append(
            Job(
                cpus=int(rng.integers(1, max_width + 1)),
                runtime=runtime,
                estimate=runtime * float(rng.uniform(1.0, 8.0)),
                submit_time=float(rng.uniform(0.0, horizon)),
                user=f"u{int(rng.integers(0, 5))}",
                group=f"g{int(rng.integers(0, 2))}",
            )
        )
    return jobs
