"""Tests for utilization metrics."""

import pytest

from repro.errors import ValidationError
from repro.jobs import JobKind
from repro.metrics.utilization import hourly_utilization, utilization_summary
from repro.sim.engine import Engine, SimConfig

from tests.conftest import fcfs, make_job


@pytest.fixture
def result(tiny_machine):
    # 8 CPUs busy [0, 3600); idle [3600, 7200).
    job = make_job(cpus=8, runtime=3600.0)
    return Engine(
        tiny_machine, fcfs(), trace=[job], config=SimConfig(horizon=7200.0)
    ).run()


class TestHourly:
    def test_two_bins(self, result):
        starts, utils = hourly_utilization(result)
        assert starts.size == 2
        assert utils[0] == pytest.approx(1.0)
        assert utils[1] == pytest.approx(0.0)

    def test_partial_bin_weighting(self, tiny_machine):
        job = make_job(cpus=8, runtime=1800.0)
        res = Engine(
            tiny_machine, fcfs(), trace=[job],
            config=SimConfig(horizon=3600.0),
        ).run()
        _, utils = hourly_utilization(res)
        assert utils[0] == pytest.approx(0.5)

    def test_kind_filter(self, tiny_machine):
        native = make_job(cpus=4, runtime=3600.0)
        inter = make_job(cpus=4, runtime=3600.0,
                         kind=JobKind.INTERSTITIAL)
        res = Engine(
            tiny_machine, fcfs(), trace=[native, inter],
            config=SimConfig(horizon=3600.0),
        ).run()
        _, native_u = hourly_utilization(res, JobKind.NATIVE)
        _, all_u = hourly_utilization(res)
        assert native_u[0] == pytest.approx(0.5)
        assert all_u[0] == pytest.approx(1.0)

    def test_validation(self, result):
        with pytest.raises(ValidationError):
            hourly_utilization(result, bin_s=0.0)
        with pytest.raises(ValidationError):
            hourly_utilization(result, t0=10.0, t1=10.0)


class TestSummary:
    def test_splits_by_kind(self, tiny_machine):
        native = make_job(cpus=4, runtime=3600.0)
        inter = make_job(cpus=2, runtime=3600.0,
                         kind=JobKind.INTERSTITIAL)
        res = Engine(
            tiny_machine, fcfs(), trace=[native, inter],
            config=SimConfig(horizon=3600.0),
        ).run()
        summary = utilization_summary(res)
        assert summary.native == pytest.approx(0.5)
        assert summary.interstitial == pytest.approx(0.25)
        assert summary.overall == pytest.approx(0.75)

    def test_describe(self, result):
        text = utilization_summary(result).describe()
        assert "overall" in text
