"""Tests for the terminal figure renderers."""

import pytest

from repro.errors import ValidationError
from repro.metrics.ascii_plots import (
    hbar,
    histogram_rows,
    scatter,
    sparkline,
)


class TestSparkline:
    def test_length_matches_series(self):
        assert len(sparkline([0.0, 0.5, 1.0])) == 3

    def test_monotone_levels(self):
        line = sparkline([0.0, 0.25, 0.5, 0.75, 1.0])
        assert list(line) == sorted(line, key=line.index)
        assert line[0] != line[-1]

    def test_fixed_range(self):
        line = sparkline([0.5, 0.5], lo=0.0, hi=1.0)
        assert len(set(line)) == 1

    def test_flat_series(self):
        line = sparkline([3.0, 3.0, 3.0])
        assert len(line) == 3

    def test_width_buckets(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            sparkline([])

    def test_clipping(self):
        line = sparkline([-5.0, 0.5, 5.0], lo=0.0, hi=1.0)
        assert len(line) == 3


class TestHbar:
    def test_full(self):
        assert hbar(1.0, width=10) == "#" * 10

    def test_empty(self):
        assert hbar(0.0, width=10) == "." * 10

    def test_half(self):
        bar = hbar(0.5, width=10)
        assert bar.count("#") == 5

    def test_clips(self):
        assert hbar(2.0, width=4) == "####"
        assert hbar(-1.0, width=4) == "...."

    def test_width_validation(self):
        with pytest.raises(ValidationError):
            hbar(0.5, width=0)


class TestHistogramRows:
    def test_aligned_labels(self):
        rows = histogram_rows(["a", "long-label"], [0.2, 0.8])
        assert rows[0].index("|") == rows[1].index("|")

    def test_normalized_to_peak(self):
        rows = histogram_rows(["x", "y"], [0.4, 0.8], width=10)
        assert rows[1].count("#") == 10
        assert rows[0].count("#") == 5

    def test_empty(self):
        assert histogram_rows([], []) == []

    def test_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            histogram_rows(["a"], [1.0, 2.0])

    def test_all_zero_bins(self):
        rows = histogram_rows(["a"], [0.0])
        assert "#" not in rows[0]


class TestScatter:
    def test_grid_shape(self):
        lines = scatter([(1.0, 1.0), (2.0, 3.0)], rows=5, cols=20)
        assert len(lines) == 5
        assert all(len(line) == 20 for line in lines)

    def test_markers_present(self):
        lines = scatter([(1.0, 1.0)], rows=5, cols=20)
        assert any("o" in line for line in lines)

    def test_diagonal_drawn(self):
        lines = scatter([(1.0, 1.0)], rows=8, cols=20)
        assert any("/" in line for line in lines)

    def test_no_diagonal(self):
        lines = scatter([(1.0, 2.0)], rows=8, cols=20, diagonal=False)
        assert not any("/" in line for line in lines)

    def test_empty_points(self):
        assert scatter([]) == []

    def test_point_above_diagonal_is_higher(self):
        """A y >> x point lands in a higher row than a y == x point."""
        lines = scatter(
            [(5.0, 10.0), (10.0, 10.0)], rows=10, cols=20,
            diagonal=False,
        )
        first_marker_row = min(
            i for i, line in enumerate(lines) if "o" in line
        )
        assert first_marker_row < 5  # upper half of the grid

    def test_validation(self):
        with pytest.raises(ValidationError):
            scatter([(1.0, 1.0)], rows=1, cols=10)
