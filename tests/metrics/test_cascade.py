"""Tests for delay-cascade analysis."""

import pytest

from repro.errors import ValidationError
from repro.metrics.cascade import cascade_report, extra_waits

from tests.conftest import make_job


def pair(job_id_pairs):
    """Build matched baseline/loaded job lists from
    (baseline_start, loaded_start) pairs."""
    baseline, loaded = [], []
    for base_start, load_start in job_id_pairs:
        job = make_job()
        job.start_time = base_start
        baseline.append(job)
        twin = job.copy_unscheduled()
        twin.start_time = load_start
        loaded.append(twin)
    return baseline, loaded


class TestExtraWaits:
    def test_matched_by_id(self):
        baseline, loaded = pair([(0.0, 100.0), (50.0, 50.0)])
        deltas = extra_waits(baseline, loaded)
        assert sorted(deltas) == [0.0, 100.0]

    def test_negative_deltas_kept(self):
        baseline, loaded = pair([(100.0, 0.0)])
        assert extra_waits(baseline, loaded)[0] == -100.0

    def test_no_common_jobs(self):
        a = make_job()
        a.start_time = 0.0
        b = make_job()
        b.start_time = 0.0
        with pytest.raises(ValidationError):
            extra_waits([a], [b])

    def test_unstarted_ignored(self):
        baseline, loaded = pair([(0.0, 10.0)])
        baseline.append(make_job())  # never started
        deltas = extra_waits(baseline, loaded)
        assert deltas.size == 1


class TestCascadeReport:
    def test_classification(self):
        # Bound 100 s: one undelayed, one direct (50), one cascade (500).
        baseline, loaded = pair(
            [(0.0, 0.0), (0.0, 50.0), (0.0, 500.0)]
        )
        report = cascade_report(baseline, loaded, 100.0)
        assert report.n_jobs == 3
        assert report.n_direct == 1
        assert report.n_cascade == 1
        assert report.cascade_fraction == pytest.approx(1 / 3)

    def test_cascade_share(self):
        baseline, loaded = pair([(0.0, 50.0), (0.0, 950.0)])
        report = cascade_report(baseline, loaded, 100.0)
        assert report.cascade_share_of_extra_wait == pytest.approx(0.95)

    def test_no_delays(self):
        baseline, loaded = pair([(0.0, 0.0), (5.0, 5.0)])
        report = cascade_report(baseline, loaded, 100.0)
        assert report.n_direct == 0
        assert report.n_cascade == 0
        assert report.cascade_share_of_extra_wait == 0.0

    def test_epsilon_filters_noise(self):
        baseline, loaded = pair([(0.0, 0.5)])
        report = cascade_report(baseline, loaded, 100.0)
        assert report.n_direct == 0

    def test_mean_ignores_speedups(self):
        # One job 100 s later, one 100 s earlier: mean extra wait uses
        # max(delta, 0) so redistribution doesn't cancel out damage.
        baseline, loaded = pair([(0.0, 100.0), (100.0, 0.0)])
        report = cascade_report(baseline, loaded, 1000.0)
        assert report.mean_extra_wait_s == pytest.approx(50.0)

    def test_validation(self):
        baseline, loaded = pair([(0.0, 0.0)])
        with pytest.raises(ValidationError):
            cascade_report(baseline, loaded, 0.0)

    def test_describe(self):
        baseline, loaded = pair([(0.0, 500.0)])
        text = cascade_report(baseline, loaded, 100.0).describe()
        assert "cascade" in text
