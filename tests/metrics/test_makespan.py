"""Tests for makespan statistics."""

import pytest

from repro.errors import ValidationError
from repro.metrics.makespan import makespan_stats


class TestMakespanStats:
    def test_summary(self):
        stats = makespan_stats([3600.0, 7200.0])
        assert stats.n_samples == 2
        assert stats.mean_s == 5400.0
        assert stats.mean_h == 1.5
        assert stats.min_s == 3600.0
        assert stats.max_s == 7200.0

    def test_single_sample_zero_std(self):
        stats = makespan_stats([100.0])
        assert stats.std_s == 0.0

    def test_std_uses_sample_variance(self):
        stats = makespan_stats([0.0, 2.0])
        assert stats.std_s == pytest.approx(2.0 ** 0.5)

    def test_cell_format(self):
        stats = makespan_stats([3600.0 * 12.3, 3600.0 * 12.3])
        assert stats.cell() == "12.3 ± 0.0"

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            makespan_stats([])

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            makespan_stats([-1.0])
