"""Tests for wait-time statistics."""

import pytest

from repro.errors import ValidationError
from repro.metrics.waits import (
    expansion_factors,
    largest_fraction,
    wait_stats,
    wait_times,
)

from tests.conftest import make_job


def started_job(cpus=1, runtime=100.0, submit=0.0, start=0.0):
    job = make_job(cpus=cpus, runtime=runtime, submit=submit)
    job.start_time = start
    job.finish_time = start + runtime
    return job


class TestWaitTimes:
    def test_basic(self):
        jobs = [started_job(start=10.0), started_job(start=0.0)]
        waits = wait_times(jobs)
        assert sorted(waits) == [0.0, 10.0]

    def test_skips_unstarted(self):
        jobs = [started_job(start=5.0), make_job()]
        assert wait_times(jobs).size == 1

    def test_empty(self):
        assert wait_times([]).size == 0


class TestExpansionFactors:
    def test_formula(self):
        job = started_job(runtime=100.0, start=50.0)
        assert expansion_factors([job])[0] == 1.5

    def test_no_wait_is_one(self):
        assert expansion_factors([started_job()])[0] == 1.0


class TestLargestFraction:
    def test_selects_by_area(self):
        small = started_job(cpus=1, runtime=10.0)
        big = started_job(cpus=100, runtime=1000.0)
        medium = started_job(cpus=10, runtime=100.0)
        jobs = [small, big, medium] * 10
        top = largest_fraction(jobs, 0.05)
        assert all(j.area == big.area for j in top)

    def test_at_least_one(self):
        jobs = [started_job(cpus=i + 1) for i in range(3)]
        assert len(largest_fraction(jobs, 0.01)) == 1

    def test_count_proportional(self):
        jobs = [started_job(cpus=i + 1) for i in range(100)]
        assert len(largest_fraction(jobs, 0.05)) == 5

    def test_empty(self):
        assert largest_fraction([], 0.05) == []

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValidationError):
            largest_fraction([started_job()], 0.0)
        with pytest.raises(ValidationError):
            largest_fraction([started_job()], 1.5)

    def test_deterministic_ties(self):
        jobs = [started_job(cpus=2, runtime=10.0) for _ in range(10)]
        a = largest_fraction(jobs, 0.2)
        b = largest_fraction(list(reversed(jobs)), 0.2)
        assert [j.job_id for j in a] == [j.job_id for j in b]


class TestWaitStats:
    def test_summary(self):
        jobs = [
            started_job(runtime=100.0, start=0.0),
            started_job(runtime=100.0, start=100.0),
            started_job(runtime=100.0, start=200.0),
        ]
        stats = wait_stats(jobs)
        assert stats.n_jobs == 3
        assert stats.median_wait_s == 100.0
        assert stats.mean_wait_s == 100.0
        assert stats.median_ef == 2.0

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            wait_stats([])

    def test_describe(self):
        stats = wait_stats([started_job(start=10.0)])
        assert "wait" in stats.describe()
