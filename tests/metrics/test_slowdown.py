"""Tests for bounded slowdown and per-user impact metrics."""

import pytest

from repro.errors import ValidationError
from repro.metrics.slowdown import (
    bounded_slowdowns,
    impact_concentration,
    per_user_impact,
)

from tests.conftest import make_job


def started(cpus=1, runtime=100.0, wait=0.0, user="u0"):
    job = make_job(cpus=cpus, runtime=runtime, user=user)
    job.start_time = wait
    job.finish_time = wait + runtime
    return job


class TestBoundedSlowdown:
    def test_no_wait_is_one(self):
        assert bounded_slowdowns([started()])[0] == 1.0

    def test_formula(self):
        # wait 100, runtime 100 -> (100+100)/100 = 2.
        assert bounded_slowdowns([started(wait=100.0)])[0] == 2.0

    def test_tau_bounds_short_jobs(self):
        # 1 s job waiting 100 s: plain slowdown 101, bounded uses tau=10.
        job = started(runtime=1.0, wait=100.0)
        assert bounded_slowdowns([job])[0] == pytest.approx(101.0 / 10.0)

    def test_skips_unstarted(self):
        assert bounded_slowdowns([make_job()]).size == 0

    def test_rejects_bad_tau(self):
        with pytest.raises(ValidationError):
            bounded_slowdowns([started()], tau_s=0.0)


class TestPerUserImpact:
    def test_groups_by_user(self):
        jobs = [
            started(wait=0.0, user="a"),
            started(wait=100.0, user="a"),
            started(wait=50.0, user="b"),
        ]
        impact = per_user_impact(jobs)
        assert impact["a"].n_jobs == 2
        assert impact["a"].mean_wait_s == 50.0
        assert impact["b"].median_wait_s == 50.0

    def test_empty(self):
        assert per_user_impact([]) == {}


class TestImpactConcentration:
    def test_single_victim_is_one(self):
        baseline = [started(user="a"), started(user="b")]
        loaded = [started(wait=1000.0, user="a"), started(user="b")]
        assert impact_concentration(baseline, loaded) == 1.0

    def test_even_spread(self):
        baseline = [started(user="a"), started(user="b")]
        loaded = [
            started(wait=500.0, user="a"),
            started(wait=500.0, user="b"),
        ]
        assert impact_concentration(baseline, loaded) == pytest.approx(0.5)

    def test_no_damage_is_zero(self):
        baseline = [started(user="a")]
        loaded = [started(user="a")]
        assert impact_concentration(baseline, loaded) == 0.0

    def test_improvements_ignored(self):
        baseline = [started(wait=100.0, user="a"), started(user="b")]
        loaded = [started(wait=0.0, user="a"), started(wait=10.0, user="b")]
        # a improved; all the (positive) damage is b's.
        assert impact_concentration(baseline, loaded) == 1.0

    def test_disjoint_users_zero(self):
        baseline = [started(user="a")]
        loaded = [started(wait=100.0, user="b")]
        assert impact_concentration(baseline, loaded) == 0.0
