"""Tests for wait histograms and CDFs."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.metrics.histograms import (
    LOG10_WAIT_BINS,
    cdf,
    log10_wait_histogram,
    survival,
)


class TestLog10Histogram:
    def test_paper_bins(self):
        assert LOG10_WAIT_BINS == (0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0)

    def test_zero_wait_lands_in_first_bin(self):
        hist = log10_wait_histogram([0.0, 0.5])
        assert hist[0] == 1.0

    def test_binning(self):
        # 5 s -> [0,1); 50 s -> [1,2); 5000 s -> [3,4).
        hist = log10_wait_histogram([5.0, 50.0, 5000.0], normalize=False)
        assert hist[0] == 1
        assert hist[1] == 1
        assert hist[3] == 1

    def test_huge_waits_clamped_to_last_bin(self):
        hist = log10_wait_histogram([1e9], normalize=False)
        assert hist[-1] == 1

    def test_normalized_sums_to_one(self):
        hist = log10_wait_histogram([1.0, 10.0, 100.0, 1e7])
        assert hist.sum() == pytest.approx(1.0)

    def test_empty_gives_zeros(self):
        assert log10_wait_histogram([]).sum() == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            log10_wait_histogram([-1.0])

    def test_rejects_single_edge(self):
        with pytest.raises(ValidationError):
            log10_wait_histogram([1.0], bins=[0.0])

    @given(
        waits=st.lists(st.floats(0.0, 1e8), min_size=1, max_size=100)
    )
    def test_property_mass_conserved(self, waits):
        hist = log10_wait_histogram(waits, normalize=False)
        assert hist.sum() == len(waits)


class TestCdf:
    def test_values_sorted_probs_increasing(self):
        xs, ps = cdf([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(ps) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            cdf([])

    def test_survival_complements_cdf(self):
        xs, surv = survival([1.0, 2.0, 3.0, 4.0])
        _, ps = cdf([1.0, 2.0, 3.0, 4.0])
        assert np.allclose(surv, 1.0 - ps)
