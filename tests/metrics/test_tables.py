"""Tests for the table formatter."""

import pytest

from repro.metrics.tables import format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"],
            [["a", "1"], ["long-name", "22"]],
        )
        lines = text.splitlines()
        assert len(lines) == 4
        # All rows have equal width.
        assert len(set(len(line) for line in lines)) == 1

    def test_title_prepended(self):
        text = format_table(["h"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_cells_stringified(self):
        text = format_table(["n"], [[42]])
        assert "42" in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text
