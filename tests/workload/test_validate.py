"""Tests for trace validation."""

import numpy as np
import pytest

from repro.machines import Machine
from repro.workload import Trace, validate_trace
from repro.workload.synthetic import synthetic_trace_for

from tests.conftest import make_job


@pytest.fixture
def machine():
    return Machine(name="M", cpus=64, clock_ghz=1.0)


class TestValidateTrace:
    def test_clean_trace_ok(self, machine):
        trace = Trace(jobs=[make_job(cpus=4)], duration=1000.0)
        report = validate_trace(trace, machine)
        assert report.ok
        assert not report.issues

    def test_synthetic_traces_validate(self, machine):
        trace = synthetic_trace_for(
            "ross", rng=np.random.default_rng(1), scale=0.03
        )
        from repro.machines import ross

        report = validate_trace(trace, ross())
        assert report.ok

    def test_too_wide_is_error(self, machine):
        trace = Trace(jobs=[make_job(cpus=100)], duration=1000.0)
        report = validate_trace(trace, machine)
        assert not report.ok
        assert any("width" in i.message for i in report.errors)

    def test_no_machine_skips_width_check(self):
        trace = Trace(jobs=[make_job(cpus=100)], duration=1000.0)
        assert validate_trace(trace).ok

    def test_estimate_below_runtime_error(self, machine):
        job = make_job(cpus=1, runtime=100.0)
        job.estimate = 50.0  # bypass constructor validation
        trace = Trace.__new__(Trace)
        trace.jobs = [job]
        trace.duration = 1000.0
        trace.name = "hand-built"
        report = validate_trace(trace, machine)
        assert not report.ok

    def test_long_job_warning(self, machine):
        trace = Trace(
            jobs=[make_job(cpus=1, runtime=900.0)], duration=1000.0
        )
        report = validate_trace(trace, machine)
        assert report.ok  # warning, not error
        assert report.warnings

    def test_zero_runtime_warning(self, machine):
        trace = Trace(
            jobs=[make_job(cpus=1, runtime=0.0)], duration=1000.0
        )
        report = validate_trace(trace, machine)
        assert report.ok
        assert any("zero runtime" in w.message for w in report.warnings)

    def test_duplicate_ids_warning(self, machine):
        a = make_job()
        b = a.copy_unscheduled()
        trace = Trace(jobs=[a, b], duration=1000.0)
        report = validate_trace(trace, machine)
        assert any("duplicate" in w.message for w in report.warnings)

    def test_empty_trace_warns(self, machine):
        report = validate_trace(Trace(duration=10.0), machine)
        assert report.ok
        assert report.warnings

    def test_describe_readable(self, machine):
        trace = Trace(jobs=[make_job(cpus=100)], duration=1000.0)
        text = validate_trace(trace, machine).describe()
        assert "ERROR" in text

    def test_describe_clean(self, machine):
        trace = Trace(jobs=[make_job(cpus=4)], duration=1000.0)
        assert "OK" in validate_trace(trace, machine).describe()
