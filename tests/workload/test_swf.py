"""Tests for SWF trace I/O."""

import io

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.workload import Trace, read_swf, write_swf
from repro.workload.swf import swf_roundtrip

from tests.conftest import make_job


def swf_line(
    job=1, submit=0, wait=-1, run=100, procs=4, req_procs=4,
    req_time=200, status=1, user=7, group=2,
):
    fields = [job, submit, wait, run, procs, -1, -1, req_procs,
              req_time, -1, status, user, group, -1, -1, -1, -1, -1]
    return " ".join(str(f) for f in fields)


class TestRead:
    def test_basic_record(self):
        trace = read_swf(io.StringIO(swf_line()))
        assert trace.n_jobs == 1
        job = trace.jobs[0]
        assert job.cpus == 4
        assert job.runtime == 100.0
        assert job.estimate == 200.0
        assert job.user == "user7"
        assert job.group == "group2"

    def test_comments_and_blanks_skipped(self):
        content = "; header comment\n\n" + swf_line() + "\n"
        trace = read_swf(io.StringIO(content))
        assert trace.n_jobs == 1

    def test_submit_times_rebased(self):
        content = (
            swf_line(job=1, submit=1000) + "\n"
            + swf_line(job=2, submit=1500)
        )
        trace = read_swf(io.StringIO(content))
        assert sorted(j.submit_time for j in trace.jobs) == [0.0, 500.0]

    def test_requested_procs_fallback(self):
        trace = read_swf(
            io.StringIO(swf_line(procs=-1, req_procs=16))
        )
        assert trace.jobs[0].cpus == 16

    def test_estimate_fallback_to_runtime(self):
        trace = read_swf(io.StringIO(swf_line(req_time=-1, run=300)))
        assert trace.jobs[0].estimate == 300.0

    def test_estimate_floored_at_runtime(self):
        # Some logs report runtime > request (overrun before kill).
        trace = read_swf(io.StringIO(swf_line(run=500, req_time=100)))
        assert trace.jobs[0].estimate == 500.0

    def test_cancelled_records_skipped(self):
        content = swf_line(run=-1) + "\n" + swf_line()
        trace = read_swf(io.StringIO(content))
        assert trace.n_jobs == 1

    def test_rejects_short_lines(self):
        with pytest.raises(TraceFormatError):
            read_swf(io.StringIO("1 2 3\n"))

    def test_rejects_garbage(self):
        with pytest.raises(TraceFormatError):
            read_swf(io.StringIO(swf_line().replace("100", "abc")))

    def test_rejects_empty_file(self):
        with pytest.raises(TraceFormatError):
            read_swf(io.StringIO("; nothing here\n"))


class TestRoundtrip:
    def test_roundtrip_preserves_jobs(self):
        jobs = [
            make_job(cpus=4, runtime=100.0, estimate=400.0, submit=10.0,
                     user="user3", group="group1"),
            make_job(cpus=16, runtime=2000.0, estimate=7200.0,
                     submit=500.0, user="user9", group="group0"),
        ]
        trace = Trace(jobs=jobs, duration=1000.0, name="orig")
        back = swf_roundtrip(trace)
        assert back.n_jobs == 2
        orig = sorted(trace.jobs, key=lambda j: j.submit_time)
        new = sorted(back.jobs, key=lambda j: j.submit_time)
        for a, b in zip(orig, new):
            assert b.cpus == a.cpus
            assert b.runtime == pytest.approx(a.runtime, abs=1.0)
            assert b.estimate == pytest.approx(a.estimate, abs=1.0)
            assert b.user == a.user
            assert b.group == a.group

    def test_roundtrip_synthetic_trace(self):
        from repro.workload import synthetic_trace_for

        trace = synthetic_trace_for(
            "ross", rng=np.random.default_rng(3), scale=0.02
        )
        back = swf_roundtrip(trace)
        assert back.n_jobs == trace.n_jobs
        assert back.offered_area() == pytest.approx(
            trace.offered_area(), rel=0.01
        )

    def test_file_roundtrip(self, tmp_path):
        jobs = [make_job(cpus=2, runtime=50.0, submit=5.0)]
        trace = Trace(jobs=jobs, duration=100.0)
        path = tmp_path / "trace.swf"
        write_swf(trace, path)
        back = read_swf(path)
        assert back.n_jobs == 1
        assert back.name.endswith("trace.swf")
