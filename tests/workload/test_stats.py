"""Tests for trace statistics."""

import pytest

from repro.errors import ValidationError
from repro.machines import Machine
from repro.workload import Trace, compute_stats
from repro.workload.stats import burstiness_index

from tests.conftest import make_job


@pytest.fixture
def machine():
    return Machine(name="M", cpus=100, clock_ghz=1.0)


class TestComputeStats:
    def test_basic_summary(self, machine):
        jobs = [
            make_job(cpus=10, runtime=3600.0, estimate=7200.0),
            make_job(cpus=20, runtime=1800.0, estimate=3600.0,
                     submit=100.0),
        ]
        trace = Trace(jobs=jobs, duration=86400.0, name="t")
        stats = compute_stats(trace, machine)
        assert stats.n_jobs == 2
        assert stats.mean_width == 15.0
        assert stats.max_width == 20
        assert stats.median_runtime_h == pytest.approx(0.75)
        assert stats.duration_days == pytest.approx(1.0)

    def test_width_histogram(self, machine):
        jobs = [make_job(cpus=4), make_job(cpus=4), make_job(cpus=8)]
        trace = Trace(jobs=jobs, duration=1000.0)
        stats = compute_stats(trace, machine)
        assert stats.width_histogram == {4: 2, 8: 1}

    def test_offered_utilization(self, machine):
        jobs = [make_job(cpus=100, runtime=500.0)]
        trace = Trace(jobs=jobs, duration=1000.0)
        stats = compute_stats(trace, machine)
        assert stats.offered_utilization == pytest.approx(0.5)

    def test_empty_trace_rejected(self, machine):
        with pytest.raises(ValidationError):
            compute_stats(Trace(duration=10.0), machine)

    def test_describe_readable(self, machine):
        jobs = [make_job(cpus=10, runtime=3600.0)]
        trace = Trace(jobs=jobs, duration=86400.0, name="demo")
        text = compute_stats(trace, machine).describe()
        assert "demo" in text
        assert "utilization" in text


class TestBurstiness:
    def test_regular_arrivals_low_dispersion(self):
        jobs = [make_job(submit=i * 360.0) for i in range(100)]
        trace = Trace(jobs=jobs, duration=36_000.0)
        assert burstiness_index(trace) <= 1.0

    def test_clumped_arrivals_high_dispersion(self):
        jobs = [make_job(submit=0.0) for _ in range(50)]
        jobs += [make_job(submit=30_000.0) for _ in range(50)]
        trace = Trace(jobs=jobs, duration=36_000.0)
        assert burstiness_index(trace) > 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            burstiness_index(Trace(duration=100.0))
