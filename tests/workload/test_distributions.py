"""Tests for the job attribute distributions."""


import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.distributions import (
    DefaultHeavyEstimates,
    LogNormalRuntimes,
    PowerOfTwoWidths,
)


class TestPowerOfTwoWidths:
    def test_samples_are_powers_of_two(self, rng):
        dist = PowerOfTwoWidths(max_exponent=6)
        widths = dist.sample(500, rng)
        assert set(np.unique(widths)) <= {1, 2, 4, 8, 16, 32, 64}

    def test_mean_matches_analytic(self, rng):
        dist = PowerOfTwoWidths(max_exponent=5, tilt=0.2)
        widths = dist.sample(200_000, rng)
        assert widths.mean() == pytest.approx(dist.mean(), rel=0.05)

    def test_tilt_narrows(self, rng):
        flat = PowerOfTwoWidths(max_exponent=8, tilt=0.0)
        narrow = PowerOfTwoWidths(max_exponent=8, tilt=1.0)
        assert narrow.mean() < flat.mean()

    def test_for_machine_caps_width(self):
        dist = PowerOfTwoWidths.for_machine(926, 0.25)
        assert 2 ** dist.max_exponent <= 926 * 0.25

    def test_for_machine_validation(self):
        with pytest.raises(ConfigurationError):
            PowerOfTwoWidths.for_machine(100, 0.0)

    def test_probabilities_sum_to_one(self):
        dist = PowerOfTwoWidths(max_exponent=10, tilt=0.3)
        assert dist.probabilities().sum() == pytest.approx(1.0)


class TestLogNormalRuntimes:
    def test_median_matches(self, rng):
        dist = LogNormalRuntimes(median_s=2880.0, sigma=1.5,
                                 min_runtime_s=1.0)
        runtimes = dist.sample(100_000, rng)
        assert np.median(runtimes) == pytest.approx(2880.0, rel=0.05)

    def test_heavy_tail_mean_exceeds_median(self, rng):
        dist = LogNormalRuntimes(median_s=2880.0, sigma=1.5,
                                 min_runtime_s=1.0)
        runtimes = dist.sample(100_000, rng)
        # Paper: mean 2.5 h vs median 0.8 h, a ~3x ratio.
        assert runtimes.mean() / np.median(runtimes) > 2.0

    def test_floor_applied(self, rng):
        dist = LogNormalRuntimes(median_s=100.0, min_runtime_s=60.0)
        assert dist.sample(10_000, rng).min() >= 60.0

    def test_long_job_mixture_lifts_mean(self, rng):
        base = LogNormalRuntimes(median_s=3600.0)
        longy = LogNormalRuntimes(median_s=3600.0, long_fraction=0.05,
                                  long_scale=20.0)
        assert longy.mean() > base.mean()
        samples = longy.sample(50_000, rng)
        assert samples.mean() == pytest.approx(longy.mean(), rel=0.15)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LogNormalRuntimes(median_s=0.0)
        with pytest.raises(ConfigurationError):
            LogNormalRuntimes(median_s=1.0, sigma=0.0)
        with pytest.raises(ConfigurationError):
            LogNormalRuntimes(median_s=1.0, long_fraction=1.0)
        with pytest.raises(ConfigurationError):
            LogNormalRuntimes(median_s=1.0, long_scale=0.5)


class TestDefaultHeavyEstimates:
    def test_estimates_never_below_runtime(self, rng):
        dist = DefaultHeavyEstimates()
        runtimes = rng.uniform(60.0, 100_000.0, size=5000)
        estimates = dist.sample(runtimes, rng)
        assert (estimates >= runtimes).all()

    def test_default_values_dominate(self, rng):
        dist = DefaultHeavyEstimates(default_fraction=1.0)
        runtimes = np.full(5000, 100.0)
        estimates = dist.sample(runtimes, rng)
        assert set(np.unique(estimates)) <= set(dist.defaults_s)

    def test_median_estimate_is_paper_like(self, rng):
        """Median estimate ~6 h for short-running jobs (the paper's
        default-dominated picture)."""
        dist = DefaultHeavyEstimates()
        runtimes = rng.lognormal(np.log(2880.0), 1.0, size=20_000)
        estimates = dist.sample(runtimes, rng)
        assert np.median(estimates) == pytest.approx(6 * 3600.0, rel=0.35)

    def test_gross_overestimation(self, rng):
        """Mean estimate/runtime ratio is large, as in the paper."""
        dist = DefaultHeavyEstimates()
        runtimes = rng.lognormal(np.log(2880.0), 1.0, size=20_000)
        estimates = dist.sample(runtimes, rng)
        assert np.median(estimates / runtimes) > 2.0

    def test_honest_mode_scales_runtime(self, rng):
        dist = DefaultHeavyEstimates(default_fraction=0.0,
                                     honest_sigma=0.3)
        runtimes = np.full(5000, 1000.0)
        estimates = dist.sample(runtimes, rng)
        assert (estimates >= 1000.0).all()
        assert np.median(estimates) < 3000.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DefaultHeavyEstimates(default_fraction=1.5)
        with pytest.raises(ConfigurationError):
            DefaultHeavyEstimates(defaults_s=(1.0,), default_weights=(0.5, 0.5))
        with pytest.raises(ConfigurationError):
            DefaultHeavyEstimates(
                defaults_s=(1.0, 2.0), default_weights=(0.5, 0.6)
            )
