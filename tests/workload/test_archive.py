"""Tests for the public-trace catalog."""

import pytest

from repro.workload.archive import (
    CATALOG,
    archive_entry,
    catalog_keys,
    load_archive_trace,
)
from repro.workload.swf import write_swf
from repro.workload.synthetic import synthetic_trace_for

import numpy as np


class TestCatalog:
    def test_known_traces_present(self):
        assert {"lanl_cm5", "llnl_t3d", "sdsc_sp2", "ctc_sp2"} <= set(
            catalog_keys()
        )

    def test_entries_consistent(self):
        for entry in CATALOG.values():
            assert entry.cpus > 0
            assert entry.clock_ghz > 0
            assert entry.n_jobs > 0
            assert entry.url.startswith("https://")

    def test_machine_built_from_entry(self):
        machine = archive_entry("lanl_cm5").machine()
        assert machine.cpus == 1024
        assert machine.site == "Los Alamos"

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            archive_entry("asci_red")


class TestLoadArchiveTrace:
    def test_load_from_disk(self, tmp_path):
        # Stand-in for a downloaded archive file.
        synthetic = synthetic_trace_for(
            "ross", rng=np.random.default_rng(2), scale=0.02
        )
        path = tmp_path / "lanl.swf"
        write_swf(synthetic, path)
        trace = load_archive_trace("lanl_cm5", path)
        assert trace.name == "LANL CM-5"
        assert trace.n_jobs == synthetic.n_jobs

    def test_unknown_key_before_io(self, tmp_path):
        with pytest.raises(KeyError):
            load_archive_trace("nope", tmp_path / "missing.swf")
