"""Tests for the Trace container."""

import pytest

from repro.errors import ValidationError
from repro.machines import Machine
from repro.workload import Trace

from tests.conftest import make_job


@pytest.fixture
def machine():
    return Machine(name="M", cpus=10, clock_ghz=1.0)


class TestConstruction:
    def test_empty(self):
        trace = Trace()
        assert trace.n_jobs == 0
        assert len(trace) == 0

    def test_rejects_negative_duration(self):
        with pytest.raises(ValidationError):
            Trace(duration=-1.0)

    def test_rejects_submissions_after_end(self):
        with pytest.raises(ValidationError):
            Trace(jobs=[make_job(submit=100.0)], duration=50.0)


class TestDerived:
    def test_offered_area(self, machine):
        jobs = [make_job(cpus=2, runtime=100.0),
                make_job(cpus=3, runtime=10.0)]
        trace = Trace(jobs=jobs, duration=1000.0)
        assert trace.offered_area() == 230.0

    def test_offered_utilization(self, machine):
        jobs = [make_job(cpus=10, runtime=500.0)]
        trace = Trace(jobs=jobs, duration=1000.0)
        assert trace.offered_utilization(machine) == pytest.approx(0.5)

    def test_offered_utilization_needs_duration(self, machine):
        with pytest.raises(ValidationError):
            Trace().offered_utilization(machine)

    def test_sorted_jobs(self):
        a = make_job(submit=50.0)
        b = make_job(submit=10.0)
        trace = Trace(jobs=[a, b], duration=100.0)
        assert trace.sorted_jobs() == [b, a]


class TestCopyTruncate:
    def test_copy_isolates_state(self):
        job = make_job()
        trace = Trace(jobs=[job], duration=10.0)
        copy = trace.copy()
        copy.jobs[0].start_time = 5.0
        assert job.start_time is None

    def test_truncated_drops_late_jobs(self):
        early = make_job(submit=10.0)
        late = make_job(submit=900.0)
        trace = Trace(jobs=[early, late], duration=1000.0, name="t")
        short = trace.truncated(100.0)
        assert short.n_jobs == 1
        assert short.duration == 100.0

    def test_truncated_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            Trace(duration=10.0).truncated(0.0)
