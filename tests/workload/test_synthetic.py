"""Tests for the calibrated synthetic trace generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machines import preset
from repro.machines.presets import targets
from repro.workload.stats import burstiness_index, compute_stats
from repro.workload.synthetic import (
    generate_trace,
    mix_profile,
    synthetic_trace_for,
)


@pytest.mark.parametrize("name", ["ross", "blue_mountain", "blue_pacific"])
class TestCalibration:
    def test_offered_utilization_exact(self, name, rng):
        machine = preset(name)
        trace = synthetic_trace_for(name, rng=rng, scale=0.1)
        target = targets(name).utilization
        assert trace.offered_utilization(machine) == pytest.approx(
            target, abs=0.02
        )

    def test_job_count_near_target(self, name, rng):
        trace = synthetic_trace_for(name, rng=rng, scale=0.1)
        expected = targets(name).n_jobs * 0.1
        assert 0.7 * expected < trace.n_jobs < 1.3 * expected

    def test_duration_scaled(self, name, rng):
        trace = synthetic_trace_for(name, rng=rng, scale=0.1)
        assert trace.duration == pytest.approx(
            targets(name).duration_s * 0.1
        )

    def test_jobs_fit_machine(self, name, rng):
        machine = preset(name)
        trace = synthetic_trace_for(name, rng=rng, scale=0.05)
        assert all(j.cpus <= machine.cpus for j in trace.jobs)

    def test_estimates_dominate_runtimes(self, name, rng):
        trace = synthetic_trace_for(name, rng=rng, scale=0.05)
        assert all(j.estimate >= j.runtime for j in trace.jobs)

    def test_submissions_within_duration(self, name, rng):
        trace = synthetic_trace_for(name, rng=rng, scale=0.05)
        assert all(0 <= j.submit_time <= trace.duration for j in trace.jobs)


class TestMixShapes:
    def test_blue_mountain_estimates_grossly_overestimate(self, rng):
        """Paper: median estimate 6 h vs median actual 0.8 h."""
        machine = preset("blue_mountain")
        trace = synthetic_trace_for("blue_mountain", rng=rng, scale=0.2)
        stats = compute_stats(trace, machine)
        assert stats.median_estimate_h / stats.median_runtime_h > 3.0

    def test_blue_pacific_smaller_shorter(self, rng):
        """Paper: Blue Pacific natives are relatively smaller and
        shorter than Blue Mountain's."""
        bm = synthetic_trace_for(
            "blue_mountain", rng=np.random.default_rng(5), scale=0.1
        )
        bp = synthetic_trace_for(
            "blue_pacific", rng=np.random.default_rng(5), scale=0.1
        )
        bm_stats = compute_stats(bm, preset("blue_mountain"))
        bp_stats = compute_stats(bp, preset("blue_pacific"))
        # Compare relative to machine size.
        assert (
            bp_stats.mean_width / 926 < bm_stats.mean_width / 4662 * 1.5
        )
        assert bp_stats.mean_runtime_h < bm_stats.mean_runtime_h

    def test_ross_has_week_scale_jobs(self, rng):
        trace = synthetic_trace_for("ross", rng=rng, scale=0.3)
        longest = max(j.runtime for j in trace.jobs)
        assert longest > 3 * 86400.0  # multi-day tail

    def test_arrivals_bursty(self, rng):
        trace = synthetic_trace_for("blue_mountain", rng=rng, scale=0.2)
        assert burstiness_index(trace) > 1.5

    def test_width_mix_is_powers_of_two(self, rng):
        trace = synthetic_trace_for("blue_mountain", rng=rng, scale=0.05)
        widths = {j.cpus for j in trace.jobs}
        assert all((w & (w - 1)) == 0 for w in widths)


class TestApi:
    def test_unknown_machine(self, rng):
        with pytest.raises(KeyError):
            synthetic_trace_for("asci_white", rng=rng)

    def test_mix_profile_unknown(self):
        with pytest.raises(ConfigurationError):
            mix_profile("asci_white", preset("ross"))

    def test_scale_validation(self, rng):
        machine = preset("ross")
        with pytest.raises(ConfigurationError):
            generate_trace(
                machine,
                targets("ross"),
                mix_profile("ross", machine),
                rng,
                scale=0.0,
            )

    def test_deterministic_given_seed(self):
        a = synthetic_trace_for(
            "ross", rng=np.random.default_rng(11), scale=0.05
        )
        b = synthetic_trace_for(
            "ross", rng=np.random.default_rng(11), scale=0.05
        )
        assert a.n_jobs == b.n_jobs
        assert [j.cpus for j in a.jobs] == [j.cpus for j in b.jobs]
        assert [j.submit_time for j in a.jobs] == [
            j.submit_time for j in b.jobs
        ]

    def test_utilization_override(self, rng):
        machine = preset("blue_mountain")
        trace = synthetic_trace_for(
            "blue_mountain", rng=rng, scale=0.05, utilization=0.5
        )
        assert trace.offered_utilization(machine) == pytest.approx(
            0.5, abs=0.02
        )
