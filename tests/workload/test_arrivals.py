"""Tests for the arrival processes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.units import DAY, HOUR
from repro.workload.arrivals import (
    BurstyProcess,
    PoissonProcess,
    WeeklyCycle,
    generate_arrivals,
)


class TestPoisson:
    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonProcess(0.0)

    def test_count_near_expectation(self, rng):
        arrivals = PoissonProcess(rate=0.01).sample(1_000_000.0, rng)
        assert 9_000 < arrivals.size < 11_000

    def test_sorted_within_window(self, rng):
        arrivals = PoissonProcess(rate=0.001).sample(100_000.0, rng)
        assert (np.diff(arrivals) >= 0).all()
        assert arrivals.min() >= 0.0
        assert arrivals.max() < 100_000.0


class TestWeeklyCycle:
    def test_multiplier_day_night_weekend(self):
        cycle = WeeklyCycle()
        monday_noon = 12 * HOUR
        monday_night = 23 * HOUR
        saturday_noon = 5 * DAY + 12 * HOUR
        assert cycle.multiplier(monday_noon) == cycle.day_factor
        assert cycle.multiplier(monday_night) == cycle.night_factor
        assert cycle.multiplier(saturday_noon) == cycle.weekend_factor

    def test_vectorized_matches_scalar(self):
        cycle = WeeklyCycle()
        times = np.linspace(0.0, 14 * DAY, 200)
        vector = cycle.multipliers(times)
        scalar = np.array([cycle.multiplier(t) for t in times])
        assert np.array_equal(vector, scalar)

    def test_mean_factor_matches_empirical(self):
        cycle = WeeklyCycle()
        times = np.arange(0.0, 7 * DAY, 60.0)
        empirical = cycle.multipliers(times).mean()
        assert cycle.mean_factor() == pytest.approx(empirical, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WeeklyCycle(day_factor=-1.0)
        with pytest.raises(ConfigurationError):
            WeeklyCycle(day_start_hour=20.0, day_end_hour=8.0)


class TestBurstyProcess:
    def test_segments_cover_duration(self, rng):
        bursts = BurstyProcess()
        segments = bursts.sample_states(100_000.0, rng)
        assert segments[0][0] == 0.0
        assert segments[-1][1] == 100_000.0
        for (s0, e0, _), (s1, _, _) in zip(segments, segments[1:]):
            assert e0 == s1

    def test_alternating_factors(self, rng):
        bursts = BurstyProcess()
        segments = bursts.sample_states(500_000.0, rng)
        factors = [f for _, _, f in segments]
        for a, b in zip(factors, factors[1:]):
            assert a != b

    def test_mean_factor(self):
        bursts = BurstyProcess(
            mean_quiet_s=100.0, mean_burst_s=100.0,
            burst_factor=3.0, quiet_factor=1.0,
        )
        assert bursts.mean_factor() == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurstyProcess(mean_quiet_s=0.0)
        with pytest.raises(ConfigurationError):
            BurstyProcess(burst_factor=0.1, quiet_factor=0.5)


class TestGenerateArrivals:
    def test_expected_count(self, rng):
        arrivals = generate_arrivals(2000, 30 * DAY, rng)
        assert 1500 < arrivals.size < 2500

    def test_within_window(self, rng):
        arrivals = generate_arrivals(500, 10 * DAY, rng)
        assert arrivals.min() >= 0.0
        assert arrivals.max() < 10 * DAY

    def test_burstier_than_poisson(self, rng):
        """Index of dispersion of hourly counts must exceed Poisson's 1."""
        arrivals = generate_arrivals(5000, 30 * DAY, rng)
        n_bins = int(30 * DAY // HOUR)
        counts, _ = np.histogram(arrivals, bins=n_bins,
                                 range=(0.0, n_bins * HOUR))
        dispersion = counts.var() / counts.mean()
        assert dispersion > 1.5

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            generate_arrivals(0, 100.0, rng)
        with pytest.raises(ConfigurationError):
            generate_arrivals(10, 0.0, rng)
