"""Tests for the §4.2 makespan model."""

import pytest

from repro.errors import ValidationError
from repro.jobs import InterstitialProject
from repro.machines import blue_mountain, blue_pacific, ross
from repro.theory import ideal_makespan, ideal_makespan_for
from repro.theory.makespan import predicted_makespan
from repro.units import HOUR


class TestIdealMakespan:
    def test_formula(self):
        # P / (n C (1-U)): 1e15 cycles, 100 CPUs @ 1 GHz, U=0.5
        # -> 1e15 / (100 * 1e9 * 0.5) = 20 000 s.
        assert ideal_makespan(1e15, 100, 1.0, 0.5) == pytest.approx(
            20_000.0
        )

    def test_paper_blue_mountain_point(self):
        """The 123-PC project on Blue Mountain at U=.79: theory gives
        ~133 h, matching the magnitude of Table 2's 166 h measured."""
        project = InterstitialProject(
            n_jobs=32_000, cpus_per_job=32, runtime_1ghz=120.0
        )
        span = ideal_makespan_for(project, blue_mountain(), 0.79)
        assert span / HOUR == pytest.approx(133.0, rel=0.02)

    def test_blue_pacific_much_slower(self):
        """Same project is ~7x slower on Blue Pacific: smaller machine
        times higher utilization (Table 2's ordering)."""
        project = InterstitialProject.from_peta_cycles(30.1, 32, 120.0)
        bm = ideal_makespan_for(project, blue_mountain(), 0.790)
        bp = ideal_makespan_for(project, blue_pacific(), 0.907)
        assert bp / bm > 5.0

    def test_linear_in_project_size(self):
        small = ideal_makespan(1e15, 100, 1.0, 0.5)
        large = ideal_makespan(3e15, 100, 1.0, 0.5)
        assert large == pytest.approx(3 * small)

    def test_zero_project(self):
        assert ideal_makespan(0.0, 100, 1.0, 0.5) == 0.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            ideal_makespan(-1.0, 100, 1.0, 0.5)
        with pytest.raises(ValidationError):
            ideal_makespan(1.0, 0, 1.0, 0.5)
        with pytest.raises(ValidationError):
            ideal_makespan(1.0, 100, 1.0, 1.0)
        with pytest.raises(ValidationError):
            ideal_makespan(1.0, 100, 1.0, -0.1)


class TestPredictedMakespan:
    def test_paper_calibration(self):
        """The paper's fit: 5256 + 1.16x."""
        project = InterstitialProject.from_peta_cycles(7.7, 1, 120.0)
        machine = ross()
        ideal = ideal_makespan_for(project, machine, 0.631)
        predicted = predicted_makespan(project, machine, 0.631)
        assert predicted == pytest.approx(5256.0 + 1.16 * ideal)

    def test_breakage_multiplier(self):
        project = InterstitialProject.from_peta_cycles(7.7, 32, 120.0)
        machine = blue_pacific()
        plain = predicted_makespan(project, machine, 0.907)
        with_b = predicted_makespan(
            project, machine, 0.907, with_breakage=True
        )
        # Blue Pacific 32-CPU breakage is 1.346 (Table 3).
        assert with_b / plain == pytest.approx(1.346, abs=0.002)
