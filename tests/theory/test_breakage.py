"""Tests for the breakage model against the paper's §4.2 numbers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.theory import breakage_factor, expected_breakage_cpus


class TestPaperValues:
    def test_ross(self):
        # (1436 * .369 / 32) / floor(...) = 16.55/16 = 1.035
        assert breakage_factor(1436, 0.631, 32) == pytest.approx(
            1.035, abs=0.001
        )

    def test_blue_mountain(self):
        # 30.59 / 30 = 1.020
        assert breakage_factor(4662, 0.790, 32) == pytest.approx(
            1.020, abs=0.001
        )

    def test_blue_pacific(self):
        # 2.69 / 2 = 1.346
        assert breakage_factor(926, 0.907, 32) == pytest.approx(
            1.346, abs=0.001
        )

    def test_paper_example_90_free(self):
        """'only two (not three) 32 CPU jobs can fit if there are 90
        available processors, wasting 26 CPUs'."""
        # 90 free CPUs: machine of 900 CPUs at U=0.9.
        assert expected_breakage_cpus(900, 0.9, 32) == pytest.approx(26.0)


class TestEdgeCases:
    def test_single_cpu_jobs_no_breakage(self):
        assert breakage_factor(1000, 0.5, 1) == pytest.approx(
            1.0, abs=1e-9
        )

    def test_width_exceeding_free_pool_infinite(self):
        # Average free = 10; 32-wide jobs never fit on average.
        assert math.isinf(breakage_factor(100, 0.9, 32))

    def test_exact_tiling_no_breakage(self):
        # Free = 64, width 32: exactly two jobs, ratio 1.0.
        assert breakage_factor(128, 0.5, 32) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            breakage_factor(0, 0.5, 1)
        with pytest.raises(ValidationError):
            breakage_factor(10, 1.0, 1)
        with pytest.raises(ValidationError):
            breakage_factor(10, 0.5, 0)


@given(
    n=st.integers(2, 10_000),
    u=st.floats(0.0, 0.99),
    width=st.integers(1, 256),
)
def test_property_factor_in_unit_interval(n, u, width):
    """Finite breakage factors always lie in [1, 2): the wasted slice
    is less than one whole job."""
    factor = breakage_factor(n, u, width)
    if math.isfinite(factor):
        assert 1.0 <= factor < 2.0


@given(
    n=st.integers(2, 10_000),
    u=st.floats(0.0, 0.99),
    width=st.integers(1, 256),
)
def test_property_wasted_cpus_below_width(n, u, width):
    wasted = expected_breakage_cpus(n, u, width)
    assert 0.0 <= wasted < width
