"""Tests for the M/M/c turnaround model."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.theory.queueing import (
    erlang_c,
    mmc_mean_expansion_factor,
    mmc_mean_wait,
    wait_blowup_ratio,
)


class TestErlangC:
    def test_zero_load(self):
        assert erlang_c(10, 0.0) == 0.0

    def test_single_server_equals_rho(self):
        # For M/M/1, P(queue) = rho.
        assert erlang_c(1, 0.7) == pytest.approx(0.7)

    def test_known_value(self):
        # Textbook: c=2, a=1 -> C = 1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_monotone_in_load(self):
        values = [erlang_c(8, a) for a in (2.0, 4.0, 6.0, 7.5)]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(ValidationError):
            erlang_c(0, 0.5)
        with pytest.raises(ValidationError):
            erlang_c(4, 4.0)  # load must be < c

    @given(c=st.integers(1, 200), rho=st.floats(0.0, 0.99))
    def test_property_probability(self, c, rho):
        p = erlang_c(c, c * rho)
        assert 0.0 <= p <= 1.0


class TestMeanWait:
    def test_zero_at_zero_load(self):
        assert mmc_mean_wait(10, 0.0, 3600.0) == 0.0

    def test_infinite_at_saturation(self):
        assert math.isinf(mmc_mean_wait(10, 1.0, 3600.0))

    def test_mm1_closed_form(self):
        # M/M/1: W_q = rho/(mu(1-rho)).
        rho, service = 0.8, 100.0
        expected = rho / ((1 / service) * (1 - rho))
        assert mmc_mean_wait(1, rho, service) == pytest.approx(expected)

    def test_blowup_near_saturation(self):
        """The paper's motivating fact: turnaround explodes as U -> 1."""
        w78 = mmc_mean_wait(14, 0.78, 3600.0)
        w95 = mmc_mean_wait(14, 0.95, 3600.0)
        w99 = mmc_mean_wait(14, 0.99, 3600.0)
        assert w95 > 5 * w78
        assert w99 > 4 * w95

    def test_more_servers_less_wait(self):
        assert mmc_mean_wait(50, 0.9, 3600.0) < mmc_mean_wait(
            5, 0.9, 3600.0
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            mmc_mean_wait(10, -0.1, 3600.0)
        with pytest.raises(ValidationError):
            mmc_mean_wait(10, 0.5, 0.0)

    @given(
        c=st.integers(1, 100),
        u1=st.floats(0.05, 0.90),
        delta=st.floats(0.01, 0.09),
    )
    def test_property_monotone_in_utilization(self, c, u1, delta):
        assert mmc_mean_wait(c, u1 + delta, 100.0) >= mmc_mean_wait(
            c, u1, 100.0
        )


class TestDerived:
    def test_expansion_factor(self):
        ef = mmc_mean_expansion_factor(1, 0.5, 100.0)
        assert ef == pytest.approx(2.0)  # M/M/1: W_q = service at rho=.5

    def test_expansion_factor_saturated(self):
        assert math.isinf(mmc_mean_expansion_factor(4, 1.0, 100.0))

    def test_blowup_ratio(self):
        ratio = wait_blowup_ratio(14, 0.78, 0.95)
        assert ratio > 5.0

    def test_blowup_ratio_from_zero(self):
        assert math.isinf(wait_blowup_ratio(4, 0.0, 0.5))
