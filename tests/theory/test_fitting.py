"""Tests for the affine fit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.theory import fit_affine


class TestFitAffine:
    def test_recovers_exact_line(self):
        x = [0.0, 1.0, 2.0, 5.0]
        y = [3.0, 5.0, 7.0, 13.0]
        fit = fit_affine(x, y)
        assert fit.intercept == pytest.approx(3.0)
        assert fit.slope == pytest.approx(2.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.max_relative_error == pytest.approx(0.0, abs=1e-9)

    def test_predict(self):
        fit = fit_affine([0.0, 1.0], [1.0, 3.0])
        assert fit.predict(2.0) == pytest.approx(5.0)

    def test_noisy_fit_reasonable(self, rng):
        x = np.linspace(0, 100, 50)
        y = 10.0 + 2.0 * x + rng.normal(0, 1.0, size=50)
        fit = fit_affine(x, y)
        assert fit.slope == pytest.approx(2.0, abs=0.1)
        assert fit.r_squared > 0.99

    def test_validation(self):
        with pytest.raises(ValidationError):
            fit_affine([1.0], [1.0])
        with pytest.raises(ValidationError):
            fit_affine([1.0, 2.0], [1.0])

    def test_describe(self):
        fit = fit_affine([0.0, 1.0, 2.0], [5256.0, 5257.16, 5258.32])
        assert "R^2" in fit.describe()

    @settings(max_examples=30)
    @given(
        intercept=st.floats(-100.0, 100.0),
        slope=st.floats(-10.0, 10.0),
        xs=st.lists(
            # A coarse grid keeps the design matrix well-conditioned;
            # raw floats can be "unique" yet numerically coincident,
            # making the slope unidentifiable.
            st.integers(0, 1000), min_size=3, max_size=20, unique=True
        ),
    )
    def test_property_exact_recovery(self, intercept, slope, xs):
        xs = [x / 10.0 for x in xs]
        ys = [intercept + slope * x for x in xs]
        fit = fit_affine(xs, ys)
        assert fit.intercept == pytest.approx(intercept, abs=1e-5)
        assert fit.slope == pytest.approx(slope, abs=1e-6)
