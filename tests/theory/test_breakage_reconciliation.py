"""Closed-form breakage reconciled against a simulated rigid run.

The theory says a machine with ``F`` free CPUs wastes ``F mod n`` of
them on rigid ``n``-wide interstitial jobs.  The controller's decision
trace records exactly what the Figure-1 rule did with every free-CPU
snapshot, so the two can be reconciled pass by pass: every *submitted*
decision must have packed ``F // n`` jobs and stranded
``expected_breakage_cpus`` evaluated at that instant's utilization —
on every machine preset, not just on average.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.controller import InterstitialController
from repro.core.runners import run_with_controller
from repro.jobs import InterstitialProject
from repro.machines import preset
from repro.machines.presets import preset_names
from repro.theory import expected_breakage_cpus
from repro.workload.synthetic import synthetic_trace_for

JOB_WIDTH = 32
TRACE_SCALE = 0.01
SEED = 2003


def _decisions(machine_name: str):
    machine = preset(machine_name)
    trace = synthetic_trace_for(
        machine_name,
        rng=np.random.default_rng(
            (SEED, preset_names().index(machine_name))
        ),
        scale=TRACE_SCALE,
    )
    project = InterstitialProject(
        n_jobs=1,  # placeholder; continual feeding ignores it
        cpus_per_job=JOB_WIDTH,
        runtime_1ghz=1800.0,
        user="harvest",
        group="harvest",
    )
    controller = InterstitialController(
        machine, project, continual=True, record_decisions=True
    )
    run_with_controller(
        machine, trace.jobs, controller, horizon=trace.duration
    )
    return machine, controller.decisions


@pytest.mark.parametrize("machine_name", preset_names())
def test_submitted_decisions_match_closed_form(machine_name: str) -> None:
    machine, decisions = _decisions(machine_name)
    submitted = [d for d in decisions if d.reason == "submitted"]
    # The sweep must actually exercise the packing rule, including
    # gate-free passes (empty native queue).
    assert submitted
    assert any(d.n_submitted > 0 for d in submitted)
    assert any(d.queue_length == 0 for d in submitted)
    for decision in submitted:
        free = decision.free_cpus
        assert decision.n_submitted == free // JOB_WIDTH
        measured_waste = free - JOB_WIDTH * decision.n_submitted
        assert measured_waste == free % JOB_WIDTH
        # Evaluate the closed form at this instant's utilization.  The
        # epsilon keeps the reconstructed free count just above the
        # integer so float rounding cannot drop it across the floor
        # discontinuity at exact multiples of the job width.
        utilization = max(0.0, 1.0 - (free + 1e-9) / machine.cpus)
        expected = expected_breakage_cpus(
            machine.cpus, utilization, JOB_WIDTH
        )
        assert math.isclose(expected, measured_waste, abs_tol=1e-6)
