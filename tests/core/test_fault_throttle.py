"""Graceful degradation: the controller's fault-rate throttle."""

import math

import pytest

from repro.core.composite import CompositeInterstitialSource
from repro.core.controller import InterstitialController
from repro.errors import ConfigurationError
from repro.jobs import InterstitialProject
from repro.sim.state import ClusterState

from tests.conftest import fcfs


def make_controller(machine, **kwargs):
    project = InterstitialProject(
        n_jobs=100, cpus_per_job=2, runtime_1ghz=10.0
    )
    return InterstitialController(machine=machine, project=project, **kwargs)


class TestValidation:
    def test_rejects_zero_threshold(self, tiny_machine):
        with pytest.raises(ConfigurationError):
            make_controller(tiny_machine, throttle_after_failures=0)

    def test_rejects_non_positive_window(self, tiny_machine):
        with pytest.raises(ConfigurationError):
            make_controller(
                tiny_machine,
                throttle_after_failures=1,
                throttle_window=0.0,
            )
        with pytest.raises(ConfigurationError):
            make_controller(
                tiny_machine,
                throttle_after_failures=1,
                throttle_quiet_period=-1.0,
            )


class TestOnFault:
    def test_counts_faults_even_without_throttle(self, tiny_machine):
        controller = make_controller(tiny_machine)
        controller.on_fault(10.0, 4)
        controller.on_fault(20.0, 4)
        assert controller.n_faults_seen == 2
        assert controller.throttled_until == -math.inf

    def test_arms_after_threshold_within_window(self, tiny_machine):
        controller = make_controller(
            tiny_machine,
            throttle_after_failures=2,
            throttle_window=100.0,
            throttle_quiet_period=50.0,
        )
        controller.on_fault(0.0, 4)
        assert controller.throttled_until == -math.inf
        controller.on_fault(10.0, 4)
        assert controller.throttled_until == 60.0

    def test_old_faults_age_out_of_window(self, tiny_machine):
        controller = make_controller(
            tiny_machine,
            throttle_after_failures=2,
            throttle_window=100.0,
            throttle_quiet_period=50.0,
        )
        controller.on_fault(0.0, 4)
        controller.on_fault(200.0, 4)  # first fault left the window
        assert controller.throttled_until == -math.inf
        assert controller.n_faults_seen == 2

    def test_fresh_faults_extend_the_throttle(self, tiny_machine):
        controller = make_controller(
            tiny_machine,
            throttle_after_failures=2,
            throttle_window=100.0,
            throttle_quiet_period=50.0,
        )
        controller.on_fault(0.0, 4)
        controller.on_fault(10.0, 4)
        controller.on_fault(40.0, 4)
        assert controller.throttled_until == 90.0


class TestOfferGate:
    def _throttled(self, machine):
        controller = make_controller(
            machine,
            throttle_after_failures=2,
            throttle_window=100.0,
            throttle_quiet_period=50.0,
            record_decisions=True,
        )
        controller.on_fault(0.0, 4)
        controller.on_fault(10.0, 4)  # throttled until t=60
        return controller

    def test_blocked_while_throttled(self, tiny_machine):
        controller = self._throttled(tiny_machine)
        cluster = ClusterState(tiny_machine)
        assert controller.offer(30.0, cluster, fcfs()) == []
        decision = controller.decisions[-1]
        assert decision.reason == "fault_throttled"
        assert decision.n_submitted == 0

    def test_resumes_after_quiet_period(self, tiny_machine):
        controller = self._throttled(tiny_machine)
        cluster = ClusterState(tiny_machine)
        jobs = controller.offer(60.0, cluster, fcfs())
        assert jobs
        assert controller.decisions[-1].reason == "submitted"

    def test_unthrottled_controller_submits_during_faults(
        self, tiny_machine
    ):
        # Without throttle_after_failures the fault feed is ignored.
        controller = make_controller(tiny_machine)
        controller.on_fault(0.0, 4)
        controller.on_fault(1.0, 4)
        cluster = ClusterState(tiny_machine)
        assert controller.offer(2.0, cluster, fcfs())


class TestCompositeForwarding:
    def test_on_fault_reaches_every_source(self, tiny_machine):
        a = make_controller(
            tiny_machine,
            throttle_after_failures=1,
            throttle_window=10.0,
            throttle_quiet_period=10.0,
        )
        b = make_controller(tiny_machine)
        composite = CompositeInterstitialSource([a, b])
        composite.on_fault(5.0, 4)
        assert a.n_faults_seen == 1
        assert b.n_faults_seen == 1
        assert a.throttled_until == 15.0
