"""Tests for short-project sampling from continual logs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampling import (
    makespan_from,
    sample_short_projects,
)
from repro.errors import ValidationError
from repro.jobs import JobKind

from tests.conftest import make_job


def finished_job(start, finish, cpus=1):
    job = make_job(cpus=cpus, runtime=finish - start,
                   kind=JobKind.INTERSTITIAL)
    job.start_time = start
    job.finish_time = finish
    return job


class TestMakespanFrom:
    def test_basic(self):
        starts = np.array([0.0, 10.0, 20.0, 30.0])
        finishes = np.array([5.0, 15.0, 25.0, 35.0])
        # Project of 2 jobs starting at t1=8: jobs at 10 and 20,
        # last finish 25 -> makespan 17.
        assert makespan_from(starts, finishes, 8.0, 2) == 17.0

    def test_exact_start_included(self):
        starts = np.array([10.0, 20.0])
        finishes = np.array([15.0, 25.0])
        assert makespan_from(starts, finishes, 10.0, 1) == 5.0

    def test_insufficient_jobs_none(self):
        starts = np.array([0.0, 10.0])
        finishes = np.array([5.0, 15.0])
        assert makespan_from(starts, finishes, 5.0, 2) is None

    def test_max_finish_not_last(self):
        # An early-started long job can dominate the makespan.
        starts = np.array([0.0, 10.0])
        finishes = np.array([100.0, 15.0])
        assert makespan_from(starts, finishes, 0.0, 2) == 100.0


class TestSampleShortProjects:
    def test_validation(self):
        jobs = [finished_job(0.0, 10.0)]
        with pytest.raises(ValidationError):
            sample_short_projects(jobs, 0, 5, np.random.default_rng(0))
        with pytest.raises(ValidationError):
            sample_short_projects(jobs, 1, 0, np.random.default_rng(0))

    def test_no_completed_jobs(self):
        with pytest.raises(ValidationError):
            sample_short_projects([], 1, 5, np.random.default_rng(0))

    def test_log_too_short_returns_empty(self):
        jobs = [finished_job(0.0, 10.0)]
        out = sample_short_projects(jobs, 5, 10, np.random.default_rng(0))
        assert out.size == 0

    def test_samples_are_positive(self):
        jobs = [finished_job(i * 10.0, i * 10.0 + 5.0) for i in range(50)]
        out = sample_short_projects(jobs, 3, 20, np.random.default_rng(1))
        assert out.size == 20
        assert (out > 0).all()

    def test_deterministic_given_rng(self):
        jobs = [finished_job(i * 10.0, i * 10.0 + 5.0) for i in range(50)]
        a = sample_short_projects(jobs, 3, 10, np.random.default_rng(7))
        b = sample_short_projects(jobs, 3, 10, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_uniform_stream_makespan_matches_rate(self):
        # One job starts every 10 s and runs 5 s: a 10-job project
        # sampled anywhere takes ~ 10 * 10 (+ alignment slack).
        jobs = [finished_job(i * 10.0, i * 10.0 + 5.0) for i in range(200)]
        out = sample_short_projects(jobs, 10, 50, np.random.default_rng(2))
        assert out.size == 50
        assert (out >= 90.0).all() and (out <= 110.0).all()


@settings(max_examples=30, deadline=None)
@given(
    n_stream=st.integers(5, 80),
    n_project=st.integers(1, 10),
    seed=st.integers(0, 1000),
)
def test_property_sampled_makespans_cover_project_runtimes(
    n_stream, n_project, seed
):
    """Every sampled makespan is at least one job runtime (jobs run 5 s)
    and is finite."""
    jobs = [finished_job(i * 7.0, i * 7.0 + 5.0) for i in range(n_stream)]
    out = sample_short_projects(
        jobs, n_project, 10, np.random.default_rng(seed)
    )
    assert np.isfinite(out).all()
    if out.size:
        assert (out >= 5.0 - 1e-9).all()
