"""Tests for the Figure-1 interstitial controller."""


import pytest

from repro.core.controller import InterstitialController
from repro.errors import ConfigurationError
from repro.jobs import InterstitialProject, JobKind
from repro.sched import fcfs_scheduler
from repro.sim.state import ClusterState

from tests.conftest import make_job


@pytest.fixture
def project():
    return InterstitialProject(n_jobs=100, cpus_per_job=2,
                               runtime_1ghz=100.0)


@pytest.fixture
def cluster(small_machine):
    return ClusterState(small_machine)


def controller_for(machine, project, **kwargs):
    return InterstitialController(machine=machine, project=project, **kwargs)


class TestValidation:
    def test_rejects_too_wide_project(self, tiny_machine):
        wide = InterstitialProject(n_jobs=1, cpus_per_job=9,
                                   runtime_1ghz=10.0)
        with pytest.raises(ConfigurationError):
            controller_for(tiny_machine, wide)

    def test_rejects_bad_cap(self, small_machine, project):
        with pytest.raises(ConfigurationError):
            controller_for(small_machine, project, max_utilization=0.0)
        with pytest.raises(ConfigurationError):
            controller_for(small_machine, project, max_utilization=1.5)

    def test_rejects_negative_start(self, small_machine, project):
        with pytest.raises(ConfigurationError):
            controller_for(small_machine, project, start_time=-1.0)

    def test_rejects_zero_jobs(self, small_machine, project):
        with pytest.raises(ConfigurationError):
            controller_for(small_machine, project, n_jobs=0)


class TestFigure1Gate:
    def test_fills_empty_machine_empty_queue(
        self, small_machine, project, cluster
    ):
        ctrl = controller_for(small_machine, project)
        jobs = ctrl.offer(0.0, cluster, fcfs_scheduler())
        # floor(64 free / 2 cpus) = 32 jobs.
        assert len(jobs) == 32
        assert all(j.kind is JobKind.INTERSTITIAL for j in jobs)

    def test_respects_free_cpus(self, small_machine, project, cluster):
        cluster.start(make_job(cpus=59), 0.0)
        ctrl = controller_for(small_machine, project)
        jobs = ctrl.offer(0.0, cluster, fcfs_scheduler())
        # floor(5 / 2) = 2.
        assert len(jobs) == 2

    def test_no_room_no_jobs(self, small_machine, project, cluster):
        cluster.start(make_job(cpus=63), 0.0)
        ctrl = controller_for(small_machine, project)
        assert ctrl.offer(0.0, cluster, fcfs_scheduler()) == []

    def test_blocked_by_imminent_head_job(
        self, small_machine, project, cluster
    ):
        # Head job can start (by estimates) before one interstitial
        # runtime elapses -> no submission.
        sched = fcfs_scheduler()
        running = make_job(cpus=60, runtime=10.0, estimate=50.0)
        cluster.start(running, 0.0)
        sched.submit(make_job(cpus=30), 0.0)
        ctrl = controller_for(small_machine, project)  # runtime 100 s
        assert ctrl.offer(0.0, cluster, sched) == []

    def test_allowed_when_head_far_out(
        self, small_machine, project, cluster
    ):
        sched = fcfs_scheduler()
        running = make_job(cpus=60, runtime=10.0, estimate=5000.0)
        cluster.start(running, 0.0)
        sched.submit(make_job(cpus=30), 0.0)
        ctrl = controller_for(small_machine, project)
        jobs = ctrl.offer(0.0, cluster, sched)
        assert len(jobs) == 2  # floor(4 free / 2)

    def test_dormant_before_start_time(
        self, small_machine, project, cluster
    ):
        ctrl = controller_for(small_machine, project, start_time=500.0)
        assert ctrl.offer(0.0, cluster, fcfs_scheduler()) == []
        assert len(ctrl.offer(500.0, cluster, fcfs_scheduler())) > 0


class TestSupply:
    def test_finite_project_exhausts(self, small_machine, cluster):
        project = InterstitialProject(n_jobs=5, cpus_per_job=2,
                                      runtime_1ghz=100.0)
        ctrl = controller_for(small_machine, project)
        jobs = ctrl.offer(0.0, cluster, fcfs_scheduler())
        assert len(jobs) == 5
        assert ctrl.exhausted
        assert ctrl.offer(1.0, cluster, fcfs_scheduler()) == []

    def test_continual_never_exhausts(self, small_machine, project,
                                      cluster):
        ctrl = controller_for(small_machine, project, continual=True)
        for _ in range(5):
            jobs = ctrl.offer(0.0, cluster, fcfs_scheduler())
            assert len(jobs) == 32
            # Pretend they never start (cluster unchanged).
        assert not ctrl.exhausted

    def test_n_submitted_tracks(self, small_machine, project, cluster):
        ctrl = controller_for(small_machine, project)
        ctrl.offer(0.0, cluster, fcfs_scheduler())
        assert ctrl.n_submitted == 32


class TestUtilizationCap:
    def test_cap_limits_submission(self, small_machine, project, cluster):
        # 64 CPUs, cap 0.5 -> at most 32 busy.
        ctrl = controller_for(small_machine, project, max_utilization=0.5)
        jobs = ctrl.offer(0.0, cluster, fcfs_scheduler())
        assert len(jobs) == 16  # 32 CPUs / 2 per job

    def test_cap_counts_running_work(self, small_machine, project, cluster):
        cluster.start(make_job(cpus=30), 0.0)
        ctrl = controller_for(small_machine, project, max_utilization=0.5)
        jobs = ctrl.offer(0.0, cluster, fcfs_scheduler())
        assert len(jobs) == 1  # budget floor(32) - 30 = 2 -> one 2-wide job

    def test_cap_blocks_above_threshold(self, small_machine, project,
                                        cluster):
        cluster.start(make_job(cpus=40), 0.0)
        ctrl = controller_for(small_machine, project, max_utilization=0.5)
        assert ctrl.offer(0.0, cluster, fcfs_scheduler()) == []


class TestPreemption:
    def test_not_preemptible_by_default(self, small_machine, project):
        assert not controller_for(small_machine, project).preemptible

    def test_preempted_jobs_recredited(self, small_machine, cluster):
        project = InterstitialProject(n_jobs=5, cpus_per_job=2,
                                      runtime_1ghz=100.0)
        ctrl = controller_for(small_machine, project, preemptible=True)
        jobs = ctrl.offer(0.0, cluster, fcfs_scheduler())
        assert ctrl.exhausted
        ctrl.on_preempted(jobs[:2], 10.0)
        assert ctrl.n_preempted == 2
        assert not ctrl.exhausted
