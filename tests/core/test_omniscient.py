"""Tests for the omniscient gap packer, including its central invariant:
packed interstitial usage never exceeds the native headroom anywhere."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.omniscient import (
    add_step_functions,
    headroom_profile,
    pack_project,
)
from repro.errors import ConfigurationError
from repro.jobs import InterstitialProject
from repro.machines import Machine
from repro.sim.engine import Engine
from repro.sim.outages import Outage, OutageSchedule

from tests.conftest import fcfs, make_job, random_native_trace


def native_run(machine, jobs, outages=None):
    return Engine(machine, fcfs(), trace=jobs, outages=outages).run()


class TestAddStepFunctions:
    def test_sum(self):
        from repro.sim.profile import StepFunction

        a = StepFunction.from_deltas([0.0, 10.0], [2.0, -2.0])
        b = StepFunction.from_deltas([5.0, 15.0], [3.0, -3.0])
        s = add_step_functions(a, b)
        assert s(0.0) == 2.0
        assert s(7.0) == 5.0
        assert s(12.0) == 3.0
        assert s(20.0) == 0.0


class TestHeadroom:
    def test_empty_machine_full_headroom(self, tiny_machine):
        result = native_run(tiny_machine, [])
        h = headroom_profile(result)
        assert h(0.0) == 8.0

    def test_headroom_subtracts_native(self, tiny_machine):
        result = native_run(
            tiny_machine, [make_job(cpus=5, runtime=100.0)]
        )
        h = headroom_profile(result)
        assert h(50.0) == 3.0
        assert h(150.0) == 8.0

    def test_headroom_subtracts_outages(self, tiny_machine):
        outages = OutageSchedule([Outage(10.0, 20.0, 4)])
        result = native_run(tiny_machine, [], outages=outages)
        h = headroom_profile(result)
        assert h(15.0) == 4.0
        assert h(25.0) == 8.0


class TestPackProject:
    def test_empty_machine_packs_at_full_width(self, tiny_machine):
        result = native_run(tiny_machine, [])
        project = InterstitialProject(n_jobs=16, cpus_per_job=2,
                                      runtime_1ghz=100.0)
        packing = pack_project(result, project)
        # 4 jobs per wave (8 cpus / 2), 4 waves of 100 s.
        assert packing.makespan == pytest.approx(400.0)
        assert packing.n_jobs == 16

    def test_single_gap(self, tiny_machine):
        # Native occupies the whole machine on [0, 100); the project
        # must wait for the gap.
        native = make_job(cpus=8, runtime=100.0)
        result = native_run(tiny_machine, [native])
        project = InterstitialProject(n_jobs=4, cpus_per_job=8,
                                      runtime_1ghz=50.0)
        packing = pack_project(result, project)
        assert packing.placements[0][0] == 100.0
        assert packing.finish_time == pytest.approx(300.0)

    def test_window_min_blocks_partial_gaps(self, tiny_machine):
        # Gap [0, 30) of width 8 cannot host a 50 s full-width job:
        # the packer must wait for the native job to *finish*.
        native = make_job(cpus=8, runtime=100.0, submit=30.0)
        result = native_run(tiny_machine, [native])
        project = InterstitialProject(n_jobs=1, cpus_per_job=8,
                                      runtime_1ghz=50.0)
        packing = pack_project(result, project)
        assert packing.placements[0][0] == 130.0

    def test_narrow_jobs_use_partial_gap(self, tiny_machine):
        native = make_job(cpus=6, runtime=100.0)
        result = native_run(tiny_machine, [native])
        project = InterstitialProject(n_jobs=2, cpus_per_job=2,
                                      runtime_1ghz=50.0)
        packing = pack_project(result, project)
        # One job fits beside the native job immediately; capacity for
        # exactly one (2 <= 8-6 < 4).
        assert packing.placements[0] == (0.0, 1)

    def test_start_time_offset(self, tiny_machine):
        result = native_run(tiny_machine, [])
        project = InterstitialProject(n_jobs=4, cpus_per_job=8,
                                      runtime_1ghz=25.0)
        packing = pack_project(result, project, start_time=1000.0)
        assert packing.start_time == 1000.0
        assert packing.makespan == pytest.approx(100.0)

    def test_makespan_grows_with_project_size(self, small_machine, rng):
        trace = random_native_trace(rng, small_machine, n_jobs=30)
        result = native_run(small_machine, trace)
        small = InterstitialProject(n_jobs=50, cpus_per_job=2,
                                    runtime_1ghz=100.0)
        large = InterstitialProject(n_jobs=500, cpus_per_job=2,
                                    runtime_1ghz=100.0)
        assert (
            pack_project(result, large).makespan
            >= pack_project(result, small).makespan
        )

    def test_rejects_too_wide(self, tiny_machine):
        result = native_run(tiny_machine, [])
        project = InterstitialProject(n_jobs=1, cpus_per_job=9,
                                      runtime_1ghz=10.0)
        with pytest.raises(ConfigurationError):
            pack_project(result, project)

    def test_rejects_negative_start(self, tiny_machine):
        result = native_run(tiny_machine, [])
        project = InterstitialProject(n_jobs=1, cpus_per_job=1,
                                      runtime_1ghz=10.0)
        with pytest.raises(ConfigurationError):
            pack_project(result, project, start_time=-5.0)

    def test_usage_profile_conserves_work(self, tiny_machine):
        result = native_run(tiny_machine, [])
        project = InterstitialProject(n_jobs=10, cpus_per_job=2,
                                      runtime_1ghz=30.0)
        packing = pack_project(result, project)
        usage = packing.usage_profile()
        total = usage.integrate(0.0, packing.finish_time + 1.0)
        assert total == pytest.approx(10 * 2 * 30.0)


class TestNoOvercommitInvariant:
    """The paper-defining invariant: omniscient packing never takes a CPU
    a native job uses — machine-checked on random traces."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 100_000),
        width=st.sampled_from([1, 2, 3, 8, 16]),
        runtime=st.floats(10.0, 3000.0),
        n_jobs=st.integers(1, 300),
        start_frac=st.floats(0.0, 1.0),
    )
    def test_never_exceeds_headroom(
        self, seed, width, runtime, n_jobs, start_frac
    ):
        rng = np.random.default_rng(seed)
        machine = Machine(name="P", cpus=32, clock_ghz=1.0)
        trace = random_native_trace(rng, machine, n_jobs=25)
        result = native_run(machine, trace)
        project = InterstitialProject(
            n_jobs=n_jobs, cpus_per_job=width, runtime_1ghz=runtime
        )
        start = start_frac * result.end_time
        packing = pack_project(result, project, start_time=start)
        assert packing.n_jobs == n_jobs

        headroom = headroom_profile(result)
        usage = packing.usage_profile()
        probes = np.union1d(headroom.times, usage.times)
        if probes.size:
            slack = headroom.sample(probes) - usage.sample(probes)
            assert slack.min() >= -1e-6

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_no_placement_before_start(self, seed):
        rng = np.random.default_rng(seed)
        machine = Machine(name="P", cpus=32, clock_ghz=1.0)
        trace = random_native_trace(rng, machine, n_jobs=15)
        result = native_run(machine, trace)
        project = InterstitialProject(n_jobs=20, cpus_per_job=2,
                                      runtime_1ghz=50.0)
        start = 0.5 * result.end_time
        packing = pack_project(result, project, start_time=start)
        assert all(t >= start for t, _ in packing.placements)
