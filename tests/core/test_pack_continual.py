"""Tests for the omniscient continual harvest bound."""

import pytest

from repro.core.omniscient import pack_continual
from repro.errors import ConfigurationError
from repro.sim.engine import Engine

from tests.conftest import fcfs, make_job


def native_run(machine, jobs):
    return Engine(machine, fcfs(), trace=jobs).run()


class TestPackContinual:
    def test_empty_machine_full_harvest(self, tiny_machine):
        # 8 CPUs, 2-wide 100 s jobs, horizon 1000 s: 4 lanes x 10 waves.
        result = native_run(tiny_machine, [])
        total, placements = pack_continual(result, 2, 100.0, 1000.0)
        assert total == 40
        assert placements[0] == (0.0, 4)

    def test_submission_stops_at_horizon(self, tiny_machine):
        result = native_run(tiny_machine, [])
        total_short, _ = pack_continual(result, 2, 100.0, 500.0)
        total_long, _ = pack_continual(result, 2, 100.0, 1000.0)
        assert total_short == 20
        assert total_long == 40

    def test_native_occupancy_reduces_harvest(self, tiny_machine):
        native = make_job(cpus=8, runtime=500.0)
        busy = native_run(tiny_machine, [native])
        idle = native_run(tiny_machine, [])
        total_busy, _ = pack_continual(busy, 2, 100.0, 1000.0)
        total_idle, _ = pack_continual(idle, 2, 100.0, 1000.0)
        assert total_busy == total_idle - 20  # 4 lanes x 5 waves lost

    def test_wide_jobs_blocked_by_partial_occupancy(self, tiny_machine):
        native = make_job(cpus=4, runtime=1000.0)
        result = native_run(tiny_machine, [native])
        # 8-wide interstitial jobs never fit while the native runs.
        total, _ = pack_continual(result, 8, 100.0, 900.0)
        assert total == 0

    def test_validation(self, tiny_machine):
        result = native_run(tiny_machine, [])
        with pytest.raises(ConfigurationError):
            pack_continual(result, 9, 10.0, 100.0)
        with pytest.raises(ConfigurationError):
            pack_continual(result, 2, 0.0, 100.0)
        with pytest.raises(ConfigurationError):
            pack_continual(result, 2, 10.0, 0.0)

    def test_placements_respect_headroom(self, small_machine, rng):
        from tests.conftest import random_native_trace

        trace = random_native_trace(rng, small_machine, n_jobs=25)
        result = native_run(small_machine, trace)
        total, placements = pack_continual(
            result, 4, 250.0, result.end_time
        )
        assert total == sum(c for _, c in placements)
        # Reconstruct usage and check against headroom.
        import numpy as np

        from repro.core.omniscient import headroom_profile
        from repro.sim.profile import StepFunction

        times, deltas = [], []
        for start, count in placements:
            times += [start, start + 250.0]
            deltas += [count * 4, -count * 4]
        usage = StepFunction.from_deltas(times, deltas)
        headroom = headroom_profile(result)
        probes = np.union1d(usage.times, headroom.times)
        if probes.size:
            assert (
                headroom.sample(probes) - usage.sample(probes)
            ).min() >= -1e-6
