"""Tests for the high-level runners."""

import numpy as np
import pytest

from repro.core.runners import (
    run_continual,
    run_native,
    run_omniscient_samples,
    run_single_project,
)
from repro.errors import ConfigurationError
from repro.faults import FaultModel, RetryPolicy
from repro.jobs import InterstitialProject, JobState
from repro.machines import Machine

from tests.conftest import random_native_trace


@pytest.fixture
def machine():
    return Machine(name="R", cpus=32, clock_ghz=1.0, queue_algorithm="LSF")


@pytest.fixture
def trace(machine, rng):
    return random_native_trace(rng, machine, n_jobs=30, horizon=20_000.0)


class TestRunNative:
    def test_trace_not_mutated(self, machine, trace):
        run_native(machine, trace)
        assert all(j.state is JobState.CREATED for j in trace)
        assert all(j.start_time is None for j in trace)

    def test_all_jobs_finish(self, machine, trace):
        result = run_native(machine, trace)
        assert len(result.finished) == len(trace)

    def test_replayable(self, machine, trace):
        a = run_native(machine, trace)
        b = run_native(machine, trace)
        starts_a = sorted(j.start_time for j in a.finished)
        starts_b = sorted(j.start_time for j in b.finished)
        assert starts_a == starts_b


class TestRunContinual:
    def test_produces_interstitial_work(self, machine, trace):
        project = InterstitialProject(n_jobs=1, cpus_per_job=2,
                                      runtime_1ghz=50.0)
        result, controller = run_continual(
            machine, trace, project, horizon=20_000.0
        )
        assert controller.n_submitted > 0
        assert len(result.interstitial_jobs) > 0

    def test_raises_overall_utilization(self, machine, trace):
        baseline = run_native(machine, trace, horizon=20_000.0)
        project = InterstitialProject(n_jobs=1, cpus_per_job=2,
                                      runtime_1ghz=50.0)
        result, _ = run_continual(machine, trace, project,
                                  horizon=20_000.0)
        assert result.overall_utilization > baseline.overall_utilization

    def test_native_job_count_preserved(self, machine, trace):
        project = InterstitialProject(n_jobs=1, cpus_per_job=2,
                                      runtime_1ghz=50.0)
        result, _ = run_continual(machine, trace, project,
                                  horizon=20_000.0)
        assert len(result.native_jobs) == len(trace)

    def test_cap_limits_utilization(self, machine, trace):
        project = InterstitialProject(n_jobs=1, cpus_per_job=2,
                                      runtime_1ghz=50.0)
        capped, _ = run_continual(
            machine, trace, project, max_utilization=0.7,
            horizon=20_000.0,
        )
        uncapped, _ = run_continual(
            machine, trace, project, horizon=20_000.0
        )
        assert (
            capped.overall_utilization <= uncapped.overall_utilization
        )
        assert len(capped.interstitial_jobs) < len(
            uncapped.interstitial_jobs
        )


class TestRunSingleProject:
    def test_project_completes(self, machine, trace):
        project = InterstitialProject(n_jobs=40, cpus_per_job=2,
                                      runtime_1ghz=50.0)
        result, controller = run_single_project(
            machine, trace, project, start_time=5000.0
        )
        assert controller.exhausted
        inter = result.interstitial_jobs
        assert len(inter) == 40
        assert all(j.start_time >= 5000.0 for j in inter)


class TestRunOmniscientSamples:
    def test_sample_count_and_determinism(self, machine, trace):
        project = InterstitialProject(n_jobs=30, cpus_per_job=2,
                                      runtime_1ghz=50.0)
        native = run_native(machine, trace)
        a, packs = run_omniscient_samples(
            machine, trace, project, n_samples=5,
            rng=np.random.default_rng(3), native_result=native,
        )
        b, _ = run_omniscient_samples(
            machine, trace, project, n_samples=5,
            rng=np.random.default_rng(3), native_result=native,
        )
        assert a.shape == (5,)
        assert np.array_equal(a, b)
        assert len(packs) == 5

    def test_runs_native_when_missing(self, machine, trace):
        project = InterstitialProject(n_jobs=5, cpus_per_job=2,
                                      runtime_1ghz=50.0)
        makespans, _ = run_omniscient_samples(
            machine, trace, project, n_samples=3,
            rng=np.random.default_rng(0),
        )
        assert (makespans > 0).all()

    def test_faults_with_precomputed_native_rejected(self, machine, trace):
        # A fault model cannot retroactively apply to a baseline that
        # was already simulated; silently dropping it was the old bug.
        project = InterstitialProject(n_jobs=5, cpus_per_job=2,
                                      runtime_1ghz=50.0)
        native = run_native(machine, trace)
        faults = FaultModel(mtbf=20_000.0, mttr=500.0, seed=3)
        with pytest.raises(ConfigurationError):
            run_omniscient_samples(
                machine, trace, project, n_samples=2,
                native_result=native, faults=faults,
            )
        with pytest.raises(ConfigurationError):
            run_omniscient_samples(
                machine, trace, project, n_samples=2,
                native_result=native,
                retry=RetryPolicy(max_attempts=2, base_delay=10.0),
            )

    def test_faults_shape_internal_baseline(self, machine, trace):
        # Without a pre-computed baseline the fault model must actually
        # reach the native simulation: a crashy machine stretches the
        # log, so omniscient makespans shift versus the healthy run.
        project = InterstitialProject(n_jobs=20, cpus_per_job=2,
                                      runtime_1ghz=50.0)
        faults = FaultModel(
            mtbf=2_000.0, mttr=1_000.0, cpus_per_node=8, seed=11
        )
        healthy, _ = run_omniscient_samples(
            machine, trace, project, n_samples=4,
            rng=np.random.default_rng(7),
        )
        faulty, _ = run_omniscient_samples(
            machine, trace, project, n_samples=4,
            rng=np.random.default_rng(7), faults=faults,
            retry=RetryPolicy(max_attempts=3, base_delay=30.0),
        )
        assert not np.array_equal(healthy, faulty)
