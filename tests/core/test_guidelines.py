"""Tests for the §5 project-design guideline advisor."""

import math

import pytest

from repro.core.guidelines import advise, recommend_width
from repro.errors import ValidationError
from repro.jobs import InterstitialProject
from repro.machines import Machine, blue_mountain, blue_pacific


@pytest.fixture
def machine():
    return Machine(name="M", cpus=1000, clock_ghz=1.0)


def project(cpus=8, runtime=120.0, n_jobs=1000):
    return InterstitialProject(
        n_jobs=n_jobs, cpus_per_job=cpus, runtime_1ghz=runtime
    )


class TestAdvise:
    def test_good_project_passes(self, machine):
        advice = advise(machine, project(cpus=8), utilization=0.6)
        assert advice.ok
        assert advice.warnings == ()
        assert advice.breakage < 1.1

    def test_too_wide_flags_breakage(self):
        # Blue Pacific 32-CPU jobs: breakage 1.346 (paper Table 3).
        advice = advise(blue_pacific(), project(cpus=32), 0.907)
        assert not advice.ok
        assert any("breakage" in w for w in advice.warnings)

    def test_wider_than_pool_flags_infinite(self, machine):
        # Pool = 50 CPUs; 256-wide jobs can never fit on average.
        advice = advise(machine, project(cpus=256), utilization=0.95)
        assert not advice.ok
        assert math.isinf(advice.breakage)
        assert any("free pool" in w for w in advice.warnings)

    def test_long_jobs_flag_runtime(self, machine):
        advice = advise(
            machine, project(cpus=1, runtime=12 * 3600.0), 0.5
        )
        assert any("runtime" in w for w in advice.warnings)

    def test_max_native_delay_is_runtime(self, machine):
        advice = advise(machine, project(runtime=900.0), 0.5)
        assert advice.max_native_delay_s == 900.0

    def test_deadline_warning(self, machine):
        # Huge project, short campaign window.
        big = project(cpus=1, runtime=120.0, n_jobs=10_000_000)
        advice = advise(
            machine, big, utilization=0.9, log_duration_s=86400.0
        )
        assert any("makespan" in w for w in advice.warnings)

    def test_expected_makespan_includes_breakage(self):
        plain = advise(blue_pacific(), project(cpus=1), 0.907)
        wide = advise(blue_pacific(), project(cpus=32), 0.907)
        # Same total cycles per job count differ; compare per-cycle by
        # normalizing: the 32-wide advice applies the 1.346 factor.
        assert wide.breakage > plain.breakage

    def test_validation(self, machine):
        with pytest.raises(ValidationError):
            advise(machine, project(), utilization=1.0)

    def test_describe_readable(self, machine):
        text = advise(machine, project(), 0.5).describe()
        assert "breakage" in text


class TestRecommendWidth:
    def test_blue_mountain_allows_32(self):
        # Paper: 32-CPU jobs are fine on Blue Mountain (breakage 1.02).
        width = recommend_width(blue_mountain(), 0.790)
        assert width >= 32

    def test_blue_pacific_recommends_narrower(self):
        # Paper: 32-CPU jobs cost 35% on Blue Pacific.
        bp = recommend_width(blue_pacific(), 0.907)
        bm = recommend_width(blue_mountain(), 0.790)
        assert bp < 32
        assert bp < bm

    def test_always_at_least_one(self):
        machine = Machine(name="tiny", cpus=4, clock_ghz=1.0)
        assert recommend_width(machine, 0.99) == 1

    def test_respects_tolerance(self, machine):
        strict = recommend_width(machine, 0.9, max_breakage=1.001)
        loose = recommend_width(machine, 0.9, max_breakage=1.5)
        assert strict <= loose

    def test_explicit_candidates(self, machine):
        width = recommend_width(
            machine, 0.5, candidates=(10, 20, 500)
        )
        assert width in (1, 10, 20, 500)

    def test_validation(self, machine):
        with pytest.raises(ValidationError):
            recommend_width(machine, -0.1)
