"""Tests for multi-project interstitial coexistence."""

import pytest

from repro.core.composite import CompositeInterstitialSource, _BudgetedView
from repro.core.controller import InterstitialController
from repro.core.runners import run_with_controller
from repro.errors import ConfigurationError
from repro.jobs import InterstitialProject
from repro.machines import Machine
from repro.sched import fcfs_scheduler
from repro.sim.state import ClusterState

from tests.conftest import make_job, random_native_trace


@pytest.fixture
def machine():
    return Machine(name="C", cpus=64, clock_ghz=1.0, queue_algorithm="FCFS")


def controller(machine, cpus=2, runtime=100.0, n_jobs=None, **kwargs):
    project = InterstitialProject(
        n_jobs=n_jobs or 1,
        cpus_per_job=cpus,
        runtime_1ghz=runtime,
    )
    return InterstitialController(
        machine=machine,
        project=project,
        continual=n_jobs is None,
        n_jobs=n_jobs,
        **kwargs,
    )


class TestBudgetedView:
    def test_budget_reduces_free(self, machine):
        cluster = ClusterState(machine)
        cluster.start(make_job(cpus=10), 0.0)
        view = _BudgetedView(cluster, granted_cpus=20)
        assert view.free_cpus == 34
        assert view.busy_cpus == 30
        assert view.fits_now(34)
        assert not view.fits_now(35)

    def test_utilization_includes_grant(self, machine):
        cluster = ClusterState(machine)
        view = _BudgetedView(cluster, granted_cpus=32)
        assert view.instantaneous_utilization == 0.5


class TestCompositeValidation:
    def test_needs_sources(self):
        with pytest.raises(ConfigurationError):
            CompositeInterstitialSource([])

    def test_rejects_unknown_policy(self, machine):
        with pytest.raises(ConfigurationError):
            CompositeInterstitialSource(
                [controller(machine)], policy="lottery"
            )


class TestOfferMultiplexing:
    def test_never_overcommits(self, machine):
        a = controller(machine, cpus=8)
        b = controller(machine, cpus=8)
        composite = CompositeInterstitialSource([a, b])
        cluster = ClusterState(machine)
        jobs = composite.offer(0.0, cluster, fcfs_scheduler())
        assert sum(j.cpus for j in jobs) <= machine.cpus

    def test_priority_order_starves_second(self, machine):
        first = controller(machine, cpus=2)
        second = controller(machine, cpus=2)
        composite = CompositeInterstitialSource(
            [first, second], policy="priority"
        )
        cluster = ClusterState(machine)
        composite.offer(0.0, cluster, fcfs_scheduler())
        # First source fills the whole machine; second gets nothing.
        assert first.n_submitted == 32
        assert second.n_submitted == 0

    def test_round_robin_alternates_first_access(self, machine):
        a = controller(machine, cpus=2)
        b = controller(machine, cpus=2)
        composite = CompositeInterstitialSource([a, b])
        cluster = ClusterState(machine)
        composite.offer(0.0, cluster, fcfs_scheduler())
        composite.offer(1.0, cluster, fcfs_scheduler())
        # Each source got one pass at the full machine (the cluster is
        # never actually allocated here, so both full grabs succeed).
        assert a.n_submitted == 32
        assert b.n_submitted == 32

    def test_exhausted_children_skipped(self, machine):
        finite = controller(machine, cpus=2, n_jobs=3)
        hungry = controller(machine, cpus=2)
        composite = CompositeInterstitialSource(
            [finite, hungry], policy="priority"
        )
        cluster = ClusterState(machine)
        composite.offer(0.0, cluster, fcfs_scheduler())
        assert finite.n_submitted == 3
        assert hungry.n_submitted == 29
        assert finite.exhausted
        assert not composite.exhausted


class TestEndToEnd:
    def test_two_projects_share_a_run(self, machine, rng):
        trace = random_native_trace(rng, machine, n_jobs=30,
                                    horizon=30_000.0)
        a = controller(machine, cpus=2, runtime=120.0)
        b = controller(machine, cpus=4, runtime=240.0)
        composite = CompositeInterstitialSource([a, b])
        result = run_with_controller(
            machine, trace, composite, scheduler=fcfs_scheduler(),
            horizon=30_000.0,
        )
        assert a.n_submitted > 0
        assert b.n_submitted > 0
        busy = result.busy_profile()
        assert busy.values.max() <= machine.cpus

    def test_round_robin_roughly_fair(self, machine, rng):
        """Equal-shape projects get within 3x of each other's harvest."""
        trace = random_native_trace(rng, machine, n_jobs=30,
                                    horizon=30_000.0)
        a = controller(machine, cpus=2, runtime=120.0)
        b = controller(machine, cpus=2, runtime=120.0)
        composite = CompositeInterstitialSource([a, b])
        run_with_controller(
            machine, trace, composite, scheduler=fcfs_scheduler(),
            horizon=30_000.0,
        )
        low, high = sorted([a.n_submitted, b.n_submitted])
        assert low > 0
        assert high <= 3 * low

    def test_preemption_routed_to_owner(self, machine):
        long_project = InterstitialProject(
            n_jobs=1, cpus_per_job=2, runtime_1ghz=10_000.0
        )
        a = InterstitialController(
            machine=machine, project=long_project, continual=True,
            preemptible=True,
        )
        composite = CompositeInterstitialSource([a])
        assert composite.preemptible
        trigger = make_job(cpus=1, runtime=1.0, submit=0.0)
        native = make_job(cpus=64, runtime=10.0, submit=50.0)
        result = run_with_controller(
            machine, [trigger, native], composite,
            scheduler=fcfs_scheduler(), horizon=40.0,
        )
        assert result.killed
        assert a.n_preempted == len(result.killed)
