"""Tests for preemptible interstitial mode (the ablation extension)."""

import pytest

from repro.core.controller import InterstitialController
from repro.core.runners import run_with_controller
from repro.jobs import InterstitialProject, JobState
from repro.machines import Machine

from tests.conftest import make_job, random_native_trace


@pytest.fixture
def machine():
    return Machine(name="R", cpus=16, clock_ghz=1.0, queue_algorithm="LSF")


def test_preemption_restores_native_start(machine):
    """A native job blocked only by interstitial work starts immediately
    when preemption is on."""
    project = InterstitialProject(n_jobs=1, cpus_per_job=2,
                                  runtime_1ghz=10_000.0)
    # The tiny trigger job at t=0 gives the controller its first
    # scheduling pass (passes only happen on events), filling the
    # machine with interstitial work before the real native arrives.
    trigger = make_job(cpus=1, runtime=1.0, submit=0.0)
    native = make_job(cpus=16, runtime=100.0, submit=50.0)

    # Without preemption the native waits for the last interstitial
    # batch (started at t=1 when the trigger finished) to end at 10001.
    for preemptible, expected_start in ((False, 10_001.0), (True, 50.0)):
        controller = InterstitialController(
            machine=machine,
            project=project,
            continual=True,
            preemptible=preemptible,
        )
        trace = [trigger.copy_unscheduled(), native.copy_unscheduled()]
        result = run_with_controller(
            machine, trace, controller, horizon=40.0
        )
        started = [
            j for j in result.finished if j.is_native and j.cpus == 16
        ]
        assert len(started) == 1
        assert started[0].start_time == pytest.approx(expected_start)


def test_killed_jobs_tracked_and_recredited(machine):
    project = InterstitialProject(n_jobs=1, cpus_per_job=2,
                                  runtime_1ghz=10_000.0)
    controller = InterstitialController(
        machine=machine, project=project, continual=True, preemptible=True
    )
    trigger = make_job(cpus=1, runtime=1.0, submit=0.0)
    native = make_job(cpus=16, runtime=100.0, submit=50.0)
    result = run_with_controller(
        machine, [trigger, native], controller, horizon=40.0
    )
    assert len(result.killed) == 8  # all 8 two-wide jobs die
    assert all(j.state is JobState.KILLED for j in result.killed)
    assert controller.n_preempted == 8
    # Killed jobs never appear among the finished.
    finished_ids = {j.job_id for j in result.finished}
    assert not finished_ids & {j.job_id for j in result.killed}


def test_no_kills_when_they_cannot_help(machine):
    """If natives (not interstitial jobs) hold the CPUs, nothing is
    killed."""
    project = InterstitialProject(n_jobs=1, cpus_per_job=2,
                                  runtime_1ghz=10_000.0)
    controller = InterstitialController(
        machine=machine, project=project, continual=True, preemptible=True
    )
    # Native A holds 10 CPUs for a long time; interstitial fills 6;
    # native B needs 16 — even killing all interstitial leaves only 6+0.
    native_a = make_job(cpus=10, runtime=5000.0, submit=0.0)
    native_b = make_job(cpus=16, runtime=10.0, submit=100.0)
    result = run_with_controller(
        machine, [native_a, native_b], controller, horizon=90.0
    )
    # Kills happen only after native A releases at t=5000 (if at all);
    # before that they would be pointless.
    early_kills = [j for j in result.killed if j.finish_time < 5000.0]
    assert not early_kills


def test_preemption_waste_is_counted(machine, rng):
    trace = random_native_trace(rng, machine, n_jobs=25, horizon=30_000.0)
    project = InterstitialProject(n_jobs=1, cpus_per_job=2,
                                  runtime_1ghz=500.0)
    controller = InterstitialController(
        machine=machine, project=project, continual=True, preemptible=True
    )
    result = run_with_controller(
        machine, trace, controller, horizon=30_000.0
    )
    for victim in result.killed:
        assert victim.start_time is not None
        assert victim.finish_time >= victim.start_time
        # Killed before natural completion.
        assert (
            victim.finish_time - victim.start_time
        ) <= victim.runtime + 1e-9
