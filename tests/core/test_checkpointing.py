"""Tests for checkpointed preemption and controller decision logging."""

import pytest

from repro.core.controller import InterstitialController
from repro.core.runners import run_with_controller
from repro.errors import ConfigurationError
from repro.jobs import InterstitialProject
from repro.machines import Machine
from repro.sched import fcfs_scheduler
from repro.sim.state import ClusterState

from tests.conftest import make_job


@pytest.fixture
def machine():
    return Machine(name="R", cpus=16, clock_ghz=1.0, queue_algorithm="LSF")


def long_project():
    return InterstitialProject(
        n_jobs=1, cpus_per_job=2, runtime_1ghz=10_000.0
    )


class TestCheckpointing:
    def test_requires_preemptible(self, machine):
        with pytest.raises(ConfigurationError):
            InterstitialController(
                machine=machine,
                project=long_project(),
                continual=True,
                checkpointing=True,
            )

    def test_preserved_work_tracked(self, machine):
        controller = InterstitialController(
            machine=machine,
            project=long_project(),
            continual=True,
            preemptible=True,
            checkpointing=True,
        )
        trigger = make_job(cpus=1, runtime=1.0, submit=0.0)
        native = make_job(cpus=16, runtime=100.0, submit=50.0)
        result = run_with_controller(
            machine, [trigger, native], controller, horizon=40.0
        )
        assert len(result.killed) == 8
        # Each 2-CPU victim ran ~50 s before the kill.
        assert controller.work_preserved_cpu_s == pytest.approx(
            2 * (50.0 * 7 + 49.0), rel=0.01
        )

    def test_fragments_restart_with_remaining_runtime(self, machine):
        controller = InterstitialController(
            machine=machine,
            project=long_project(),
            continual=True,
            preemptible=True,
            checkpointing=True,
        )
        trigger = make_job(cpus=1, runtime=1.0, submit=0.0)
        native = make_job(cpus=16, runtime=100.0, submit=50.0)
        # Horizon past the native job so fragments can restart at 150.
        result = run_with_controller(
            machine, [trigger, native], controller, horizon=200.0
        )
        restarts = [
            j
            for j in result.finished + result.unfinished + [
                rec for rec in ()
            ]
            if j.is_interstitial and j.runtime < 9999.0
        ]
        # Fragments carry only the remaining runtime (~9950 s), not the
        # full 10000 s.
        fragment_runtimes = sorted(
            {round(j.runtime) for j in restarts}
        )
        assert fragment_runtimes
        assert all(9000 <= r < 10_000 for r in fragment_runtimes)

    def test_no_recredit_without_checkpoint_queue_drain(self, machine):
        """Plain preemption re-credits whole jobs; checkpointing queues
        fragments instead of bumping the fresh-job count."""
        plain = InterstitialController(
            machine=machine, project=long_project(),
            n_jobs=8, preemptible=True,
        )
        cluster = ClusterState(machine)
        jobs = plain.offer(0.0, cluster, fcfs_scheduler())
        assert plain.exhausted
        plain.on_preempted(jobs[:3], 10.0)
        assert plain._remaining == 3

        ckpt = InterstitialController(
            machine=machine, project=long_project(),
            n_jobs=8, preemptible=True, checkpointing=True,
        )
        cluster2 = ClusterState(machine)
        jobs2 = ckpt.offer(0.0, cluster2, fcfs_scheduler())
        for j in jobs2[:3]:
            j.start_time = 0.0
            j.finish_time = 10.0
        ckpt.on_preempted(jobs2[:3], 10.0)
        assert ckpt._remaining == 0
        assert len(ckpt._restart_queue) == 3
        assert not ckpt.exhausted

    def test_tiny_remainders_dropped(self, machine):
        ckpt = InterstitialController(
            machine=machine, project=long_project(),
            n_jobs=1, preemptible=True, checkpointing=True,
        )
        cluster = ClusterState(machine)
        jobs = ckpt.offer(0.0, cluster, fcfs_scheduler())
        job = jobs[0]
        job.start_time = 0.0
        job.finish_time = job.runtime - 0.5  # killed 0.5 s before done
        ckpt.on_preempted([job], job.finish_time)
        assert ckpt.exhausted  # remainder below MIN_RESTART_RUNTIME


class TestDecisionLog:
    def test_disabled_by_default(self, machine):
        controller = InterstitialController(
            machine=machine, project=long_project(), continual=True
        )
        assert controller.decisions is None

    def test_records_submissions_and_gates(self, machine):
        controller = InterstitialController(
            machine=machine,
            project=InterstitialProject(
                n_jobs=1, cpus_per_job=2, runtime_1ghz=500.0
            ),
            continual=True,
            record_decisions=True,
        )
        trigger = make_job(cpus=1, runtime=1.0, submit=0.0)
        blocked_native = make_job(
            cpus=16, runtime=10.0, estimate=50.0, submit=5.0
        )
        run_with_controller(
            machine, [trigger, blocked_native], controller, horizon=400.0
        )
        reasons = {d.reason for d in controller.decisions}
        assert "submitted" in reasons
        # The machine fills up, so no_room or head_imminent must occur.
        assert reasons & {"no_room", "head_imminent"}
        submitted = [
            d for d in controller.decisions if d.reason == "submitted"
        ]
        assert all(d.n_submitted > 0 for d in submitted)
        times = [d.time for d in controller.decisions]
        assert times == sorted(times)
