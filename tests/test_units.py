"""Tests for repro.units."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestConstants:
    def test_hour(self):
        assert units.HOUR == 3600.0

    def test_day(self):
        assert units.DAY == 24 * units.HOUR

    def test_peta_vs_tera(self):
        assert units.PETA == 1000 * units.TERA


class TestCycles:
    def test_paper_blue_mountain_capacity(self):
        # Table 1: 4662 CPUs x 0.262 GHz = 1.221 TCycles.
        assert units.cycles(4662, 1.0, 0.262) / units.TERA == pytest.approx(
            1.221, abs=0.001
        )

    def test_paper_project_size(self):
        # 64k jobs x 1 CPU x 120 s @ 1 GHz = 7.68 peta-cycles ("7.7").
        per_job = units.peta_cycles(1, 120.0, 1.0)
        assert 64_000 * per_job == pytest.approx(7.68)

    def test_zero_runtime(self):
        assert units.cycles(10, 0.0, 1.0) == 0.0


class TestNormalizeRuntime:
    def test_blue_mountain_normalization(self):
        # Paper: 120 s @ 1 GHz -> 458 s at 0.262 GHz.
        assert units.normalize_runtime(120.0, 0.262) == pytest.approx(
            458.015, abs=0.01
        )

    def test_identity_at_1ghz(self):
        assert units.normalize_runtime(300.0, 1.0) == 300.0

    def test_rejects_nonpositive_clock(self):
        with pytest.raises(ValueError):
            units.normalize_runtime(120.0, 0.0)
        with pytest.raises(ValueError):
            units.normalize_runtime(120.0, -1.0)

    @given(
        runtime=st.floats(0.0, 1e6),
        clock=st.floats(0.01, 10.0),
    )
    def test_roundtrip(self, runtime, clock):
        # Normalizing then un-normalizing is the identity.
        actual = units.normalize_runtime(runtime, clock)
        assert actual * clock == pytest.approx(runtime, rel=1e-9, abs=1e-9)


class TestConversions:
    def test_hours(self):
        assert units.hours(7200.0) == 2.0

    def test_days(self):
        assert units.days(86400.0 * 3) == 3.0
