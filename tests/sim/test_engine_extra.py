"""Additional engine behaviours: stall recovery, interstitial + outage
interactions, and determinism guarantees."""

import numpy as np

from repro.core.controller import InterstitialController
from repro.jobs import InterstitialProject
from repro.machines import Machine
from repro.sched import QueueScheduler, TimeOfDayPolicy, fcfs_scheduler
from repro.sched.priority import FcfsPolicy
from repro.sim.engine import Engine, SimConfig
from repro.sim.outages import Outage, OutageSchedule
from repro.units import DAY, HOUR

from tests.conftest import make_job, random_native_trace


class TestStallRecovery:
    def test_timeofday_held_job_eventually_runs(self):
        """A held job with no future events must not strand (the stall
        wake re-runs the scheduler until the window opens)."""
        machine = Machine(name="M", cpus=100, clock_ghz=1.0)
        scheduler = QueueScheduler(
            policy=FcfsPolicy(),
            timeofday=TimeOfDayPolicy(max_day_cpus=25),
        )
        wide = make_job(cpus=80, runtime=HOUR, submit=9 * HOUR)
        result = Engine(machine, scheduler, trace=[wide]).run()
        assert len(result.finished) == 1
        assert result.finished[0].start_time == 19 * HOUR

    def test_stall_wake_uses_configured_interval(self):
        machine = Machine(name="M", cpus=100, clock_ghz=1.0)
        scheduler = QueueScheduler(
            policy=FcfsPolicy(),
            timeofday=TimeOfDayPolicy(max_day_cpus=25),
        )
        wide = make_job(cpus=80, runtime=HOUR, submit=9 * HOUR)
        result = Engine(
            machine,
            scheduler,
            trace=[wide],
            config=SimConfig(wake_interval=2 * HOUR),
        ).run()
        # Wakes at 11:00, 13:00, ..., 19:00 — starts exactly at 19:00
        # because the window boundary coincides with a wake.
        assert result.finished[0].start_time == 19 * HOUR

    def test_weekend_hold_spanning_days(self):
        machine = Machine(name="M", cpus=100, clock_ghz=1.0)
        scheduler = QueueScheduler(
            policy=FcfsPolicy(),
            timeofday=TimeOfDayPolicy(
                max_day_cpus=25, weekends_free=False
            ),
        )
        # Submitted Friday 10:00; must wait until Friday 19:00 (weekend
        # counts as constrained here, so 19:00 Friday is the next
        # opening).
        friday_ten = 4 * DAY + 10 * HOUR
        wide = make_job(cpus=80, runtime=HOUR, submit=friday_ten)
        result = Engine(machine, scheduler, trace=[wide]).run()
        assert result.finished[0].start_time == 4 * DAY + 19 * HOUR


class TestInterstitialOutageInteraction:
    def test_interstitial_respects_outage(self):
        machine = Machine(name="M", cpus=16, clock_ghz=1.0)
        project = InterstitialProject(
            n_jobs=1, cpus_per_job=2, runtime_1ghz=100.0
        )
        controller = InterstitialController(
            machine=machine, project=project, continual=True
        )
        outages = OutageSchedule([Outage(0.0, 1000.0, 12)])
        trigger = make_job(cpus=1, runtime=1.0, submit=0.0)
        result = Engine(
            machine,
            fcfs_scheduler(),
            trace=[trigger],
            interstitial=controller,
            outages=outages,
            config=SimConfig(horizon=500.0),
        ).run()
        busy = result.busy_profile()
        # During the outage only 4 CPUs are in service.
        assert busy.min_over(0.0, 1000.0) >= 0
        for t in (10.0, 500.0, 999.0):
            assert busy.value_at(t) <= 4

    def test_capacity_returns_after_outage(self):
        machine = Machine(name="M", cpus=16, clock_ghz=1.0)
        project = InterstitialProject(
            n_jobs=1, cpus_per_job=2, runtime_1ghz=100.0
        )
        controller = InterstitialController(
            machine=machine, project=project, continual=True
        )
        outages = OutageSchedule([Outage(0.0, 300.0, 12)])
        trigger = make_job(cpus=1, runtime=1.0, submit=0.0)
        result = Engine(
            machine,
            fcfs_scheduler(),
            trace=[trigger],
            interstitial=controller,
            outages=outages,
            config=SimConfig(horizon=800.0),
        ).run()
        busy = result.busy_profile()
        # After the outage the continual stream refills the machine.
        assert busy.value_at(400.0) == 16


class TestDeterminism:
    def test_identical_runs_bitwise_equal(self):
        machine = Machine(name="M", cpus=32, clock_ghz=1.0)
        rng = np.random.default_rng(4242)
        trace = random_native_trace(rng, machine, n_jobs=40)
        project = InterstitialProject(
            n_jobs=1, cpus_per_job=2, runtime_1ghz=100.0
        )

        def one_run():
            controller = InterstitialController(
                machine=machine, project=project, continual=True
            )
            result = Engine(
                machine,
                fcfs_scheduler(),
                trace=[j.copy_unscheduled() for j in trace],
                interstitial=controller,
                config=SimConfig(horizon=30_000.0),
            ).run()
            return sorted(
                (j.kind.value, j.cpus, j.start_time, j.finish_time)
                for j in result.finished
            )

        assert one_run() == one_run()
