"""Tests for the discrete-event engine with an FCFS scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.jobs import JobState
from repro.machines import Machine
from repro.sched import FcfsPolicy, QueueScheduler, TimeOfDayPolicy
from repro.sim.engine import Engine, SimConfig
from repro.sim.outages import Outage, OutageSchedule

from tests.conftest import fcfs, fcfs_plain, make_job, random_native_trace


def run_fcfs(machine, jobs, **kwargs):
    return Engine(machine, fcfs(), trace=jobs, **kwargs).run()


class TestBasicScheduling:
    def test_single_job(self, tiny_machine):
        job = make_job(cpus=4, runtime=100.0, submit=10.0)
        result = run_fcfs(tiny_machine, [job])
        assert job.start_time == 10.0
        assert job.finish_time == 110.0
        assert job.state is JobState.FINISHED
        assert result.end_time == 110.0

    def test_parallel_jobs_share_machine(self, tiny_machine):
        a = make_job(cpus=4, runtime=100.0)
        b = make_job(cpus=4, runtime=100.0)
        run_fcfs(tiny_machine, [a, b])
        assert a.start_time == 0.0
        assert b.start_time == 0.0

    def test_serialization_when_too_wide(self, tiny_machine):
        a = make_job(cpus=8, runtime=100.0)
        b = make_job(cpus=8, runtime=100.0, submit=1.0)
        run_fcfs(tiny_machine, [a, b])
        assert a.start_time == 0.0
        assert b.start_time == 100.0

    def test_fcfs_order_by_submit(self, tiny_machine):
        late = make_job(cpus=8, runtime=10.0, submit=5.0)
        early = make_job(cpus=8, runtime=10.0, submit=1.0)
        run_fcfs(tiny_machine, [late, early])
        assert early.start_time == 1.0
        assert late.start_time == 11.0

    def test_zero_runtime_job(self, tiny_machine):
        job = make_job(cpus=1, runtime=0.0)
        result = run_fcfs(tiny_machine, [job])
        assert job.finish_time == 0.0
        assert len(result.finished) == 1

    def test_rejects_too_wide_trace_job(self, tiny_machine):
        with pytest.raises(ConfigurationError):
            run_fcfs(tiny_machine, [make_job(cpus=9)])


class TestBackfillBehaviour:
    def test_easy_backfill_fills_hole(self, tiny_machine):
        # Wide job blocks; a short narrow job fits before its shadow.
        running = make_job(cpus=6, runtime=100.0, estimate=100.0)
        wide = make_job(cpus=8, runtime=50.0, submit=1.0)
        narrow = make_job(cpus=2, runtime=50.0, estimate=50.0, submit=2.0)
        run_fcfs(tiny_machine, [running, wide, narrow])
        # narrow (2 cpus, ends 52 <= shadow 100) backfills at t=2.
        assert narrow.start_time == 2.0
        assert wide.start_time == 100.0

    def test_easy_backfill_does_not_delay_head(self, tiny_machine):
        running = make_job(cpus=6, runtime=100.0, estimate=100.0)
        wide = make_job(cpus=8, runtime=50.0, submit=1.0)
        # Long narrow job would push past the shadow and must wait
        # (2 cpus > extra 0 at shadow time).
        long_narrow = make_job(
            cpus=2, runtime=500.0, estimate=500.0, submit=2.0
        )
        run_fcfs(tiny_machine, [running, wide, long_narrow])
        assert wide.start_time == 100.0
        assert long_narrow.start_time >= 100.0

    def test_no_backfill_mode_strictly_serial(self, tiny_machine):
        running = make_job(cpus=6, runtime=100.0, estimate=100.0)
        wide = make_job(cpus=8, runtime=50.0, submit=1.0)
        narrow = make_job(cpus=2, runtime=10.0, estimate=10.0, submit=2.0)
        Engine(
            tiny_machine, fcfs_plain(), trace=[running, wide, narrow]
        ).run()
        # Without backfill, narrow waits behind the blocked wide job.
        assert narrow.start_time >= wide.start_time

    def test_bad_estimate_delays_backfill_start(self, tiny_machine):
        # The running job grossly overestimates: the shadow is at 1000,
        # so anything short backfills; but the head job starts when the
        # job *actually* ends, at 100.
        running = make_job(cpus=6, runtime=100.0, estimate=1000.0)
        wide = make_job(cpus=8, runtime=50.0, submit=1.0)
        run_fcfs(tiny_machine, [running, wide])
        assert wide.start_time == 100.0


class TestOutages:
    def test_outage_blocks_starts(self, tiny_machine):
        outages = OutageSchedule([Outage(0.0, 100.0, 8)])
        job = make_job(cpus=8, runtime=10.0, submit=5.0)
        Engine(
            tiny_machine, fcfs(), trace=[job], outages=outages
        ).run()
        assert job.start_time == 100.0

    def test_partial_outage_allows_narrow(self, tiny_machine):
        outages = OutageSchedule([Outage(0.0, 100.0, 4)])
        narrow = make_job(cpus=4, runtime=10.0, submit=5.0)
        wide = make_job(cpus=8, runtime=10.0, submit=5.0)
        Engine(
            tiny_machine, fcfs(), trace=[narrow, wide], outages=outages
        ).run()
        assert narrow.start_time == 5.0
        assert wide.start_time >= 100.0

    def test_running_jobs_survive_outage(self, tiny_machine):
        # Non-preemptive: an outage does not kill running work.
        job = make_job(cpus=8, runtime=200.0)
        outages = OutageSchedule([Outage(10.0, 50.0, 8)])
        result = Engine(
            tiny_machine, fcfs(), trace=[job], outages=outages
        ).run()
        assert job.finish_time == 200.0
        assert len(result.finished) == 1

    def test_rejects_oversized_outage(self, tiny_machine):
        with pytest.raises(ConfigurationError):
            Engine(
                tiny_machine,
                fcfs(),
                outages=OutageSchedule([Outage(0.0, 1.0, 9)]),
            )

    def test_abutting_outages_block_until_last_ends(self, tiny_machine):
        # Back-to-back windows sharing a timestamp: the same-batch
        # release and take must net out, never opening a zero-length
        # gap the scheduler could start work in.
        outages = OutageSchedule(
            [Outage(0.0, 50.0, 8), Outage(50.0, 100.0, 8)]
        )
        job = make_job(cpus=8, runtime=10.0, submit=5.0)
        Engine(tiny_machine, fcfs(), trace=[job], outages=outages).run()
        assert job.start_time == 100.0

    def test_stacked_outages_release_in_steps(self, tiny_machine):
        # Two overlapping windows take the whole machine until the
        # inner one lifts at t=30, when 4 CPUs return to service.
        outages = OutageSchedule(
            [Outage(0.0, 60.0, 4), Outage(0.0, 30.0, 4)]
        )
        narrow = make_job(cpus=4, runtime=5.0, submit=10.0)
        wide = make_job(cpus=8, runtime=5.0, submit=10.0)
        Engine(
            tiny_machine, fcfs(), trace=[narrow, wide], outages=outages
        ).run()
        assert narrow.start_time == 30.0
        assert wide.start_time == 60.0


class TestStallRecovery:
    def _held_scheduler(self):
        # Jobs wider than 4 CPUs may only start outside 07:00-19:00;
        # t=0 is Monday 00:00.
        return QueueScheduler(
            policy=FcfsPolicy(), timeofday=TimeOfDayPolicy(max_day_cpus=4)
        )

    def test_wake_drains_timeofday_held_queue(self, tiny_machine):
        # A wide job submitted Monday 08:00 is held by the time-of-day
        # policy with no further events pending; the engine must wake
        # itself until the night window opens at 19:00.
        job = make_job(cpus=8, runtime=100.0, submit=8 * 3600.0)
        result = Engine(
            tiny_machine, self._held_scheduler(), trace=[job]
        ).run()
        assert job.start_time == 19 * 3600.0
        assert not result.unfinished
        assert len(result.finished) == 1

    def test_stall_wake_honors_wake_interval(self, tiny_machine):
        job = make_job(cpus=8, runtime=100.0, submit=8 * 3600.0)
        Engine(
            tiny_machine,
            self._held_scheduler(),
            trace=[job],
            config=SimConfig(wake_interval=1800.0),
        ).run()
        assert job.start_time == 19 * 3600.0


class TestUntil:
    def test_truncation_reports_unfinished(self, tiny_machine):
        a = make_job(cpus=8, runtime=100.0)
        b = make_job(cpus=8, runtime=100.0, submit=1.0)
        result = Engine(
            tiny_machine,
            fcfs(),
            trace=[a, b],
            config=SimConfig(until=50.0),
        ).run()
        assert len(result.finished) == 0
        assert len(result.unfinished) == 2

    def test_truncation_counts_never_submitted_jobs(self, tiny_machine):
        """Jobs whose SUBMIT events lie beyond ``until`` are backlog
        too: a truncated run must not silently drop them (regression —
        they used to vanish from both ``finished`` and ``unfinished``)."""
        ran = make_job(cpus=1, runtime=10.0)
        queued = make_job(cpus=8, runtime=100.0, submit=40.0)
        late_a = make_job(cpus=1, runtime=10.0, submit=60.0)
        late_b = make_job(cpus=2, runtime=10.0, submit=900.0)
        result = Engine(
            tiny_machine,
            fcfs(),
            trace=[ran, queued, late_a, late_b],
            config=SimConfig(until=50.0),
        ).run()
        assert [j.job_id for j in result.finished] == [ran.job_id]
        unfinished_ids = {j.job_id for j in result.unfinished}
        assert unfinished_ids == {queued.job_id, late_a.job_id,
                                  late_b.job_id}
        # Conservation: every trace job is in exactly one bucket.
        assert len(result.finished) + len(result.unfinished) == 4


class TestWake:
    def test_wake_interval_validation(self):
        with pytest.raises(ConfigurationError):
            SimConfig(wake_interval=0.0)

    def test_wake_events_terminate(self, tiny_machine):
        job = make_job(cpus=1, runtime=10.0, submit=100.0)
        result = Engine(
            tiny_machine,
            fcfs(),
            trace=[job],
            config=SimConfig(wake_interval=7.0),
        ).run()
        assert len(result.finished) == 1


class TestConservation:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_every_job_finishes_exactly_once(self, seed):
        rng = np.random.default_rng(seed)
        machine = Machine(name="P", cpus=32, clock_ghz=1.0)
        jobs = random_native_trace(rng, machine, n_jobs=30)
        result = Engine(machine, fcfs(), trace=jobs).run()
        assert len(result.finished) == 30
        assert len({j.job_id for j in result.finished}) == 30
        assert not result.unfinished

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_capacity_never_exceeded(self, seed):
        rng = np.random.default_rng(seed)
        machine = Machine(name="P", cpus=32, clock_ghz=1.0)
        jobs = random_native_trace(rng, machine, n_jobs=40)
        result = Engine(machine, fcfs(), trace=jobs).run()
        busy = result.busy_profile()
        assert busy.values.max() <= machine.cpus

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_no_job_starts_before_submit(self, seed):
        rng = np.random.default_rng(seed)
        machine = Machine(name="P", cpus=32, clock_ghz=1.0)
        jobs = random_native_trace(rng, machine, n_jobs=30)
        result = Engine(machine, fcfs(), trace=jobs).run()
        for job in result.finished:
            assert job.start_time >= job.submit_time
            assert job.finish_time == pytest.approx(
                job.start_time + job.runtime
            )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_work_conservation(self, seed):
        """Total busy CPU-time equals the sum of job areas."""
        rng = np.random.default_rng(seed)
        machine = Machine(name="P", cpus=32, clock_ghz=1.0)
        jobs = random_native_trace(rng, machine, n_jobs=25)
        expected_area = sum(j.area for j in jobs)
        result = Engine(machine, fcfs(), trace=jobs).run()
        busy = result.busy_profile()
        measured = busy.integrate(0.0, result.end_time + 1.0)
        assert measured == pytest.approx(expected_area, rel=1e-9)
