"""Tests for ClusterState."""

import math

import pytest

from repro.errors import CapacityError, SchedulingError
from repro.sim.state import ClusterState

from tests.conftest import make_job


@pytest.fixture
def cluster(small_machine):
    return ClusterState(small_machine)


class TestAllocation:
    def test_start_reduces_free(self, cluster):
        cluster.start(make_job(cpus=10), 0.0)
        assert cluster.busy_cpus == 10
        assert cluster.free_cpus == 54

    def test_finish_releases(self, cluster):
        job = make_job(cpus=10)
        cluster.start(job, 0.0)
        cluster.finish(job)
        assert cluster.busy_cpus == 0
        assert cluster.free_cpus == 64

    def test_start_finish_roundtrip_many(self, cluster):
        jobs = [make_job(cpus=i + 1) for i in range(8)]
        for j in jobs:
            cluster.start(j, 0.0)
        for j in jobs:
            cluster.finish(j)
        assert cluster.busy_cpus == 0
        assert not cluster.running

    def test_rejects_oversubscription(self, cluster):
        cluster.start(make_job(cpus=60), 0.0)
        with pytest.raises(CapacityError):
            cluster.start(make_job(cpus=5), 0.0)

    def test_rejects_too_wide_for_machine(self, cluster):
        with pytest.raises(CapacityError):
            cluster.start(make_job(cpus=65), 0.0)

    def test_rejects_double_start(self, cluster):
        job = make_job(cpus=1)
        cluster.start(job, 0.0)
        with pytest.raises(SchedulingError):
            cluster.start(job, 1.0)

    def test_rejects_finish_of_unknown(self, cluster):
        with pytest.raises(SchedulingError):
            cluster.finish(make_job())

    def test_fits_now(self, cluster):
        cluster.start(make_job(cpus=60), 0.0)
        assert cluster.fits_now(4)
        assert not cluster.fits_now(5)

    def test_instantaneous_utilization(self, cluster):
        cluster.start(make_job(cpus=32), 0.0)
        assert cluster.instantaneous_utilization == 0.5


class TestOutageInteraction:
    def test_down_cpus_reduce_free(self, cluster):
        cluster.down_cpus = 60
        assert cluster.available_cpus == 4
        assert cluster.free_cpus == 4

    def test_free_clamped_at_zero_during_outage(self, cluster):
        cluster.start(make_job(cpus=30), 0.0)
        cluster.down_cpus = 50  # busy (30) + down (50) > 64
        assert cluster.free_cpus == 0


class TestEstimates:
    def test_estimated_releases_sorted(self, cluster):
        slow = make_job(cpus=1, runtime=10.0, estimate=500.0)
        fast = make_job(cpus=1, runtime=10.0, estimate=100.0)
        cluster.start(slow, 0.0)
        cluster.start(fast, 0.0)
        releases = cluster.estimated_releases()
        assert [r.job.job_id for r in releases] == [fast.job_id, slow.job_id]

    def test_earliest_fit_estimate_now(self, cluster):
        assert cluster.earliest_fit_estimate(64, 5.0) == 5.0

    def test_earliest_fit_estimate_waits_for_release(self, cluster):
        job = make_job(cpus=60, runtime=10.0, estimate=100.0)
        cluster.start(job, 0.0)
        # A 30-wide job must wait until the 60-wide job's estimated end.
        assert cluster.earliest_fit_estimate(30, 5.0) == 100.0

    def test_earliest_fit_estimate_accumulates(self, cluster):
        a = make_job(cpus=30, runtime=10.0, estimate=50.0)
        b = make_job(cpus=30, runtime=10.0, estimate=80.0)
        cluster.start(a, 0.0)
        cluster.start(b, 0.0)
        # Needs both releases: 4 free + 30 + 30 >= 64.
        assert cluster.earliest_fit_estimate(64, 0.0) == 80.0
        # Needs only the first release: 4 + 30 >= 34.
        assert cluster.earliest_fit_estimate(34, 0.0) == 50.0

    def test_earliest_fit_estimate_infinite_under_outage(self, cluster):
        cluster.down_cpus = 60
        assert math.isinf(cluster.earliest_fit_estimate(10, 0.0))
