"""Crash semantics: FAILURE/REPAIR events, retry, and invariant mode.

The deterministic tests use a :class:`FixedFaults` model whose crash
windows are given explicitly instead of sampled, plus fault scenarios
where the victim draw is forced (hypergeometric over the full
population), so kill timings can be computed by hand.
"""

import numpy as np
import pytest

from repro.core.base import InterstitialSource
from repro.core.controller import InterstitialController
from repro.core.runners import run_with_controller
from repro.errors import SimulationError
from repro.faults import FaultModel, FaultSchedule, NodeFault, RetryPolicy
from repro.jobs import InterstitialProject, JobKind, JobState
from repro.machines import Machine
from repro.sim.engine import Engine, SimConfig

from tests.conftest import fcfs, make_job, random_native_trace


class FixedFaults(FaultModel):
    """Fault model with an explicit, pre-computed crash schedule."""

    def __init__(self, windows, seed=0):
        super().__init__(mtbf=1e12, seed=seed)
        object.__setattr__(self, "_windows", tuple(windows))

    def sample(self, machine, until):
        return FaultSchedule(
            [NodeFault(start, end, cpus) for start, end, cpus in self._windows]
        )


class RecordingSource(InterstitialSource):
    """Offers a fixed batch of jobs once and records fault callbacks."""

    def __init__(self, jobs):
        self._jobs = list(jobs)
        self.preempted = []
        self.faults_seen = []

    def offer(self, t, cluster, scheduler):
        jobs = [j for j in self._jobs if j.cpus <= cluster.free_cpus]
        for job in jobs:
            self._jobs.remove(job)
        return jobs

    @property
    def exhausted(self):
        return not self._jobs

    def on_preempted(self, jobs, t):
        self.preempted.extend(jobs)

    def on_fault(self, t, cpus):
        self.faults_seen.append((t, cpus))


class TestCrashSemantics:
    def test_native_killed_and_requeued_with_backoff(self, tiny_machine):
        # The machine-wide fault at t=10 must hit the machine-wide job;
        # the default RetryPolicy resubmits it base_delay=60s later.
        job = make_job(cpus=8, runtime=100.0, submit=0.0)
        result = Engine(
            tiny_machine,
            fcfs(),
            trace=[job],
            faults=FixedFaults([(10.0, 20.0, 8)]),
        ).run()
        assert result.n_failures == 1
        assert job.state is JobState.FINISHED
        assert job.start_time == 70.0  # killed at 10, resubmitted at 10+60
        assert job.finish_time == 170.0
        assert result.attempts == {job.job_id: 1}
        # The wasted first run is recorded as a killed fragment.
        (fragment,) = result.killed
        assert fragment.job_id == job.job_id
        assert fragment.state is JobState.KILLED
        assert fragment.start_time == 0.0
        assert fragment.finish_time == 10.0
        assert fragment.kind is JobKind.NATIVE

    def test_stale_finish_of_killed_incarnation_ignored(self, tiny_machine):
        # The original FINISH event (t=100) is still queued when the job
        # restarts at t=70; it must not terminate the new incarnation.
        job = make_job(cpus=8, runtime=100.0, submit=0.0)
        result = Engine(
            tiny_machine,
            fcfs(),
            trace=[job],
            faults=FixedFaults([(10.0, 20.0, 8)]),
        ).run()
        assert len(result.finished) == 1
        assert result.finished[0].finish_time == 170.0
        assert not result.unfinished

    def test_retry_waits_out_long_repair(self, tiny_machine):
        # Backoff expires while the machine is still down: the job
        # requeues at t=70 but can only start once repair completes.
        job = make_job(cpus=8, runtime=100.0, submit=0.0)
        Engine(
            tiny_machine,
            fcfs(),
            trace=[job],
            faults=FixedFaults([(10.0, 500.0, 8)]),
        ).run()
        assert job.start_time == 500.0
        assert job.finish_time == 600.0

    def test_idle_node_failure_kills_nothing(self, tiny_machine):
        job = make_job(cpus=4, runtime=50.0, submit=0.0)
        result = Engine(
            tiny_machine,
            fcfs(),
            trace=[job],
            faults=FixedFaults([(60.0, 70.0, 4)]),
        ).run()
        assert result.n_failures == 1
        assert not result.killed
        assert not result.attempts
        assert job.finish_time == 50.0

    def test_failed_cpus_block_new_starts(self, tiny_machine):
        # Crash-downed capacity behaves like an outage for queued work.
        job = make_job(cpus=8, runtime=10.0, submit=5.0)
        Engine(
            tiny_machine,
            fcfs(),
            trace=[job],
            faults=FixedFaults([(0.0, 100.0, 8)]),
        ).run()
        assert job.start_time == 100.0

    def test_dead_letter_after_exhausted_retries(self, tiny_machine):
        job = make_job(cpus=8, runtime=100.0, submit=0.0)
        result = Engine(
            tiny_machine,
            fcfs(),
            trace=[job],
            faults=FixedFaults([(10.0, 12.0, 8), (30.0, 32.0, 8)]),
            retry=RetryPolicy(max_attempts=1, base_delay=10.0),
        ).run()
        # Killed at 10, retried at 20, killed again at 30 -> dead letter.
        assert result.attempts == {job.job_id: 2}
        assert result.dead_lettered == [job]
        assert job.state is JobState.KILLED
        assert not result.finished
        assert len(result.killed) == 2

    def test_job_awaiting_retry_reported_unfinished(self, tiny_machine):
        # Hard stop before the RESUBMIT fires: the killed native is
        # neither finished nor dead-lettered, so it must show up as
        # unfinished work.
        job = make_job(cpus=8, runtime=100.0, submit=0.0)
        result = Engine(
            tiny_machine,
            fcfs(),
            trace=[job],
            faults=FixedFaults([(10.0, 20.0, 8)]),
            config=SimConfig(until=30.0),
        ).run()
        assert not result.finished
        assert [j.job_id for j in result.unfinished] == [job.job_id]

    def test_interstitial_victims_route_through_on_preempted(
        self, tiny_machine
    ):
        native = make_job(cpus=1, runtime=5.0, submit=0.0)
        ijob = make_job(cpus=4, runtime=100.0, kind=JobKind.INTERSTITIAL)
        source = RecordingSource([ijob])
        result = Engine(
            tiny_machine,
            fcfs(),
            trace=[native],
            interstitial=source,
            faults=FixedFaults([(10.0, 20.0, 8)]),
        ).run()
        # The machine-wide fault at t=10 finds only the interstitial job
        # running; it is killed and re-credited, never retried.
        assert source.preempted == [ijob]
        assert ijob.state is JobState.KILLED
        assert ijob in result.killed
        assert not result.attempts
        assert not result.dead_lettered
        assert native.state is JobState.FINISHED

    def test_on_fault_fires_even_without_victims(self, tiny_machine):
        source = RecordingSource([])
        Engine(
            tiny_machine,
            fcfs(),
            trace=[make_job(cpus=1, runtime=1.0)],
            interstitial=source,
            faults=FixedFaults([(50.0, 60.0, 4), (70.0, 80.0, 2)]),
        ).run()
        assert source.faults_seen == [(50.0, 4), (70.0, 2)]

    def test_repair_restores_capacity(self, tiny_machine):
        faults = FixedFaults([(0.0, 30.0, 4)])
        narrow = make_job(cpus=4, runtime=10.0, submit=5.0)
        wide = make_job(cpus=8, runtime=10.0, submit=5.0)
        Engine(
            tiny_machine, fcfs(), trace=[narrow, wide], faults=faults
        ).run()
        assert narrow.start_time == 5.0
        assert wide.start_time == 30.0


class TestReproducibility:
    def _run(self, trace, check_invariants=False):
        machine = Machine(name="P", cpus=32, clock_ghz=1.0)
        faults = FaultModel(
            mtbf=20_000.0, mttr=1_000.0, cpus_per_node=4, seed=7
        )
        return Engine(
            machine,
            fcfs(),
            trace=[j.copy_unscheduled() for j in trace],
            faults=faults,
            retry=RetryPolicy(max_attempts=2, base_delay=30.0),
            config=SimConfig(check_invariants=check_invariants),
        ).run()

    def _trace(self):
        rng = np.random.default_rng(1234)
        machine = Machine(name="P", cpus=32, clock_ghz=1.0)
        return random_native_trace(rng, machine, n_jobs=40)

    @staticmethod
    def _fingerprint(result):
        return (
            sorted(
                (j.job_id, j.start_time, j.finish_time)
                for j in result.finished
            ),
            sorted(
                (j.job_id, j.start_time, j.finish_time)
                for j in result.killed
            ),
            sorted(result.attempts.items()),
            sorted(j.job_id for j in result.dead_lettered),
            result.fault_transitions,
            result.n_failures,
            result.end_time,
        )

    def test_same_seed_bit_for_bit_identical(self):
        trace = self._trace()
        a = self._run(trace)
        b = self._run(trace)
        # The scenario must actually exercise the fault path.
        assert a.n_failures > 0
        assert a.killed
        assert a.attempts
        assert self._fingerprint(a) == self._fingerprint(b)
        assert a.utilization() == b.utilization()

    def test_invariant_mode_passes_and_changes_nothing(self):
        trace = self._trace()
        plain = self._run(trace, check_invariants=False)
        checked = self._run(trace, check_invariants=True)
        assert self._fingerprint(plain) == self._fingerprint(checked)


class TestInvariantChecking:
    def test_config_flag_controls_checking(self):
        assert SimConfig(check_invariants=True).invariants_enabled
        assert not SimConfig(check_invariants=False).invariants_enabled

    def test_off_by_default_with_no_process_global(self):
        # The old process-wide default was removed with the RunContext
        # refactor: checking is a plain per-config flag, off unless the
        # caller threads it through explicitly.
        assert not SimConfig().invariants_enabled
        import repro.sim.engine as engine_mod

        assert not hasattr(engine_mod, "set_default_invariant_checking")
        assert not hasattr(engine_mod, "_DEFAULT_CHECK_INVARIANTS")

    def test_detects_corrupted_accounting(self, tiny_machine):
        engine = Engine(tiny_machine, fcfs())
        engine.cluster.busy_cpus = 3  # no running jobs back this up
        with pytest.raises(SimulationError) as excinfo:
            engine._check_invariants(0.0)
        assert "busy" in str(excinfo.value)

    def test_controller_run_with_faults_under_invariants(self, rng):
        # Integration: continual controller + stochastic faults + retry,
        # with the validator threaded through explicitly (the CLI's
        # --check-invariants path via RunContext).
        machine = Machine(name="P", cpus=32, clock_ghz=1.0)
        trace = random_native_trace(rng, machine, n_jobs=30)
        project = InterstitialProject(
            n_jobs=1, cpus_per_job=4, runtime_1ghz=300.0
        )
        controller = InterstitialController(
            machine=machine,
            project=project,
            continual=True,
            throttle_after_failures=2,
            throttle_window=10_000.0,
            throttle_quiet_period=5_000.0,
        )
        faults = FaultModel(
            mtbf=15_000.0, mttr=2_000.0, cpus_per_node=8, seed=5
        )
        result = run_with_controller(
            machine,
            trace,
            controller,
            faults=faults,
            retry=RetryPolicy(max_attempts=3, base_delay=30.0),
            horizon=60_000.0,
            check_invariants=True,
        )
        assert result.n_failures > 0
        assert controller.n_faults_seen == result.n_failures
        assert len(result.finished) > 0
