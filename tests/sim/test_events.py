"""Tests for the event queue."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.events import EventKind, EventQueue


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(5.0, EventKind.SUBMIT, "b")
        q.push(1.0, EventKind.SUBMIT, "a")
        q.push(9.0, EventKind.SUBMIT, "c")
        assert [q.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_kind_tiebreak_finish_before_submit(self):
        # CPUs freed at t must be visible to jobs submitted at t.
        q = EventQueue()
        q.push(3.0, EventKind.SUBMIT, "submit")
        q.push(3.0, EventKind.FINISH, "finish")
        q.push(3.0, EventKind.OUTAGE, "outage")
        q.push(3.0, EventKind.WAKE, "wake")
        order = [q.pop().payload for _ in range(4)]
        assert order == ["outage", "finish", "submit", "wake"]

    def test_insertion_order_tiebreak(self):
        q = EventQueue()
        for i in range(10):
            q.push(1.0, EventKind.SUBMIT, i)
        assert [q.pop().payload for _ in range(10)] == list(range(10))


class TestBatch:
    def test_pop_batch_groups_equal_times(self):
        q = EventQueue()
        q.push(1.0, EventKind.SUBMIT, "a")
        q.push(1.0, EventKind.SUBMIT, "b")
        q.push(2.0, EventKind.SUBMIT, "c")
        batch = q.pop_batch()
        assert [e.payload for e in batch] == ["a", "b"]
        assert q.pop_batch()[0].payload == "c"

    def test_pop_batch_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop_batch()


class TestBasics:
    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(1.0, EventKind.WAKE)
        assert q and len(q) == 1

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(4.2, EventKind.WAKE)
        assert q.peek_time() == 4.2

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_rejects_nonfinite_time(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.push(math.inf, EventKind.WAKE)
        with pytest.raises(SimulationError):
            q.push(math.nan, EventKind.WAKE)


@given(
    times=st.lists(st.floats(0.0, 1e6), min_size=1, max_size=100),
)
def test_property_pops_are_sorted(times):
    q = EventQueue()
    for t in times:
        q.push(t, EventKind.SUBMIT)
    popped = [q.pop().time for _ in range(len(times))]
    assert popped == sorted(times)


@given(
    times=st.lists(
        st.sampled_from([0.0, 1.0, 2.0, 3.0]), min_size=1, max_size=50
    )
)
def test_property_batches_partition_by_time(times):
    q = EventQueue()
    for t in times:
        q.push(t, EventKind.SUBMIT)
    seen = []
    while q:
        batch = q.pop_batch()
        batch_times = {e.time for e in batch}
        assert len(batch_times) == 1
        seen.extend(e.time for e in batch)
    assert seen == sorted(times)
