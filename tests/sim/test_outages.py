"""Tests for the outage model."""

import pytest

from repro.errors import ValidationError
from repro.sim.outages import Outage, OutageSchedule


class TestOutage:
    def test_duration(self):
        assert Outage(10.0, 25.0, 4).duration == 15.0

    def test_rejects_empty_window(self):
        with pytest.raises(ValidationError):
            Outage(10.0, 10.0, 4)

    def test_rejects_reversed_window(self):
        with pytest.raises(ValidationError):
            Outage(10.0, 5.0, 4)

    def test_rejects_zero_cpus(self):
        with pytest.raises(ValidationError):
            Outage(0.0, 1.0, 0)


class TestSchedule:
    def test_empty(self):
        schedule = OutageSchedule()
        assert not schedule
        assert schedule.max_down() == 0
        assert schedule.down_at(5.0) == 0

    def test_down_at(self):
        schedule = OutageSchedule([Outage(10.0, 20.0, 8)])
        assert schedule.down_at(9.999) == 0
        assert schedule.down_at(10.0) == 8
        assert schedule.down_at(19.999) == 8
        assert schedule.down_at(20.0) == 0

    def test_overlap_stacks(self):
        schedule = OutageSchedule(
            [Outage(0.0, 10.0, 4), Outage(5.0, 15.0, 6)]
        )
        assert schedule.down_at(7.0) == 10
        assert schedule.max_down() == 10

    def test_transitions_are_balanced(self):
        schedule = OutageSchedule(
            [Outage(0.0, 10.0, 4), Outage(5.0, 15.0, 6)]
        )
        transitions = schedule.transitions()
        assert sum(d for _, d in transitions) == 0
        assert [t for t, _ in transitions] == sorted(
            t for t, _ in transitions
        )

    def test_total_downtime(self):
        schedule = OutageSchedule(
            [Outage(0.0, 10.0, 4), Outage(100.0, 110.0, 2)]
        )
        assert schedule.total_downtime_cpu_seconds() == 60.0

    def test_iteration_sorted(self):
        schedule = OutageSchedule(
            [Outage(50.0, 60.0, 1), Outage(0.0, 10.0, 1)]
        )
        starts = [o.start for o in schedule]
        assert starts == [0.0, 50.0]


class TestEdgeCases:
    def test_abutting_windows_do_not_stack(self):
        # One window ends exactly where the next starts: the release
        # (-4) sorts before the take (+4) at the shared timestamp, so
        # the peak never double-counts the boundary instant.
        schedule = OutageSchedule(
            [Outage(0.0, 10.0, 4), Outage(10.0, 20.0, 4)]
        )
        assert schedule.max_down() == 4
        assert schedule.down_at(10.0) == 4
        assert schedule.transitions() == [
            (0.0, 4), (10.0, -4), (10.0, 4), (20.0, -4)
        ]

    def test_stacked_identical_windows(self):
        schedule = OutageSchedule([Outage(5.0, 15.0, 3)] * 3)
        assert schedule.max_down() == 9
        assert schedule.down_at(10.0) == 9
        assert schedule.total_downtime_cpu_seconds() == 90.0

    def test_nested_windows(self):
        schedule = OutageSchedule(
            [Outage(0.0, 100.0, 2), Outage(40.0, 60.0, 5)]
        )
        assert schedule.down_at(39.0) == 2
        assert schedule.down_at(50.0) == 7
        assert schedule.max_down() == 7
        assert schedule.total_downtime_cpu_seconds() == 300.0
