"""Tests for SimResult metrics plumbing."""

import pytest

from repro.jobs import JobKind
from repro.sim.engine import Engine, SimConfig
from repro.sim.results import SimResult

from tests.conftest import fcfs, make_job


@pytest.fixture
def simple_result(tiny_machine):
    # One 8-wide job for 100 s starting at t=0; metrics over [0, 200].
    job = make_job(cpus=8, runtime=100.0)
    return Engine(
        tiny_machine, fcfs(), trace=[job], config=SimConfig(horizon=200.0)
    ).run()


class TestViews:
    def test_jobs_by_kind(self, tiny_machine):
        native = make_job(cpus=1, runtime=10.0)
        inter = make_job(cpus=1, runtime=10.0, kind=JobKind.INTERSTITIAL)
        result = SimResult(machine=tiny_machine, finished=[native, inter])
        assert result.native_jobs == [native]
        assert result.interstitial_jobs == [inter]
        assert len(result.jobs()) == 2

    def test_metrics_end_prefers_horizon(self, simple_result):
        assert simple_result.metrics_end == 200.0

    def test_metrics_end_falls_back_to_end_time(self, tiny_machine):
        job = make_job(cpus=1, runtime=50.0)
        result = Engine(tiny_machine, fcfs(), trace=[job]).run()
        assert result.metrics_end == 50.0


class TestUtilization:
    def test_utilization_simple(self, simple_result):
        # 8 CPUs busy for 100 s of a 200 s window on an 8-CPU machine.
        assert simple_result.overall_utilization == pytest.approx(0.5)

    def test_utilization_by_kind(self, tiny_machine):
        native = make_job(cpus=4, runtime=100.0)
        inter = make_job(
            cpus=4, runtime=100.0, kind=JobKind.INTERSTITIAL
        )
        result = Engine(
            tiny_machine,
            fcfs(),
            trace=[native, inter],
            config=SimConfig(horizon=100.0),
        ).run()
        assert result.native_utilization == pytest.approx(0.5)
        assert result.utilization(JobKind.INTERSTITIAL) == pytest.approx(0.5)
        assert result.overall_utilization == pytest.approx(1.0)

    def test_utilization_window(self, simple_result):
        assert simple_result.utilization(t0=0.0, t1=100.0) == pytest.approx(
            1.0
        )
        assert simple_result.utilization(
            t0=100.0, t1=200.0
        ) == pytest.approx(0.0)

    def test_empty_window_rejected(self, simple_result):
        with pytest.raises(ValueError):
            simple_result.utilization(t0=10.0, t1=10.0)


class TestProfiles:
    def test_busy_profile_steps(self, simple_result):
        busy = simple_result.busy_profile()
        assert busy(0.0) == 8.0
        assert busy(99.9) == 8.0
        assert busy(100.0) == 0.0

    def test_down_profile_empty(self, simple_result):
        down = simple_result.down_profile()
        assert down(50.0) == 0.0

    def test_unfinished_jobs_count_to_end_time(self, tiny_machine):
        job = make_job(cpus=8, runtime=1000.0)
        result = Engine(
            tiny_machine, fcfs(), trace=[job], config=SimConfig(until=100.0)
        ).run()
        busy = result.busy_profile()
        # Truncated job occupies CPUs up to the truncation point.
        assert busy(50.0) == 8.0
        assert busy(150.0) == 0.0
