"""Tests for step functions and capacity profiles."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError, ValidationError
from repro.sim.profile import INFINITY, CapacityProfile, StepFunction


class TestStepFunctionConstruction:
    def test_constant(self):
        f = StepFunction.constant(7.0)
        assert f(0.0) == 7.0
        assert f(1e9) == 7.0

    def test_from_deltas_basic(self):
        f = StepFunction.from_deltas([10.0, 20.0], [5.0, -5.0], base=2.0)
        assert f(0.0) == 2.0
        assert f(10.0) == 7.0
        assert f(15.0) == 7.0
        assert f(20.0) == 2.0

    def test_from_deltas_aggregates_duplicates(self):
        f = StepFunction.from_deltas([5.0, 5.0, 5.0], [1.0, 2.0, 3.0])
        assert f(5.0) == 6.0
        assert f.times.size == 1

    def test_from_deltas_empty(self):
        f = StepFunction.from_deltas([], [], base=3.0)
        assert f(123.0) == 3.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            StepFunction.from_deltas([1.0], [1.0, 2.0])

    def test_rejects_unsorted_times(self):
        with pytest.raises(ValidationError):
            StepFunction([2.0, 1.0], [1.0, 2.0])


class TestStepFunctionQueries:
    @pytest.fixture
    def staircase(self):
        # 0 on (-inf,0), 4 on [0,10), 1 on [10,20), 6 on [20,inf)
        return StepFunction([0.0, 10.0, 20.0], [4.0, 1.0, 6.0], base=0.0)

    def test_value_at(self, staircase):
        assert staircase(-1.0) == 0.0
        assert staircase(0.0) == 4.0
        assert staircase(9.999) == 4.0
        assert staircase(10.0) == 1.0
        assert staircase(25.0) == 6.0

    def test_min_over_window(self, staircase):
        assert staircase.min_over(0.0, 10.0) == 4.0
        assert staircase.min_over(0.0, 15.0) == 1.0
        assert staircase.min_over(5.0, 25.0) == 1.0
        assert staircase.min_over(20.0, 30.0) == 6.0

    def test_min_over_point_query(self, staircase):
        assert staircase.min_over(5.0, 5.0) == 4.0

    def test_min_over_right_open(self, staircase):
        # Window [0, 10) excludes the drop at t=10.
        assert staircase.min_over(0.0, 10.0) == 4.0

    def test_min_over_rejects_reversed(self, staircase):
        with pytest.raises(ValidationError):
            staircase.min_over(5.0, 4.0)

    def test_integrate(self, staircase):
        # 10*4 + 10*1 + 10*6 over [0, 30].
        assert staircase.integrate(0.0, 30.0) == pytest.approx(110.0)

    def test_integrate_partial_segments(self, staircase):
        assert staircase.integrate(5.0, 12.0) == pytest.approx(
            5 * 4.0 + 2 * 1.0
        )

    def test_integrate_before_first_breakpoint(self):
        f = StepFunction([10.0], [5.0], base=2.0)
        assert f.integrate(0.0, 10.0) == pytest.approx(20.0)

    def test_average(self, staircase):
        assert staircase.average(0.0, 20.0) == pytest.approx(2.5)

    def test_sample_vectorized(self, staircase):
        values = staircase.sample([-1.0, 0.0, 10.0, 30.0])
        assert list(values) == [0.0, 4.0, 1.0, 6.0]

    def test_negate_from(self, staircase):
        free = staircase.negate_from(10.0)
        assert free(5.0) == 6.0
        assert free(-1.0) == 10.0

    def test_shift_values(self, staircase):
        shifted = staircase.shift_values(1.0)
        assert shifted(5.0) == 5.0


@settings(max_examples=60)
@given(
    events=st.lists(
        st.tuples(st.floats(0.0, 1000.0), st.integers(-5, 5)),
        min_size=1,
        max_size=30,
    ),
    probe=st.floats(-10.0, 1100.0),
)
def test_property_value_matches_running_sum(events, probe):
    """f(t) equals base plus the sum of deltas at times <= t."""
    f = StepFunction.from_deltas(
        [t for t, _ in events], [d for _, d in events], base=3.0
    )
    expected = 3.0 + sum(d for t, d in events if t <= probe)
    assert f(probe) == pytest.approx(expected)


@settings(max_examples=60)
@given(
    events=st.lists(
        st.tuples(st.floats(0.0, 100.0), st.integers(-3, 3)),
        min_size=1,
        max_size=20,
    ),
    t0=st.floats(0.0, 50.0),
    span=st.floats(0.1, 60.0),
)
def test_property_min_over_matches_bruteforce(events, t0, span):
    """Window minimum agrees with dense sampling of the window."""
    f = StepFunction.from_deltas(
        [t for t, _ in events], [d for _, d in events]
    )
    t1 = t0 + span
    probes = np.unique(
        np.concatenate(
            [[t0], np.clip(f.times, t0, np.nextafter(t1, t0))]
        )
    )
    probes = probes[(probes >= t0) & (probes < t1)]
    brute = min(f(p) for p in probes)
    assert f.min_over(t0, t1) == pytest.approx(brute)


@settings(max_examples=60)
@given(
    events=st.lists(
        st.tuples(st.floats(0.0, 100.0), st.integers(-3, 3)),
        min_size=1,
        max_size=20,
    ),
    t0=st.floats(0.0, 50.0),
    mid=st.floats(0.0, 30.0),
    span=st.floats(0.0, 30.0),
)
def test_property_integral_additive(events, t0, mid, span):
    """integrate(a,c) = integrate(a,b) + integrate(b,c)."""
    f = StepFunction.from_deltas(
        [t for t, _ in events], [d for _, d in events]
    )
    a, b, c = t0, t0 + mid, t0 + mid + span
    assert f.integrate(a, c) == pytest.approx(
        f.integrate(a, b) + f.integrate(b, c), abs=1e-6
    )


class TestCapacityProfile:
    def test_initial_constant(self):
        p = CapacityProfile(10.0)
        assert p.capacity_at(0.0) == 10.0
        assert p.capacity_at(1e9) == 10.0

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValidationError):
            CapacityProfile(-1.0)

    def test_reserve_carves_window(self):
        p = CapacityProfile(10.0)
        p.reserve(5.0, 15.0, 4.0)
        assert p.capacity_at(0.0) == 10.0
        assert p.capacity_at(5.0) == 6.0
        assert p.capacity_at(14.999) == 6.0
        assert p.capacity_at(15.0) == 10.0

    def test_reserve_stacks(self):
        p = CapacityProfile(10.0)
        p.reserve(0.0, 10.0, 3.0)
        p.reserve(5.0, 15.0, 3.0)
        assert p.capacity_at(7.0) == 4.0
        assert p.capacity_at(12.0) == 7.0

    def test_reserve_checks_capacity(self):
        p = CapacityProfile(10.0)
        p.reserve(0.0, 10.0, 8.0)
        with pytest.raises(CapacityError):
            p.reserve(5.0, 6.0, 3.0)
        # Failed reservation left the profile unchanged.
        assert p.capacity_at(5.5) == 2.0

    def test_reserve_unchecked_goes_negative(self):
        p = CapacityProfile(2.0)
        p.reserve(0.0, 5.0, 5.0, check=False)
        assert p.capacity_at(1.0) == -3.0

    def test_reserve_infinite_end(self):
        p = CapacityProfile(10.0)
        p.reserve(3.0, math.inf, 4.0)
        assert p.capacity_at(1e12) == 6.0

    def test_reserve_rejects_empty_window(self):
        p = CapacityProfile(10.0)
        with pytest.raises(ValidationError):
            p.reserve(5.0, 5.0, 1.0)

    def test_zero_reservation_noop(self):
        p = CapacityProfile(10.0)
        p.reserve(0.0, 5.0, 0.0)
        assert p.breakpoints == (0.0,)

    def test_min_over(self):
        p = CapacityProfile(10.0)
        p.reserve(5.0, 10.0, 7.0)
        assert p.min_over(0.0, 20.0) == 3.0
        assert p.min_over(0.0, 5.0) == 10.0
        assert p.min_over(10.0, 20.0) == 10.0

    def test_earliest_fit_now(self):
        p = CapacityProfile(10.0)
        assert p.earliest_fit(0.0, 5.0, 10.0) == 0.0

    def test_earliest_fit_after_release(self):
        p = CapacityProfile(10.0)
        p.reserve(0.0, 100.0, 8.0)
        assert p.earliest_fit(0.0, 10.0, 5.0) == 100.0

    def test_earliest_fit_in_gap_requires_duration(self):
        p = CapacityProfile(10.0)
        p.reserve(0.0, 50.0, 8.0)
        p.reserve(60.0, 100.0, 8.0)
        # 5-wide job: the [50,60) gap fits a <=10s job, not a 20s one.
        assert p.earliest_fit(0.0, 10.0, 5.0) == 50.0
        assert p.earliest_fit(0.0, 20.0, 5.0) == 100.0

    def test_earliest_fit_impossible(self):
        p = CapacityProfile(4.0)
        assert p.earliest_fit(0.0, 10.0, 5.0) == INFINITY

    def test_copy_isolation(self):
        p = CapacityProfile(10.0)
        q = p.copy()
        q.reserve(0.0, 5.0, 4.0)
        assert p.capacity_at(1.0) == 10.0

    def test_as_step_function(self):
        p = CapacityProfile(10.0, start=0.0)
        p.reserve(2.0, 4.0, 3.0)
        f = p.as_step_function()
        assert f(3.0) == 7.0
        assert f(5.0) == 10.0


@settings(max_examples=60)
@given(
    reservations=st.lists(
        st.tuples(
            st.floats(0.0, 100.0),   # start
            st.floats(0.1, 50.0),    # duration
            st.integers(1, 3),       # cpus
        ),
        min_size=0,
        max_size=12,
    ),
    duration=st.floats(0.1, 40.0),
    cpus=st.integers(1, 10),
)
def test_property_earliest_fit_is_valid_and_earliest(
    reservations, duration, cpus
):
    """earliest_fit returns a window that fits, and no breakpoint-aligned
    earlier window fits."""
    p = CapacityProfile(10.0)
    for start, dur, width in reservations:
        p.reserve(start, start + dur, width, check=False)
    t = p.earliest_fit(0.0, duration, cpus)
    if math.isinf(t):
        assert p.min_over(1e9, 1e9 + duration) < cpus
        return
    assert p.min_over(t, t + duration) >= cpus
    earlier = [c for c in (0.0,) + p.breakpoints if c < t]
    for candidate in earlier:
        assert p.min_over(candidate, candidate + duration) < cpus
