"""Sanity checks on the example scripts.

The examples run multi-minute simulations, so the suite only verifies
that each one imports cleanly (catching API drift) and exposes a
``main`` entry point; the examples themselves are exercised manually /
in CI's long lane.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_module(path: Path):
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLE_FILES}
        assert "quickstart.py" in names
        assert len(names) >= 3

    @pytest.mark.parametrize(
        "path", EXAMPLE_FILES, ids=lambda p: p.stem
    )
    def test_imports_and_has_main(self, path):
        module = load_module(path)
        assert callable(getattr(module, "main", None)), (
            f"{path.name} must define main()"
        )

    @pytest.mark.parametrize(
        "path", EXAMPLE_FILES, ids=lambda p: p.stem
    )
    def test_has_module_docstring(self, path):
        module = load_module(path)
        assert module.__doc__ and len(module.__doc__) > 40
