"""Differential suite: incremental scheduler vs the naive reference.

:class:`~repro.sched.queue_scheduler.QueueScheduler` maintains its
priority order, release claims and pass-skip machinery incrementally
(DESIGN §13); :class:`~repro.sched.reference.ReferenceQueueScheduler`
retains the pre-incremental formulation verbatim.  These tests replay a
30-seed sweep of configurations — every priority policy, every backfill
mode, with and without time-of-day constraints, runtime prediction,
faults and a continual interstitial source — through both and require
*byte-identical* recorded traces, identical physics fingerprints and
identical start decisions.

The only tolerated divergence is the maintenance counters
(``pass_skips``, ``priority_rekeys``, ``release_rebuilds``), which
describe the incremental scheduler's own bookkeeping and are zero on
the reference by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
import pytest

from repro.core.runners import (
    run_continual,
    run_native,
    run_with_controller,
)
from repro.elastic import ElasticInterstitialController, ElasticitySpec
from repro.faults import FaultModel
from repro.jobs import InterstitialProject
from repro.machines import Machine
from repro.obs import MemoryRecorder
from repro.sched import (
    BackfillMode,
    FcfsPolicy,
    HierarchicalFairSharePolicy,
    PerUserRuntimePredictor,
    QueueScheduler,
    ReferenceQueueScheduler,
    TimeOfDayPolicy,
    UserFairSharePolicy,
    UserGroupFairSharePolicy,
)
from repro.sim.engine import Engine, SimConfig
from repro.sim.results import SimResult
from tests.conftest import make_job, random_native_trace
from tests.obs.test_differential import _fingerprint

SEEDS = range(30)

#: Incremental-bookkeeping counters: differ from the reference by design.
MAINTENANCE_COUNTERS = frozenset(
    {"pass_skips", "priority_rekeys", "release_rebuilds"}
)

POLICIES = (
    FcfsPolicy,
    UserFairSharePolicy,
    HierarchicalFairSharePolicy,
    UserGroupFairSharePolicy,
)
BACKFILLS = (BackfillMode.NONE, BackfillMode.EASY, BackfillMode.CONSERVATIVE)


@dataclass(frozen=True)
class Spec:
    """Deterministic configuration derived from a sweep seed.

    The moduli are coprime-ish so 30 seeds cover every value of every
    dimension several times (``test_sweep_covers_the_config_space``).
    """

    seed: int

    @property
    def policy_cls(self) -> type:
        return POLICIES[self.seed % len(POLICIES)]

    @property
    def backfill(self) -> BackfillMode:
        return BACKFILLS[(self.seed // 4) % len(BACKFILLS)]

    @property
    def with_timeofday(self) -> bool:
        return self.seed % 2 == 1

    @property
    def with_predictor(self) -> bool:
        return (self.seed // 2) % 2 == 1

    @property
    def with_faults(self) -> bool:
        return (self.seed // 3) % 2 == 1

    @property
    def continual(self) -> bool:
        return (self.seed // 5) % 2 == 1

    @property
    def with_wake(self) -> bool:
        """Periodic scheduler wakes — the pass-skip machinery's main
        diet, so the sweep must cover it."""
        return (self.seed // 7) % 2 == 1

    @property
    def with_elastic(self) -> bool:
        """Malleable interstitial feeding: resizes bump the cluster
        epoch, so the pass-skip caches must survive them too."""
        return self.continual and (self.seed // 11) % 2 == 1


def _scheduler(cls: type, spec: Spec, machine: Machine):
    """Fresh scheduler of the requested class: policies, predictors and
    time-of-day state are stateful, so each run builds its own."""
    timeofday = (
        TimeOfDayPolicy(max_day_cpus=max(1, machine.cpus // 4))
        if spec.with_timeofday
        else None
    )
    predictor = PerUserRuntimePredictor() if spec.with_predictor else None
    return cls(
        policy=spec.policy_cls(),
        backfill=spec.backfill,
        timeofday=timeofday,
        predictor=predictor,
    )


def _run(spec: Spec, scheduler_cls: type) -> Tuple[SimResult, MemoryRecorder]:
    machine = Machine(name="DiffBox", cpus=96, clock_ghz=1.0)
    trace = random_native_trace(
        np.random.default_rng(spec.seed + 1000), machine,
        n_jobs=40, horizon=60_000.0,
    )
    # Pin ids so the two runs are comparable record-for-record.
    for i, job in enumerate(trace):
        job.job_id = i + 1
    faults = (
        FaultModel(mtbf=9.0e4, mttr=1800.0, cpus_per_node=8, seed=spec.seed)
        if spec.with_faults
        else None
    )
    recorder = MemoryRecorder()
    scheduler = _scheduler(scheduler_cls, spec, machine)
    wake = 300.0 if spec.with_wake else None
    if spec.with_elastic:
        project = InterstitialProject(
            n_jobs=1, cpus_per_job=8, runtime_1ghz=900.0,
            min_width=2, max_width=8,
            user="harvest", group="harvest",
        )
        controller = ElasticInterstitialController(
            machine, project, spec=ElasticitySpec.malleable(),
            continual=True,
        )
        result = run_with_controller(
            machine, trace, controller,
            scheduler=scheduler, faults=faults, recorder=recorder,
            # Continual feeding stops at the last native submission,
            # mirroring run_continual's default horizon.
            horizon=max(job.submit_time for job in trace),
            wake_interval=wake,
        )
    elif spec.continual:
        project = InterstitialProject(
            n_jobs=1, cpus_per_job=8, runtime_1ghz=900.0,
            user="harvest", group="harvest",
        )
        result, _ = run_continual(
            machine, trace, project,
            scheduler=scheduler, faults=faults, recorder=recorder,
            wake_interval=wake,
        )
    else:
        result = run_native(
            machine, trace,
            scheduler=scheduler, faults=faults, recorder=recorder,
            wake_interval=wake,
        )
    return result, recorder


def _comparable(fingerprint: tuple) -> tuple:
    """Physics fingerprint minus the maintenance counters."""
    *rest, counters = fingerprint
    return (
        *rest,
        {k: v for k, v in counters.items() if k not in MAINTENANCE_COUNTERS},
    )


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_incremental_matches_reference(seed: int) -> None:
    spec = Spec(seed)
    inc_result, inc_rec = _run(spec, QueueScheduler)
    ref_result, ref_rec = _run(spec, ReferenceQueueScheduler)
    assert inc_rec.to_jsonl() == ref_rec.to_jsonl()
    assert _comparable(_fingerprint(inc_result)) == _comparable(
        _fingerprint(ref_result)
    )
    # Start decisions in particular: identical out-of-order starts.
    assert (
        inc_result.counters.backfill_starts
        == ref_result.counters.backfill_starts
    )


def test_sweep_covers_the_config_space() -> None:
    """The 30 seeds exercise every value of every config dimension."""
    specs = [Spec(seed) for seed in SEEDS]
    assert {spec.policy_cls for spec in specs} == set(POLICIES)
    assert {spec.backfill for spec in specs} == set(BACKFILLS)
    assert {spec.with_timeofday for spec in specs} == {False, True}
    assert {spec.with_predictor for spec in specs} == {False, True}
    assert {spec.with_faults for spec in specs} == {False, True}
    assert {spec.continual for spec in specs} == {False, True}
    assert {spec.with_wake for spec in specs} == {False, True}
    assert {spec.with_elastic for spec in specs} == {False, True}


# ----------------------------------------------------------------------
# Event-queue implementations
# ----------------------------------------------------------------------
def _engine_run(event_queue: str) -> Tuple[SimResult, MemoryRecorder]:
    machine = Machine(name="QueueBox", cpus=64, clock_ghz=1.0)
    trace = random_native_trace(np.random.default_rng(42), machine, n_jobs=40)
    for i, job in enumerate(trace):
        job.job_id = i + 1
    recorder = MemoryRecorder()
    engine = Engine(
        machine=machine,
        scheduler=QueueScheduler(
            policy=UserFairSharePolicy(),
            backfill=BackfillMode.CONSERVATIVE,
        ),
        trace=[job.copy_unscheduled() for job in trace],
        faults=FaultModel(mtbf=8.0e4, mttr=1800.0, cpus_per_node=4, seed=42),
        config=SimConfig(event_queue=event_queue),
        recorder=recorder,
    )
    return engine.run(), recorder


def test_calendar_event_queue_byte_identical_to_heap() -> None:
    """Both event-queue structures implement the same (time, kind, seq)
    total order, so the whole run must be byte-identical."""
    heap_result, heap_rec = _engine_run("heap")
    cal_result, cal_rec = _engine_run("calendar")
    assert cal_rec.to_jsonl() == heap_rec.to_jsonl()
    assert _fingerprint(cal_result) == _fingerprint(heap_result)


# ----------------------------------------------------------------------
# The machinery under test is actually exercised
# ----------------------------------------------------------------------
def test_pass_skips_and_rekeys_are_exercised() -> None:
    """A saturated machine with periodic wakes must skip the no-start
    wake passes outright, and FCFS (which never changes priorities)
    must re-key the order exactly once."""
    machine = Machine(name="SkipBox", cpus=16, clock_ghz=1.0)
    trace = [make_job(cpus=16, runtime=10_000.0, submit=0.0)]
    trace += [
        make_job(cpus=16, runtime=100.0, submit=1.0) for _ in range(5)
    ]
    for i, job in enumerate(trace):
        job.job_id = i + 1
    engine = Engine(
        machine=machine,
        scheduler=QueueScheduler(policy=FcfsPolicy()),
        trace=trace,
        config=SimConfig(wake_interval=500.0),
    )
    result = engine.run()
    assert result.counters.pass_skips > 0
    assert result.counters.priority_rekeys == 1
    assert (
        result.counters.scheduling_passes
        > result.counters.pass_skips
        + result.counters.priority_rekeys
    )
