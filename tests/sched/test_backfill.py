"""Tests for the EASY and conservative backfill planners."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.backfill import select_conservative, select_easy, shadow_of

from tests.conftest import make_job


def est(job):
    return job.estimate


class TestShadow:
    def test_shadow_accumulates_releases(self):
        # Need 10; free 2; releases (t=50, 4), (t=80, 6).
        shadow, extra = shadow_of(10, 2.0, [(80.0, 6.0), (50.0, 4.0)])
        assert shadow == 80.0
        assert extra == 2.0

    def test_shadow_immediate_surplus(self):
        shadow, extra = shadow_of(4, 2.0, [(50.0, 10.0)])
        assert shadow == 50.0
        assert extra == 8.0

    def test_shadow_unreachable(self):
        shadow, extra = shadow_of(100, 2.0, [(50.0, 4.0)])
        assert math.isinf(shadow)
        assert extra == 0.0


class TestSelectEasy:
    def test_starts_head_run(self):
        queue = [make_job(cpus=2), make_job(cpus=2), make_job(cpus=8)]
        starts = select_easy(0.0, queue, 4, [], est)
        assert starts == queue[:2]

    def test_backfills_short_job_under_shadow(self):
        blocked = make_job(cpus=8, runtime=50.0)
        short = make_job(cpus=2, runtime=10.0)
        # 4 free; 6 release at t=100 -> shadow 100.
        starts = select_easy(
            0.0, [blocked, short], 4, [(100.0, 6.0)], est
        )
        assert starts == [short]

    def test_rejects_backfill_past_shadow_without_extra(self):
        blocked = make_job(cpus=10, runtime=50.0)
        long_job = make_job(cpus=2, runtime=500.0)
        # free 4, release (100, 6): shadow=100, extra=0.
        starts = select_easy(
            0.0, [blocked, long_job], 4, [(100.0, 6.0)], est
        )
        assert starts == []

    def test_allows_long_backfill_on_extra_nodes(self):
        blocked = make_job(cpus=6, runtime=50.0)
        long_job = make_job(cpus=2, runtime=500.0)
        # free 4, release (100, 6): shadow=100, extra=(4+6)-6=4 >= 2.
        starts = select_easy(
            0.0, [blocked, long_job], 4, [(100.0, 6.0)], est
        )
        assert starts == [long_job]

    def test_extra_nodes_deplete(self):
        blocked = make_job(cpus=8, runtime=50.0)
        long_a = make_job(cpus=2, runtime=500.0)
        long_b = make_job(cpus=2, runtime=500.0)
        long_c = make_job(cpus=2, runtime=500.0)
        # free 6 + release 6 = 12 at shadow; extra = 12 - 8 = 4:
        # only two of the three 2-wide long jobs fit on it.
        starts = select_easy(
            0.0,
            [blocked, long_a, long_b, long_c],
            6,
            [(100.0, 6.0)],
            est,
        )
        assert starts == [long_a, long_b]

    def test_no_backfill_flag(self):
        blocked = make_job(cpus=8, runtime=50.0)
        short = make_job(cpus=2, runtime=10.0)
        starts = select_easy(
            0.0, [blocked, short], 4, [(100.0, 6.0)], est, backfill=False
        )
        assert starts == []

    def test_unreachable_head_blocks_shadow_backfill(self):
        blocked = make_job(cpus=100, runtime=50.0)
        short = make_job(cpus=2, runtime=10.0)
        starts = select_easy(0.0, [blocked, short], 4, [], est)
        assert starts == []

    def test_empty_queue(self):
        assert select_easy(0.0, [], 10, [], est) == []


class TestSelectConservative:
    def test_starts_what_fits_now(self):
        a = make_job(cpus=4, runtime=10.0)
        b = make_job(cpus=4, runtime=10.0)
        starts = select_conservative(0.0, [a, b], 8, [], est)
        assert starts == [a, b]

    def test_backfill_cannot_delay_any_reservation(self):
        # 8 CPUs. Running: 6 CPUs until t=100. Queue: wide(8) then two
        # narrows. narrow_short fits in the hole before wide's
        # reservation at 100; narrow_long (runtime 200) would push
        # wide's start and must not run.
        wide = make_job(cpus=8, runtime=50.0)
        narrow_long = make_job(cpus=2, runtime=200.0)
        narrow_short = make_job(cpus=2, runtime=100.0)
        starts = select_conservative(
            0.0,
            [wide, narrow_long, narrow_short],
            8,
            [(100.0, 6.0)],
            est,
        )
        assert starts == [narrow_short]

    def test_more_restrictive_than_easy(self):
        """A job EASY admits on extra nodes is rejected when it would
        collide with a *second* queued job's reservation."""
        blocked = make_job(cpus=6, runtime=10.0)
        second = make_job(cpus=8, runtime=10.0)
        long_narrow = make_job(cpus=2, runtime=500.0)
        releases = [(100.0, 6.0)]
        easy = select_easy(
            0.0, [blocked, second, long_narrow], 4, releases, est
        )
        conservative = select_conservative(
            0.0, [blocked, second, long_narrow], 8, releases, est
        )
        assert long_narrow in easy
        assert long_narrow not in conservative

    def test_respects_outage_capacity(self):
        job = make_job(cpus=8, runtime=10.0)
        # Only 4 in service.
        starts = select_conservative(0.0, [job], 4, [], est)
        assert starts == []


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_property_selected_sets_fit(data):
    """Both planners return sets that simultaneously fit in free CPUs."""
    free = data.draw(st.integers(0, 32))
    queue = [
        make_job(
            cpus=data.draw(st.integers(1, 16)),
            runtime=data.draw(st.floats(1.0, 1000.0)),
        )
        for _ in range(data.draw(st.integers(0, 10)))
    ]
    releases = [
        (data.draw(st.floats(1.0, 500.0)), data.draw(st.integers(1, 8)))
        for _ in range(data.draw(st.integers(0, 5)))
    ]
    busy = sum(c for _, c in releases)
    easy = select_easy(0.0, queue, free, releases, est)
    assert sum(j.cpus for j in easy) <= free
    conservative = select_conservative(
        0.0, queue, free + busy, releases, est
    )
    assert sum(j.cpus for j in conservative) <= free


def test_conservative_does_not_start_into_overdue_claims():
    """A running job past its estimated finish (predictor underestimate)
    still occupies its CPUs: the planning profile sees free capacity at
    ``t``, but the start must be gated on the instantaneous free count."""
    job = make_job(cpus=8, runtime=50.0)
    # The machine's 8 CPUs are held by a job whose estimated finish
    # (90.0) already passed; nothing is physically free at t=100.
    starts = select_conservative(100.0, [job], 8, [(90.0, 8.0)], est)
    assert starts == []
    # Once the claim is live again (finish in the future), the queued
    # job is planned behind it, not started.
    starts = select_conservative(100.0, [job], 8, [(150.0, 8.0)], est)
    assert starts == []
