"""Tests for decayed-usage fair-share accounting."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sched.fairshare import FairShareTracker


class TestValidation:
    def test_rejects_nonpositive_half_life(self):
        with pytest.raises(ConfigurationError):
            FairShareTracker(half_life_s=0.0)

    def test_rejects_negative_shares(self):
        with pytest.raises(ConfigurationError):
            FairShareTracker(shares={"a": -1.0})

    def test_rejects_negative_charge(self):
        tracker = FairShareTracker()
        with pytest.raises(ConfigurationError):
            tracker.charge("a", -5.0, 0.0)


class TestUsage:
    def test_charge_and_read(self):
        tracker = FairShareTracker()
        tracker.charge("alice", 100.0, 0.0)
        assert tracker.usage("alice", 0.0) == 100.0

    def test_unknown_entity_zero(self):
        assert FairShareTracker().usage("ghost", 0.0) == 0.0

    def test_decay_half_life(self):
        tracker = FairShareTracker(half_life_s=100.0)
        tracker.charge("alice", 80.0, 0.0)
        assert tracker.usage("alice", 100.0) == pytest.approx(40.0)
        assert tracker.usage("alice", 200.0) == pytest.approx(20.0)

    def test_charges_accumulate_with_decay(self):
        tracker = FairShareTracker(half_life_s=100.0)
        tracker.charge("alice", 80.0, 0.0)
        tracker.charge("alice", 10.0, 100.0)
        assert tracker.usage("alice", 100.0) == pytest.approx(50.0)

    def test_usage_share(self):
        tracker = FairShareTracker()
        tracker.charge("a", 30.0, 0.0)
        tracker.charge("b", 10.0, 0.0)
        assert tracker.usage_share("a", 0.0) == pytest.approx(0.75)
        assert tracker.usage_share("b", 0.0) == pytest.approx(0.25)

    def test_usage_share_no_usage(self):
        assert FairShareTracker().usage_share("a", 0.0) == 0.0


class TestTargetShares:
    def test_equal_shares_default(self):
        tracker = FairShareTracker()
        tracker.charge("a", 1.0, 0.0)
        tracker.charge("b", 1.0, 0.0)
        assert tracker.target_share("a") == pytest.approx(0.5)

    def test_explicit_shares(self):
        tracker = FairShareTracker(shares={"big": 3.0, "small": 1.0})
        assert tracker.target_share("big") == pytest.approx(0.75)
        assert tracker.target_share("small") == pytest.approx(0.25)

    def test_newcomer_share(self):
        tracker = FairShareTracker()
        tracker.charge("a", 1.0, 0.0)
        # A never-seen entity counts as one share against the population.
        assert tracker.target_share("new") == pytest.approx(0.5)


class TestFactor:
    def test_underserved_positive(self):
        tracker = FairShareTracker()
        tracker.charge("hog", 100.0, 0.0)
        tracker.charge("idle", 0.0, 0.0)
        assert tracker.factor("idle", 0.0) > 0
        assert tracker.factor("hog", 0.0) < 0

    def test_factor_bounded(self):
        tracker = FairShareTracker()
        tracker.charge("a", 1e9, 0.0)
        tracker.charge("b", 0.0, 0.0)
        assert -1.0 <= tracker.factor("a", 0.0) <= 1.0
        assert -1.0 <= tracker.factor("b", 0.0) <= 1.0

    def test_decay_privileges_recent_usage(self):
        # Equal lifetime usage, but hog's is old: decay makes the
        # recent user look like the over-consumer.
        tracker = FairShareTracker(half_life_s=100.0)
        tracker.charge("hog", 1000.0, 0.0)
        tracker.charge("recent", 1000.0, 500.0)
        assert tracker.usage_share("hog", 500.0) < 0.5
        assert tracker.factor("hog", 500.0) > tracker.factor("recent", 500.0)


@given(
    charges=st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),
            st.floats(0.0, 1e6),
            st.floats(0.0, 1e6),
        ),
        min_size=1,
        max_size=20,
    ),
    probe=st.floats(0.0, 2e6),
)
def test_property_shares_sum_to_one(charges, probe):
    """Usage shares over charged entities always sum to 1 (or all 0)."""
    tracker = FairShareTracker()
    t = 0.0
    for entity, amount, dt in sorted(charges, key=lambda c: c[2]):
        t = dt
        tracker.charge(entity, amount, t)
    t_read = max(t, probe)
    total_share = sum(
        tracker.usage_share(e, t_read) for e in tracker.entities()
    )
    assert total_share == pytest.approx(1.0) or total_share == 0.0


@given(amount=st.floats(0.0, 1e9), dt=st.floats(0.0, 1e7))
def test_property_decay_monotone(amount, dt):
    tracker = FairShareTracker(half_life_s=3600.0)
    tracker.charge("a", amount, 0.0)
    assert tracker.usage("a", dt) <= amount + 1e-9
