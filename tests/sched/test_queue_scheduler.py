"""Tests for the composite QueueScheduler."""

import math

import pytest

from repro.sched import (
    PerUserRuntimePredictor,
    QueueScheduler,
    TimeOfDayPolicy,
)
from repro.sched.priority import FcfsPolicy, UserFairSharePolicy
from repro.sched.queue_scheduler import BackfillMode
from repro.sim.state import ClusterState
from repro.units import HOUR

from tests.conftest import make_job


@pytest.fixture
def cluster(tiny_machine):
    return ClusterState(tiny_machine)


def scheduler(**kwargs) -> QueueScheduler:
    kwargs.setdefault("policy", FcfsPolicy())
    return QueueScheduler(**kwargs)


class TestQueueManagement:
    def test_submit_and_length(self, cluster):
        s = scheduler()
        s.submit(make_job(), 0.0)
        assert s.queue_length == 1
        assert len(s.pending_jobs()) == 1

    def test_schedule_removes_started(self, cluster):
        s = scheduler()
        job = make_job(cpus=4)
        s.submit(job, 0.0)
        starts = s.schedule(0.0, cluster)
        assert starts == [job]
        assert s.queue_length == 0

    def test_schedule_empty_queue(self, cluster):
        assert scheduler().schedule(0.0, cluster) == []

    def test_blocked_jobs_stay_queued(self, cluster):
        s = scheduler()
        cluster.start(make_job(cpus=8, runtime=100.0), 0.0)
        job = make_job(cpus=4)
        s.submit(job, 0.0)
        assert s.schedule(0.0, cluster) == []
        assert s.queue_length == 1


class TestHeadStartEstimate:
    def test_empty_queue_infinite(self, cluster):
        assert math.isinf(scheduler().head_start_estimate(0.0, cluster))

    def test_fits_now(self, cluster):
        s = scheduler()
        s.submit(make_job(cpus=4), 0.0)
        assert s.head_start_estimate(5.0, cluster) == 5.0

    def test_waits_for_estimated_release(self, cluster):
        s = scheduler()
        running = make_job(cpus=8, runtime=10.0, estimate=300.0)
        cluster.start(running, 0.0)
        s.submit(make_job(cpus=4), 1.0)
        # Uses the estimate (300), not the actual runtime (10).
        assert s.head_start_estimate(1.0, cluster) == 300.0

    def test_head_is_top_priority_job(self, cluster):
        s = scheduler()
        late_narrow = make_job(cpus=1, submit=10.0)
        early_wide = make_job(cpus=8, submit=1.0)
        s.submit(late_narrow, 10.0)
        s.submit(early_wide, 1.0)
        cluster.start(make_job(cpus=8, runtime=50.0, estimate=200.0), 0.0)
        # FCFS head is the early wide job.
        assert s.head_job(10.0) is early_wide
        assert s.head_start_estimate(10.0, cluster) == 200.0

    def test_timeofday_delays_head_estimate(self, cluster):
        tod = TimeOfDayPolicy(max_day_cpus=4)
        s = scheduler(timeofday=tod)
        wide = make_job(cpus=8, submit=0.0)
        s.submit(wide, 0.0)
        noon = 12 * HOUR
        estimate = s.head_start_estimate(noon, cluster)
        assert estimate == 19 * HOUR


class TestTimeOfDayIntegration:
    def test_wide_job_held_during_day(self, cluster):
        s = scheduler(timeofday=TimeOfDayPolicy(max_day_cpus=4))
        wide = make_job(cpus=8)
        s.submit(wide, 0.0)
        assert s.schedule(12 * HOUR, cluster) == []
        assert s.schedule(20 * HOUR, cluster) == [wide]

    def test_narrow_jobs_flow_past_held_wide(self, cluster):
        s = scheduler(timeofday=TimeOfDayPolicy(max_day_cpus=4))
        wide = make_job(cpus=8, submit=0.0)
        narrow = make_job(cpus=2, submit=1.0)
        s.submit(wide, 0.0)
        s.submit(narrow, 1.0)
        starts = s.schedule(12 * HOUR, cluster)
        assert starts == [narrow]


class TestPredictorIntegration:
    def test_predictor_shrinks_head_estimate(self, cluster):
        predictor = PerUserRuntimePredictor()
        done = make_job(runtime=10.0, estimate=1000.0, user="alice")
        s = scheduler(predictor=predictor)
        s.on_finish(done, 0.0)
        running = make_job(
            cpus=8, runtime=10.0, estimate=1000.0, user="alice"
        )
        cluster.start(running, 0.0)
        s.submit(make_job(cpus=4, user="bob"), 1.0)
        estimate = s.head_start_estimate(1.0, cluster)
        # Corrected: alice's jobs take ~1% of estimate -> release ~10 s.
        assert estimate < 100.0


class TestFairShareIntegration:
    def test_underserved_user_jumps_queue(self, cluster):
        policy = UserFairSharePolicy(weight=5.0)
        s = QueueScheduler(policy=policy, backfill=BackfillMode.EASY)
        hog_done = make_job(cpus=8, runtime=50_000.0, user="hog")
        s.on_finish(hog_done, 0.0)
        hog_next = make_job(cpus=8, user="hog", submit=0.0)
        fresh = make_job(cpus=8, user="fresh", submit=1.0)
        s.submit(hog_next, 0.0)
        s.submit(fresh, 1.0)
        starts = s.schedule(1.0, cluster)
        # Only one 8-wide job fits; fair share picks the fresh user
        # despite the hog's earlier submission.
        assert starts == [fresh]


class TestConservativeIntegration:
    def test_conservative_mode_selects(self, cluster):
        s = scheduler(backfill=BackfillMode.CONSERVATIVE)
        a = make_job(cpus=4)
        b = make_job(cpus=4)
        s.submit(a, 0.0)
        s.submit(b, 0.0)
        assert s.schedule(0.0, cluster) == [a, b]
