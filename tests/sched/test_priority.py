"""Tests for priority policies."""

import pytest

from repro.sched.priority import (
    FcfsPolicy,
    HierarchicalFairSharePolicy,
    UserFairSharePolicy,
    UserGroupFairSharePolicy,
)

from tests.conftest import make_job


def order(policy, jobs, t):
    return sorted(jobs, key=lambda j: policy.sort_key(j, t))


class TestFcfs:
    def test_orders_by_submit_time(self):
        policy = FcfsPolicy()
        a = make_job(submit=10.0)
        b = make_job(submit=5.0)
        assert order(policy, [a, b], 100.0) == [b, a]

    def test_tie_breaks_by_job_id(self):
        policy = FcfsPolicy()
        a = make_job(submit=5.0)
        b = make_job(submit=5.0)
        first, second = order(policy, [b, a], 10.0)
        assert first.job_id < second.job_id

    def test_score_grows_with_wait(self):
        policy = FcfsPolicy()
        job = make_job(submit=0.0)
        assert policy.score(job, 86400.0) > policy.score(job, 0.0)


class TestUserFairShare:
    def test_idle_user_beats_hog(self):
        policy = UserFairSharePolicy()
        hog_done = make_job(cpus=8, runtime=10_000.0, user="hog")
        policy.on_finish(hog_done, 100.0)
        hog_job = make_job(user="hog", submit=0.0)
        idle_job = make_job(user="idle", submit=0.0)
        assert order(policy, [hog_job, idle_job], 100.0)[0] is idle_job

    def test_wait_eventually_dominates(self):
        # Starvation freedom: enough waiting overcomes any usage deficit.
        policy = UserFairSharePolicy(weight=2.0)
        policy.on_finish(make_job(cpus=8, runtime=1e6, user="hog"), 0.0)
        hog_old = make_job(user="hog", submit=0.0)
        idle_new = make_job(user="idle", submit=30 * 86400.0)
        assert (
            order(policy, [hog_old, idle_new], 30 * 86400.0)[0] is hog_old
        )

    def test_rejects_negative_weight(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            UserFairSharePolicy(weight=-1.0)


class TestHierarchical:
    def test_group_level_dominates(self):
        policy = HierarchicalFairSharePolicy(
            group_weight=2.0, user_weight=0.5
        )
        # Group g0 burned lots of cycles via user a.
        policy.on_finish(
            make_job(cpus=8, runtime=10_000.0, user="a", group="g0"), 0.0
        )
        # A *different* user of the hog group still loses to a user of
        # the idle group.
        same_group = make_job(user="b", group="g0", submit=0.0)
        other_group = make_job(user="c", group="g1", submit=0.0)
        assert order(policy, [same_group, other_group], 1.0)[0] is other_group

    def test_within_group_user_factor(self):
        policy = HierarchicalFairSharePolicy()
        policy.on_finish(
            make_job(cpus=8, runtime=10_000.0, user="a", group="g0"), 0.0
        )
        policy.on_finish(
            make_job(cpus=1, runtime=10.0, user="b", group="g0"), 0.0
        )
        a_job = make_job(user="a", group="g0", submit=0.0)
        b_job = make_job(user="b", group="g0", submit=0.0)
        assert order(policy, [a_job, b_job], 1.0)[0] is b_job

    def test_explicit_group_shares(self):
        policy = HierarchicalFairSharePolicy(
            group_shares={"big": 9.0, "small": 1.0}
        )
        # Equal usage; "big" deserves far more.
        policy.on_finish(
            make_job(cpus=1, runtime=100.0, user="x", group="big"), 0.0
        )
        policy.on_finish(
            make_job(cpus=1, runtime=100.0, user="y", group="small"), 0.0
        )
        big = make_job(user="x", group="big", submit=0.0)
        small = make_job(user="y", group="small", submit=0.0)
        assert order(policy, [big, small], 1.0)[0] is big


class TestUserGroup:
    def test_both_levels_charge(self):
        policy = UserGroupFairSharePolicy()
        policy.on_finish(
            make_job(cpus=8, runtime=1000.0, user="a", group="g0"), 0.0
        )
        assert policy.users.usage("a", 0.0) == 8000.0
        assert policy.groups.usage("g0", 0.0) == 8000.0

    def test_fresh_user_in_hog_group_middle_priority(self):
        policy = UserGroupFairSharePolicy()
        policy.on_finish(
            make_job(cpus=8, runtime=10_000.0, user="a", group="g0"), 0.0
        )
        hog_user = make_job(user="a", group="g0", submit=0.0)
        fresh_same_group = make_job(user="b", group="g0", submit=0.0)
        fresh_other = make_job(user="c", group="g1", submit=0.0)
        ranking = order(
            policy, [hog_user, fresh_same_group, fresh_other], 1.0
        )
        assert ranking == [fresh_other, fresh_same_group, hog_user]


class TestDynamicReprioritization:
    def test_priorities_shift_with_new_usage(self):
        """The cascade mechanism: a queued job's rank can drop when its
        owner's group finishes more work mid-wait."""
        policy = HierarchicalFairSharePolicy()
        waiting = make_job(user="a", group="g0", submit=0.0)
        rival = make_job(user="b", group="g1", submit=50.0)
        assert order(policy, [waiting, rival], 60.0)[0] is waiting
        # Group g0 suddenly burns a lot of cycles.
        policy.on_finish(
            make_job(cpus=8, runtime=50_000.0, user="a2", group="g0"), 61.0
        )
        assert order(policy, [waiting, rival], 62.0)[0] is rival
