"""Tests for the per-machine scheduler presets."""

from repro.machines import blue_mountain, blue_pacific, ross, Machine
from repro.sched import (
    dpcs_scheduler,
    fcfs_scheduler,
    lsf_scheduler,
    pbs_scheduler,
    scheduler_for,
)
from repro.sched.priority import (
    FcfsPolicy,
    HierarchicalFairSharePolicy,
    UserFairSharePolicy,
    UserGroupFairSharePolicy,
)
from repro.sched.queue_scheduler import BackfillMode


class TestPresetComposition:
    def test_pbs_equal_share_conservative(self):
        s = pbs_scheduler()
        assert isinstance(s.policy, UserFairSharePolicy)
        assert s.backfill is BackfillMode.CONSERVATIVE
        assert s.timeofday is None

    def test_lsf_hierarchical_easy(self):
        s = lsf_scheduler()
        assert isinstance(s.policy, HierarchicalFairSharePolicy)
        assert s.backfill is BackfillMode.EASY

    def test_dpcs_usergroup_timeofday(self):
        machine = blue_pacific()
        s = dpcs_scheduler(machine)
        assert isinstance(s.policy, UserGroupFairSharePolicy)
        assert s.backfill is BackfillMode.EASY
        assert s.timeofday is not None
        assert s.timeofday.max_day_cpus == machine.cpus // 4

    def test_fcfs_baseline(self):
        s = fcfs_scheduler()
        assert isinstance(s.policy, FcfsPolicy)


class TestSchedulerFor:
    def test_matches_table1_queue_algorithms(self):
        assert isinstance(
            scheduler_for(ross()).policy, UserFairSharePolicy
        )
        assert isinstance(
            scheduler_for(blue_mountain()).policy,
            HierarchicalFairSharePolicy,
        )
        assert isinstance(
            scheduler_for(blue_pacific()).policy,
            UserGroupFairSharePolicy,
        )

    def test_unknown_system_falls_back_to_fcfs(self):
        odd = Machine(name="X", cpus=4, clock_ghz=1.0,
                      queue_algorithm="SLURM")
        assert isinstance(scheduler_for(odd).policy, FcfsPolicy)

    def test_fresh_instances(self):
        # Scheduler instances hold queue state and must not be shared.
        assert scheduler_for(ross()) is not scheduler_for(ross())
