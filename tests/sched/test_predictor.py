"""Tests for the per-user runtime predictor."""

import pytest

from repro.errors import ConfigurationError
from repro.sched.predictor import PerUserRuntimePredictor

from tests.conftest import make_job


class TestValidation:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            PerUserRuntimePredictor(alpha=0.0)
        with pytest.raises(ConfigurationError):
            PerUserRuntimePredictor(alpha=1.5)

    def test_rejects_bad_floor(self):
        with pytest.raises(ConfigurationError):
            PerUserRuntimePredictor(floor_ratio=0.0)


class TestLearning:
    def test_unknown_user_passthrough(self):
        predictor = PerUserRuntimePredictor()
        job = make_job(runtime=100.0, estimate=1000.0)
        assert predictor.estimate(job) == 1000.0

    def test_learns_overestimation_ratio(self):
        predictor = PerUserRuntimePredictor()
        done = make_job(runtime=100.0, estimate=1000.0, user="alice")
        done.start_time = 0.0
        predictor.observe(done)
        assert predictor.ratio("alice") == pytest.approx(0.1)
        queued = make_job(runtime=50.0, estimate=1000.0, user="alice")
        assert predictor.estimate(queued) == pytest.approx(100.0)

    def test_ewma_blends(self):
        predictor = PerUserRuntimePredictor(alpha=0.5)
        first = make_job(runtime=100.0, estimate=1000.0, user="a")
        second = make_job(runtime=500.0, estimate=1000.0, user="a")
        predictor.observe(first)
        predictor.observe(second)
        assert predictor.ratio("a") == pytest.approx(0.5 * 0.5 + 0.5 * 0.1)

    def test_floor_clamps_instant_jobs(self):
        predictor = PerUserRuntimePredictor(floor_ratio=0.05)
        flash = make_job(runtime=0.0, estimate=1000.0, user="a")
        predictor.observe(flash)
        assert predictor.ratio("a") == 0.05

    def test_never_exceeds_user_estimate(self):
        predictor = PerUserRuntimePredictor()
        honest = make_job(runtime=100.0, estimate=100.0, user="a")
        predictor.observe(honest)
        queued = make_job(runtime=50.0, estimate=80.0, user="a")
        assert predictor.estimate(queued) <= 80.0

    def test_ignores_zero_estimate_jobs(self):
        predictor = PerUserRuntimePredictor()
        weird = make_job(runtime=0.0, estimate=0.0, user="a")
        predictor.observe(weird)
        assert predictor.ratio("a") == 1.0

    def test_per_user_isolation(self):
        predictor = PerUserRuntimePredictor()
        done = make_job(runtime=10.0, estimate=1000.0, user="alice")
        predictor.observe(done)
        assert predictor.ratio("bob") == 1.0
