"""Tests for the time-of-day dispatch policy."""

import pytest

from repro.errors import ConfigurationError
from repro.sched.timeofday import TimeOfDayPolicy
from repro.units import DAY, HOUR

from tests.conftest import make_job


@pytest.fixture
def policy():
    return TimeOfDayPolicy(max_day_cpus=100)


class TestClock:
    def test_hour_of_day(self, policy):
        assert policy.hour_of_day(0.0) == 0.0
        assert policy.hour_of_day(13 * HOUR) == 13.0
        assert policy.hour_of_day(DAY + 2 * HOUR) == 2.0

    def test_day_of_week_starts_monday(self, policy):
        assert policy.day_of_week(0.0) == 0
        assert policy.day_of_week(5 * DAY) == 5  # Saturday
        assert policy.day_of_week(7 * DAY) == 0  # next Monday

    def test_is_daytime_weekday(self, policy):
        monday_noon = 12 * HOUR
        monday_night = 22 * HOUR
        assert policy.is_daytime(monday_noon)
        assert not policy.is_daytime(monday_night)

    def test_weekend_is_free(self, policy):
        saturday_noon = 5 * DAY + 12 * HOUR
        assert not policy.is_daytime(saturday_noon)

    def test_weekend_constrained_when_configured(self):
        policy = TimeOfDayPolicy(max_day_cpus=100, weekends_free=False)
        saturday_noon = 5 * DAY + 12 * HOUR
        assert policy.is_daytime(saturday_noon)


class TestEligibility:
    def test_narrow_jobs_always_eligible(self, policy):
        job = make_job(cpus=100)
        assert policy.eligible(job, 12 * HOUR)

    def test_wide_jobs_held_during_day(self, policy):
        job = make_job(cpus=101)
        assert not policy.eligible(job, 12 * HOUR)
        assert policy.eligible(job, 20 * HOUR)

    def test_wide_jobs_free_on_weekend(self, policy):
        job = make_job(cpus=500)
        assert policy.eligible(job, 5 * DAY + 12 * HOUR)


class TestNextEligible:
    def test_already_eligible(self, policy):
        job = make_job(cpus=50)
        assert policy.next_eligible_time(job, 12 * HOUR) == 12 * HOUR

    def test_wide_job_waits_until_evening(self, policy):
        job = make_job(cpus=500)
        t = 12 * HOUR  # Monday noon
        assert policy.next_eligible_time(job, t) == 19 * HOUR

    def test_wide_job_morning_submission(self, policy):
        job = make_job(cpus=500)
        t = 8 * HOUR
        assert policy.next_eligible_time(job, t) == 19 * HOUR


class TestValidation:
    def test_rejects_negative_threshold(self):
        with pytest.raises(ConfigurationError):
            TimeOfDayPolicy(max_day_cpus=-1)

    def test_rejects_reversed_window(self):
        with pytest.raises(ConfigurationError):
            TimeOfDayPolicy(max_day_cpus=1, day_start_hour=20.0,
                            day_end_hour=8.0)

    def test_rejects_out_of_range_hours(self):
        with pytest.raises(ConfigurationError):
            TimeOfDayPolicy(max_day_cpus=1, day_start_hour=-1.0)
        with pytest.raises(ConfigurationError):
            TimeOfDayPolicy(max_day_cpus=1, day_end_hour=24.0,
                            day_start_hour=25.0)
