"""Tests for the Machine model."""

import pytest

from repro.errors import ValidationError
from repro.machines import Machine, ProcessorGroup


class TestProcessorGroup:
    def test_capacity(self):
        group = ProcessorGroup(100, 2.0)
        assert group.tera_cycles_per_s == pytest.approx(0.2)

    def test_rejects_zero_count(self):
        with pytest.raises(ValidationError):
            ProcessorGroup(0, 1.0)

    def test_rejects_zero_clock(self):
        with pytest.raises(ValidationError):
            ProcessorGroup(1, 0.0)


class TestMachine:
    def test_flat_construction(self):
        m = Machine(name="M", cpus=128, clock_ghz=1.5)
        assert m.cpus == 128
        assert m.clock_ghz == 1.5
        assert len(m.groups) == 1

    def test_heterogeneous_effective_clock(self):
        # Ross: 256 @ 533 MHz + 1180 @ 600 MHz -> 0.588 GHz effective.
        m = Machine(
            name="Ross-like",
            groups=(ProcessorGroup(256, 0.533), ProcessorGroup(1180, 0.600)),
        )
        assert m.cpus == 1436
        assert m.clock_ghz == pytest.approx(0.588, abs=0.001)

    def test_capacity_preserved_by_heterogeneity(self):
        groups = (ProcessorGroup(256, 0.533), ProcessorGroup(1180, 0.600))
        m = Machine(name="R", groups=groups)
        assert m.tera_cycles_per_s == pytest.approx(
            sum(g.tera_cycles_per_s for g in groups)
        )

    def test_requires_some_spec(self):
        with pytest.raises(ValidationError):
            Machine(name="empty")

    def test_rejects_inconsistent_cpus(self):
        with pytest.raises(ValidationError):
            Machine(name="bad", cpus=5, groups=(ProcessorGroup(4, 1.0),))

    def test_rejects_empty_groups(self):
        with pytest.raises(ValidationError):
            Machine(name="bad", groups=())

    def test_fits(self):
        m = Machine(name="M", cpus=16, clock_ghz=1.0)
        assert m.fits(16)
        assert m.fits(1)
        assert not m.fits(17)
        assert not m.fits(0)

    def test_scaled_shrinks_cpus_not_clock(self):
        m = Machine(name="M", cpus=1000, clock_ghz=0.5)
        half = m.scaled(0.5)
        assert half.cpus == 500
        assert half.clock_ghz == 0.5

    def test_scaled_keeps_group_structure(self):
        m = Machine(
            name="R",
            groups=(ProcessorGroup(200, 0.5), ProcessorGroup(1000, 0.6)),
        )
        scaled = m.scaled(0.1)
        assert len(scaled.groups) == 2
        assert scaled.groups[0].count == 20
        assert scaled.groups[1].count == 100

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            Machine(name="M", cpus=4, clock_ghz=1.0).scaled(0.0)
