"""Tests for the ASCI machine presets against Table 1."""

import pytest

from repro.machines import blue_mountain, blue_pacific, preset, preset_names, ross
from repro.machines.presets import targets


class TestTable1Values:
    def test_ross(self):
        m = ross()
        assert m.cpus == 1436
        assert m.clock_ghz == pytest.approx(0.588, abs=0.001)
        assert m.tera_cycles_per_s == pytest.approx(0.844, abs=0.002)
        assert m.queue_algorithm == "PBS"
        assert m.site == "Sandia"

    def test_ross_heterogeneous_inventory(self):
        m = ross()
        assert [(g.count, g.clock_ghz) for g in m.groups] == [
            (256, 0.533),
            (1180, 0.600),
        ]

    def test_blue_mountain(self):
        m = blue_mountain()
        assert m.cpus == 4662
        assert m.clock_ghz == 0.262
        assert m.tera_cycles_per_s == pytest.approx(1.221, abs=0.001)
        assert m.queue_algorithm == "LSF"

    def test_blue_pacific(self):
        m = blue_pacific()
        assert m.cpus == 926
        assert m.clock_ghz == 0.369
        assert m.tera_cycles_per_s == pytest.approx(0.342, abs=0.001)
        assert m.queue_algorithm == "DPCS"


class TestRegistry:
    def test_preset_names(self):
        assert set(preset_names()) == {
            "ross", "blue_mountain", "blue_pacific",
        }

    def test_preset_lookup(self):
        assert preset("ross").name == "Ross"

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            preset("asci_white")

    def test_unknown_targets(self):
        with pytest.raises(KeyError):
            targets("asci_white")


class TestWorkloadTargets:
    @pytest.mark.parametrize(
        "name,utilization,jobs,days",
        [
            ("ross", 0.631, 4423, 40.7),
            ("blue_mountain", 0.790, 7763, 84.2),
            ("blue_pacific", 0.907, 12761, 63.0),
        ],
    )
    def test_table1_targets(self, name, utilization, jobs, days):
        t = targets(name)
        assert t.utilization == utilization
        assert t.n_jobs == jobs
        assert t.duration_s == pytest.approx(days * 86400.0)

    def test_blue_mountain_medians_from_paper(self):
        # Paper §4.3.1: median estimate 6 h vs median actual 0.8 h.
        t = targets("blue_mountain")
        assert t.median_runtime_s == pytest.approx(0.8 * 3600)
        assert t.median_estimate_s == pytest.approx(6 * 3600)
