"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_known_experiments_registered(self):
        for name in ("table1", "table2", "fig5", "ablation-caps"):
            assert name in EXPERIMENTS

    def test_parser_accepts_experiment(self):
        args = build_parser().parse_args(["table1"])
        assert args.experiment == "table1"

    def test_parser_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_scale_option(self):
        args = build_parser().parse_args(["table1", "--scale", "quick"])
        assert args.scale == "quick"

    def test_jobs_option(self):
        args = build_parser().parse_args(["report", "--jobs", "4"])
        assert args.jobs == 4
        assert build_parser().parse_args(["report"]).jobs == 1

    def test_store_option(self, tmp_path):
        store = str(tmp_path / "runs")
        args = build_parser().parse_args(["table1", "--store", store])
        assert args.store == store
        assert build_parser().parse_args(["table1"]).store is None

    def test_trace_option(self):
        args = build_parser().parse_args(["table1", "--trace", "t.jsonl"])
        assert args.trace == "t.jsonl"
        assert build_parser().parse_args(["table1"]).trace is None

    def test_trace_rejected_with_store_and_report(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["table1", "--trace", "t.jsonl",
                  "--store", str(tmp_path / "runs")])
        with pytest.raises(SystemExit):
            main(["report", "--trace", "t.jsonl"])

    def test_profile_requires_target(self):
        with pytest.raises(SystemExit):
            main(["profile"])
        with pytest.raises(SystemExit):
            main(["table1", "table2"])  # target only valid with profile

    def test_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "4",
             "--bulk-cap", "0.75", "--max-queue", "16"]
        )
        assert args.experiment == "serve"
        assert args.port == 0
        assert args.workers == 4
        assert args.bulk_cap == pytest.approx(0.75)
        assert args.max_queue == 16

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.workers == 2
        assert args.bulk_cap == pytest.approx(0.9)

    def test_serve_rejects_trace_and_jobs(self):
        with pytest.raises(SystemExit):
            main(["serve", "--trace", "t.jsonl"])
        with pytest.raises(SystemExit):
            main(["serve", "--jobs", "2"])


class TestMain:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "ablation-width" in out

    def test_run_one_experiment(self, capsys):
        assert main(["table1", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Blue Mt." in out

    def test_store_dir_populated(self, capsys, tmp_path):
        store = tmp_path / "runs"
        code = main(
            ["table1", "--scale", "quick", "--store", str(store)]
        )
        assert code == 0
        assert any(p.suffix == ".pkl" for p in store.iterdir())

    def test_trace_writes_jsonl(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        assert main(
            ["table1", "--scale", "quick", "--trace", str(trace)]
        ) == 0
        lines = trace.read_text().splitlines()
        assert lines, "trace file must not be empty"
        first = json.loads(lines[0])
        assert first["ev"] == "run_start"
        assert {"t", "ev"} <= set(first)
        err = capsys.readouterr().err
        assert f"{len(lines)} trace records" in err

    def test_profile_prints_phases_and_counters(self, capsys):
        assert main(["profile", "table1", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "profile: table1" in out
        assert "event_dispatch" in out
        assert "scheduling_pass" in out
        assert "scheduling_passes" in out
