"""Tests for the content-addressed run store."""

import pickle

import pytest

from repro.store import RunStore, canonical_payload, content_key


class TestCanonicalPayload:
    def test_floats_tagged_with_repr(self):
        assert canonical_payload(1.0) == "float:1.0"
        assert canonical_payload(1) == 1
        assert canonical_payload(0.1) == f"float:{0.1!r}"

    def test_mapping_order_irrelevant(self):
        a = content_key({"a": 1, "b": [2, 3], "c": None})
        b = content_key({"c": None, "b": (2, 3), "a": 1})
        assert a == b

    def test_value_changes_change_key(self):
        base = {"kind": "native", "seed": 7}
        assert content_key(base) != content_key({**base, "seed": 8})
        assert content_key(base) != content_key({**base, "seed": 7.0})

    def test_rejects_non_string_keys(self):
        with pytest.raises(TypeError):
            canonical_payload({1: "x"})

    def test_rejects_live_objects(self):
        with pytest.raises(TypeError):
            canonical_payload({"rng": object()})


class TestMemoryLayer:
    def test_get_or_compute_memoizes(self):
        store = RunStore()
        calls = []

        def compute():
            calls.append(1)
            return ["product"]

        payload = {"kind": "test", "x": 1}
        a = store.get_or_compute(payload, compute)
        b = store.get_or_compute(payload, compute)
        assert a is b
        assert len(calls) == 1
        assert store.hits == 1 and store.misses == 1

    def test_none_is_a_legal_value(self):
        store = RunStore()
        key = store.key({"kind": "none"})
        store.put(key, None)
        assert key in store
        assert store.get(key, default="miss") is None

    def test_clear_drops_memory(self):
        store = RunStore()
        payload = {"kind": "test"}
        a = store.get_or_compute(payload, lambda: object())
        store.clear()
        b = store.get_or_compute(payload, lambda: object())
        assert a is not b


class TestDiskLayer:
    def test_cross_store_roundtrip(self, tmp_path):
        payload = {"kind": "test", "v": [1, 2.5]}
        writer = RunStore(tmp_path)
        value = writer.get_or_compute(payload, lambda: {"answer": 42})
        reader = RunStore(tmp_path)
        got = reader.get_or_compute(
            payload, lambda: pytest.fail("should hit disk")
        )
        assert got == value
        assert reader.disk_hits == 1 and reader.misses == 0

    def test_entries_named_by_digest(self, tmp_path):
        store = RunStore(tmp_path)
        payload = {"kind": "test"}
        store.get_or_compute(payload, lambda: 1)
        assert (tmp_path / f"{content_key(payload)}.pkl").is_file()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        payload = {"kind": "test"}
        (tmp_path / f"{content_key(payload)}.pkl").write_bytes(
            b"not a pickle"
        )
        store = RunStore(tmp_path)
        assert store.get_or_compute(payload, lambda: "recomputed") == (
            "recomputed"
        )
        assert store.misses == 1
        # The recompute repairs the disk entry in place.
        with (tmp_path / f"{content_key(payload)}.pkl").open("rb") as fh:
            assert pickle.load(fh) == "recomputed"

    def test_clear_keeps_disk(self, tmp_path):
        store = RunStore(tmp_path)
        payload = {"kind": "test"}
        store.get_or_compute(payload, lambda: "v")
        store.clear()
        assert len(store) == 0
        assert store.get_or_compute(
            payload, lambda: pytest.fail("disk entry lost")
        ) == "v"
