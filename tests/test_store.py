"""Tests for the content-addressed run store."""

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.store import RunStore, canonical_payload, content_key


class TestCanonicalPayload:
    def test_floats_tagged_with_repr(self):
        assert canonical_payload(1.0) == "float:1.0"
        assert canonical_payload(1) == 1
        assert canonical_payload(0.1) == f"float:{0.1!r}"

    def test_mapping_order_irrelevant(self):
        a = content_key({"a": 1, "b": [2, 3], "c": None})
        b = content_key({"c": None, "b": (2, 3), "a": 1})
        assert a == b

    def test_value_changes_change_key(self):
        base = {"kind": "native", "seed": 7}
        assert content_key(base) != content_key({**base, "seed": 8})
        assert content_key(base) != content_key({**base, "seed": 7.0})

    def test_rejects_non_string_keys(self):
        with pytest.raises(TypeError):
            canonical_payload({1: "x"})

    def test_rejects_live_objects(self):
        with pytest.raises(TypeError):
            canonical_payload({"rng": object()})


class TestMemoryLayer:
    def test_get_or_compute_memoizes(self):
        store = RunStore()
        calls = []

        def compute():
            calls.append(1)
            return ["product"]

        payload = {"kind": "test", "x": 1}
        a = store.get_or_compute(payload, compute)
        b = store.get_or_compute(payload, compute)
        assert a is b
        assert len(calls) == 1
        assert store.hits == 1 and store.misses == 1

    def test_none_is_a_legal_value(self):
        store = RunStore()
        key = store.key({"kind": "none"})
        store.put(key, None)
        assert key in store
        assert store.get(key, default="miss") is None

    def test_clear_drops_memory(self):
        store = RunStore()
        payload = {"kind": "test"}
        a = store.get_or_compute(payload, lambda: object())
        store.clear()
        b = store.get_or_compute(payload, lambda: object())
        assert a is not b


class TestPeerHooks:
    def test_peer_get_counts_and_distinguishes_none(self):
        from repro.store import PEER_MISS

        store = RunStore()
        key = store.key({"kind": "peer"})
        assert store.peer_get(key) is PEER_MISS
        store.put(key, None)  # None is a legal stored value...
        assert store.peer_get(key) is None  # ...and not a miss
        assert store.counters.peer_gets == 2

    def test_peer_put_is_first_write_wins(self, tmp_path):
        store = RunStore(tmp_path)
        key = store.key({"kind": "peer-put"})
        store.peer_put(key, "original")
        store.peer_put(key, "late-duplicate")
        assert store.get(key) == "original"
        assert store.counters.peer_puts == 2
        # A disk-resident entry also blocks the overwrite, even when
        # memory was cleared (fresh replica, warm disk).
        other = RunStore(tmp_path)
        other.peer_put(key, "other-process-duplicate")
        assert other.get(key) == "original"


class TestDiskLayer:
    def test_cross_store_roundtrip(self, tmp_path):
        payload = {"kind": "test", "v": [1, 2.5]}
        writer = RunStore(tmp_path)
        value = writer.get_or_compute(payload, lambda: {"answer": 42})
        reader = RunStore(tmp_path)
        got = reader.get_or_compute(
            payload, lambda: pytest.fail("should hit disk")
        )
        assert got == value
        assert reader.disk_hits == 1 and reader.misses == 0

    def test_entries_named_by_digest(self, tmp_path):
        store = RunStore(tmp_path)
        payload = {"kind": "test"}
        store.get_or_compute(payload, lambda: 1)
        assert (tmp_path / f"{content_key(payload)}.pkl").is_file()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        payload = {"kind": "test"}
        (tmp_path / f"{content_key(payload)}.pkl").write_bytes(
            b"not a pickle"
        )
        store = RunStore(tmp_path)
        assert store.get_or_compute(payload, lambda: "recomputed") == (
            "recomputed"
        )
        assert store.misses == 1
        # The recompute repairs the disk entry in place: a fresh store
        # reads it back through the integrity-checked format.
        reader = RunStore(tmp_path)
        assert reader.get(content_key(payload), default="miss") == (
            "recomputed"
        )

    def test_tampered_entry_quarantined(self, tmp_path):
        """An entry whose payload no longer matches its recorded digest
        is moved to ``corrupt/`` and reported as a miss."""
        payload = {"kind": "test"}
        RunStore(tmp_path).get_or_compute(payload, lambda: "good")
        entry = tmp_path / f"{content_key(payload)}.pkl"
        data = bytearray(entry.read_bytes())
        data[-1] ^= 0xFF  # flip a payload bit, keep the header intact
        entry.write_bytes(bytes(data))
        reader = RunStore(tmp_path)
        assert reader.get(content_key(payload), default="miss") == "miss"
        assert reader.counters.integrity_failures == 1
        assert reader.counters.quarantined == 1
        assert not entry.exists()
        assert (tmp_path / "corrupt" / entry.name).is_file()

    def test_truncated_entry_quarantined(self, tmp_path):
        """A torn write (file cut mid-payload) fails verification."""
        payload = {"kind": "test"}
        RunStore(tmp_path).get_or_compute(
            payload, lambda: list(range(100))
        )
        entry = tmp_path / f"{content_key(payload)}.pkl"
        data = entry.read_bytes()
        entry.write_bytes(data[: len(data) - 10])
        reader = RunStore(tmp_path)
        assert reader.get_or_compute(
            payload, lambda: "recomputed"
        ) == "recomputed"
        assert reader.counters.integrity_failures == 1
        assert reader.counters.quarantined == 1
        assert (tmp_path / "corrupt" / entry.name).is_file()

    def test_legacy_headerless_entry_readable(self, tmp_path):
        """Entries written before the integrity header (raw pickle)
        still load, with no integrity failure recorded."""
        import pickle

        payload = {"kind": "legacy"}
        entry = tmp_path / f"{content_key(payload)}.pkl"
        entry.write_bytes(pickle.dumps({"answer": 42}))
        reader = RunStore(tmp_path)
        assert reader.get(content_key(payload)) == {"answer": 42}
        assert reader.counters.integrity_failures == 0

    def test_quarantine_preserves_bad_bytes(self, tmp_path):
        payload = {"kind": "test"}
        entry = tmp_path / f"{content_key(payload)}.pkl"
        entry.write_bytes(b"not a pickle")
        store = RunStore(tmp_path)
        assert store.get(content_key(payload), default="miss") == "miss"
        moved = tmp_path / "corrupt" / entry.name
        assert moved.read_bytes() == b"not a pickle"

    def test_clear_keeps_disk(self, tmp_path):
        store = RunStore(tmp_path)
        payload = {"kind": "test"}
        store.get_or_compute(payload, lambda: "v")
        store.clear()
        assert len(store) == 0
        assert store.get_or_compute(
            payload, lambda: pytest.fail("disk entry lost")
        ) == "v"


class TestInFlightLeases:
    """The concurrent-writer guard: one owner computes, everyone else
    waits for its entry instead of stampeding."""

    def test_waiter_reads_owners_entry(self, tmp_path):
        payload = {"kind": "lease"}
        owner = RunStore(tmp_path, poll_interval=0.01)
        waiter = RunStore(tmp_path, poll_interval=0.01)
        waiter_calls = []

        def slow_compute():
            time.sleep(0.4)
            return "owned"

        thread = threading.Thread(
            target=lambda: owner.get_or_compute(payload, slow_compute)
        )
        thread.start()
        time.sleep(0.1)  # let the owner take the lease
        got = waiter.get_or_compute(
            payload, lambda: waiter_calls.append(1) or "duplicate"
        )
        thread.join(timeout=10.0)
        assert got == "owned"
        assert waiter_calls == []
        assert waiter.lease_waits == 1
        assert waiter.disk_hits == 1
        assert waiter.misses == 0

    def test_lease_released_after_compute(self, tmp_path):
        store = RunStore(tmp_path)
        payload = {"kind": "lease"}
        store.get_or_compute(payload, lambda: "v")
        assert not list(tmp_path.glob("*.lock"))

    def test_lease_released_on_compute_failure(self, tmp_path):
        store = RunStore(tmp_path)
        payload = {"kind": "lease"}

        def boom():
            raise RuntimeError("compute failed")

        with pytest.raises(RuntimeError):
            store.get_or_compute(payload, boom)
        assert not list(tmp_path.glob("*.lock"))
        # The key is still computable afterwards.
        assert store.get_or_compute(payload, lambda: "ok") == "ok"

    def test_stale_lease_is_broken(self, tmp_path):
        payload = {"kind": "lease"}
        key = content_key(payload)
        lock = tmp_path / f"{key}.lock"
        lock.write_text("99999")
        old = time.time() - 60.0
        os.utime(lock, (old, old))
        store = RunStore(tmp_path, lease_timeout=0.5)
        assert store.get_or_compute(payload, lambda: "took-over") == (
            "took-over"
        )
        assert store.misses == 1
        assert not lock.exists()
        assert store.counters.lease_breaks == 1

    def test_lease_timeout_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEASE_TIMEOUT", "2.5")
        assert RunStore(tmp_path)._lease_timeout == 2.5

    def test_explicit_lease_timeout_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEASE_TIMEOUT", "2.5")
        store = RunStore(tmp_path, lease_timeout=7.0)
        assert store._lease_timeout == 7.0

    @pytest.mark.parametrize("raw", ["banana", "-1", "0", "inf", "nan"])
    def test_bad_env_lease_timeout_rejected(self, raw, monkeypatch):
        from repro.errors import ConfigurationError

        monkeypatch.setenv("REPRO_LEASE_TIMEOUT", raw)
        with pytest.raises(ConfigurationError):
            RunStore()

    def test_waiter_takes_over_after_owner_failure(self, tmp_path):
        payload = {"kind": "lease"}
        owner = RunStore(tmp_path, poll_interval=0.01)
        waiter = RunStore(tmp_path, poll_interval=0.01)
        owner_error = []

        def failing_compute():
            time.sleep(0.3)
            raise RuntimeError("owner died")

        def run_owner():
            try:
                owner.get_or_compute(payload, failing_compute)
            except RuntimeError as exc:
                owner_error.append(exc)

        thread = threading.Thread(target=run_owner)
        thread.start()
        time.sleep(0.1)
        got = waiter.get_or_compute(payload, lambda: "recovered")
        thread.join(timeout=10.0)
        assert got == "recovered"
        assert len(owner_error) == 1
        assert waiter.lease_waits >= 1

    def test_memory_store_never_touches_leases(self):
        store = RunStore()
        assert store.get_or_compute({"kind": "mem"}, lambda: 1) == 1
        assert store.lease_waits == 0


#: Child process for the multi-process stampede regression: sync on a
#: ready/go file barrier, then hammer one key through a disk store.
_HAMMER_SCRIPT = """
import sys, time
from pathlib import Path
from repro.store import RunStore

store_dir, sync_dir, tag = sys.argv[1], Path(sys.argv[2]), sys.argv[3]
(sync_dir / f"ready-{tag}").touch()
while not (sync_dir / "go").exists():
    time.sleep(0.01)

store = RunStore(store_dir, poll_interval=0.02)

def compute():
    (sync_dir / f"computed-{tag}").touch()
    time.sleep(0.5)
    return "product"

print(store.get_or_compute({"kind": "stampede"}, compute), end="")
"""


class TestMultiProcessStampede:
    def test_one_key_many_processes_single_compute(self, tmp_path):
        """Regression for the cache stampede: N processes calling
        ``get_or_compute`` on one uncached key must run ``compute``
        exactly once, and every process must see the owner's value."""
        store_dir = tmp_path / "store"
        sync_dir = tmp_path / "sync"
        sync_dir.mkdir()
        env = dict(
            os.environ,
            PYTHONPATH=str(
                Path(__file__).resolve().parent.parent / "src"
            ),
        )
        n = 5
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _HAMMER_SCRIPT,
                 str(store_dir), str(sync_dir), str(i)],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for i in range(n)
        ]
        deadline = time.monotonic() + 30.0
        while len(list(sync_dir.glob("ready-*"))) < n:
            assert time.monotonic() < deadline, "children never ready"
            time.sleep(0.01)
        (sync_dir / "go").touch()
        outputs = [proc.communicate(timeout=60.0) for proc in procs]
        assert all(proc.returncode == 0 for proc in procs), outputs
        assert [out for out, _ in outputs] == ["product"] * n
        computed = list(sync_dir.glob("computed-*"))
        assert len(computed) == 1, (
            f"stampede: {len(computed)} processes computed the key"
        )
        assert not list(store_dir.glob("*.lock"))
