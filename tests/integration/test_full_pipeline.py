"""Cross-module integration tests: the paper's claims end-to-end on a
scaled-down machine with a synthetic workload."""

import numpy as np
import pytest

from repro.core.omniscient import headroom_profile
from repro.core.runners import (
    run_continual,
    run_native,
    run_omniscient_samples,
)
from repro.core.sampling import sample_short_projects
from repro.jobs import InterstitialProject, JobKind
from repro.machines import preset
from repro.metrics.waits import wait_times
from repro.sched.presets import scheduler_for
from repro.workload.synthetic import synthetic_trace_for


@pytest.fixture(scope="module")
def setup():
    """One shared tiny Blue Mountain scenario for all integration tests."""
    machine = preset("blue_mountain")
    trace = synthetic_trace_for(
        "blue_mountain", rng=np.random.default_rng(42), scale=0.02
    )
    native = run_native(machine, trace.jobs, horizon=trace.duration)
    return machine, trace, native


class TestOmniscientHasZeroNativeImpact:
    def test_native_schedule_identical(self, setup):
        """The defining §4.1 property: with omniscient packing the
        native jobs run exactly as they would alone — guaranteed by
        construction, verified against an independent re-run."""
        machine, trace, native = setup
        rerun = run_native(machine, trace.jobs, horizon=trace.duration)
        a = sorted(
            (j.job_id, j.start_time, j.finish_time)
            for j in native.finished
        )
        b = sorted(
            (j.job_id, j.start_time, j.finish_time)
            for j in rerun.finished
        )
        assert a == b

    def test_packing_fits_headroom(self, setup):
        machine, trace, native = setup
        project = InterstitialProject(
            n_jobs=400, cpus_per_job=32, runtime_1ghz=120.0
        )
        _, packings = run_omniscient_samples(
            machine,
            trace.jobs,
            project,
            n_samples=3,
            rng=np.random.default_rng(0),
            native_result=native,
        )
        headroom = headroom_profile(native)
        for packing in packings:
            usage = packing.usage_profile()
            probes = np.union1d(headroom.times, usage.times)
            slack = headroom.sample(probes) - usage.sample(probes)
            assert slack.min() >= -1e-6


class TestFallibleWorsensMakespans:
    def test_fallible_at_least_omniscient(self, setup):
        """§4.3: estimate-driven submission can only slow projects
        down relative to omniscient placement (on average)."""
        machine, trace, native = setup
        project = InterstitialProject(
            n_jobs=300, cpus_per_job=32, runtime_1ghz=120.0
        )
        omni, _ = run_omniscient_samples(
            machine,
            trace.jobs,
            project,
            n_samples=5,
            rng=np.random.default_rng(1),
            native_result=native,
        )
        cont, _ = run_continual(
            machine, trace.jobs, project, horizon=trace.duration
        )
        fallible = sample_short_projects(
            cont.jobs(JobKind.INTERSTITIAL),
            n_jobs=300,
            n_samples=25,
            rng=np.random.default_rng(2),
        )
        assert fallible.size > 0
        assert fallible.mean() >= 0.5 * omni.mean()


class TestContinualClaims:
    def test_utilization_rises_native_throughput_holds(self, setup):
        machine, trace, native = setup
        project = InterstitialProject(
            n_jobs=1, cpus_per_job=32, runtime_1ghz=120.0
        )
        boosted, controller = run_continual(
            machine, trace.jobs, project, horizon=trace.duration
        )
        assert (
            boosted.overall_utilization
            > native.overall_utilization + 0.1
        )
        assert len(boosted.native_jobs) == len(native.native_jobs)
        assert controller.n_submitted > 100

    def test_native_waits_grow_but_bounded_cascades(self, setup):
        machine, trace, native = setup
        project = InterstitialProject(
            n_jobs=1, cpus_per_job=32, runtime_1ghz=120.0
        )
        boosted, _ = run_continual(
            machine, trace.jobs, project, horizon=trace.duration
        )
        base_waits = wait_times(native.native_jobs)
        new_waits = wait_times(boosted.native_jobs)
        assert np.median(new_waits) >= np.median(base_waits)

    def test_caps_trade_throughput_for_native_protection(self, setup):
        machine, trace, native = setup
        project = InterstitialProject(
            n_jobs=1, cpus_per_job=32, runtime_1ghz=120.0
        )
        counts = []
        for cap in (0.90, 0.98, None):
            result, controller = run_continual(
                machine,
                trace.jobs,
                project,
                max_utilization=cap,
                horizon=trace.duration,
            )
            counts.append(controller.n_submitted)
        assert counts[0] <= counts[1] <= counts[2]


class TestCrossMachine:
    @pytest.mark.parametrize(
        "name", ["ross", "blue_mountain", "blue_pacific"]
    )
    def test_full_pipeline_on_every_machine(self, name):
        machine = preset(name)
        trace = synthetic_trace_for(
            name, rng=np.random.default_rng(9), scale=0.02
        )
        project = InterstitialProject(
            n_jobs=1, cpus_per_job=8, runtime_1ghz=120.0
        )
        result, controller = run_continual(
            machine,
            trace.jobs,
            project,
            scheduler=scheduler_for(machine),
            horizon=trace.duration,
        )
        assert len(result.native_jobs) == trace.n_jobs
        assert controller.n_submitted > 0
        busy = result.busy_profile()
        assert busy.values.max() <= machine.cpus
