"""Machine-level policy integration tests: hand-built scenarios that
exercise the paper's qualitative mechanisms end-to-end."""

import math


from repro.core.controller import InterstitialController
from repro.core.runners import run_native, run_with_controller
from repro.jobs import InterstitialProject
from repro.machines import Machine
from repro.sched import (
    QueueScheduler,
    TimeOfDayPolicy,
    fcfs_scheduler,
)
from repro.sched.priority import FcfsPolicy
from repro.sched.queue_scheduler import BackfillMode
from repro.units import HOUR

from tests.conftest import make_job


class TestTimeOfDayEndToEnd:
    def test_wide_job_waits_for_evening(self):
        machine = Machine(name="BP-like", cpus=100, clock_ghz=1.0)
        scheduler = QueueScheduler(
            policy=FcfsPolicy(),
            backfill=BackfillMode.EASY,
            timeofday=TimeOfDayPolicy(max_day_cpus=25),
        )
        wide = make_job(cpus=80, runtime=HOUR, submit=12 * HOUR)
        narrow = make_job(cpus=10, runtime=HOUR, submit=12 * HOUR)
        result = run_native(
            machine, [wide, narrow], scheduler=scheduler
        )
        by_width = {j.cpus: j for j in result.finished}
        assert by_width[10].start_time == 12 * HOUR
        assert by_width[80].start_time == 19 * HOUR

    def test_weekend_releases_wide_jobs(self):
        machine = Machine(name="BP-like", cpus=100, clock_ghz=1.0)
        scheduler = QueueScheduler(
            policy=FcfsPolicy(),
            timeofday=TimeOfDayPolicy(max_day_cpus=25),
        )
        saturday_noon = 5 * 86400.0 + 12 * HOUR
        wide = make_job(cpus=80, runtime=HOUR, submit=saturday_noon)
        result = run_native(machine, [wide], scheduler=scheduler)
        assert result.finished[0].start_time == saturday_noon


class TestPoachingEndToEnd:
    """The paper's §3 scenario: 'a native job that could have run
    without the presence of the interstitial jobs instead waits for an
    interstitial job to finish while another native job comes along
    ... and is run instead of the first native job.'"""

    def build(self):
        machine = Machine(
            name="P", cpus=16, clock_ghz=1.0, queue_algorithm="FCFS"
        )
        # Filler: half the machine, grossly overestimated (3600 vs 100).
        filler = make_job(cpus=8, runtime=100.0, estimate=3600.0)
        # Job A: whole machine, arrives while the filler runs.
        job_a = make_job(cpus=16, runtime=50.0, submit=10.0, user="a")
        # Job B: small late-comer.
        job_b = make_job(
            cpus=8, runtime=100.0, estimate=100.0, submit=150.0, user="b"
        )
        return machine, [filler, job_a, job_b]

    def test_baseline_order(self):
        machine, trace = self.build()
        result = run_native(machine, trace, scheduler=fcfs_scheduler())
        starts = {j.user: j.start_time for j in result.finished}
        # A runs as soon as the filler actually ends (estimates don't
        # delay dispatch, only backfill planning).
        assert starts["a"] == 100.0
        assert starts["b"] > starts["a"]

    def test_interstitial_inverts_order(self):
        machine, trace = self.build()
        # Interstitial jobs: 2 CPUs x 300 s, admitted at t=0 because
        # the queue is empty and 8 CPUs are free.
        project = InterstitialProject(
            n_jobs=1, cpus_per_job=2, runtime_1ghz=300.0
        )
        controller = InterstitialController(
            machine=machine, project=project, continual=True
        )
        result = run_with_controller(
            machine,
            trace,
            controller,
            scheduler=fcfs_scheduler(),
            horizon=120.0,
        )
        starts = {
            j.user: j.start_time for j in result.finished if j.is_native
        }
        # A is now blocked by interstitial jobs running to t=300...
        assert starts["a"] > 100.0
        # ...and B poaches a backfill window before A gets to run.
        assert starts["b"] < starts["a"]


class TestUtilizationCapInvariant:
    def test_cap_never_exceeded_at_submission(self, rng):
        """Every 'submitted' decision keeps busy CPUs at or below
        floor(cap * N) — checked from the decision log."""
        from tests.conftest import random_native_trace

        machine = Machine(
            name="P", cpus=64, clock_ghz=1.0, queue_algorithm="FCFS"
        )
        trace = random_native_trace(rng, machine, n_jobs=40,
                                    horizon=40_000.0)
        cap = 0.75
        project = InterstitialProject(
            n_jobs=1, cpus_per_job=4, runtime_1ghz=200.0
        )
        controller = InterstitialController(
            machine=machine,
            project=project,
            continual=True,
            max_utilization=cap,
            record_decisions=True,
        )
        run_with_controller(
            machine, trace, controller, scheduler=fcfs_scheduler(),
            horizon=40_000.0,
        )
        budget = math.floor(cap * machine.cpus)
        submitted = [
            d for d in controller.decisions if d.reason == "submitted"
        ]
        assert submitted, "cap so tight nothing was ever admitted"
        for d in submitted:
            busy_before = machine.cpus - d.free_cpus
            busy_after = busy_before + d.n_submitted * 4
            assert busy_after <= budget
