"""The naive reference scheduler.

:class:`ReferenceQueueScheduler` is a verbatim retention of the
pre-incremental :class:`~repro.sched.queue_scheduler.QueueScheduler`:
it re-sorts the whole queue with :meth:`PriorityPolicy.sort_key` on
every pass, rebuilds the release list from ``cluster.running`` every
time it needs one, scans the queue with ``min()`` for the head job, and
never skips a pass.  It is deliberately O(queue x passes) — simple
enough to audit by eye — and exists as the behavioral oracle for the
incremental scheduler: the differential suite
(``tests/sched/test_incremental_differential.py``) replays seeded
workloads through both and asserts byte-identical traces, and
``benchmarks/bench_engine.py`` uses it as the events/sec denominator
the CI smoke job guards.

Do not optimize this class.  Its value is that it stays naive.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.jobs import Job
from repro.sched.backfill import select_conservative, select_easy
from repro.sched.base import Scheduler
from repro.sched.predictor import PerUserRuntimePredictor
from repro.sched.priority import PriorityPolicy
from repro.sched.queue_scheduler import BackfillMode
from repro.sched.timeofday import TimeOfDayPolicy
from repro.sim.state import ClusterState


class ReferenceQueueScheduler(Scheduler):
    """Priority queue + backfill scheduler, full re-sort every pass.

    Construction mirrors
    :class:`~repro.sched.queue_scheduler.QueueScheduler`; behavior must
    match it decision-for-decision (the incremental scheduler's tests
    depend on this class as ground truth).
    """

    def __init__(
        self,
        policy: PriorityPolicy,
        backfill: BackfillMode = BackfillMode.EASY,
        timeofday: Optional[TimeOfDayPolicy] = None,
        predictor: Optional[PerUserRuntimePredictor] = None,
    ) -> None:
        self.policy = policy
        self.backfill = backfill
        self.timeofday = timeofday
        self.predictor = predictor
        self.n_backfill_starts = 0
        self._queue: List[Job] = []

    # ------------------------------------------------------------------
    # Scheduler interface
    # ------------------------------------------------------------------
    def submit(self, job: Job, t: float) -> None:
        self._queue.append(job)

    def on_finish(self, job: Job, t: float) -> None:
        self.policy.on_finish(job, t)
        if self.predictor is not None:
            self.predictor.observe(job)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def pending_jobs(self) -> List[Job]:
        return list(self._queue)

    def schedule(self, t: float, cluster: ClusterState) -> List[Job]:
        if not self._queue:
            return []
        ordered = sorted(self._queue, key=lambda j: self.policy.sort_key(j, t))
        eligible = [j for j in ordered if self._eligible(j, t)]
        releases = self._releases(cluster)
        if self.backfill is BackfillMode.CONSERVATIVE:
            starts = select_conservative(
                t,
                eligible,
                cluster.available_cpus,
                releases,
                self._estimate,
            )
        else:
            starts = select_easy(
                t,
                eligible,
                cluster.free_cpus,
                releases,
                self._estimate,
                backfill=self.backfill is BackfillMode.EASY,
            )
        started_ids = {job.job_id for job in starts}
        # A start is a *backfill* start when some higher-priority
        # eligible job stayed queued — the job jumped a blocked
        # predecessor rather than running in turn.
        in_priority_prefix = True
        for job in eligible:
            if job.job_id in started_ids:
                if not in_priority_prefix:
                    self.n_backfill_starts += 1
            else:
                in_priority_prefix = False
        self._queue = [j for j in self._queue if j.job_id not in started_ids]
        return starts

    def head_job(self, t: float):
        if not self._queue:
            return None
        return min(self._queue, key=lambda j: self.policy.sort_key(j, t))

    def head_start_estimate(self, t: float, cluster: ClusterState) -> float:
        """The paper's ``backfillWallTime``: expected earliest start of
        the top-priority queued job, given running jobs' (possibly
        predictor-corrected) estimated completions and, when a
        time-of-day policy holds the job, its next eligibility window."""
        head = self.head_job(t)
        if head is None:
            return math.inf
        start = self._earliest_capacity(head.cpus, t, cluster)
        if self.timeofday is not None:
            start = max(start, self.timeofday.next_eligible_time(head, t))
        return start

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _eligible(self, job: Job, t: float) -> bool:
        return self.timeofday is None or self.timeofday.eligible(job, t)

    def _estimate(self, job: Job) -> float:
        if self.predictor is not None:
            return self.predictor.estimate(job)
        return job.estimate

    def _releases(self, cluster: ClusterState) -> List[Tuple[float, float]]:
        return [
            (rec.start_time + self._estimate(rec.job), float(rec.cpus))
            for rec in cluster.running.values()
        ]

    def _earliest_capacity(
        self, cpus: int, t: float, cluster: ClusterState
    ) -> float:
        if cluster.fits_now(cpus):
            return t
        free = float(cluster.free_cpus)
        for finish, released in sorted(self._releases(cluster)):
            free += released
            if free >= cpus:
                return max(t, finish)
        return math.inf
