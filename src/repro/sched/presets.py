"""Per-machine scheduler presets (Table 1's "Queue algorithm" row).

Each preset composes :class:`~repro.sched.queue_scheduler.QueueScheduler`
with the fair-share flavour, backfill aggressiveness and extra
constraints the paper attributes to that machine:

* **Ross / PBS** — "the simplest (all users have equal shares)" flat
  user fair share; "the criteria by which backfilling takes place is
  more restrictive" → conservative backfill.
* **Blue Mountain / LSF** — "hierarchical group-level fair share" with
  EASY backfill.
* **Blue Pacific / DPCS** — "user and group-level fair share in addition
  to time of day constraints" with EASY backfill.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.machines import Machine
from repro.sched.fairshare import FairShareTracker
from repro.sched.predictor import PerUserRuntimePredictor
from repro.sched.priority import (
    FcfsPolicy,
    HierarchicalFairSharePolicy,
    UserFairSharePolicy,
    UserGroupFairSharePolicy,
)
from repro.sched.queue_scheduler import BackfillMode, QueueScheduler
from repro.sched.timeofday import TimeOfDayPolicy


def pbs_scheduler(
    half_life_s: float = FairShareTracker.DEFAULT_HALF_LIFE,
    predictor: Optional[PerUserRuntimePredictor] = None,
) -> QueueScheduler:
    """Ross-style PBS: equal-share user fair share, conservative
    backfill."""
    return QueueScheduler(
        policy=UserFairSharePolicy(half_life_s=half_life_s),
        backfill=BackfillMode.CONSERVATIVE,
        predictor=predictor,
    )


def lsf_scheduler(
    group_shares: Optional[Dict[str, float]] = None,
    half_life_s: float = FairShareTracker.DEFAULT_HALF_LIFE,
    predictor: Optional[PerUserRuntimePredictor] = None,
) -> QueueScheduler:
    """Blue Mountain-style LSF: hierarchical group fair share, EASY
    backfill."""
    return QueueScheduler(
        policy=HierarchicalFairSharePolicy(
            group_shares=group_shares, half_life_s=half_life_s
        ),
        backfill=BackfillMode.EASY,
        predictor=predictor,
    )


def dpcs_scheduler(
    machine: Machine,
    half_life_s: float = FairShareTracker.DEFAULT_HALF_LIFE,
    day_fraction: float = 0.25,
    predictor: Optional[PerUserRuntimePredictor] = None,
) -> QueueScheduler:
    """Blue Pacific-style DPCS: user+group fair share, EASY backfill,
    and a time-of-day constraint holding jobs wider than
    ``day_fraction`` of the machine until night/weekend."""
    return QueueScheduler(
        policy=UserGroupFairSharePolicy(half_life_s=half_life_s),
        backfill=BackfillMode.EASY,
        timeofday=TimeOfDayPolicy(
            max_day_cpus=max(1, int(machine.cpus * day_fraction))
        ),
        predictor=predictor,
    )


def fcfs_scheduler(
    backfill: BackfillMode = BackfillMode.EASY,
) -> QueueScheduler:
    """Plain FCFS + backfill baseline (no fair share); useful for tests
    and as the simplest comparison policy."""
    return QueueScheduler(policy=FcfsPolicy(), backfill=backfill)


def scheduler_for(
    machine: Machine,
    predictor: Optional[PerUserRuntimePredictor] = None,
) -> QueueScheduler:
    """Build the production scheduler matching a machine preset, keyed
    on ``machine.queue_algorithm`` (PBS / LSF / DPCS); unknown systems
    fall back to FCFS + EASY."""
    algorithm = machine.queue_algorithm.upper()
    if algorithm == "PBS":
        return pbs_scheduler(predictor=predictor)
    if algorithm == "LSF":
        return lsf_scheduler(predictor=predictor)
    if algorithm == "DPCS":
        return dpcs_scheduler(machine, predictor=predictor)
    return fcfs_scheduler()
