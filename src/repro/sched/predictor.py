"""Runtime prediction from per-user history.

The paper observes that user runtime estimates are usually defaults that
grossly overestimate actual runtimes (median estimate 6 h vs median
actual 0.8 h on Blue Mountain) and suggests that "usage prediction
algorithms such as the Network Weather Service may be able to provide
better estimates" (§4.3.1).  This module implements that extension: a
per-user exponentially-weighted moving average of the actual/estimated
runtime ratio, applied multiplicatively to future estimates.

The ablation benchmark ``benchmarks/bench_ablation_predictor.py``
measures how much this recovers of the gap between fallible and
omniscient interstitial makespans.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigurationError
from repro.jobs import Job


class PerUserRuntimePredictor:
    """EWMA corrector of user runtime estimates.

    Parameters
    ----------
    alpha:
        EWMA weight of the newest observation, in (0, 1].
    floor_ratio:
        Lower clamp on the learned ratio, preventing degenerate
        zero-length predictions for users whose jobs occasionally finish
        instantly.
    """

    def __init__(self, alpha: float = 0.3, floor_ratio: float = 0.02) -> None:
        if not (0.0 < alpha <= 1.0):
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        if not (0.0 < floor_ratio <= 1.0):
            raise ConfigurationError(
                f"floor_ratio must be in (0, 1], got {floor_ratio}"
            )
        self.alpha = alpha
        self.floor_ratio = floor_ratio
        self._ratio: Dict[str, float] = {}
        #: Monotone counter bumped on every learned observation, so
        #: schedulers can key cached predictor-corrected views on it.
        self.version: int = 0

    def observe(self, job: Job) -> None:
        """Learn from a completed job's actual/estimated ratio."""
        self.observe_ratio(job.user, job.runtime, job.estimate)

    def observe_ratio(self, user: str, actual: float, estimate: float) -> None:
        """Learn from a raw ``(actual, estimate)`` pair.

        The generalization :meth:`observe` is built on: callers outside
        the simulator (the serving daemon's tenancy layer charges
        request service times against quoted estimates) have no
        :class:`~repro.jobs.Job` — and a job's ``estimate >= runtime``
        invariant would not hold for them anyway, since a request can
        run *longer* than quoted.  Ratios above 1.0 are learned as-is;
        only the floor clamp applies.
        """
        if estimate <= 0.0:
            return
        self.version += 1
        ratio = max(self.floor_ratio, actual / estimate)
        previous = self._ratio.get(user)
        if previous is None:
            self._ratio[user] = ratio
        else:
            self._ratio[user] = (
                self.alpha * ratio + (1.0 - self.alpha) * previous
            )

    def ratio(self, user: str) -> float:
        """Current learned ratio for ``user`` (1.0 when unknown)."""
        return self._ratio.get(user, 1.0)

    def estimate(self, job: Job) -> float:
        """Corrected runtime estimate for a queued or running job.

        Never exceeds the user's own estimate (the batch system still
        kills at the user's limit, so a longer prediction is useless).
        """
        return min(job.estimate, job.estimate * self.ratio(job.user))
