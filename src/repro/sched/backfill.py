"""Backfill planners.

Given the queue in priority order and the (estimated) release times of
running jobs, decide which queued jobs start *now*:

* :func:`select_easy` — EASY/aggressive backfill: the top-priority
  blocked job gets a reservation at its *shadow time*; lower-priority
  jobs may start immediately if they terminate (by estimate) before the
  shadow time or fit in the reservation's spare ("extra") nodes.  Used
  for Blue Mountain (LSF) and Blue Pacific (DPCS).
* :func:`select_conservative` — every queued job receives a reservation
  in priority order on a capacity profile; a job starts now only when
  its earliest reservation is *now*, so no backfill can delay any queued
  job's planned start.  The paper notes Ross's backfill criteria are
  "more restrictive" than the other machines'; conservative backfill is
  the canonical restrictive variant.

Both planners work purely on estimates — fallibility is inherited from
the quality of user estimates, exactly as in the paper.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Tuple

from repro.jobs import Job
from repro.sim.profile import CapacityProfile

#: (estimated release time, cpus released) of a running job.
Release = Tuple[float, float]

#: Scheduler-visible runtime estimate for a job (predictor hook).
EstimateFn = Callable[[Job], float]

#: Minimum reservation duration, guarding zero-estimate degenerate jobs.
_MIN_DURATION = 1e-9


def shadow_of(
    cpus_needed: int,
    free_now: float,
    releases: Sequence[Release],
) -> Tuple[float, float]:
    """Shadow time and extra nodes for a blocked head job.

    Walks the running jobs' estimated releases in time order until the
    accumulated free CPUs cover ``cpus_needed``.  Returns
    ``(shadow_time, extra_nodes)`` where ``extra_nodes`` is the surplus
    beyond the head job's need at the shadow instant.  If the head can
    never be satisfied (capacity lost to an outage), returns
    ``(inf, 0.0)`` and callers should disallow shadow-based backfill.
    """
    free = free_now
    for finish, cpus in sorted(releases):
        free += cpus
        if free >= cpus_needed:
            return finish, free - cpus_needed
    return math.inf, 0.0


def select_easy(
    t: float,
    queue: Sequence[Job],
    free_cpus: int,
    releases: Sequence[Release],
    estimate: EstimateFn,
    backfill: bool = True,
) -> List[Job]:
    """EASY selection: start-from-head, then backfill under the head
    job's reservation.

    Parameters
    ----------
    t:
        Current time.
    queue:
        Eligible queued jobs in descending priority order.
    free_cpus:
        CPUs free right now.
    releases:
        Estimated (finish, cpus) of currently running jobs.
    estimate:
        Scheduler-visible runtime estimate accessor.
    backfill:
        With False, stop at the first blocked job (plain priority FCFS
        within the current ordering — the no-backfill baseline).
    """
    starts: List[Job] = []
    free = float(free_cpus)
    live: List[Release] = list(releases)

    blocked: Job = None  # type: ignore[assignment]
    rest: List[Job] = []
    for job in queue:
        if blocked is None:
            if job.cpus <= free:
                starts.append(job)
                free -= job.cpus
                live.append((t + estimate(job), job.cpus))
            else:
                blocked = job
        else:
            rest.append(job)
    if blocked is None or not backfill:
        return starts

    shadow, extra = shadow_of(blocked.cpus, free, live)
    for job in rest:
        if job.cpus > free:
            continue
        fits_shadow = math.isfinite(shadow) and t + estimate(job) <= shadow
        fits_extra = job.cpus <= extra
        if fits_shadow or fits_extra:
            starts.append(job)
            free -= job.cpus
            live.append((t + estimate(job), job.cpus))
            if not fits_shadow:
                extra -= job.cpus
    return starts


def select_conservative(
    t: float,
    queue: Sequence[Job],
    available_cpus: int,
    releases: Sequence[Release],
    estimate: EstimateFn,
) -> List[Job]:
    """Conservative selection: reserve for *every* queued job in priority
    order; start the jobs whose earliest reservation is now.

    ``available_cpus`` is the in-service CPU count (total minus down);
    running jobs' claims are subtracted via ``releases``, so overlap with
    an outage simply shows up as (possibly negative) capacity nothing
    can fit into until the jobs drain.

    A claim whose estimated finish is already past (a job overrunning a
    predictor-shrunk estimate) contributes no capacity loss to the
    planning profile, but its CPUs are still physically occupied — so a
    planned start at ``t`` is additionally gated on the instantaneous
    free count, and the job simply stays queued until the overdue claim
    really releases.
    """
    free_now = float(available_cpus) - sum(c for _f, c in releases)
    profile = CapacityProfile.from_claims(float(available_cpus), t, releases)
    starts: List[Job] = []
    for job in queue:
        duration = max(estimate(job), _MIN_DURATION)
        start = profile.earliest_fit(t, duration, job.cpus)
        if math.isinf(start):
            # Permanently unsatisfiable with current in-service capacity
            # (deep outage); leave the job queued without a reservation.
            continue
        profile.reserve(start, start + duration, job.cpus, check=False)
        if start == t and job.cpus <= free_now:
            starts.append(job)
            free_now -= job.cpus
    return starts
