"""Queue priority policies.

A :class:`PriorityPolicy` maps a queued job and the current time to a
score; the scheduler sorts its queue by descending score each pass
("dynamic re-prioritization").  Ties break by submission time then job
id so the whole simulation stays deterministic.

Policies provided:

* :class:`FcfsPolicy` — first-come-first-served (no fair share);
* :class:`UserFairSharePolicy` — flat per-user fair share with equal
  shares, the paper's description of Ross/PBS ("the implementation at
  Ross being the simplest: all users have equal shares");
* :class:`HierarchicalFairSharePolicy` — group-level shares first, then
  users within their group, the paper's Blue Mountain/LSF;
* :class:`UserGroupFairSharePolicy` — user- and group-level factors
  combined, the paper's Blue Pacific/DPCS (time-of-day constraints are
  layered separately; see :mod:`repro.sched.timeofday`).
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.jobs import Job
from repro.sched.fairshare import FairShareTracker

#: Sort key type: higher compares first via sorting on the negated tuple.
ScoreKey = Tuple[float, float, float]


class PriorityPolicy(abc.ABC):
    """Maps queued jobs to priority scores and observes completions."""

    #: Weight of the queue-wait component (score units per day waited).
    #: Keeps every policy starvation-free: a job's priority grows without
    #: bound while it waits.
    wait_weight: float = 1.0

    #: Monotone counter bumped whenever a completion changes any job's
    #: fair-share factor (i.e. on every charge).  Between bumps the
    #: *relative order* of queued jobs is frozen: the wait component
    #: ``wait_weight * (t - submit) / 86400`` shifts every score by the
    #: same ``wait_weight * t / 86400``, and decayed-usage shares are
    #: time-invariant between charges (see
    #: :mod:`repro.sched.fairshare`).  Schedulers key cached queue
    #: orderings on this value; policies that charge in ``on_finish``
    #: MUST bump it there.
    priority_version: int = 0

    @abc.abstractmethod
    def fair_share_factor(self, job: Job, t: float) -> float:
        """Fair-share component of the score, in [-1, 1]."""

    def score(self, job: Job, t: float) -> float:
        """Priority score; higher runs earlier."""
        waited_days = max(0.0, t - job.submit_time) / 86400.0
        return self.fair_share_factor(job, t) + self.wait_weight * waited_days

    def sort_key(self, job: Job, t: float) -> ScoreKey:
        """Deterministic descending sort key (use with ``sorted(...)``)."""
        return (-self.score(job, t), job.submit_time, job.job_id)

    def rank_key(self, job: Job, t: float) -> ScoreKey:
        """Time-shift-invariant equivalent of :meth:`sort_key`.

        Subtracting the common ``wait_weight * t / 86400`` term from
        every negated score leaves ``wait_weight * submit / 86400 -
        factor``: the same total order (ties break identically by
        submit time then job id), but comparable across keys computed
        at *different* times as long as :attr:`priority_version` has
        not bumped in between.  This is what lets a scheduler keep its
        pending queue sorted incrementally — inserting a new submission
        with ``bisect`` against keys computed passes ago — instead of
        re-sorting per pass.
        """
        return (
            self.wait_weight * job.submit_time / 86400.0
            - self.fair_share_factor(job, t),
            job.submit_time,
            job.job_id,
        )

    def on_finish(self, job: Job, t: float) -> None:
        """Observe a completion (default: nothing to charge)."""


class FcfsPolicy(PriorityPolicy):
    """Pure first-come-first-served: no fair-share component, so the
    score reduces to the waiting time and the queue order is submission
    order."""

    def fair_share_factor(self, job: Job, t: float) -> float:
        return 0.0


class UserFairSharePolicy(PriorityPolicy):
    """Flat fair share over users with equal target shares (Ross/PBS).

    Parameters
    ----------
    half_life_s:
        Usage decay half-life.
    weight:
        Weight of the fair-share factor in the score.
    """

    def __init__(
        self,
        half_life_s: float = FairShareTracker.DEFAULT_HALF_LIFE,
        weight: float = 2.0,
    ) -> None:
        if weight < 0:
            raise ConfigurationError(f"weight must be >= 0, got {weight}")
        self.users = FairShareTracker(half_life_s)
        self.weight = weight

    def fair_share_factor(self, job: Job, t: float) -> float:
        return self.weight * self.users.factor(job.user, t)

    def on_finish(self, job: Job, t: float) -> None:
        self.users.charge(job.user, job.area, t)
        self.priority_version += 1


class HierarchicalFairSharePolicy(PriorityPolicy):
    """Hierarchical group-level fair share (Blue Mountain/LSF).

    The group factor dominates (groups own machine shares); a smaller
    within-group user factor arbitrates between users of one group.

    Parameters
    ----------
    group_shares:
        Optional explicit target shares per group.
    half_life_s:
        Usage decay half-life for both levels.
    group_weight, user_weight:
        Score weights of the two levels.
    """

    def __init__(
        self,
        group_shares: Optional[Dict[str, float]] = None,
        half_life_s: float = FairShareTracker.DEFAULT_HALF_LIFE,
        group_weight: float = 2.0,
        user_weight: float = 0.5,
    ) -> None:
        self.groups = FairShareTracker(half_life_s, shares=group_shares)
        self.half_life_s = half_life_s
        self.group_weight = group_weight
        self.user_weight = user_weight
        #: Per-group tracker of that group's users.
        self._per_group: Dict[str, FairShareTracker] = {}

    def _group_users(self, group: str) -> FairShareTracker:
        tracker = self._per_group.get(group)
        if tracker is None:
            tracker = FairShareTracker(self.half_life_s)
            self._per_group[group] = tracker
        return tracker

    def fair_share_factor(self, job: Job, t: float) -> float:
        g = self.group_weight * self.groups.factor(job.group, t)
        u = self.user_weight * self._group_users(job.group).factor(job.user, t)
        return g + u

    def on_finish(self, job: Job, t: float) -> None:
        self.groups.charge(job.group, job.area, t)
        self._group_users(job.group).charge(job.user, job.area, t)
        self.priority_version += 1


class UserGroupFairSharePolicy(PriorityPolicy):
    """User and group fair share combined at the same level (Blue
    Pacific/DPCS): both the user's global usage and the group's global
    usage feed the score."""

    def __init__(
        self,
        group_shares: Optional[Dict[str, float]] = None,
        user_shares: Optional[Dict[str, float]] = None,
        half_life_s: float = FairShareTracker.DEFAULT_HALF_LIFE,
        group_weight: float = 1.0,
        user_weight: float = 1.0,
    ) -> None:
        self.groups = FairShareTracker(half_life_s, shares=group_shares)
        self.users = FairShareTracker(half_life_s, shares=user_shares)
        self.group_weight = group_weight
        self.user_weight = user_weight

    def fair_share_factor(self, job: Job, t: float) -> float:
        return self.group_weight * self.groups.factor(
            job.group, t
        ) + self.user_weight * self.users.factor(job.user, t)

    def on_finish(self, job: Job, t: float) -> None:
        self.groups.charge(job.group, job.area, t)
        self.users.charge(job.user, job.area, t)
        self.priority_version += 1
