"""Decayed-usage fair-share accounting.

All three production schedulers the paper emulates implement some notion
of *fair share* ([14] in the paper): entities (users or groups) have
target shares of the machine, recent usage is accumulated with an
exponential decay, and queued jobs of under-served entities are boosted.
The *dynamic re-prioritization* this produces is exactly the mechanism
behind the paper's delay cascades (§4.3.2.1): a native job held up by an
interstitial job can be overtaken by a later-arriving job whose owner's
decayed usage is lower.

Incremental maintenance
-----------------------

Because every entity's usage decays at the *same* exponential rate, the
ratio of any two entities' decayed usages — and therefore every
``usage_share`` and ``factor`` — is constant between charges: decay
rescales all usages by a common ``exp(-rate * dt)`` that cancels out of
the share quotient.  The tracker exploits this with a :attr:`version`
counter bumped on every charge and a per-entity factor cache keyed by
it, so a scheduling pass over a long queue costs one dictionary lookup
per entity instead of a fresh decay/total/share evaluation per queued
job.  Schedulers watch the policy-level version (see
:class:`~repro.sched.priority.PriorityPolicy`) to decide whether a
cached priority ordering is still valid (DESIGN §13).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Tuple

from repro.errors import ConfigurationError


class FairShareTracker:
    """Tracks exponentially-decayed usage per entity.

    Parameters
    ----------
    half_life_s:
        Usage half-life in seconds (production systems use days to
        weeks; we default to one week).
    shares:
        Optional explicit target shares per entity.  Entities absent
        from the mapping get a share of 1.  Shares are normalized over
        the entities *known to the tracker* (charged at least once or
        listed in ``shares``), so "all users have equal shares" is the
        default behaviour, matching the paper's description of Ross.
    """

    DEFAULT_HALF_LIFE = 7 * 86400.0

    def __init__(
        self,
        half_life_s: float = DEFAULT_HALF_LIFE,
        shares: Optional[Dict[str, float]] = None,
    ) -> None:
        if not math.isfinite(half_life_s) or half_life_s <= 0:
            raise ConfigurationError(
                f"half_life_s must be positive and finite, got {half_life_s}"
            )
        self.half_life_s = float(half_life_s)
        self._decay_rate = math.log(2.0) / self.half_life_s
        self._shares: Dict[str, float] = dict(shares or {})
        for entity, share in self._shares.items():
            if share <= 0:
                raise ConfigurationError(
                    f"share for {entity!r} must be positive, got {share}"
                )
        #: entity -> (usage at last update, last update time)
        self._usage: Dict[str, Tuple[float, float]] = {
            e: (0.0, 0.0) for e in self._shares
        }
        #: Bumped on every charge.  Factors are time-invariant between
        #: bumps (uniform decay cancels out of the share quotient), so
        #: a cached factor — or a whole cached queue ordering — stays
        #: valid exactly while the version is unchanged.
        self.version: int = 0
        # Performance caches: schedulers evaluate factors for every
        # queued job at the same instant, so total usage per timestamp
        # and the normalized share table are memoized (profiling showed
        # them dominating continual-run time otherwise).
        self._total_cache: Tuple[float, float] = (math.nan, 0.0)
        #: Per-entity decayed usage at the memoized timestamp, built as
        #: a side product of ``total_usage`` so the per-entity queries a
        #: re-key makes right after it are dictionary lookups.
        self._usage_at: Dict[str, float] = {}
        self._share_cache: Optional[Dict[str, float]] = None
        self._share_total: float = 0.0
        #: entity -> (version the value was computed at, factor value).
        self._factor_cache: Dict[str, Tuple[int, float]] = {}

    # ------------------------------------------------------------------
    def entities(self) -> Iterable[str]:
        """Entities known to the tracker."""
        return self._usage.keys()

    def _decayed(self, value: float, since: float, t: float) -> float:
        if t <= since:
            return value
        return value * math.exp(-self._decay_rate * (t - since))

    def charge(self, entity: str, amount: float, t: float) -> None:
        """Add ``amount`` (CPU-seconds) of usage for ``entity`` at ``t``."""
        if amount < 0:
            raise ConfigurationError(f"amount must be >= 0, got {amount}")
        if entity not in self._usage:
            self._share_cache = None  # population changed
        value, since = self._usage.get(entity, (0.0, t))
        self._usage[entity] = (self._decayed(value, since, t) + amount, t)
        self._total_cache = (math.nan, 0.0)
        self.version += 1

    def usage(self, entity: str, t: float) -> float:
        """Decayed usage of ``entity`` at time ``t``."""
        value, since = self._usage.get(entity, (0.0, t))
        return self._decayed(value, since, t)

    def total_usage(self, t: float) -> float:
        """Sum of decayed usage over all entities at ``t`` (memoized per
        timestamp; charges invalidate the memo)."""
        if self._total_cache[0] == t:
            return self._total_cache[1]
        usage_at = {e: self.usage(e, t) for e in self._usage}
        total = sum(usage_at.values())
        self._usage_at = usage_at
        self._total_cache = (t, total)
        return total

    def usage_share(self, entity: str, t: float) -> float:
        """Fraction of total decayed usage attributed to ``entity``
        (0 when nobody has any usage)."""
        total = self.total_usage(t)
        if total <= 0.0:
            return 0.0
        return self._usage_at.get(entity, 0.0) / total

    def target_share(self, entity: str) -> float:
        """Normalized target share of ``entity`` among known entities.

        Unknown entities are treated as share-1 newcomers against the
        current population (a tracker that knows nobody returns 1.0).
        The normalized table is cached until the population changes.
        """
        if self._share_cache is None:
            known = dict(self._shares)
            for e in self._usage:
                known.setdefault(e, 1.0)
            self._share_cache = known
            self._share_total = sum(known.values())
        known = self._share_cache
        if entity in known:
            return known[entity] / self._share_total
        # Newcomer: one extra unit share against the population, without
        # polluting the cache (queries must not mutate state).
        return 1.0 / (self._share_total + 1.0)

    def factor(self, entity: str, t: float) -> float:
        """Fair-share priority factor in [-1, 1].

        Positive when the entity is under-served (target share exceeds
        its recent usage share), negative when over-served.  This is the
        quantity priority policies weight into job scores.

        The value is memoized per entity and :attr:`version`: between
        charges the factor is mathematically constant in ``t`` (uniform
        decay cancels out of the share quotient), so repeat evaluations
        — one per queued job per scheduling pass in the naive scheme —
        collapse to a dictionary lookup.
        """
        hit = self._factor_cache.get(entity)
        if hit is not None and hit[0] == self.version:
            return hit[1]
        value = self.target_share(entity) - self.usage_share(entity, t)
        self._factor_cache[entity] = (self.version, value)
        return value
