"""Native queueing-policy substrate.

The paper's three machines run three different production schedulers
(Table 1): PBS on Ross (equal shares, restrictive backfill), LSF on Blue
Mountain (hierarchical group-level fair share, aggressive backfill) and
DPCS on Blue Pacific (user *and* group fair share plus time-of-day
constraints).  This package implements the shared machinery — priority
policies, decayed-usage fair-share trackers, EASY and conservative
backfill — and composes it into per-machine scheduler presets.
"""

from repro.sched.base import Scheduler
from repro.sched.fairshare import FairShareTracker
from repro.sched.predictor import PerUserRuntimePredictor
from repro.sched.priority import (
    FcfsPolicy,
    HierarchicalFairSharePolicy,
    PriorityPolicy,
    UserFairSharePolicy,
    UserGroupFairSharePolicy,
)
from repro.sched.presets import (
    dpcs_scheduler,
    fcfs_scheduler,
    lsf_scheduler,
    pbs_scheduler,
    scheduler_for,
)
from repro.sched.queue_scheduler import BackfillMode, QueueScheduler
from repro.sched.reference import ReferenceQueueScheduler
from repro.sched.timeofday import TimeOfDayPolicy

__all__ = [
    "Scheduler",
    "QueueScheduler",
    "ReferenceQueueScheduler",
    "BackfillMode",
    "PriorityPolicy",
    "FcfsPolicy",
    "UserFairSharePolicy",
    "HierarchicalFairSharePolicy",
    "UserGroupFairSharePolicy",
    "FairShareTracker",
    "TimeOfDayPolicy",
    "PerUserRuntimePredictor",
    "pbs_scheduler",
    "lsf_scheduler",
    "dpcs_scheduler",
    "fcfs_scheduler",
    "scheduler_for",
]
