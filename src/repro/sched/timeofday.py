"""Time-of-day dispatch constraints (Blue Pacific / DPCS).

Table 1 notes Blue Pacific adds "time of day constraints" on top of fair
share: production practice at Livermore reserved daytime capacity for
interactive-scale work by only *starting* wide jobs outside business
hours.  We model a policy where jobs wider than ``max_day_cpus`` may
only start during the night window or on weekends.  The simulation
clock's origin (t = 0) is taken to be Monday 00:00.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.jobs import Job
from repro.units import DAY, HOUR


@dataclass(frozen=True)
class TimeOfDayPolicy:
    """Start-time eligibility for wide jobs.

    Parameters
    ----------
    max_day_cpus:
        Jobs strictly wider than this may only start outside the daytime
        window.
    day_start_hour, day_end_hour:
        Daytime window boundaries in hours (local clock, ``0 <= h < 24``,
        start < end).
    weekends_free:
        When True (default) Saturdays and Sundays count as night, i.e.
        wide jobs may start any time on weekends.
    """

    max_day_cpus: int
    day_start_hour: float = 7.0
    day_end_hour: float = 19.0
    weekends_free: bool = True

    def __post_init__(self) -> None:
        if self.max_day_cpus < 0:
            raise ConfigurationError(
                f"max_day_cpus must be >= 0, got {self.max_day_cpus}"
            )
        for name in ("day_start_hour", "day_end_hour"):
            h = getattr(self, name)
            if not math.isfinite(h) or not (0.0 <= h < 24.0):
                raise ConfigurationError(f"{name} must be in [0, 24), got {h}")
        if self.day_start_hour >= self.day_end_hour:
            raise ConfigurationError(
                "day_start_hour must precede day_end_hour "
                f"({self.day_start_hour} >= {self.day_end_hour})"
            )

    # ------------------------------------------------------------------
    def hour_of_day(self, t: float) -> float:
        """Hour of the simulated day at time ``t`` (t = 0 is midnight)."""
        return (t % DAY) / HOUR

    def day_of_week(self, t: float) -> int:
        """0 = Monday ... 6 = Sunday (t = 0 is Monday 00:00)."""
        return int(t // DAY) % 7

    def is_daytime(self, t: float) -> bool:
        """Whether ``t`` falls in the constrained daytime window."""
        if self.weekends_free and self.day_of_week(t) >= 5:
            return False
        return self.day_start_hour <= self.hour_of_day(t) < self.day_end_hour

    def eligible(self, job: Job, t: float) -> bool:
        """Whether ``job`` may *start* at time ``t``.

        Queued-but-ineligible jobs stay queued; the scheduler treats
        them as held for this pass and reconsiders them next pass.
        """
        if job.cpus <= self.max_day_cpus:
            return True
        return not self.is_daytime(t)

    def next_eligible_time(self, job: Job, t: float) -> float:
        """Earliest time >= ``t`` at which ``job`` may start.

        Used by reservation-based reasoning; scans forward hour by hour
        which is exact because eligibility only changes on hour (and
        day) boundaries given integral window bounds.
        """
        if self.eligible(job, t):
            return t
        # Jump to the end of today's daytime window, or to Saturday.
        candidate = (t // DAY) * DAY + self.day_end_hour * HOUR
        if candidate <= t:
            candidate += DAY
        while not self.eligible(job, candidate):  # pragma: no cover - guard
            candidate += HOUR
        return candidate
