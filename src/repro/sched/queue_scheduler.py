"""The composite native scheduler.

:class:`QueueScheduler` glues together a priority policy (who is most
deserving), a backfill mode (how aggressively to fill holes), an
optional time-of-day eligibility policy and an optional runtime
predictor.  Every production scheduler preset in
:mod:`repro.sched.presets` is an instance of this class.

Incremental maintenance (DESIGN §13)
------------------------------------

The naive formulation — re-sort the queue by ``sort_key(job, t)`` and
rebuild the running-job release list on every pass — is what
:class:`~repro.sched.reference.ReferenceQueueScheduler` retains, and
what dominated continual-mode profiles.  This class produces the same
decisions from incrementally maintained structures:

* the pending queue is kept sorted by the time-shift-invariant
  :meth:`~repro.sched.priority.PriorityPolicy.rank_key` and only
  re-keyed when :attr:`~repro.sched.priority.PriorityPolicy.priority_version`
  bumps (a fair-share charge actually changed relative priorities);
  submissions insert with ``bisect`` and the head job is ``_order[0]``;
* release claims come from the cluster's sorted timeline (or, with a
  predictor, from a cache keyed on ``(cluster.epoch, predictor.version)``)
  instead of a rebuild-and-sort of ``cluster.running``;
* a pass that provably cannot start anything — same cluster epoch, same
  priority version, same queue membership, same time-of-day phase as a
  previous no-start pass, and (conservative backfill only) no estimated
  release expiring in between — is skipped outright.

The skip lives *inside* ``schedule`` so engine-level records and
counters (``sched_pass``, ``scheduling_passes``) stay byte-identical to
the naive scheduler's; the golden-trace suite and
``tests/sched/test_incremental_differential.py`` enforce exactly that.
"""

from __future__ import annotations

import bisect
import enum
import math
from typing import Dict, List, Optional, Tuple

from repro.jobs import Job
from repro.sched.backfill import select_conservative, select_easy
from repro.sched.base import Scheduler
from repro.sched.predictor import PerUserRuntimePredictor
from repro.sched.priority import PriorityPolicy, ScoreKey
from repro.sched.timeofday import TimeOfDayPolicy
from repro.sim.state import ClusterState


#: One queued job inside a fair-share class bucket:
#: ``(wait_term, submit_time, job_id, job)``.  ``job_id`` is unique, so
#: tuple comparison never reaches the (incomparable) job itself.
ClassEntry = Tuple[float, float, int, Job]


class BackfillMode(enum.Enum):
    """How holes in the schedule may be filled."""

    #: No backfill: strictly run the queue in priority order.
    NONE = "none"
    #: EASY backfill: protect only the head job's reservation.
    EASY = "easy"
    #: Conservative backfill: protect every queued job's reservation.
    CONSERVATIVE = "conservative"


class QueueScheduler(Scheduler):
    """Priority queue + backfill native scheduler.

    Parameters
    ----------
    policy:
        Priority policy (fair share flavour).  Relative priorities are
        re-evaluated whenever the policy's version bumps, which yields
        the dynamic re-prioritization the paper discusses.
    backfill:
        One of :class:`BackfillMode`.
    timeofday:
        Optional :class:`TimeOfDayPolicy`; ineligible jobs are held (not
        considered for starting) for the current pass.
    predictor:
        Optional runtime predictor.  When given, all scheduler-internal
        estimates (backfill windows, shadow times, ``backfillWallTime``)
        use corrected estimates instead of the user's raw ones.
    """

    def __init__(
        self,
        policy: PriorityPolicy,
        backfill: BackfillMode = BackfillMode.EASY,
        timeofday: Optional[TimeOfDayPolicy] = None,
        predictor: Optional[PerUserRuntimePredictor] = None,
    ) -> None:
        self.policy = policy
        self.backfill = backfill
        self.timeofday = timeofday
        self.predictor = predictor
        self.n_backfill_starts = 0
        self.n_pass_skips = 0
        self.n_priority_rekeys = 0
        self.n_release_rebuilds = 0
        #: Queued jobs in submission order (what ``pending_jobs``
        #: reports, unchanged from the naive scheduler).
        self._queue: List[Job] = []
        #: The same jobs as ``(rank_key, job)``, ascending — i.e. the
        #: descending-priority order every pass needs.  Valid while
        #: ``_order_version == policy.priority_version``.
        self._order: List[Tuple[ScoreKey, Job]] = []
        self._order_version = -1
        #: Queued jobs bucketed by fair-share class ``(user, group)``,
        #: each bucket ascending by ``(wait_term, submit, job_id)``
        #: where ``wait_term = wait_weight * submit / 86400`` is the
        #: precomputed time-invariant component of ``rank_key``.  All
        #: jobs of one class share their fair-share factor, and within
        #: a class the relative order never changes — so a re-key costs
        #: one factor evaluation per *class* plus a merge of sorted
        #: runs, not a factor evaluation per queued job.
        self._classes: Dict[Tuple[str, str], List[ClassEntry]] = {}
        #: Bumped whenever queue membership changes (submit / start).
        self._membership_version = 0
        #: Smallest CPU request over the queue, cached per membership
        #: version.  Gates whole passes: no backfill mode (nor the
        #: cluster itself) starts a job wider than the free CPUs.
        self._min_cpus = 0
        self._min_cpus_version = -1
        #: ``[job for _key, job in _order]``, cached per
        #: (order version, membership version) — the per-pass projection
        #: every selection needs.
        self._ordered_jobs: List[Job] = []
        self._ordered_key: Tuple[int, int] = (-1, -1)
        #: Time-of-day-eligible projection of ``_ordered_jobs``, cached
        #: per (ordered key, daytime phase): eligibility only depends on
        #: job width and the day/night phase, not on the exact instant.
        self._eligible_jobs: List[Job] = []
        self._eligible_key: Tuple[Tuple[int, int], bool] = ((-1, -1), False)
        #: Predictor-corrected release claims, sorted by (finish, cpus),
        #: cached per ``(cluster.epoch, predictor.version)``.
        self._claims_cache: List[Tuple[float, float]] = []
        self._claims_key: Tuple[int, int] = (-1, -1)
        #: ``_earliest_capacity`` release-walk result, cached per
        #: ``(cpus, epoch, predictor version)`` — within one epoch the
        #: walk's outcome is a fixed release time, and only the final
        #: ``max(t, ...)`` depends on the query instant.  Keeps the
        #: per-pass ``backfillWallTime`` probe O(1) between allocation
        #: changes (wake-heavy continual runs probe it constantly).
        self._capacity_key: Optional[Tuple[int, int, int]] = None
        self._capacity_at: float = math.inf
        #: Snapshot of the last pass that started nothing:
        #: ``(t, cluster epoch, priority version, membership version,
        #: predictor version, daytime phase)``.  See ``_can_skip``.
        self._no_start_state: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Scheduler interface
    # ------------------------------------------------------------------
    def submit(self, job: Job, t: float) -> None:
        self._queue.append(job)
        self._membership_version += 1
        entry = (
            self.policy.wait_weight * job.submit_time / 86400.0,
            job.submit_time,
            job.job_id,
            job,
        )
        bucket = self._classes.setdefault((job.user, job.group), [])
        bisect.insort(bucket, entry)
        if self._order_version == self.policy.priority_version:
            # Keys are comparable across the passes of one priority
            # version (rank_key is time-shift invariant), so a single
            # bisect keeps the order sorted without touching the rest.
            bisect.insort(self._order, (self.policy.rank_key(job, t), job))

    def on_finish(self, job: Job, t: float) -> None:
        self.policy.on_finish(job, t)
        if self.predictor is not None:
            self.predictor.observe(job)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def pending_jobs(self) -> List[Job]:
        return list(self._queue)

    def schedule(self, t: float, cluster: ClusterState) -> List[Job]:
        if not self._queue:
            return []
        if self._can_skip(t, cluster):
            self.n_pass_skips += 1
            return []
        if self._min_queued_cpus() > cluster.free_cpus:
            # Capacity gate: every backfill mode starts a job only when
            # it fits the instantaneous free CPUs, so when even the
            # narrowest queued job is too wide the pass cannot start
            # anything — regardless of priority order, which therefore
            # need not be re-keyed.
            self.n_pass_skips += 1
            return []
        self._ensure_order(t)
        ordered_key = (self._order_version, self._membership_version)
        if self._ordered_key != ordered_key:
            self._ordered_jobs = [job for _key, job in self._order]
            self._ordered_key = ordered_key
        ordered = self._ordered_jobs
        if self.timeofday is None:
            eligible = ordered
        elif not self.timeofday.is_daytime(t):
            # Nighttime (and free weekends): every queued job may start.
            eligible = ordered
        else:
            # Daytime eligibility is a pure width filter, so the
            # projection is reusable until the order or phase changes.
            eligible_key = (ordered_key, True)
            if self._eligible_key != eligible_key:
                limit = self.timeofday.max_day_cpus
                self._eligible_jobs = [j for j in ordered if j.cpus <= limit]
                self._eligible_key = eligible_key
            eligible = self._eligible_jobs
        releases = self._release_claims(cluster)
        if self.backfill is BackfillMode.CONSERVATIVE:
            starts = select_conservative(
                t,
                eligible,
                cluster.available_cpus,
                releases,
                self._estimate,
            )
        else:
            starts = select_easy(
                t,
                eligible,
                cluster.free_cpus,
                releases,
                self._estimate,
                backfill=self.backfill is BackfillMode.EASY,
            )
        if not starts:
            self._no_start_state = self._pass_state(t, cluster)
            return starts
        started_ids = {job.job_id for job in starts}
        # A start is a *backfill* start when some higher-priority
        # eligible job stayed queued — the job jumped a blocked
        # predecessor rather than running in turn.
        in_priority_prefix = True
        for job in eligible:
            if job.job_id in started_ids:
                if not in_priority_prefix:
                    self.n_backfill_starts += 1
            else:
                in_priority_prefix = False
        self._queue = [j for j in self._queue if j.job_id not in started_ids]
        self._order = [
            entry for entry in self._order
            if entry[1].job_id not in started_ids
        ]
        for job in starts:
            self._remove_from_class(job)
        self._membership_version += 1
        self._no_start_state = None
        return starts

    def head_job(self, t: float):
        if not self._queue:
            return None
        self._ensure_order(t)
        return self._order[0][1]

    def head_start_estimate(self, t: float, cluster: ClusterState) -> float:
        """The paper's ``backfillWallTime``: expected earliest start of
        the top-priority queued job, given running jobs' (possibly
        predictor-corrected) estimated completions and, when a
        time-of-day policy holds the job, its next eligibility window."""
        head = self.head_job(t)
        if head is None:
            return math.inf
        start = self._earliest_capacity(head.cpus, t, cluster)
        if self.timeofday is not None:
            start = max(start, self.timeofday.next_eligible_time(head, t))
        return start

    # ------------------------------------------------------------------
    # Incremental maintenance internals
    # ------------------------------------------------------------------
    def _min_queued_cpus(self) -> int:
        """Narrowest queued CPU request, cached per membership version
        (the queue only changes through ``submit`` and starts, both of
        which bump it)."""
        if self._min_cpus_version != self._membership_version:
            self._min_cpus = min(job.cpus for job in self._queue)
            self._min_cpus_version = self._membership_version
        return self._min_cpus

    def _ensure_order(self, t: float) -> None:
        """(Re)key the priority order if charges invalidated it.

        Costs one ``fair_share_factor`` per *class* — not per job —
        because every job of a class shares its factor, and ``wt - f``
        (with ``wt`` the wait term precomputed at submit) is float-for-
        float the expression :meth:`~PriorityPolicy.rank_key` evaluates.
        Each class bucket is already a sorted run of the final order,
        so the concatenation sorts in O(n log(classes)) merge passes.
        """
        version = self.policy.priority_version
        if self._order_version == version:
            return
        timers = self.timers
        if timers is not None:
            timers.start("priority_maintenance")
        factor_of = self.policy.fair_share_factor
        entries: List[Tuple[ScoreKey, Job]] = []
        extend = entries.extend
        for bucket in self._classes.values():
            f = factor_of(bucket[0][3], t)
            extend(((wt - f, s, jid), job) for wt, s, jid, job in bucket)
        # Keys embed (submit_time, job_id), so they are unique and jobs
        # themselves are never compared.
        entries.sort()
        self._order = entries
        self._order_version = version
        self.n_priority_rekeys += 1
        if timers is not None:
            timers.stop("priority_maintenance")

    def _remove_from_class(self, job: Job) -> None:
        """Drop a started job from its class bucket."""
        key = (job.user, job.group)
        bucket = self._classes[key]
        if len(bucket) == 1:
            del self._classes[key]
            return
        probe = (
            self.policy.wait_weight * job.submit_time / 86400.0,
            job.submit_time,
            job.job_id,
        )
        # The 3-tuple probe sorts immediately before its 4-tuple entry.
        idx = bisect.bisect_left(bucket, probe)
        while bucket[idx][2] != job.job_id:  # pragma: no cover - guard
            idx += 1
        del bucket[idx]

    def _release_claims(
        self, cluster: ClusterState
    ) -> List[Tuple[float, float]]:
        """(estimated finish, cpus) claims of running jobs, ascending.

        Without a predictor this is the cluster's own sorted timeline.
        With one, corrected claims are rebuilt only when the running set
        or the predictor's learned ratios changed; the stable sort from
        start order reproduces the naive scheduler's tie-breaking
        exactly.
        """
        if self.predictor is None:
            return cluster.release_claims()
        key = (cluster.epoch, self.predictor.version)
        if self._claims_key != key:
            timers = self.timers
            if timers is not None:
                timers.start("release_timeline")
            estimate = self.predictor.estimate
            claims = [
                (rec.start_time + estimate(rec.job), float(rec.cpus))
                for rec in cluster.running.values()
            ]
            claims.sort()
            self._claims_cache = claims
            self._claims_key = key
            self.n_release_rebuilds += 1
            if timers is not None:
                timers.stop("release_timeline")
        return self._claims_cache

    def _pass_state(self, t: float, cluster: ClusterState) -> tuple:
        return (
            t,
            cluster.epoch,
            self.policy.priority_version,
            self._membership_version,
            -1 if self.predictor is None else self.predictor.version,
            False if self.timeofday is None else self.timeofday.is_daytime(t),
        )

    def _can_skip(self, t: float, cluster: ClusterState) -> bool:
        """Whether this pass provably starts nothing.

        Sound because, relative to the remembered no-start pass at
        ``t_prev``: free/available CPUs and the claim set are unchanged
        (same epoch, same predictor version), the queue and its relative
        order are unchanged (same membership and priority versions), and
        eligibility is unchanged (same time-of-day phase).  Under EASY /
        NONE selection the only time-dependent term, the shadow-fit
        window ``t + estimate <= shadow``, shrinks as ``t`` grows — it
        can lose starts, never gain them.  Under CONSERVATIVE the
        reservation profile is additionally unchanged only while no
        claim expires, hence the release check over ``(t_prev, t]``.
        """
        state = self._no_start_state
        if state is None:
            return False
        t_prev, epoch, pversion, mversion, predversion, was_day = state
        if (
            epoch != cluster.epoch
            or pversion != self.policy.priority_version
            or mversion != self._membership_version
        ):
            return False
        if self.predictor is not None and predversion != self.predictor.version:
            return False
        if (
            self.timeofday is not None
            and self.timeofday.is_daytime(t) != was_day
        ):
            return False
        if self.backfill is BackfillMode.CONSERVATIVE:
            claims = self._release_claims(cluster)
            idx = bisect.bisect_right(claims, (t_prev, math.inf))
            if idx < len(claims) and claims[idx][0] <= t:
                return False
        # Advance the snapshot so the conservative expiry window stays
        # anchored to the most recent (equivalent) pass.
        self._no_start_state = (
            t, epoch, pversion, mversion, predversion, was_day
        )
        return True

    # ------------------------------------------------------------------
    # Shared internals
    # ------------------------------------------------------------------
    def _eligible(self, job: Job, t: float) -> bool:
        return self.timeofday is None or self.timeofday.eligible(job, t)

    def _estimate(self, job: Job) -> float:
        if self.predictor is not None:
            return self.predictor.estimate(job)
        return job.estimate

    def _earliest_capacity(
        self, cpus: int, t: float, cluster: ClusterState
    ) -> float:
        if cluster.fits_now(cpus):
            return t
        key = (
            cpus,
            cluster.epoch,
            -1 if self.predictor is None else self.predictor.version,
        )
        if self._capacity_key != key:
            free = float(cluster.free_cpus)
            capacity_at = math.inf
            for finish, released in self._release_claims(cluster):
                free += released
                if free >= cpus:
                    capacity_at = finish
                    break
            self._capacity_at = capacity_at
            self._capacity_key = key
        return max(t, self._capacity_at)
