"""Abstract scheduler interface consumed by the engine.

A scheduler owns the native queue.  The engine calls :meth:`submit` and
:meth:`on_finish` as events arrive and :meth:`schedule` once per
scheduling pass; the scheduler returns the jobs that should start *now*
(the engine performs the actual allocation so it can schedule the
completion events).

The one extra hook beyond a textbook scheduler is
:meth:`head_start_estimate`: the paper's ``backfillWallTime`` — when the
highest-priority queued job is expected to be able to run, "based on the
expected finishing time of jobs currently running".  The interstitial
controller (Figure 1) compares it against the interstitial job runtime.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, List, Optional

from repro.jobs import Job
from repro.sim.state import ClusterState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import PhaseTimers


class Scheduler(abc.ABC):
    """Interface between the engine and a native queueing policy."""

    #: Cumulative count of jobs started *out of priority order* (i.e.
    #: backfilled around a blocked, higher-priority job).  Concrete
    #: schedulers that backfill maintain it; the engine reads the final
    #: value through :attr:`backfill_starts`.
    n_backfill_starts: int = 0

    #: Hot-path maintenance counters (see DESIGN §13).  Incremental
    #: schedulers maintain them; the class-level zero default means the
    #: engine can read them off *any* scheduler without duck typing.
    n_pass_skips: int = 0
    n_priority_rekeys: int = 0
    n_release_rebuilds: int = 0

    #: Optional :class:`~repro.obs.PhaseTimers` the engine attaches so
    #: scheduler-internal phases (priority maintenance, release-timeline
    #: rebuilds) show up in ``repro profile``.
    timers: "Optional[PhaseTimers]" = None

    @property
    def backfill_starts(self) -> int:
        """Jobs started out of priority order, for
        ``SimResult.counters.backfill_starts``.  A real property on the
        base class — custom schedulers that never backfill report the
        class default of 0 instead of relying on engine ``getattr``
        fallbacks."""
        return self.n_backfill_starts

    def attach_timers(self, timers: "Optional[PhaseTimers]") -> None:
        """Accept the engine's phase timers (no-op to ignore them)."""
        self.timers = timers

    @abc.abstractmethod
    def submit(self, job: Job, t: float) -> None:
        """Enqueue a newly arrived native job."""

    @abc.abstractmethod
    def on_finish(self, job: Job, t: float) -> None:
        """Observe a job completion (fair-share charging, predictors)."""

    @abc.abstractmethod
    def schedule(self, t: float, cluster: ClusterState) -> List[Job]:
        """Return queued jobs to start at time ``t``.

        Must be consistent: the returned set must fit in
        ``cluster.free_cpus`` simultaneously.  The engine allocates them
        in order.
        """

    @abc.abstractmethod
    def head_start_estimate(self, t: float, cluster: ClusterState) -> float:
        """Expected earliest start time of the top-priority queued job,
        from running jobs' estimated completions (``math.inf`` when the
        queue is empty)."""

    @abc.abstractmethod
    def pending_jobs(self) -> List[Job]:
        """Jobs still waiting in the queue (for truncated-run reporting)."""

    @property
    @abc.abstractmethod
    def queue_length(self) -> int:
        """Number of queued (not yet started) jobs."""

    def head_job(self, t: float) -> "Job | None":
        """The top-priority queued job, or None (used by preemption to
        size the hole to carve; optional for custom schedulers)."""
        return None
