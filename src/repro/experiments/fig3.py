"""Figure 3 — CDF of short-project makespans on Blue Mountain.

Two equal-size 32-CPU projects: many short jobs (32 k x 120 s @ 1 GHz =
458 s actual) vs fewer long jobs (4 k x 960 s @ 1 GHz = 3664 s actual).
The paper overlays the theoretical minimum makespan (empty machine) and
the average-utilization minimum (normalized by 1/(1-<U>)); the long
right tail comes from projects that straddle persistently-high
utilization stretches.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.sampling import sample_short_projects
from repro.experiments.common import (
    TableResult,
    scaled_kjobs,
)
from repro.experiments.context import RunContext, as_context
from repro.jobs import InterstitialProject, JobKind
from repro.metrics.histograms import survival
from repro.theory import ideal_makespan_for
from repro.units import HOUR

MACHINE = "blue_mountain"
#: (kJobs, runtime s @ 1 GHz) for the two equal-peta-cycle projects.
CONFIGS = ((32.0, 120.0), (4.0, 960.0))
CPUS = 32

#: Survival-probability levels reported in the rendered table.
QUANTILES = (0.1, 0.25, 0.5, 0.75, 0.9)


def run(ctx: Optional[RunContext] = None) -> TableResult:
    ctx = as_context(ctx)
    scale = ctx.scale
    machine = ctx.machine_for(MACHINE)
    native = ctx.native_result_for(MACHINE)
    utilization = native.native_utilization
    result = TableResult(
        exp_id="fig3",
        title=(
            "Figure 3: makespan CDF on Blue Mountain, 32-CPU projects "
            f"(scale={scale.name}; quantiles in hours)"
        ),
        headers=["project", "n", "theory-min", "theory-(1-U)"]
        + [f"q{int(q * 100)}" for q in QUANTILES],
    )
    for kjobs, runtime in CONFIGS:
        n_jobs = scaled_kjobs(kjobs, scale)
        project = InterstitialProject(
            n_jobs=n_jobs, cpus_per_job=CPUS, runtime_1ghz=runtime
        )
        cont, _ = ctx.continual_result_for(MACHINE, CPUS, runtime)
        samples = sample_short_projects(
            cont.jobs(JobKind.INTERSTITIAL),
            n_jobs=n_jobs,
            n_samples=scale.sampled_projects,
            rng=ctx.rng_for(f"fig3:{kjobs}:{runtime}"),
        )
        # Theory lines: empty machine and average-utilization minimum.
        theory_empty = ideal_makespan_for(project, machine, 0.0)
        theory_avg = ideal_makespan_for(project, machine, utilization)
        label = f"{n_jobs} x {CPUS}CPU x {runtime:.0f}s@1GHz"
        if samples.size == 0:
            result.rows.append([label, "0", "-", "-"] + ["n/a"] * len(QUANTILES))
            continue
        qs = np.quantile(samples, QUANTILES)
        result.rows.append(
            [
                label,
                str(samples.size),
                f"{theory_empty / HOUR:.1f}",
                f"{theory_avg / HOUR:.1f}",
            ]
            + [f"{q / HOUR:.1f}" for q in qs]
        )
        xs, surv = survival(samples)
        result.data[label] = {
            "samples_s": samples.tolist(),
            "survival_x_s": xs.tolist(),
            "survival_p": surv.tolist(),
            "theory_empty_s": theory_empty,
            "theory_avg_util_s": theory_avg,
        }
    result.notes.append(
        "Paper: means ~186 h (short jobs) vs ~200 h (long jobs) with "
        "large std (157 / 227 h) and a long right tail from "
        "persistently-high-utilization stretches."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
