"""§4.3.2.1 analysis — how native delays decompose into direct blocking
vs re-prioritization cascades.

The paper's claim: individual interstitial jobs delay a native job by
at most one interstitial runtime; mean waits nevertheless blow up
because "once a job is delayed, the delay may be propagated down to
subsequent jobs" — and "only about 1% of the jobs are actually
accounting for this large difference".

This driver replays Blue Mountain with the two §4.3.2 continual
streams, matches every native job to its baseline start time, and
reports the direct/cascade decomposition plus the concentration of the
damage across users (nobody wants the cascade landing on one group).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import TableResult
from repro.experiments.context import RunContext, as_context
from repro.experiments.continual_tables import (
    CONTINUAL_CPUS,
    CONTINUAL_RUNTIMES_1GHZ,
)
from repro.jobs import JobKind
from repro.metrics.cascade import cascade_report
from repro.metrics.slowdown import impact_concentration
from repro.units import normalize_runtime

MACHINE = "blue_mountain"


def run(ctx: Optional[RunContext] = None) -> TableResult:
    ctx = as_context(ctx)
    scale = ctx.scale
    machine = ctx.machine_for(MACHINE)
    baseline = ctx.native_result_for(MACHINE)
    result = TableResult(
        exp_id="cascade_analysis",
        title=(
            "Sec. 4.3.2.1: direct vs cascade native delays on Blue "
            f"Mountain (scale={scale.name})"
        ),
        headers=[
            "interstitial stream",
            "delayed > bound",
            "cascade fraction",
            "cascade share of extra wait",
            "mean extra wait",
            "max extra wait",
            "worst-user damage share",
        ],
    )
    for runtime_1ghz in CONTINUAL_RUNTIMES_1GHZ:
        actual = normalize_runtime(runtime_1ghz, machine.clock_ghz)
        loaded, _ = ctx.continual_result_for(
            MACHINE, CONTINUAL_CPUS, runtime_1ghz
        )
        report = cascade_report(
            baseline.jobs(JobKind.NATIVE),
            loaded.jobs(JobKind.NATIVE),
            interstitial_runtime_s=actual,
        )
        concentration = impact_concentration(
            baseline.jobs(JobKind.NATIVE), loaded.jobs(JobKind.NATIVE)
        )
        result.rows.append(
            [
                f"{CONTINUAL_CPUS}CPU x {actual:.0f}s",
                str(report.n_cascade),
                f"{report.cascade_fraction:.1%}",
                f"{report.cascade_share_of_extra_wait:.0%}",
                f"{report.mean_extra_wait_s:.0f}s",
                f"{report.max_extra_wait_s / 3600:.1f}h",
                f"{concentration:.0%}",
            ]
        )
        result.data[runtime_1ghz] = {
            "report": report,
            "concentration": concentration,
        }
    result.notes.append(
        "Paper: the per-event delay bound is one interstitial runtime; "
        "a ~1% tail of cascade-delayed jobs carries most of the mean "
        "blow-up."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
