"""Experiment scaling presets.

``trace_scale`` multiplies log length and native job count;
``project_scale`` multiplies interstitial project sizes (peta-cycles /
job counts).  Scaling both keeps a project's makespan the same fraction
of the log as in the paper, so continual runs and sampled short
projects stay statistically meaningful.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError

#: Environment variable selecting the scale preset for benchmarks.
SCALE_ENV_VAR = "REPRO_BENCH_SCALE"


@dataclass(frozen=True)
class ExperimentScale:
    """One scaling preset.

    Parameters
    ----------
    name:
        Preset label.
    trace_scale:
        Fraction of the paper's log length / native job count.
    project_scale:
        Fraction of the paper's interstitial project sizes.
    omniscient_samples:
        Random drop-in start times per omniscient config (paper: 20).
    sampled_projects:
        Short-project samples extracted per continual log (paper: 500).
    seed:
        Root seed; every experiment derives its generator from it.
    """

    name: str
    trace_scale: float
    project_scale: float
    omniscient_samples: int
    sampled_projects: int
    seed: int = 2003

    def __post_init__(self) -> None:
        if not (0.0 < self.trace_scale <= 1.0):
            raise ConfigurationError(
                f"trace_scale must be in (0, 1]: {self.trace_scale}"
            )
        if not (0.0 < self.project_scale <= 1.0):
            raise ConfigurationError(
                f"project_scale must be in (0, 1]: {self.project_scale}"
            )
        if self.omniscient_samples <= 0 or self.sampled_projects <= 0:
            raise ConfigurationError("sample counts must be positive")


SCALES: Dict[str, ExperimentScale] = {
    # Smoke-test speed: minutes-long traces, tiny projects.
    "quick": ExperimentScale(
        name="quick",
        trace_scale=0.05,
        project_scale=0.03,
        omniscient_samples=5,
        sampled_projects=60,
    ),
    # Laptop default: ~2-week traces; preserves every shape claim.
    "default": ExperimentScale(
        name="default",
        trace_scale=0.15,
        project_scale=0.10,
        omniscient_samples=10,
        sampled_projects=200,
    ),
    # Full paper scale (expect tens of minutes per bench).
    "paper": ExperimentScale(
        name="paper",
        trace_scale=1.0,
        project_scale=1.0,
        omniscient_samples=20,
        sampled_projects=500,
    ),
}


def current_scale() -> ExperimentScale:
    """The scale selected by ``REPRO_BENCH_SCALE`` (default: default)."""
    name = os.environ.get(SCALE_ENV_VAR, "default")
    try:
        return SCALES[name]
    except KeyError:
        raise ConfigurationError(
            f"{SCALE_ENV_VAR}={name!r} is not one of {sorted(SCALES)}"
        ) from None
