"""Ablation — interstitial job width sweep (the breakage staircase).

Omniscient makespan of an equal-peta-cycle project as CPUs/job sweeps
over powers of two, on Blue Pacific (whose ~90-CPU average free pool
makes breakage bite hard, per §4.2).  Each measured point is compared
with the analytic breakage prediction relative to the 1-CPU project.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.core.runners import run_omniscient_samples
from repro.experiments.common import TableResult
from repro.experiments.context import RunContext, as_context
from repro.jobs import InterstitialProject
from repro.theory import breakage_factor
from repro.units import HOUR

MACHINE = "blue_pacific"
WIDTHS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)
PETA_CYCLES = 7.7
RUNTIME_1GHZ = 120.0


def run(ctx: Optional[RunContext] = None) -> TableResult:
    ctx = as_context(ctx)
    scale = ctx.scale
    machine = ctx.machine_for(MACHINE)
    native = ctx.native_result_for(MACHINE)
    trace = ctx.trace_for(MACHINE)
    utilization = native.native_utilization
    result = TableResult(
        exp_id="ablation_width",
        title=(
            "Ablation: breakage staircase on Blue Pacific — omniscient "
            f"makespan vs CPUs/job at {PETA_CYCLES * scale.project_scale:.2g} "
            f"peta-cycles (scale={scale.name})"
        ),
        headers=[
            "CPUs/job",
            "mean makespan h",
            "vs 1-CPU",
            "theory breakage",
        ],
    )
    base_mean = None
    for width in WIDTHS:
        project = InterstitialProject.from_peta_cycles(
            PETA_CYCLES * scale.project_scale,
            cpus_per_job=width,
            runtime_1ghz=RUNTIME_1GHZ,
        )
        makespans, _ = run_omniscient_samples(
            machine,
            trace.jobs,
            project,
            # The packer is cheap, so buy extra samples: width ratios
            # are a small effect easily drowned by drop-in-time noise.
            n_samples=max(30, 3 * scale.omniscient_samples),
            # One shared salt: every width sees the same drop-in times,
            # so the ratio isolates breakage from start-time luck.
            rng=ctx.rng_for("width-sweep"),
            native_result=native,
        )
        mean = float(makespans.mean())
        if base_mean is None:
            base_mean = mean
        theory = breakage_factor(machine.cpus, utilization, width)
        result.rows.append(
            [
                str(width),
                f"{mean / HOUR:.1f}",
                f"{mean / base_mean:.3f}",
                "inf" if math.isinf(theory) else f"{theory:.3f}",
            ]
        )
        result.data[width] = {
            "mean_makespan_s": mean,
            "ratio_vs_1cpu": mean / base_mean,
            "theory_breakage": theory,
        }
    result.notes.append(
        "Expected: ratios stay ~1 while many jobs tile the free pool, "
        "then climb in steps as floor(free/width) drops — the paper's "
        "breakage effect, dramatic only near the pool size."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
