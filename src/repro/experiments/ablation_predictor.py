"""Ablation — NWS-style runtime prediction (paper §4.3.1 suggestion).

"Usage prediction algorithms such as the Network Weather Service may be
able to provide better estimates."  We equip the Blue Mountain
scheduler with a per-user EWMA estimate corrector
(:class:`repro.sched.PerUserRuntimePredictor`) and measure what it buys
a continual interstitial stream and the native jobs, against the raw
user estimates.
"""

from __future__ import annotations

from typing import Optional

from repro.core.controller import InterstitialController
from repro.core.runners import run_with_controller
from repro.experiments.common import (
    TableResult,
    fmt_k,
)
from repro.experiments.context import RunContext, as_context
from repro.experiments.continual_tables import column_stats
from repro.jobs import InterstitialProject
from repro.sched import PerUserRuntimePredictor, lsf_scheduler

MACHINE = "blue_mountain"
CPUS = 32
RUNTIME_1GHZ = 120.0


def run(ctx: Optional[RunContext] = None) -> TableResult:
    ctx = as_context(ctx)
    scale = ctx.scale
    machine = ctx.machine_for(MACHINE)
    trace = ctx.trace_for(MACHINE)
    project = InterstitialProject(
        n_jobs=1, cpus_per_job=CPUS, runtime_1ghz=RUNTIME_1GHZ
    )
    result = TableResult(
        exp_id="ablation_predictor",
        title=(
            "Ablation: per-user runtime predictor "
            f"(Blue Mountain, continual {CPUS}CPU x 120s@1GHz, "
            f"scale={scale.name})"
        ),
        headers=[
            "scheduler estimates",
            "interstitial jobs",
            "overall util",
            "native median wait",
            "native mean wait",
        ],
    )
    for label, predictor in (
        ("raw user estimates", None),
        ("EWMA predictor", PerUserRuntimePredictor()),
    ):
        controller = InterstitialController(
            machine=machine, project=project, continual=True
        )
        res = run_with_controller(
            machine,
            trace.jobs,
            controller,
            scheduler=lsf_scheduler(predictor=predictor),
            horizon=trace.duration,
            check_invariants=ctx.check_invariants,
        )
        stats = column_stats(res)
        result.rows.append(
            [
                label,
                str(stats["interstitial_jobs"]),
                f"{stats['overall_utilization']:.3f}",
                fmt_k(stats["median_wait_all_s"]),
                fmt_k(stats["mean_wait_all_s"]),
            ]
        )
        result.data[label] = stats
    result.notes.append(
        "Expected: corrected estimates tighten backfill windows, "
        "letting natives start sooner (lower waits) at similar or "
        "better interstitial throughput."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
