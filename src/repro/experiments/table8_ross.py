"""Table 8 (first) — Continual interstitial computing on Ross.

Paper: overall utilization jumps from .631 to .988; native impact is
modest except that 1633 s interstitial jobs inflate the 5 %-largest
median wait (Ross's week-long native jobs plus its more restrictive
backfill make the big jobs the victims).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import TableResult
from repro.experiments.context import RunContext, as_context
from repro.experiments.continual_tables import build


def run(ctx: Optional[RunContext] = None) -> TableResult:
    ctx = as_context(ctx)
    result = build("table8_ross", "ross", ctx, "Ross")
    result.title = "Table 8a: " + result.title
    result.notes.append(
        "Paper shapes: overall util .631 -> .988; native util ~flat; "
        "long interstitial jobs specifically hurt the 5% largest jobs."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
