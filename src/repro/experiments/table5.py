"""Table 5 — Native job performance impact on Blue Mountain.

Average and median wait times and expansion factors of native jobs,
over all jobs and the 5 % largest (by CPU-seconds), for the baseline
and the two continual 32-CPU interstitial streams.  Paper shape: the
longer interstitial jobs hurt natives more; means move ~10x while
medians move modestly.
"""

from __future__ import annotations

import numpy as np

from typing import Optional

from repro.experiments.common import (
    TableResult,
    fmt_k,
)
from repro.experiments.context import RunContext, as_context
from repro.experiments.continual_tables import (
    CONTINUAL_CPUS,
    CONTINUAL_RUNTIMES_1GHZ,
)
from repro.jobs import JobKind
from repro.metrics.waits import expansion_factors, largest_fraction, wait_times
from repro.units import normalize_runtime

MACHINE = "blue_mountain"


def _population_stats(jobs) -> dict:
    waits = wait_times(jobs)
    efs = expansion_factors(jobs)
    efs = efs[np.isfinite(efs)]
    return {
        "mean_wait_s": float(waits.mean()) if waits.size else 0.0,
        "median_wait_s": float(np.median(waits)) if waits.size else 0.0,
        "mean_ef": float(efs.mean()) if efs.size else 1.0,
        "median_ef": float(np.median(efs)) if efs.size else 1.0,
    }


def run(ctx: Optional[RunContext] = None) -> TableResult:
    ctx = as_context(ctx)
    scale = ctx.scale
    machine = ctx.machine_for(MACHINE)
    columns = [("Native only", ctx.native_result_for(MACHINE))]
    for runtime_1ghz in CONTINUAL_RUNTIMES_1GHZ:
        actual = normalize_runtime(runtime_1ghz, machine.clock_ghz)
        label = f"+ {CONTINUAL_CPUS}CPU x {actual:.0f}s"
        run_result, _ = ctx.continual_result_for(
            MACHINE, CONTINUAL_CPUS, runtime_1ghz
        )
        columns.append((label, run_result))

    result = TableResult(
        exp_id="table5",
        title=(
            "Table 5: Native job performance on Blue Mountain "
            f"(scale={scale.name})"
        ),
        headers=["population", "metric"] + [label for label, _ in columns],
    )
    all_stats = []
    big_stats = []
    for _, res in columns:
        natives = res.jobs(JobKind.NATIVE)
        all_stats.append(_population_stats(natives))
        big_stats.append(_population_stats(largest_fraction(natives, 0.05)))
    result.data["all"] = {
        label: s for (label, _), s in zip(columns, all_stats)
    }
    result.data["largest5"] = {
        label: s for (label, _), s in zip(columns, big_stats)
    }

    def rows_for(pop_label, stats):
        result.rows.append(
            [pop_label, "Avg wait (s)"]
            + [fmt_k(s["mean_wait_s"]) for s in stats]
        )
        result.rows.append(
            ["", "Median wait (s)"]
            + [fmt_k(s["median_wait_s"]) for s in stats]
        )
        result.rows.append(
            ["", "Avg EF"] + [f"{s['mean_ef']:.1f}" for s in stats]
        )
        result.rows.append(
            ["", "Median EF"] + [f"{s['median_ef']:.1f}" for s in stats]
        )

    rows_for("All native", all_stats)
    rows_for("5% largest", big_stats)
    result.notes.append(
        "Paper: all-native avg wait 2k -> 22k / 24k s, median 0 -> "
        "200 / 400 s; largest-5% avg 10k -> 66k / 93k s.  Means move an "
        "order of magnitude; medians move by ~one interstitial runtime."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
