"""Registry of all experiment drivers, keyed by CLI name.

Single source of truth consumed by the CLI, the report generator, the
parallel executor and the test suite.  Each entry is a declarative
:class:`ExperimentSpec`: the CLI name, the driver callable (every
driver exposes ``run(ctx) -> TableResult``) and the names of other
experiments whose artifacts it reuses.  ``deps`` are scheduling hints
for the parallel executor — running an experiment before its deps is
still *correct* (drivers recompute anything missing through the
content-addressed store), just wasteful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from repro.experiments import (
    ablation_caps,
    ablation_efficiency,
    ablation_estimates,
    ablation_load,
    ablation_predictor,
    ablation_preemption,
    ablation_width,
    cascade_analysis,
    elastic_tables,
    fault_ablation,
    fig2,
    fig3,
    fig4,
    fig4_outages,
    fig5,
    fig6,
    fit_theory,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8_limited,
    table8_ross,
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment: CLI name, driver and scheduling hints."""

    #: CLI name (also the report section heading).
    name: str
    #: Driver callable; ``driver(ctx)`` returns a ``TableResult``.
    driver: Callable
    #: Experiments whose store/artifact output this driver reuses.
    deps: Tuple[str, ...] = field(default=())


def _specs(*entries: ExperimentSpec) -> Dict[str, ExperimentSpec]:
    return {spec.name: spec for spec in entries}


#: CLI name -> declarative spec.
SPECS: Dict[str, ExperimentSpec] = _specs(
    ExperimentSpec("table1", table1.run),
    ExperimentSpec("table2", table2.run),
    ExperimentSpec("table3", table3.run, deps=("table2",)),
    ExperimentSpec("table4", table4.run),
    ExperimentSpec("table5", table5.run),
    ExperimentSpec("table6", table6.run, deps=("table5",)),
    ExperimentSpec("table7", table7.run),
    ExperimentSpec("table8-ross", table8_ross.run),
    ExperimentSpec("table8-limited", table8_limited.run, deps=("table6",)),
    ExperimentSpec("fig2", fig2.run, deps=("table2",)),
    ExperimentSpec("fig3", fig3.run),
    ExperimentSpec("fig4", fig4.run, deps=("table6",)),
    ExperimentSpec("fig4-outages", fig4_outages.run),
    ExperimentSpec("fault-ablation", fault_ablation.run),
    ExperimentSpec("fig5", fig5.run, deps=("table6",)),
    ExperimentSpec("fig6", fig6.run, deps=("fig5",)),
    ExperimentSpec("fit-theory", fit_theory.run, deps=("table2",)),
    ExperimentSpec("cascade-analysis", cascade_analysis.run, deps=("table6",)),
    ExperimentSpec("ablation-caps", ablation_caps.run, deps=("table8-limited",)),
    ExperimentSpec("ablation-efficiency", ablation_efficiency.run),
    ExperimentSpec("ablation-estimates", ablation_estimates.run),
    ExperimentSpec("ablation-load", ablation_load.run),
    ExperimentSpec("ablation-predictor", ablation_predictor.run),
    ExperimentSpec("ablation-preemption", ablation_preemption.run),
    ExperimentSpec("ablation-width", ablation_width.run),
    ExperimentSpec("elastic-tables", elastic_tables.run),
)

#: CLI name -> driver ``run`` callable (derived view of :data:`SPECS`).
EXPERIMENTS: Dict[str, Callable] = {
    name: spec.driver for name, spec in SPECS.items()
}

#: Paper artifacts in presentation order (tables/figures before
#: extensions), used by the report generator.
REPORT_ORDER = (
    "table1",
    "table2",
    "fit-theory",
    "table3",
    "fig2",
    "table4",
    "fig3",
    "table5",
    "table6",
    "table7",
    "table8-ross",
    "table8-limited",
    "fig4",
    "fig4-outages",
    "fault-ablation",
    "fig5",
    "fig6",
    "cascade-analysis",
    "ablation-estimates",
    "ablation-predictor",
    "ablation-preemption",
    "ablation-width",
    "ablation-caps",
    "ablation-load",
    "ablation-efficiency",
    "elastic-tables",
)
