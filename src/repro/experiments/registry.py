"""Registry of all experiment drivers, keyed by CLI name.

Single source of truth consumed by the CLI, the report generator and
the test suite.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments import (
    ablation_caps,
    ablation_efficiency,
    ablation_estimates,
    ablation_load,
    ablation_predictor,
    ablation_preemption,
    ablation_width,
    cascade_analysis,
    fault_ablation,
    fig2,
    fig3,
    fig4,
    fig4_outages,
    fig5,
    fig6,
    fit_theory,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8_limited,
    table8_ross,
)

#: CLI name -> driver ``run`` callable.
EXPERIMENTS: Dict[str, Callable] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "table7": table7.run,
    "table8-ross": table8_ross.run,
    "table8-limited": table8_limited.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig4-outages": fig4_outages.run,
    "fault-ablation": fault_ablation.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fit-theory": fit_theory.run,
    "cascade-analysis": cascade_analysis.run,
    "ablation-caps": ablation_caps.run,
    "ablation-efficiency": ablation_efficiency.run,
    "ablation-estimates": ablation_estimates.run,
    "ablation-load": ablation_load.run,
    "ablation-predictor": ablation_predictor.run,
    "ablation-preemption": ablation_preemption.run,
    "ablation-width": ablation_width.run,
}

#: Paper artifacts in presentation order (tables/figures before
#: extensions), used by the report generator.
REPORT_ORDER = (
    "table1",
    "table2",
    "fit-theory",
    "table3",
    "fig2",
    "table4",
    "fig3",
    "table5",
    "table6",
    "table7",
    "table8-ross",
    "table8-limited",
    "fig4",
    "fig4-outages",
    "fault-ablation",
    "fig5",
    "fig6",
    "cascade-analysis",
    "ablation-estimates",
    "ablation-predictor",
    "ablation-preemption",
    "ablation-width",
    "ablation-caps",
    "ablation-load",
    "ablation-efficiency",
)
