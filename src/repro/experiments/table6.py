"""Table 6 — Continual interstitial computing on Blue Mountain.

Paper: 408 685 / 49 465 interstitial jobs pushed overall utilization
from .776 to ~.94 with native utilization and throughput unchanged; the
5 %-largest median wait grew from ~1k s to 4.4k / 5.7k s.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale, current_scale
from repro.experiments.continual_tables import build
from repro.experiments.common import TableResult


def run(scale: ExperimentScale = None) -> TableResult:
    scale = scale or current_scale()
    result = build("table6", "blue_mountain", scale, "Blue Mountain")
    result.title = "Table 6: " + result.title
    result.notes.append(
        "Paper shapes: overall util .776 -> ~.94; native util and job "
        "count unchanged; largest-5% median wait grows by roughly one "
        "interstitial runtime (more for the longer jobs)."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
