"""Table 6 — Continual interstitial computing on Blue Mountain.

Paper: 408 685 / 49 465 interstitial jobs pushed overall utilization
from .776 to ~.94 with native utilization and throughput unchanged; the
5 %-largest median wait grew from ~1k s to 4.4k / 5.7k s.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import TableResult
from repro.experiments.context import RunContext, as_context
from repro.experiments.continual_tables import build


def run(ctx: Optional[RunContext] = None) -> TableResult:
    ctx = as_context(ctx)
    result = build("table6", "blue_mountain", ctx, "Blue Mountain")
    result.title = "Table 6: " + result.title
    result.notes.append(
        "Paper shapes: overall util .776 -> ~.94; native util and job "
        "count unchanged; largest-5% median wait grows by roughly one "
        "interstitial runtime (more for the longer jobs)."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
