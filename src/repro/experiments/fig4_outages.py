"""Figure 4 (outage variant) — the "100% except for outages" panel.

The paper's bottom panel shows continual interstitial computing pinning
utilization at ~1.0 *except during outages*.  The default runs inject
no downtime, so this variant adds a realistic outage schedule (a full
maintenance day and a partial-loss window) and shows the dips appear
exactly where scheduled while the rest of the series stays pinned.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.controller import InterstitialController
from repro.core.runners import run_with_controller
from repro.experiments.common import TableResult
from repro.experiments.context import RunContext, as_context
from repro.jobs import InterstitialProject
from repro.metrics.ascii_plots import sparkline
from repro.metrics.utilization import hourly_utilization
from repro.sim.outages import Outage, OutageSchedule
from repro.units import DAY

MACHINE = "blue_mountain"
CPUS = 32
RUNTIME_1GHZ = 120.0


def outage_schedule(machine, duration: float) -> OutageSchedule:
    """A full-machine maintenance window at 40% of the log and a half-
    machine partial loss at 70%.

    Windows last a day, clamped to a fifth of the log so they never
    overlap (and never stack past the machine size) at tiny test
    scales.
    """
    window = min(DAY, 0.2 * duration)
    full_start = 0.4 * duration
    partial_start = 0.7 * duration
    return OutageSchedule(
        [
            Outage(full_start, full_start + window, machine.cpus),
            Outage(
                partial_start, partial_start + window, machine.cpus // 2
            ),
        ]
    )


def run(ctx: Optional[RunContext] = None) -> TableResult:
    ctx = as_context(ctx)
    scale = ctx.scale
    machine = ctx.machine_for(MACHINE)
    trace = ctx.trace_for(MACHINE)
    outages = outage_schedule(machine, trace.duration)
    project = InterstitialProject(
        n_jobs=1, cpus_per_job=CPUS, runtime_1ghz=RUNTIME_1GHZ
    )
    controller = InterstitialController(
        machine=machine, project=project, continual=True
    )
    result_run = run_with_controller(
        machine,
        trace.jobs,
        controller,
        outages=outages,
        horizon=trace.duration,
        check_invariants=ctx.check_invariants,
    )
    times, utils = hourly_utilization(result_run, t1=trace.duration)

    result = TableResult(
        exp_id="fig4_outages",
        title=(
            "Figure 4 variant: continual interstitial utilization with "
            f"injected outages (Blue Mountain, scale={scale.name})"
        ),
        headers=["window", "mean util"],
    )
    windows = {
        "outside outages": np.ones(times.size, dtype=bool),
        "full outage day": np.zeros(times.size, dtype=bool),
        "half outage day": np.zeros(times.size, dtype=bool),
    }
    for outage in outages:
        mask = (times >= outage.start) & (times < outage.end)
        key = (
            "full outage day"
            if outage.cpus == machine.cpus
            else "half outage day"
        )
        windows[key] |= mask
        windows["outside outages"] &= ~mask
    for label, mask in windows.items():
        mean = float(utils[mask].mean()) if mask.any() else float("nan")
        result.rows.append([label, f"{mean:.3f}"])
        result.data[label] = mean
    result.data["series"] = utils.tolist()
    result.notes.append(
        "hourly utilization: "
        + sparkline(utils, lo=0.0, hi=1.0, width=72)
    )
    result.notes.append(
        "Paper shape: pinned near 1.0 except during outages; the dips "
        "above occur exactly in the scheduled windows (drain + refill "
        "edges make them slightly wider than the windows themselves)."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
