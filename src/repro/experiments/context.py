"""The explicit run context threaded through every experiment driver.

Historically the experiment layer kept module-level caches (traces,
native baselines, continual logs) and the engine kept a process-wide
invariant-checking default.  Both made the codebase single-process by
construction: two concurrent runs would silently share (or fight over)
global state.  :class:`RunContext` replaces all of it with one explicit
object that owns

* the :class:`~repro.experiments.config.ExperimentScale` in force,
* deterministic per-label RNG streams derived from the scale seed,
* a content-addressed :class:`~repro.store.RunStore` of simulation
  products (optionally disk-backed, so separate processes share runs),
* the engine invariant-checking flag (previously a mutable global).

Drivers take ``ctx`` and ask it for traces and runs; nothing below the
driver layer reaches into module globals, which is what makes the
parallel executor (:mod:`repro.experiments.executor`) safe.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, TypeVar, Union

import numpy as np

from repro.core.controller import InterstitialController
from repro.core.runners import run_native, run_with_controller
from repro.errors import ConfigurationError
from repro.experiments.common import (
    INTERSTITIAL_USER,
    TableResult,
    rng_for,
)
from repro.experiments.config import ExperimentScale, current_scale
from repro.faults import FaultModel, RetryPolicy
from repro.jobs import InterstitialProject
from repro.machines import Machine, preset
from repro.machines.presets import preset_names
from repro.obs import PhaseTimers, TraceRecorder
from repro.sim.results import SimResult
from repro.store import RunStore
from repro.workload.synthetic import synthetic_trace_for
from repro.workload.trace import Trace

T = TypeVar("T")


def _fault_payload(faults: Optional[FaultModel]) -> Optional[Dict[str, Any]]:
    """Content-address fields of a fault model (None when disabled).

    The concrete class is part of the address: subclasses (e.g. test
    models with fixed schedules) must not collide with the stock model
    even when their dataclass fields match.
    """
    if faults is None:
        return None
    payload = dict(asdict(faults))
    payload["class"] = type(faults).__qualname__
    return payload


def _retry_payload(retry: Optional[RetryPolicy]) -> Optional[Dict[str, Any]]:
    if retry is None:
        return None
    return dict(asdict(retry))


@dataclass
class RunContext:
    """Everything one experiment run needs, made explicit.

    Parameters
    ----------
    scale:
        The scaling preset; also the root of every RNG stream.
    store:
        Content-addressed store of run products.  Defaults to a fresh
        in-memory store; pass a disk-backed one to share runs across
        processes.
    check_invariants:
        Run every simulation with the engine's accounting validator
        enabled (the CLI's ``--check-invariants``).  Excluded from run
        keys: validation never changes results (and a dedicated test
        enforces that).
    recorder:
        Optional :class:`~repro.obs.TraceRecorder` handed to every
        simulation this context computes (the CLI's ``--trace``).
        Observability state, so — like ``check_invariants`` — excluded
        from run keys; note that store *hits* skip the engine and thus
        emit no records, so tracing wants a fresh (in-memory) store.
    timers:
        Optional :class:`~repro.obs.PhaseTimers` shared by every
        simulation this context computes (``repro profile``); same
        store-hit caveat as ``recorder``.
    """

    scale: ExperimentScale
    store: RunStore = field(default_factory=RunStore)
    check_invariants: bool = False
    recorder: Optional[TraceRecorder] = None
    timers: Optional[PhaseTimers] = None
    #: Per-context memo of finished driver artifacts (TableResults),
    #: for drivers whose output other drivers consume (e.g. table2).
    _artifacts: Dict[str, TableResult] = field(
        default_factory=dict, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Deterministic streams and payload helpers
    # ------------------------------------------------------------------
    def rng_for(self, salt: str) -> np.random.Generator:
        """Deterministic generator derived from the scale seed + label."""
        return rng_for(self.scale, salt)

    def scale_payload(self) -> Dict[str, Any]:
        """The scale's full field set (run keys use actual parameters,
        not preset names, so same-named presets can never collide)."""
        return dict(asdict(self.scale))

    # ------------------------------------------------------------------
    # Machines and traces
    # ------------------------------------------------------------------
    def machine_for(self, machine_name: str) -> Machine:
        """Preset machine lookup."""
        if machine_name not in preset_names():
            raise ConfigurationError(f"unknown machine {machine_name!r}")
        return preset(machine_name)

    def trace_for(self, machine_name: str) -> Trace:
        """The (store-cached) synthetic native trace for a preset
        machine at this context's scale."""
        machine = self.machine_for(machine_name)  # validates the name
        payload = {
            "kind": "trace",
            "machine": machine.name,
            "scale": self.scale_payload(),
        }
        return self.store.get_or_compute(
            payload,
            lambda: synthetic_trace_for(
                machine_name,
                rng=self.rng_for(f"trace:{machine_name}"),
                scale=self.scale.trace_scale,
            ),
        )

    # ------------------------------------------------------------------
    # Cached simulation runs
    # ------------------------------------------------------------------
    def native_result_for(
        self,
        machine_name: str,
        faults: Optional[FaultModel] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> SimResult:
        """The (store-cached) native-only baseline run, optionally on a
        faulty machine."""
        machine = self.machine_for(machine_name)
        payload = {
            "kind": "native",
            "machine": machine.name,
            "scheduler": machine.queue_algorithm,
            "scale": self.scale_payload(),
            "faults": _fault_payload(faults),
            "retry": _retry_payload(retry),
        }

        def compute() -> SimResult:
            trace = self.trace_for(machine_name)
            return run_native(
                machine,
                trace.jobs,
                faults=faults,
                retry=retry,
                horizon=trace.duration,
                check_invariants=self.check_invariants,
                recorder=self.recorder,
                timers=self.timers,
            )

        return self.store.get_or_compute(payload, compute)

    def continual_result_for(
        self,
        machine_name: str,
        cpus_per_job: int,
        runtime_1ghz: float,
        max_utilization: Optional[float] = None,
        faults: Optional[FaultModel] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> Tuple[SimResult, InterstitialController]:
        """The (store-cached) continual-interstitial run for one job
        shape, optionally capped and/or on a faulty machine."""
        machine = self.machine_for(machine_name)
        payload = {
            "kind": "continual",
            "machine": machine.name,
            "scheduler": machine.queue_algorithm,
            "scale": self.scale_payload(),
            "cpus_per_job": int(cpus_per_job),
            "runtime_1ghz": float(runtime_1ghz),
            "max_utilization": max_utilization,
            "faults": _fault_payload(faults),
            "retry": _retry_payload(retry),
        }

        def compute() -> Tuple[SimResult, InterstitialController]:
            trace = self.trace_for(machine_name)
            project = InterstitialProject(
                n_jobs=1,  # placeholder; the controller feeds continually
                cpus_per_job=cpus_per_job,
                runtime_1ghz=runtime_1ghz,
                name=f"continual-{cpus_per_job}x{runtime_1ghz:.0f}",
                user=INTERSTITIAL_USER,
                group=INTERSTITIAL_USER,
            )
            controller = InterstitialController(
                machine=machine,
                project=project,
                continual=True,
                max_utilization=max_utilization,
            )
            result = run_with_controller(
                machine,
                trace.jobs,
                controller,
                faults=faults,
                retry=retry,
                horizon=trace.duration,
                check_invariants=self.check_invariants,
                recorder=self.recorder,
                timers=self.timers,
            )
            return result, controller

        return self.store.get_or_compute(payload, compute)

    # ------------------------------------------------------------------
    # Generic memoization hooks
    # ------------------------------------------------------------------
    def run_cached(
        self, payload: Mapping[str, Any], compute: Callable[[], T]
    ) -> T:
        """Memoize an arbitrary deterministic computation under a
        content-addressed configuration payload.  The context's scale
        fields are mixed in automatically."""
        full = dict(payload)
        full.setdefault("scale", self.scale_payload())
        return self.store.get_or_compute(full, compute)

    def artifact(
        self, name: str, build: Callable[[], TableResult]
    ) -> TableResult:
        """Per-context memo for a finished driver artifact (used when
        one driver's TableResult feeds another, e.g. table2 -> table3).
        In-memory only: artifacts can hold rich objects; the expensive
        simulation products underneath go through the store."""
        if name not in self._artifacts:
            self._artifacts[name] = build()
        return self._artifacts[name]


def as_context(
    ctx: Optional[Union[RunContext, ExperimentScale]] = None,
) -> RunContext:
    """Coerce a driver argument to a :class:`RunContext`.

    Accepts a ready context (returned as-is), a bare
    :class:`ExperimentScale` (wrapped with a fresh private store — fine
    for one-off driver calls; share one context when running several
    drivers), or ``None`` (the environment-selected scale).
    """
    if isinstance(ctx, RunContext):
        return ctx
    if isinstance(ctx, ExperimentScale):
        return RunContext(scale=ctx)
    if ctx is None:
        return RunContext(scale=current_scale())
    raise ConfigurationError(
        f"expected RunContext, ExperimentScale or None, got "
        f"{type(ctx).__name__}"
    )
