"""Figure 2 — Actual vs theoretical omniscient makespan scatter.

The paper plots each omniscient experiment as a point (theoretical
makespan, actual makespan) in hours, 1-CPU projects in black and 32-CPU
projects in gray, hugging the diagonal.  We emit the same point series
(and a fitted line) as a table plus machine-readable arrays.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments import table2
from repro.experiments.common import MACHINE_LABELS, MACHINE_ORDER, TableResult
from repro.experiments.context import RunContext, as_context
from repro.metrics.ascii_plots import scatter
from repro.theory import fit_affine
from repro.units import HOUR


def run(ctx: Optional[RunContext] = None) -> TableResult:
    """Build the Figure 2 point series."""
    ctx = as_context(ctx)
    t2 = table2.run(ctx)
    result = TableResult(
        exp_id="fig2",
        title="Figure 2: Actual vs theoretical makespan (hours)",
        headers=["machine", "CPU/Job", "PetaCycles", "theory_h",
                 "actual_h", "ratio"],
    )
    xs: List[float] = []
    ys: List[float] = []
    series = {1: [], 32: []}
    for m in MACHINE_ORDER:
        for p in t2.data["points"][m]:
            theory_h = p["ideal_makespan_s"] / HOUR
            actual_h = p["mean_makespan_s"] / HOUR
            xs.append(p["ideal_makespan_s"])
            ys.append(p["mean_makespan_s"])
            series[p["cpus_per_job"]].append((theory_h, actual_h))
            result.rows.append(
                [
                    MACHINE_LABELS[m],
                    str(p["cpus_per_job"]),
                    f"{p['peta_cycles']:.3g}",
                    f"{theory_h:.1f}",
                    f"{actual_h:.1f}",
                    f"{actual_h / theory_h:.2f}" if theory_h > 0 else "n/a",
                ]
            )
    fit = fit_affine(xs, ys)
    result.data["points_1cpu"] = series[1]
    result.data["points_32cpu"] = series[32]
    result.data["fit"] = fit
    all_points = series[1] + series[32]
    result.notes.append(
        "actual (y, hours) vs theory (x, hours); '/' is the y=x line:"
    )
    for line in scatter(all_points, rows=10, cols=52):
        result.notes.append(line)
    result.notes.append(f"affine fit over all points: {fit.describe()}")
    result.notes.append(
        "Paper Figure 2 shows the same points lying close to the "
        "diagonal with the 32-CPU (gray) points slightly above."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
