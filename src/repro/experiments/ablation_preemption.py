"""Ablation — preemptible interstitial jobs.

The paper's jobs are strictly non-preemptive: an interstitial job holds
its CPUs until completion, which is the entire mechanism of native
delay.  This ablation allows the engine to kill interstitial jobs the
moment a native job is blocked (killed work is wasted — there is no
checkpoint/restart) and quantifies the trade: native waits should
collapse back to the baseline while some fraction of interstitial
CPU-time is thrown away.
"""

from __future__ import annotations

from typing import Optional

from repro.core.controller import InterstitialController
from repro.core.runners import run_with_controller
from repro.experiments.common import (
    TableResult,
    fmt_k,
)
from repro.experiments.context import RunContext, as_context
from repro.experiments.continual_tables import column_stats
from repro.jobs import InterstitialProject

MACHINE = "blue_mountain"
CPUS = 32
RUNTIME_1GHZ = 120.0


def run(ctx: Optional[RunContext] = None) -> TableResult:
    ctx = as_context(ctx)
    scale = ctx.scale
    machine = ctx.machine_for(MACHINE)
    trace = ctx.trace_for(MACHINE)
    project = InterstitialProject(
        n_jobs=1, cpus_per_job=CPUS, runtime_1ghz=RUNTIME_1GHZ
    )
    result = TableResult(
        exp_id="ablation_preemption",
        title=(
            "Ablation: preemptible interstitial jobs "
            f"(Blue Mountain, continual {CPUS}CPU x 120s@1GHz, "
            f"scale={scale.name})"
        ),
        headers=[
            "mode",
            "interstitial done",
            "preempted",
            "wasted CPU-h",
            "overall util",
            "native median wait",
            "native mean wait",
        ],
    )
    baseline = column_stats(ctx.native_result_for(MACHINE))
    result.data["native_baseline"] = baseline
    for label, preemptible, checkpointing in (
        ("non-preemptive (paper)", False, False),
        ("preemptible", True, False),
        ("preemptible+checkpoint", True, True),
    ):
        controller = InterstitialController(
            machine=machine,
            project=project,
            continual=True,
            preemptible=preemptible,
            checkpointing=checkpointing,
        )
        res = run_with_controller(
            machine,
            trace.jobs,
            controller,
            horizon=trace.duration,
            check_invariants=ctx.check_invariants,
        )
        stats = column_stats(res)
        wasted_cpu_h = (
            sum(
                j.cpus * (j.finish_time - j.start_time)
                for j in res.killed
            )
            / 3600.0
            - controller.work_preserved_cpu_s / 3600.0
        )
        stats["n_preempted"] = len(res.killed)
        stats["wasted_cpu_h"] = wasted_cpu_h
        stats["preserved_cpu_h"] = controller.work_preserved_cpu_s / 3600.0
        result.rows.append(
            [
                label,
                str(stats["interstitial_jobs"]),
                str(len(res.killed)),
                f"{wasted_cpu_h:.0f}",
                f"{stats['overall_utilization']:.3f}",
                fmt_k(stats["median_wait_all_s"]),
                fmt_k(stats["mean_wait_all_s"]),
            ]
        )
        result.data[label] = stats
    result.rows.append(
        [
            "native-only baseline",
            "0",
            "0",
            "0",
            f"{baseline['overall_utilization']:.3f}",
            fmt_k(baseline["median_wait_all_s"]),
            fmt_k(baseline["mean_wait_all_s"]),
        ]
    )
    result.notes.append(
        "Expected: preemption pulls native waits back toward the "
        "baseline at the cost of wasted interstitial CPU-time."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
