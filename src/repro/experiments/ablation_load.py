"""Ablation — raising native load vs. interstitial computing.

The paper's central policy claim (§4.3.2.1, §5): "using interstitial
computing is a much more effective means of increasing machine
utilization than running longer or larger native jobs", because native
waits blow up as native utilization approaches 1 (the classic queueing
effect its introduction cites).

This experiment makes the comparison concrete on Blue Mountain: sweep
the *native* offered load upward and measure native waits at each
utilization, then run the baseline load plus a continual interstitial
stream reaching the same overall utilization — at the baseline's native
wait cost.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.runners import run_continual, run_native
from repro.experiments.common import (
    TableResult,
    fmt_k,
)
from repro.experiments.context import RunContext, as_context
from repro.experiments.continual_tables import column_stats
from repro.jobs import InterstitialProject
from repro.theory.queueing import mmc_mean_wait
from repro.workload.synthetic import synthetic_trace_for

MACHINE = "blue_mountain"
NATIVE_LOADS: Tuple[float, ...] = (0.70, 0.79, 0.88, 0.94)
CPUS = 32
RUNTIME_1GHZ = 120.0


def run(ctx: Optional[RunContext] = None) -> TableResult:
    ctx = as_context(ctx)
    scale = ctx.scale
    machine = ctx.machine_for(MACHINE)
    result = TableResult(
        exp_id="ablation_load",
        title=(
            "Ablation: raising native load vs interstitial computing "
            f"(Blue Mountain, scale={scale.name})"
        ),
        headers=[
            "configuration",
            "native util",
            "overall util",
            "native median wait",
            "native mean wait",
            "M/M/c wait ref",
        ],
    )
    # M/M/c reference: rigid jobs make the machine behave like a few
    # wide "job slots", not thousands of independent CPUs — normalize
    # the server count by the mean job width so queueing is visible.
    mean_width = np.mean(
        [
            j.cpus
            for j in synthetic_trace_for(
                MACHINE, rng=ctx.rng_for("width-probe"),
                scale=min(scale.trace_scale, 0.05),
            ).jobs
        ]
    )
    slots = max(1, int(round(machine.cpus / mean_width)))
    # Sweep native offered load.
    for load in NATIVE_LOADS:
        trace = synthetic_trace_for(
            MACHINE,
            rng=ctx.rng_for(f"load:{load}"),
            scale=scale.trace_scale,
            utilization=load,
        )
        res = run_native(
            machine,
            trace.jobs,
            horizon=trace.duration,
            check_invariants=ctx.check_invariants,
        )
        stats = column_stats(res)
        mmc = mmc_mean_wait(slots, load, 2.5 * 3600.0)
        result.rows.append(
            [
                f"native load {load:.2f}",
                f"{stats['native_utilization']:.3f}",
                f"{stats['overall_utilization']:.3f}",
                fmt_k(stats["median_wait_all_s"]),
                fmt_k(stats["mean_wait_all_s"]),
                fmt_k(mmc),
            ]
        )
        result.data[f"native:{load}"] = stats
    # Baseline load + continual interstitial reaching high overall util.
    base_trace = synthetic_trace_for(
        MACHINE,
        rng=ctx.rng_for(f"load:{NATIVE_LOADS[1]}"),
        scale=scale.trace_scale,
        utilization=NATIVE_LOADS[1],
    )
    project = InterstitialProject(
        n_jobs=1, cpus_per_job=CPUS, runtime_1ghz=RUNTIME_1GHZ
    )
    boosted, _ = run_continual(
        machine,
        base_trace.jobs,
        project,
        horizon=base_trace.duration,
        check_invariants=ctx.check_invariants,
    )
    stats = column_stats(boosted)
    result.rows.append(
        [
            f"native load {NATIVE_LOADS[1]:.2f} + interstitial",
            f"{stats['native_utilization']:.3f}",
            f"{stats['overall_utilization']:.3f}",
            fmt_k(stats["median_wait_all_s"]),
            fmt_k(stats["mean_wait_all_s"]),
            "-",
        ]
    )
    result.data["interstitial"] = stats
    result.notes.append(
        "Claim (paper §5): interstitial computing reaches ~the overall "
        "utilization of the highest native load at roughly the baseline "
        "native wait cost; pushing native load there directly blows "
        "waits up, as the M/M/c reference column also predicts."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
