"""Elastic interstitials: rigid vs moldable vs malleable, head to head.

The paper's Tables 5/6 price the breakage penalty of rigid ``n``-CPU
jobs — most dramatically on Blue Pacific, where an average of ~86 free
CPUs fits only two 32-CPU jobs and wastes the other 22 (factor 1.346).
This experiment drops the *same* finite project (32-CPU nominal jobs,
width range [4, 32]) into the native stream of each paper machine under
the three :class:`~repro.elastic.WidthPolicy` regimes and measures what
elasticity buys:

* project makespan (and its ratio to the rigid run),
* the closed-form breakage prediction for each policy
  (:func:`repro.theory.elastic_breakage_factor`),
* native mean wait relative to the native-only baseline (elasticity
  must not make interstitial jobs *more* intrusive), and
* the resize traffic (molded starts, shrinks, grows, kills).

The controller starts a fifth of the way into the log (machine warmed
up) and the project is sized to about a quarter of the remaining spare
capacity, so the elastic policies are exercised against a live native
stream rather than an empty machine.
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro.core.runners import run_with_controller
from repro.elastic import ElasticitySpec, elastic_controller
from repro.experiments.common import (
    INTERSTITIAL_USER,
    MACHINE_LABELS,
    MACHINE_ORDER,
    TableResult,
    fmt_h,
    fmt_k,
)
from repro.experiments.config import SCALES
from repro.experiments.context import RunContext, as_context
from repro.experiments.continual_tables import column_stats
from repro.jobs import InterstitialProject, JobKind
from repro.theory import breakage_factor, elastic_breakage_factor

#: Nominal (rigid) job width — the paper's continual-table shape.
NOMINAL_CPUS = 32
#: Elastic width range the project molds/resizes within.
MIN_WIDTH = 4
MAX_WIDTH = 32
#: Per-job runtime at 1 GHz (seconds).
RUNTIME_1GHZ = 1800.0
#: Controller drop-in point, as a fraction of the log.
START_FRACTION = 0.2
#: Project size as a fraction of the post-start spare capacity.
SPARE_FRACTION = 0.25

POLICIES = (
    ("rigid", ElasticitySpec.rigid()),
    ("moldable", ElasticitySpec.moldable()),
    ("malleable", ElasticitySpec.malleable()),
)


def _project_for(machine, native_utilization: float, window_s: float,
                 n_jobs_floor: int = 6) -> InterstitialProject:
    """Size the drop-in project to ``SPARE_FRACTION`` of the window's
    expected spare CPU-seconds."""
    runtime_s = RUNTIME_1GHZ / machine.clock_ghz
    work_per_job = NOMINAL_CPUS * runtime_s
    spare = machine.cpus * (1.0 - native_utilization) * window_s
    n_jobs = max(n_jobs_floor, round(SPARE_FRACTION * spare / work_per_job))
    return InterstitialProject(
        n_jobs=n_jobs,
        cpus_per_job=NOMINAL_CPUS,
        runtime_1ghz=RUNTIME_1GHZ,
        min_width=MIN_WIDTH,
        max_width=MAX_WIDTH,
        name=f"elastic-{n_jobs}x{NOMINAL_CPUS}",
        user=INTERSTITIAL_USER,
        group=INTERSTITIAL_USER,
    )


def _theory_factor(policy: str, n_cpus: int, utilization: float) -> float:
    if policy == "rigid":
        return breakage_factor(n_cpus, utilization, NOMINAL_CPUS)
    return elastic_breakage_factor(
        n_cpus,
        utilization,
        MIN_WIDTH,
        MAX_WIDTH,
        malleable=(policy == "malleable"),
    )


def run(ctx: Optional[RunContext] = None) -> TableResult:
    ctx = as_context(ctx)
    scale = ctx.scale
    result = TableResult(
        exp_id="elastic_tables",
        title=(
            "Elastic interstitials: one finite project "
            f"({NOMINAL_CPUS}CPU nominal, widths [{MIN_WIDTH}, {MAX_WIDTH}]) "
            f"under the three width policies (scale={scale.name})"
        ),
        headers=[
            "machine",
            "policy",
            "jobs",
            "makespan h",
            "vs rigid",
            "theory brk",
            "native mean wait",
            "kills/shrinks/grows",
        ],
    )
    for machine_name in MACHINE_ORDER:
        machine = ctx.machine_for(machine_name)
        trace = ctx.trace_for(machine_name)
        native = ctx.native_result_for(machine_name)
        baseline = column_stats(native)
        utilization = min(native.native_utilization, 1.0 - 1e-9)
        start = START_FRACTION * trace.duration
        project = _project_for(
            machine, utilization, trace.duration - start
        )
        per_machine = {
            "native_baseline": baseline,
            "n_jobs": project.n_jobs,
            "native_utilization": utilization,
            "start_time": start,
        }
        rigid_makespan = None
        for policy, spec in POLICIES:

            def compute(spec=spec):
                controller = elastic_controller(
                    machine,
                    project,
                    spec,
                    start_time=start,
                )
                run_result = run_with_controller(
                    machine,
                    trace.jobs,
                    controller,
                    check_invariants=ctx.check_invariants,
                    recorder=ctx.recorder,
                    timers=ctx.timers,
                )
                return run_result, controller

            res, controller = ctx.run_cached(
                {
                    "kind": "elastic",
                    "machine": machine.name,
                    "scheduler": machine.queue_algorithm,
                    "policy": spec.policy.value,
                    "n_jobs": project.n_jobs,
                    "cpus_per_job": NOMINAL_CPUS,
                    "min_width": MIN_WIDTH,
                    "max_width": MAX_WIDTH,
                    "runtime_1ghz": RUNTIME_1GHZ,
                    "start_time": start,
                },
                compute,
            )
            inter = res.jobs(JobKind.INTERSTITIAL)
            if len(inter) != project.n_jobs:
                result.notes.append(
                    f"{machine_name}/{policy}: only {len(inter)} of "
                    f"{project.n_jobs} jobs finished"
                )
            makespan = (
                max(j.finish_time for j in inter) - start if inter else 0.0
            )
            if policy == "rigid":
                rigid_makespan = makespan
            stats = column_stats(res)
            stats.update(
                makespan_s=makespan,
                vs_rigid=(
                    makespan / rigid_makespan if rigid_makespan else 1.0
                ),
                theory_breakage=_theory_factor(
                    policy, machine.cpus, utilization
                ),
                preempt_kills=res.counters.preempt_kills,
                preempt_shrinks=res.counters.preempt_shrinks,
                grows=res.counters.grows,
                molded_starts=res.counters.molded_starts,
                baseline_mean_wait_s=baseline["mean_wait_all_s"],
            )
            per_machine[policy] = stats
            result.rows.append(
                [
                    MACHINE_LABELS[machine_name],
                    policy,
                    str(len(inter)),
                    fmt_h(makespan),
                    f"{stats['vs_rigid']:.2f}",
                    f"{stats['theory_breakage']:.3f}",
                    fmt_k(stats["mean_wait_all_s"]),
                    (
                        f"{stats['preempt_kills']}/"
                        f"{stats['preempt_shrinks']}/{stats['grows']}"
                    ),
                ]
            )
        result.data[machine_name] = per_machine
    result.notes.append(
        "Expected: malleable beats rigid makespan wherever breakage "
        "bites (Blue Pacific most) while native mean waits stay at the "
        "rigid level — shrinking seats natives that preemption would "
        "otherwise have waited for."
    )
    return result


def main(argv: Optional[list] = None) -> None:  # pragma: no cover - CLI glue
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run at the quick smoke-test scale instead of the "
        "environment-selected one",
    )
    args = parser.parse_args(argv)
    ctx = as_context(SCALES["quick"]) if args.quick else as_context(None)
    print(run(ctx).render())


if __name__ == "__main__":  # pragma: no cover
    main()
