"""Ablation — harvest efficiency of the Figure-1 algorithm.

How close does the paper's fallible, estimate-driven controller come to
the *omniscient continual bound* — the number of interstitial jobs that
provably fit into the native headroom with zero impact?  The gap is the
price of (a) the conservative ``backfillWallTime`` gate, (b) bad user
estimates inhibiting submission, and (c) actually perturbing the
natives (which reshapes the holes).

One row per machine for the standard 32-CPU x 120 s @ 1 GHz stream.
"""

from __future__ import annotations

from typing import Optional

from repro.core.omniscient import pack_continual
from repro.experiments.common import (
    MACHINE_LABELS,
    MACHINE_ORDER,
    TableResult,
)
from repro.experiments.context import RunContext, as_context
from repro.jobs import JobKind
from repro.units import normalize_runtime

CPUS = 32
RUNTIME_1GHZ = 120.0


def run(ctx: Optional[RunContext] = None) -> TableResult:
    ctx = as_context(ctx)
    scale = ctx.scale
    result = TableResult(
        exp_id="ablation_efficiency",
        title=(
            "Ablation: Figure-1 harvest efficiency vs the omniscient "
            f"zero-impact bound ({CPUS}CPU x 120s@1GHz, "
            f"scale={scale.name})"
        ),
        headers=[
            "machine",
            "omniscient bound (jobs)",
            "fallible controller (jobs)",
            "efficiency",
        ],
    )
    for name in MACHINE_ORDER:
        machine = ctx.machine_for(name)
        trace = ctx.trace_for(name)
        native = ctx.native_result_for(name)
        runtime = normalize_runtime(RUNTIME_1GHZ, machine.clock_ghz)
        bound, _ = pack_continual(
            native, CPUS, runtime, horizon=trace.duration
        )
        loaded, _ = ctx.continual_result_for(name, CPUS, RUNTIME_1GHZ)
        achieved = len(loaded.jobs(JobKind.INTERSTITIAL))
        efficiency = achieved / bound if bound else 0.0
        result.rows.append(
            [
                MACHINE_LABELS[name],
                str(bound),
                str(achieved),
                f"{efficiency:.0%}",
            ]
        )
        result.data[name] = {
            "bound": bound,
            "achieved": achieved,
            "efficiency": efficiency,
        }
    result.notes.append(
        "Efficiency near (or above) 100% means the Figure-1 gate "
        "captures essentially all zero-impact cycles; values above "
        "100% are possible because the fallible controller also uses "
        "capacity freed by *delaying* natives, which the zero-impact "
        "bound by definition cannot."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
