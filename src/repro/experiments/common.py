"""Shared infrastructure for experiment drivers.

Stateless helpers only: formatting, scaling, machine labels and the
:class:`TableResult` container.  Run caching lives in the explicit
:class:`~repro.experiments.context.RunContext` / content-addressed
:class:`~repro.store.RunStore` pair — this module deliberately holds
no mutable state, so any number of contexts (threads, processes) can
use it concurrently.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.experiments.config import ExperimentScale
from repro.jobs import InterstitialProject
from repro.machines import Machine, preset
from repro.metrics.tables import format_table

#: Interstitial accounting identity used by all experiments.
INTERSTITIAL_USER = "interstitial"


def rng_for(scale: ExperimentScale, salt: str) -> np.random.Generator:
    """Deterministic generator derived from the scale seed and a label."""
    return np.random.default_rng(
        (scale.seed, zlib.crc32(salt.encode("utf-8")))
    )


def machine_for(machine_name: str) -> Machine:
    """Preset machine lookup (thin alias kept for driver readability)."""
    return preset(machine_name)


@dataclass
class TableResult:
    """A rendered experiment: paper-style rows plus raw data for tests.

    ``data`` carries machine-readable values (arrays, floats) keyed by
    descriptive names so tests and downstream analysis don't parse the
    formatted cells.
    """

    exp_id: str
    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    data: Dict[str, Any] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Plain-text table with title and footnotes."""
        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return text


def fmt_h(seconds: float) -> str:
    """Format seconds as hours with one decimal."""
    return f"{seconds / 3600.0:.1f}"


def fmt_pm_h(mean_s: float, std_s: float) -> str:
    """Format a mean±std pair (seconds in, hours out)."""
    return f"{mean_s / 3600.0:.1f} ± {std_s / 3600.0:.1f}"


def fmt_k(seconds: float) -> str:
    """Format seconds the paper's 'k' way: whole seconds below 1k, one
    decimal of thousands (e.g. ``4.4k``) below 100k, and whole
    thousands (e.g. ``123k``) from 100k up.

    Thresholds sit at the rounding boundaries (999.5, 99 950) so the
    rendered value never reads ``1000`` or ``100.0k``.
    """
    if seconds < 999.5:
        return f"{seconds:.0f}"
    if seconds < 99_950.0:
        return f"{seconds / 1000.0:.1f}k"
    return f"{seconds / 1000.0:.0f}k"


def scaled_kjobs(kjobs: float, scale: ExperimentScale) -> int:
    """Scale a paper job count given in thousands; at least one job."""
    return max(1, round(kjobs * 1000 * scale.project_scale))


def project_from(
    kjobs: float,
    cpus: int,
    runtime_1ghz: float,
    scale: ExperimentScale,
    name: str = "",
) -> InterstitialProject:
    """Build the scaled version of a paper project configuration."""
    return InterstitialProject(
        n_jobs=scaled_kjobs(kjobs, scale),
        cpus_per_job=cpus,
        runtime_1ghz=runtime_1ghz,
        name=name or f"{kjobs:g}k x {cpus}CPU x {runtime_1ghz:.0f}s@1GHz",
        user=INTERSTITIAL_USER,
        group=INTERSTITIAL_USER,
    )


#: The three machines in the paper's column order.
MACHINE_ORDER: Sequence[str] = ("ross", "blue_mountain", "blue_pacific")

#: Pretty names for table headers.
MACHINE_LABELS: Dict[str, str] = {
    "ross": "Ross",
    "blue_mountain": "Blue Mt.",
    "blue_pacific": "Blue Pacific",
}
