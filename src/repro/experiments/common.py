"""Shared infrastructure for experiment drivers.

Traces, native baseline runs and continual interstitial runs are
process-cached by (machine, scale, parameters): many tables reuse the
same Blue Mountain continual log, and the caching is what makes running
the full bench suite tractable.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.controller import InterstitialController
from repro.core.runners import run_native, run_with_controller
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentScale
from repro.jobs import InterstitialProject
from repro.machines import Machine, preset
from repro.machines.presets import preset_names
from repro.metrics.tables import format_table
from repro.sim.results import SimResult
from repro.workload.synthetic import synthetic_trace_for
from repro.workload.trace import Trace

#: Interstitial accounting identity used by all experiments.
INTERSTITIAL_USER = "interstitial"

_trace_cache: Dict[Tuple[str, str], Trace] = {}
_native_cache: Dict[Tuple[str, str], SimResult] = {}
_continual_cache: Dict[
    Tuple[str, str, int, float, Optional[float]],
    Tuple[SimResult, InterstitialController],
] = {}


def rng_for(scale: ExperimentScale, salt: str) -> np.random.Generator:
    """Deterministic generator derived from the scale seed and a label."""
    return np.random.default_rng(
        (scale.seed, zlib.crc32(salt.encode("utf-8")))
    )


def trace_for(machine_name: str, scale: ExperimentScale) -> Trace:
    """The (cached) synthetic native trace for a preset machine."""
    if machine_name not in preset_names():
        raise ConfigurationError(f"unknown machine {machine_name!r}")
    key = (machine_name, scale.name)
    if key not in _trace_cache:
        _trace_cache[key] = synthetic_trace_for(
            machine_name,
            rng=rng_for(scale, f"trace:{machine_name}"),
            scale=scale.trace_scale,
        )
    return _trace_cache[key]


def native_result_for(
    machine_name: str, scale: ExperimentScale
) -> SimResult:
    """The (cached) native-only baseline run for a preset machine."""
    key = (machine_name, scale.name)
    if key not in _native_cache:
        trace = trace_for(machine_name, scale)
        machine = preset(machine_name)
        _native_cache[key] = run_native(
            machine, trace.jobs, horizon=trace.duration
        )
    return _native_cache[key]


def continual_result_for(
    machine_name: str,
    scale: ExperimentScale,
    cpus_per_job: int,
    runtime_1ghz: float,
    max_utilization: Optional[float] = None,
) -> Tuple[SimResult, InterstitialController]:
    """The (cached) continual-interstitial run for one job shape."""
    key = (machine_name, scale.name, cpus_per_job, runtime_1ghz,
           max_utilization)
    if key not in _continual_cache:
        trace = trace_for(machine_name, scale)
        machine = preset(machine_name)
        project = InterstitialProject(
            n_jobs=1,  # placeholder; the controller feeds continually
            cpus_per_job=cpus_per_job,
            runtime_1ghz=runtime_1ghz,
            name=f"continual-{cpus_per_job}x{runtime_1ghz:.0f}",
            user=INTERSTITIAL_USER,
            group=INTERSTITIAL_USER,
        )
        controller = InterstitialController(
            machine=machine,
            project=project,
            continual=True,
            max_utilization=max_utilization,
        )
        result = run_with_controller(
            machine,
            trace.jobs,
            controller,
            horizon=trace.duration,
        )
        _continual_cache[key] = (result, controller)
    return _continual_cache[key]


def clear_caches() -> None:
    """Drop all cached traces/runs (test isolation)."""
    _trace_cache.clear()
    _native_cache.clear()
    _continual_cache.clear()


def machine_for(machine_name: str) -> Machine:
    """Preset machine lookup (thin alias kept for driver readability)."""
    return preset(machine_name)


@dataclass
class TableResult:
    """A rendered experiment: paper-style rows plus raw data for tests.

    ``data`` carries machine-readable values (arrays, floats) keyed by
    descriptive names so tests and downstream analysis don't parse the
    formatted cells.
    """

    exp_id: str
    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    data: Dict[str, Any] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Plain-text table with title and footnotes."""
        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return text


def fmt_h(seconds: float) -> str:
    """Format seconds as hours with one decimal."""
    return f"{seconds / 3600.0:.1f}"


def fmt_pm_h(mean_s: float, std_s: float) -> str:
    """Format a mean±std pair (seconds in, hours out)."""
    return f"{mean_s / 3600.0:.1f} ± {std_s / 3600.0:.1f}"


def fmt_k(seconds: float) -> str:
    """Format seconds the paper's 'k' way (e.g. 4.4k) below 100k."""
    if seconds >= 999.5:
        return f"{seconds / 1000.0:.1f}k"
    return f"{seconds:.0f}"


def scaled_kjobs(kjobs: float, scale: ExperimentScale) -> int:
    """Scale a paper job count given in thousands; at least one job."""
    return max(1, round(kjobs * 1000 * scale.project_scale))


def project_from(
    kjobs: float,
    cpus: int,
    runtime_1ghz: float,
    scale: ExperimentScale,
    name: str = "",
) -> InterstitialProject:
    """Build the scaled version of a paper project configuration."""
    return InterstitialProject(
        n_jobs=scaled_kjobs(kjobs, scale),
        cpus_per_job=cpus,
        runtime_1ghz=runtime_1ghz,
        name=name or f"{kjobs:g}k x {cpus}CPU x {runtime_1ghz:.0f}s@1GHz",
        user=INTERSTITIAL_USER,
        group=INTERSTITIAL_USER,
    )


#: The three machines in the paper's column order.
MACHINE_ORDER: Sequence[str] = ("ross", "blue_mountain", "blue_pacific")

#: Pretty names for table headers.
MACHINE_LABELS: Dict[str, str] = {
    "ross": "Ross",
    "blue_mountain": "Blue Mt.",
    "blue_pacific": "Blue Pacific",
}
