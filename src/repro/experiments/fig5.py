"""Figure 5 — Wait-time histogram of all native jobs on Blue Mountain.

Probability mass over log10(wait seconds) bins [0,1) ... [5,6) for the
baseline (black), short continual interstitial jobs (gray) and long
continual interstitial jobs (white).  Paper shape: the big (0,1)-bin
peak of never-waiting jobs is pushed out to the bin containing one
interstitial runtime, with a small cascade tail reaching [4,6).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import TableResult
from repro.experiments.context import RunContext, as_context
from repro.experiments.continual_tables import (
    CONTINUAL_CPUS,
    CONTINUAL_RUNTIMES_1GHZ,
)
from repro.jobs import Job, JobKind
from repro.metrics.ascii_plots import histogram_rows
from repro.metrics.histograms import LOG10_WAIT_BINS, log10_wait_histogram
from repro.metrics.waits import wait_times

MACHINE = "blue_mountain"

BIN_LABELS = [
    f"[{int(lo)},{int(hi)})"
    for lo, hi in zip(LOG10_WAIT_BINS[:-1], LOG10_WAIT_BINS[1:])
]


def population(jobs: Sequence[Job]) -> Sequence[Job]:
    """Hook for Figure 6's subclassing-by-function: which native jobs
    to histogram (all of them here)."""
    return jobs


def build(exp_id: str, title: str, select, ctx: RunContext) -> TableResult:
    """Shared builder for Figures 5 and 6 (``select`` filters natives)."""
    cases = [("no interstitial", ctx.native_result_for(MACHINE))]
    for runtime_1ghz in CONTINUAL_RUNTIMES_1GHZ:
        res, _ = ctx.continual_result_for(
            MACHINE, CONTINUAL_CPUS, runtime_1ghz
        )
        cases.append((f"{CONTINUAL_CPUS}CPU x {runtime_1ghz:.0f}s@1GHz", res))
    result = TableResult(
        exp_id=exp_id,
        title=title,
        headers=["case"] + BIN_LABELS,
    )
    for label, res in cases:
        natives = select(res.jobs(JobKind.NATIVE))
        hist = log10_wait_histogram(wait_times(natives))
        result.rows.append([label] + [f"{p:.3f}" for p in hist])
        result.data[label] = hist.tolist()
    for label, _ in cases:
        result.notes.append(f"{label}:")
        for line in histogram_rows(BIN_LABELS, result.data[label]):
            result.notes.append("  " + line)
    return result


def run(ctx: Optional[RunContext] = None) -> TableResult:
    ctx = as_context(ctx)
    scale = ctx.scale
    result = build(
        "fig5",
        "Figure 5: wait-time distribution of native jobs on Blue "
        f"Mountain, P(log10 wait s in bin) (scale={scale.name})",
        population,
        ctx,
    )
    result.notes.append(
        "Paper shape: baseline mass concentrated in [0,1); with "
        "interstitial jobs the peak moves to the bin holding one "
        "interstitial runtime ([2,3) for 458s, [3,4) for 3664s), plus a "
        "~1% cascade tail in [4,6)."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
