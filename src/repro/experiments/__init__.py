"""Experiment drivers: one module per paper table/figure plus ablations.

Every driver exposes ``run(ctx) -> TableResult`` producing exactly the
rows/series the paper reports (at a configurable scale) and is wrapped
by a benchmark in ``benchmarks/`` and by the ``repro`` CLI.  ``ctx`` is
a :class:`~repro.experiments.context.RunContext` — the explicit bundle
of scale preset, seeded RNG streams and content-addressed run store
that replaced the old module-global caches; passing a bare
``ExperimentScale`` (or nothing) builds a fresh private context.

Scaling: the paper's logs span 40-84 days and its largest project is a
million jobs; ``ExperimentScale`` shrinks log length, job counts and
project sizes together so the shape-defining ratios (utilization, job
mix, P/(NC(1-U))) are preserved while everything runs on a laptop.  Set
``REPRO_BENCH_SCALE=paper`` for full-scale runs.
"""

from repro.experiments.config import (
    SCALES,
    ExperimentScale,
    current_scale,
)
from repro.experiments.common import (
    TableResult,
    rng_for,
)
from repro.experiments.context import (
    RunContext,
    as_context,
)

__all__ = [
    "ExperimentScale",
    "SCALES",
    "current_scale",
    "TableResult",
    "rng_for",
    "RunContext",
    "as_context",
]
