"""Experiment drivers: one module per paper table/figure plus ablations.

Every driver exposes ``run(scale) -> TableResult`` producing exactly the
rows/series the paper reports (at a configurable scale) and is wrapped
by a benchmark in ``benchmarks/`` and by the ``repro`` CLI.

Scaling: the paper's logs span 40-84 days and its largest project is a
million jobs; ``ExperimentScale`` shrinks log length, job counts and
project sizes together so the shape-defining ratios (utilization, job
mix, P/(NC(1-U))) are preserved while everything runs on a laptop.  Set
``REPRO_BENCH_SCALE=paper`` for full-scale runs.
"""

from repro.experiments.config import (
    SCALES,
    ExperimentScale,
    current_scale,
)
from repro.experiments.common import (
    TableResult,
    continual_result_for,
    native_result_for,
    rng_for,
    trace_for,
)

__all__ = [
    "ExperimentScale",
    "SCALES",
    "current_scale",
    "TableResult",
    "trace_for",
    "native_result_for",
    "continual_result_for",
    "rng_for",
]
