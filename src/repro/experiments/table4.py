"""Table 4 — Fallible (estimate-driven) short-project makespans.

The realistic case: interstitial submission sees only user estimates
and the current queue.  Per the paper's §4.3.1 shortcut, each (CPUs,
runtime) job shape gets one *continual* run per machine and short
projects of N jobs are sampled at random start times from the continual
log; the table reports mean ± std makespans for the paper's eight
project configurations on Blue Mountain and Blue Pacific.

Rows whose sampled projects would outlive the log are reported
``n/a*`` — "makespan >= log time", exactly the paper's Blue Pacific
123-peta-cycle cells.
"""

from __future__ import annotations

from typing import List, Tuple


from typing import Optional

from repro.core.sampling import sample_short_projects
from repro.experiments.common import (
    TableResult,
    fmt_pm_h,
    scaled_kjobs,
)
from repro.experiments.context import RunContext, as_context
from repro.jobs import JobKind

#: (peta-cycles, kJobs, CPUs/job, runtime s @ 1 GHz) — the paper's rows.
PAPER_ROWS: Tuple[Tuple[float, float, int, float], ...] = (
    (7.7, 2.0, 32, 120.0),
    (7.7, 0.25, 32, 960.0),
    (7.7, 8.0, 8, 120.0),
    (7.7, 1.0, 8, 960.0),
    (123.0, 32.0, 32, 120.0),
    (123.0, 4.0, 32, 960.0),
    (123.0, 128.0, 8, 120.0),
    (123.0, 16.0, 8, 960.0),
)

MACHINES = ("blue_mountain", "blue_pacific")
LABELS = {"blue_mountain": "Blue Mt", "blue_pacific": "Blue Pac"}


def _cell(
    machine: str,
    ctx: RunContext,
    cpus: int,
    runtime: float,
    n_jobs: int,
) -> Tuple[str, List[float]]:
    scale = ctx.scale
    result, _ = ctx.continual_result_for(machine, cpus, runtime)
    inter = result.jobs(JobKind.INTERSTITIAL)
    samples = sample_short_projects(
        inter,
        n_jobs=n_jobs,
        n_samples=scale.sampled_projects,
        rng=ctx.rng_for(f"table4:{machine}:{cpus}:{runtime}:{n_jobs}"),
    )
    if samples.size < max(3, scale.sampled_projects // 10):
        return "n/a*", []
    mean = float(samples.mean())
    std = float(samples.std(ddof=1)) if samples.size > 1 else 0.0
    return fmt_pm_h(mean, std), samples.tolist()


def run(ctx: Optional[RunContext] = None) -> TableResult:
    """Build Table 4 for the given run context."""
    ctx = as_context(ctx)
    scale = ctx.scale
    result = TableResult(
        exp_id="table4",
        title=(
            "Table 4: Fallible short-project makespan (hours, mean ± std "
            f"over up to {scale.sampled_projects} sampled start times; "
            f"projects at {scale.project_scale:g}x paper size)"
        ),
        headers=["PetaCycle", "kJobs", "CPU", "runtime s@1GHz"]
        + [LABELS[m] for m in MACHINES],
    )
    result.data["samples"] = {}
    for peta, kjobs, cpus, runtime in PAPER_ROWS:
        n_jobs = scaled_kjobs(kjobs, scale)
        cells = []
        for m in MACHINES:
            cell, samples = _cell(m, ctx, cpus, runtime, n_jobs)
            cells.append(cell)
            result.data["samples"][(m, peta, kjobs, cpus, runtime)] = samples
        result.rows.append(
            [f"{peta:g}", f"{kjobs:g}", str(cpus), f"{runtime:.0f}"] + cells
        )
    result.notes.append("* makespan >= log time (too few complete samples)")
    result.notes.append(
        "Shape checks: fallible >= omniscient (Table 2); smaller/shorter "
        "jobs finish projects sooner; Blue Pacific's large projects "
        "cannot complete within the log."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
