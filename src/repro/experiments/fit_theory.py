"""§4.2 — The affine makespan calibration.

The paper fits its Table 2 points to
``Makespan(sec) = 5256 + 1.16 x P/(NC(1-U))`` (good to about ±17%).
This driver performs the same least-squares fit over our simulated
points and reports intercept, slope and worst relative error next to
the paper's values.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments import table2
from repro.experiments.common import MACHINE_ORDER, TableResult
from repro.experiments.context import RunContext, as_context
from repro.theory import fit_affine
from repro.theory.makespan import PAPER_FIT_INTERCEPT_S, PAPER_FIT_SLOPE


def run(ctx: Optional[RunContext] = None) -> TableResult:
    """Fit measured omniscient makespans against the ideal model."""
    ctx = as_context(ctx)
    t2 = table2.run(ctx)
    xs, ys = [], []
    for m in MACHINE_ORDER:
        for p in t2.data["points"][m]:
            xs.append(p["ideal_makespan_s"])
            ys.append(p["mean_makespan_s"])
    fit = fit_affine(xs, ys)
    result = TableResult(
        exp_id="fit_theory",
        title="Sec. 4.2: affine fit Makespan = a + b * P/(NC(1-U))",
        headers=["quantity", "paper", "measured"],
    )
    result.rows.append(
        ["intercept a (s)", f"{PAPER_FIT_INTERCEPT_S:.0f}",
         f"{fit.intercept:.0f}"]
    )
    result.rows.append(
        ["slope b", f"{PAPER_FIT_SLOPE:.2f}", f"{fit.slope:.2f}"]
    )
    result.rows.append(
        ["max relative error", "~17%",
         f"{fit.max_relative_error * 100:.0f}%"]
    )
    result.rows.append(["R^2", "-", f"{fit.r_squared:.3f}"])
    result.data["fit"] = fit
    result.data["x_seconds"] = xs
    result.data["y_seconds"] = ys
    result.notes.append(
        "The slope exceeds 1 for the paper's reason: utilization "
        "dispersion plus breakage; at reduced scale dispersion is "
        "relatively larger, so a somewhat larger slope is expected."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
