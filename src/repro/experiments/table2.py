"""Table 2 — Omniscient interstitial project makespans.

For each machine and project size {7.7, 30.1, 123} peta-cycles (scaled)
with 1-CPU and 32-CPU jobs of 120 s @ 1 GHz, drop the project into the
native log at random start times and pack it omnisciently; report the
mean ± std makespan in hours over the samples.

The driver also exposes the raw (ideal-theory, measured) point pairs
that §4.2's fit, Table 3 and Figure 2 reuse — the point grid goes
through the context's content-addressed store (so parallel workers
share it) and the finished TableResult is memoized per context.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.runners import run_omniscient_samples
from repro.experiments.common import (
    MACHINE_LABELS,
    MACHINE_ORDER,
    TableResult,
    fmt_pm_h,
)
from repro.experiments.config import ExperimentScale
from repro.experiments.context import RunContext, as_context
from repro.jobs import InterstitialProject
from repro.theory import ideal_makespan_for

#: The paper's project sizes in peta-cycles and the job widths studied.
PAPER_PETA_CYCLES: Tuple[float, ...] = (7.7, 30.1, 123.0)
JOB_WIDTHS: Tuple[int, ...] = (1, 32)
RUNTIME_1GHZ = 120.0


def project_grid(scale: ExperimentScale) -> List[InterstitialProject]:
    """The scaled (peta-cycles x width) project grid."""
    projects = []
    for peta in PAPER_PETA_CYCLES:
        for width in JOB_WIDTHS:
            projects.append(
                InterstitialProject.from_peta_cycles(
                    peta * scale.project_scale,
                    cpus_per_job=width,
                    runtime_1ghz=RUNTIME_1GHZ,
                    name=f"{peta:g}PC x {width}CPU",
                )
            )
    return projects


def _compute_points(ctx: RunContext) -> Dict[str, List[Dict[str, float]]]:
    """The full omniscient point grid, one list of plain-float dicts
    per machine (store-friendly: no live objects)."""
    scale = ctx.scale
    points: Dict[str, List[Dict[str, float]]] = {m: [] for m in MACHINE_ORDER}
    nominal_sizes = [
        peta for peta in PAPER_PETA_CYCLES for _ in JOB_WIDTHS
    ]
    for nominal_peta, project in zip(nominal_sizes, project_grid(scale)):
        for m in MACHINE_ORDER:
            machine = ctx.machine_for(m)
            native = ctx.native_result_for(m)
            trace = ctx.trace_for(m)
            makespans, _ = run_omniscient_samples(
                machine,
                trace.jobs,
                project,
                n_samples=scale.omniscient_samples,
                # Salt excludes the width so 1-CPU and 32-CPU projects
                # of one size share drop-in times — the Table 3 ratio
                # then isolates breakage from start-time luck.
                rng=ctx.rng_for(f"table2:{m}:{nominal_peta}"),
                native_result=native,
            )
            mean = float(makespans.mean())
            std = float(makespans.std(ddof=1)) if makespans.size > 1 else 0.0
            points[m].append(
                {
                    "nominal_peta": nominal_peta,
                    "peta_cycles": project.peta_cycles,
                    "cpus_per_job": project.cpus_per_job,
                    "n_jobs": project.n_jobs,
                    "mean_makespan_s": mean,
                    "std_makespan_s": std,
                    "ideal_makespan_s": ideal_makespan_for(
                        project, machine, native.native_utilization
                    ),
                    "utilization": native.native_utilization,
                }
            )
    return points


def _build(ctx: RunContext) -> TableResult:
    scale = ctx.scale
    points = ctx.run_cached(
        {"kind": "artifact-data", "name": "table2-points"},
        lambda: _compute_points(ctx),
    )
    result = TableResult(
        exp_id="table2",
        title=(
            "Table 2: Omniscient interstitial makespan (hours, mean ± std "
            f"over {scale.omniscient_samples} random drop-ins; projects at "
            f"{scale.project_scale:g}x paper size)"
        ),
        headers=["PetaCycles", "kJobs", "CPU/Job"]
        + [MACHINE_LABELS[m] for m in MACHINE_ORDER],
    )
    for i, p0 in enumerate(points[MACHINE_ORDER[0]]):
        result.rows.append(
            [
                f"{p0['peta_cycles']:.3g}",
                f"{p0['n_jobs'] / 1000.0:g}",
                str(p0["cpus_per_job"]),
            ]
            + [
                fmt_pm_h(
                    points[m][i]["mean_makespan_s"],
                    points[m][i]["std_makespan_s"],
                )
                for m in MACHINE_ORDER
            ]
        )
    result.data["points"] = points
    result.notes.append(
        "Shape checks: makespan grows ~linearly in project size; "
        "Blue Pacific >> Blue Mountain ~ Ross; 32-CPU ~ 1-CPU except on "
        "Blue Pacific (breakage)."
    )
    return result


def run(ctx: Optional[RunContext] = None) -> TableResult:
    """Build Table 2 (memoized per context — Table 3, Figure 2 and the
    §4.2 fit all reuse it)."""
    ctx = as_context(ctx)
    return ctx.artifact("table2", lambda: _build(ctx))


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
