"""Figure 6 — Wait-time histogram of the 5 % largest native jobs
(by CPU-seconds) on Blue Mountain.

Same construction as Figure 5 restricted to the biggest jobs — the
population the paper shows suffering most, since wide jobs are exactly
the ones whose backfill windows interstitial jobs poach.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import TableResult
from repro.experiments.context import RunContext, as_context
from repro.experiments.fig5 import build
from repro.metrics.waits import largest_fraction


def run(ctx: Optional[RunContext] = None) -> TableResult:
    ctx = as_context(ctx)
    result = build(
        "fig6",
        "Figure 6: wait-time distribution of the 5% largest native jobs "
        f"on Blue Mountain (by CPU-sec) (scale={ctx.scale.name})",
        lambda jobs: largest_fraction(jobs, 0.05),
        ctx,
    )
    result.notes.append(
        "Paper shape: compared to Figure 5 the large-job distribution "
        "shifts further right under interstitial load, especially for "
        "the longer interstitial jobs."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
