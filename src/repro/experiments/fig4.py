"""Figure 4 — Blue Mountain utilization, without and with continual
interstitial computing.

The paper's two panels show hourly utilization over the log: erratic
.78-average native utilization on top, essentially 100 % (except
outages) with continual interstitial computing below.  We emit the two
hourly series plus summary rows (mean, and the fraction of hours above
95 %).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.experiments.common import TableResult
from repro.experiments.context import RunContext, as_context
from repro.metrics.ascii_plots import sparkline
from repro.metrics.utilization import hourly_utilization

MACHINE = "blue_mountain"
CPUS = 32
RUNTIME_1GHZ = 120.0


def run(ctx: Optional[RunContext] = None) -> TableResult:
    ctx = as_context(ctx)
    scale = ctx.scale
    native = ctx.native_result_for(MACHINE)
    cont, _ = ctx.continual_result_for(MACHINE, CPUS, RUNTIME_1GHZ)
    result = TableResult(
        exp_id="fig4",
        title=(
            "Figure 4: Blue Mountain hourly utilization without/with "
            f"continual interstitial computing (scale={scale.name})"
        ),
        headers=["series", "mean util", "std util", "hours > 95%",
                 "hours < 50%"],
    )
    for label, res in (("without interstitial", native),
                       ("with interstitial", cont)):
        times, utils = hourly_utilization(res)
        result.rows.append(
            [
                label,
                f"{utils.mean():.3f}",
                f"{utils.std():.3f}",
                f"{np.mean(utils > 0.95):.1%}",
                f"{np.mean(utils < 0.50):.1%}",
            ]
        )
        result.data[label] = {
            "hour_starts_s": times.tolist(),
            "utilization": utils.tolist(),
        }
        result.notes.append(
            f"{label:>22}: "
            + sparkline(utils, lo=0.0, hi=1.0, width=72)
        )
    result.notes.append(
        "Paper shape: top panel erratic around .78; bottom panel pinned "
        "near 1.0 except during outages."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
