"""Table 7 — Continual interstitial computing on Blue Pacific.

Paper: the already-.916 machine gains little overall utilization
(.964/.946), the median native wait is essentially unchanged, and the
32 CPU x 2601 s stream only pushes ~1k jobs through — the machine's
small free pool and 32-CPU breakage strangle the long-job stream.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import TableResult
from repro.experiments.context import RunContext, as_context
from repro.experiments.continual_tables import build


def run(ctx: Optional[RunContext] = None) -> TableResult:
    ctx = as_context(ctx)
    result = build("table7", "blue_pacific", ctx, "Blue Pacific")
    result.title = "Table 7: " + result.title
    result.notes.append(
        "Paper shapes: small utilization gain (already >.9); median "
        "wait ~unchanged; far fewer long interstitial jobs than short."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
