"""Ablation — stochastic node failures under continual interstitial load.

The paper's Figure 4 explains Blue Mountain's sub-100% ceiling with
*outages*, but its outage narrative is drain-style: capacity leaves,
running work survives.  Real machines also lose nodes mid-job.  This
ablation replays the continual Blue Mountain run under a seeded
:class:`~repro.faults.FaultModel` at several per-node MTBF settings and
quantifies the crash tax: overall utilization erodes with the failure
rate, fault-killed natives requeue and retry per the
:class:`~repro.faults.RetryPolicy`, and interstitial kills route
through the controller's re-credit path — the cheap-resubmission
property that makes scavenger workloads the right place to absorb
failures (arXiv:1909.00394).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.controller import InterstitialController
from repro.core.runners import run_with_controller
from repro.experiments.common import TableResult
from repro.experiments.context import RunContext, as_context
from repro.faults import FaultModel, RetryPolicy
from repro.jobs import InterstitialProject, JobKind
from repro.units import DAY, HOUR

MACHINE = "blue_mountain"
CPUS = 32
RUNTIME_1GHZ = 120.0
#: CPUs lost per node crash (Blue Mountain was built from large SMP
#: boxes; one failure domain takes a slab of CPUs with it).
CPUS_PER_NODE = 16

#: (label, per-node MTBF seconds, distribution); None disables faults.
MTBF_SETTINGS: Tuple[Tuple[str, Optional[float], str], ...] = (
    ("no faults", None, "exponential"),
    ("MTBF 90 d/node", 90.0 * DAY, "exponential"),
    ("MTBF 30 d/node", 30.0 * DAY, "exponential"),
    ("MTBF 10 d/node", 10.0 * DAY, "exponential"),
    ("MTBF 30 d/node (Weibull)", 30.0 * DAY, "weibull"),
)


def run(ctx: Optional[RunContext] = None) -> TableResult:
    ctx = as_context(ctx)
    scale = ctx.scale
    machine = ctx.machine_for(MACHINE)
    trace = ctx.trace_for(MACHINE)
    project = InterstitialProject(
        n_jobs=1, cpus_per_job=CPUS, runtime_1ghz=RUNTIME_1GHZ
    )
    retry = RetryPolicy(
        max_attempts=5,
        base_delay=60.0,
        backoff_factor=2.0,
        max_delay=1.0 * HOUR,
    )
    result = TableResult(
        exp_id="fault_ablation",
        title=(
            "Ablation: stochastic node failures under continual "
            f"interstitial load (Blue Mountain, {CPUS_PER_NODE} CPUs/"
            f"node, scale={scale.name})"
        ),
        headers=[
            "fault model",
            "overall util",
            "native util",
            "failures",
            "killed nat/int",
            "retries",
            "dead-letter",
        ],
    )
    for label, mtbf, distribution in MTBF_SETTINGS:
        faults = None
        if mtbf is not None:
            faults = FaultModel(
                mtbf=mtbf,
                mttr=4.0 * HOUR,
                cpus_per_node=CPUS_PER_NODE,
                distribution=distribution,
                seed=scale.seed,
            )
        controller = InterstitialController(
            machine=machine,
            project=project,
            continual=True,
            throttle_after_failures=8,
            throttle_window=1.0 * HOUR,
            throttle_quiet_period=2.0 * HOUR,
        )
        res = run_with_controller(
            machine,
            trace.jobs,
            controller,
            faults=faults,
            retry=retry,
            horizon=trace.duration,
            check_invariants=ctx.check_invariants,
        )
        killed_native = sum(1 for j in res.killed if j.kind is JobKind.NATIVE)
        killed_inter = len(res.killed) - killed_native
        retries = sum(res.attempts.values())
        stats = {
            "overall_utilization": res.utilization(t1=trace.duration),
            "native_utilization": res.utilization(
                JobKind.NATIVE, t1=trace.duration
            ),
            "n_failures": res.n_failures,
            "killed_native": killed_native,
            "killed_interstitial": killed_inter,
            "retries": retries,
            "dead_lettered": len(res.dead_lettered),
            "controller_faults_seen": controller.n_faults_seen,
        }
        result.rows.append(
            [
                label,
                f"{stats['overall_utilization']:.3f}",
                f"{stats['native_utilization']:.3f}",
                str(res.n_failures),
                f"{killed_native}/{killed_inter}",
                str(retries),
                str(len(res.dead_lettered)),
            ]
        )
        result.data[label] = stats
    result.notes.append(
        "Expected: utilization erodes as per-node MTBF shrinks (crash "
        "windows add to the Figure-4 outage dips).  Victim draws are "
        "width-weighted, so wide natives absorb a disproportionate "
        "share of kills — each costs a full rerun, while an "
        "interstitial kill wastes at most one small job (the cheap-"
        "resubmission advantage of scavenger workloads)."
    )
    result.notes.append(
        "Same seed, same table: the fault schedule and victim draws "
        "are deterministic in the scale seed."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
