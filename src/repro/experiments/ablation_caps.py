"""Ablation — fine-grained utilization-cap sweep (extends Table 8b).

The paper samples caps at 90/95/98 %; here the whole trade-off curve is
swept so a facility can pick its own operating point: interstitial
throughput and overall utilization vs native median/mean wait.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.experiments.common import (
    TableResult,
    fmt_k,
)
from repro.experiments.context import RunContext, as_context
from repro.experiments.continual_tables import column_stats

MACHINE = "blue_mountain"
CPUS = 32
RUNTIME_1GHZ = 120.0
CAPS: Tuple[float, ...] = (0.82, 0.86, 0.90, 0.94, 0.98)


def run(ctx: Optional[RunContext] = None) -> TableResult:
    ctx = as_context(ctx)
    scale = ctx.scale
    result = TableResult(
        exp_id="ablation_caps",
        title=(
            "Ablation: utilization-cap sweep on Blue Mountain "
            f"(continual {CPUS}CPU x 120s@1GHz, scale={scale.name})"
        ),
        headers=[
            "cap",
            "interstitial jobs",
            "overall util",
            "native median wait",
            "native mean wait",
        ],
    )
    baseline = column_stats(ctx.native_result_for(MACHINE))
    result.rows.append(
        [
            "native only",
            "0",
            f"{baseline['overall_utilization']:.3f}",
            fmt_k(baseline["median_wait_all_s"]),
            fmt_k(baseline["mean_wait_all_s"]),
        ]
    )
    result.data["native"] = baseline
    for cap in CAPS + (None,):
        res, _ = ctx.continual_result_for(
            MACHINE, CPUS, RUNTIME_1GHZ, max_utilization=cap
        )
        stats = column_stats(res)
        label = "uncapped" if cap is None else f"{cap:.0%}"
        result.rows.append(
            [
                label,
                str(stats["interstitial_jobs"]),
                f"{stats['overall_utilization']:.3f}",
                fmt_k(stats["median_wait_all_s"]),
                fmt_k(stats["mean_wait_all_s"]),
            ]
        )
        result.data[label] = stats
    result.notes.append(
        "Expected: monotone trade — higher caps buy interstitial "
        "throughput and overall utilization at growing native waits."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
