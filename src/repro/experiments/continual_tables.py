"""Shared builder for the continual-interstitial tables (6, 7, 8a).

Each table compares the native-only baseline against two continual
32-CPU interstitial streams (short 120 s @ 1 GHz jobs and long
960 s @ 1 GHz jobs) on one machine, reporting interstitial throughput,
native throughput, overall/native utilization and the median native
wait over all jobs and over the 5 % largest (by CPU-seconds).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.experiments.common import (
    TableResult,
    fmt_k,
)
from repro.experiments.context import RunContext
from repro.jobs import JobKind
from repro.metrics.waits import largest_fraction, wait_times
from repro.sim.results import SimResult
from repro.units import normalize_runtime

#: Continual-table job shape used throughout §4.3.2.
CONTINUAL_CPUS = 32
CONTINUAL_RUNTIMES_1GHZ: Tuple[float, float] = (120.0, 960.0)


def column_stats(result: SimResult) -> dict:
    """Machine-readable stats for one table column."""
    natives = result.jobs(JobKind.NATIVE)
    waits = wait_times(natives)
    largest = largest_fraction(natives, 0.05)
    largest_waits = wait_times(largest)
    return {
        "interstitial_jobs": len(result.jobs(JobKind.INTERSTITIAL)),
        "native_jobs": len(natives),
        "overall_utilization": result.overall_utilization,
        "native_utilization": result.native_utilization,
        "median_wait_all_s": float(np.median(waits)) if waits.size else 0.0,
        "median_wait_largest_s": (
            float(np.median(largest_waits)) if largest_waits.size else 0.0
        ),
        "mean_wait_all_s": float(waits.mean()) if waits.size else 0.0,
    }


def build(
    exp_id: str,
    machine_name: str,
    ctx: RunContext,
    title_machine: str,
    max_utilization: Optional[float] = None,
) -> TableResult:
    """Build one continual-interstitial table."""
    scale = ctx.scale
    machine = ctx.machine_for(machine_name)
    clock = machine.clock_ghz
    columns = [("Native Jobs", ctx.native_result_for(machine_name))]
    for runtime_1ghz in CONTINUAL_RUNTIMES_1GHZ:
        actual = normalize_runtime(runtime_1ghz, clock)
        label = f"{CONTINUAL_CPUS}CPU x {actual:.0f}sec"
        run, _ = ctx.continual_result_for(
            machine_name,
            CONTINUAL_CPUS,
            runtime_1ghz,
            max_utilization=max_utilization,
        )
        columns.append((label, run))

    result = TableResult(
        exp_id=exp_id,
        title=(
            f"Continual interstitial computing on {title_machine} "
            f"(scale={scale.name})"
            + (
                f", submission capped at util < {max_utilization:.0%}"
                if max_utilization is not None
                else ""
            )
        ),
        headers=["row"] + [label for label, _ in columns],
    )
    stats = [column_stats(run) for _, run in columns]
    result.data["columns"] = {
        label: s for (label, _), s in zip(columns, stats)
    }

    def row(label, fn):
        result.rows.append([label] + [fn(s) for s in stats])

    row("Interstitial jobs", lambda s: str(s["interstitial_jobs"]))
    row("Native jobs", lambda s: str(s["native_jobs"]))
    row("Overall Util", lambda s: f"{s['overall_utilization']:.3f}")
    row("Native Util", lambda s: f"{s['native_utilization']:.3f}")
    row(
        "Median Wait sec all / 5% largest",
        lambda s: (
            f"{fmt_k(s['median_wait_all_s'])} / "
            f"{fmt_k(s['median_wait_largest_s'])}"
        ),
    )
    row("Mean Wait sec (all)", lambda s: fmt_k(s["mean_wait_all_s"]))
    return result
