"""Parallel experiment executor.

Runs a set of registry experiments either serially (in the caller's
:class:`~repro.experiments.context.RunContext`) or across worker
processes with ``ProcessPoolExecutor``.  Parallel workers cannot share
in-process memory, so they communicate through the content-addressed
disk layer of :class:`~repro.store.RunStore`: each worker rebuilds a
``RunContext`` from the picklable ``(scale, store_path,
check_invariants)`` triple and returns only the rendered table text.

Because every driver is fully deterministic in the scale seed, the
rendered output of ``run_experiments(names, ctx, jobs=N)`` is
byte-identical for every ``N`` — parallelism only changes who computes
a given simulation first.

Scheduling honours :attr:`ExperimentSpec.deps` as a partial order: an
experiment is submitted only once all of its requested deps have
finished, so e.g. Table 3 reads Table 2's point grid from the store
instead of recomputing it in a second process.  Deps that are not part
of the requested set are ignored.
"""

from __future__ import annotations

import tempfile
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentScale
from repro.experiments.context import RunContext
from repro.obs import Counters
from repro.sim.results import SimResult
from repro.store import RunStore


def _sim_results(value) -> Iterator[SimResult]:
    """Yield every :class:`SimResult` inside one store product (bare,
    or packed in the ``(result, controller)`` tuples continual runs
    store)."""
    if isinstance(value, SimResult):
        yield value
    elif isinstance(value, (tuple, list)):
        for item in value:
            if isinstance(item, SimResult):
                yield item


def aggregate_counters(ctx: RunContext) -> Counters:
    """Merge the :class:`~repro.obs.Counters` of every simulation the
    context's store holds, plus the store's own memoization hit counts.

    This is the experiment-level view of the engine counters: after
    ``run_experiments`` (serial) or a ``repro profile`` run, it answers
    "how many events/passes/preemptions did this table actually cost".
    Parallel workers hold their own stores, so with ``jobs > 1`` the
    aggregate covers only what the calling process computed or loaded.
    """
    total = Counters()
    for value in ctx.store.values():
        for result in _sim_results(value):
            total.merge(result.counters)
    total.cache_hits += ctx.store.hits + ctx.store.disk_hits
    return total


def render_experiment(
    name: str,
    scale: ExperimentScale,
    store_path: Optional[str] = None,
    check_invariants: bool = False,
) -> str:
    """Rebuild a context in *this* process, run one registry driver and
    return its rendered table text.

    This is the shared picklable worker entry point: the parallel
    report executor and the serving daemon's long-lived worker pool
    (:mod:`repro.service`) both dispatch it to ``ProcessPoolExecutor``
    workers.  An unknown ``name`` (or a driver raising mid-run) fails
    only this call — the exception travels back to the submitting
    process and the pool stays usable.
    """
    from repro.experiments.registry import SPECS

    if name not in SPECS:
        raise KeyError(f"unknown experiment {name!r}")
    ctx = RunContext(
        scale=scale,
        store=RunStore(store_path),
        check_invariants=check_invariants,
    )
    return SPECS[name].driver(ctx).render()


def _render_one(
    name: str,
    scale: ExperimentScale,
    store_path: Optional[str],
    check_invariants: bool,
) -> Tuple[str, str]:
    """Report-executor worker: ``(name, rendered text)``."""
    return name, render_experiment(name, scale, store_path, check_invariants)


def run_experiments(
    names: Sequence[str],
    ctx: RunContext,
    jobs: int = 1,
) -> Dict[str, str]:
    """Run the named experiments; return ``{name: rendered text}``.

    ``jobs <= 1`` runs everything serially in ``ctx``.  ``jobs > 1``
    fans out over a process pool; if ``ctx.store`` has no disk layer a
    temporary one is created for the duration of the call so workers
    can share simulation runs.
    """
    from repro.experiments.registry import SPECS

    unknown = [n for n in names if n not in SPECS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")

    if jobs <= 1 or len(names) <= 1:
        return {name: SPECS[name].driver(ctx).render() for name in names}

    tmpdir = None
    store_path = ctx.store.path
    if store_path is None:
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-store-")
        store_path = tmpdir.name
    try:
        return _run_parallel(
            names, ctx.scale, str(store_path), ctx.check_invariants, jobs
        )
    finally:
        if tmpdir is not None:
            tmpdir.cleanup()


def _run_parallel(
    names: Sequence[str],
    scale: ExperimentScale,
    store_path: str,
    check_invariants: bool,
    jobs: int,
) -> Dict[str, str]:
    from repro.experiments.registry import SPECS

    requested = set(names)
    rendered: Dict[str, str] = {}
    pending = list(names)  # keep request order for deterministic submits
    running = {}

    def ready(name: str) -> bool:
        return all(
            dep in rendered
            for dep in SPECS[name].deps
            if dep in requested and dep != name
        )

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        while pending or running:
            for name in [n for n in pending if ready(n)]:
                pending.remove(name)
                running[
                    pool.submit(
                        _render_one, name, scale, store_path,
                        check_invariants,
                    )
                ] = name
            if not running:
                # Remaining deps point at each other: break the cycle
                # rather than deadlock (deps are only hints).
                name = pending.pop(0)
                running[
                    pool.submit(
                        _render_one, name, scale, store_path,
                        check_invariants,
                    )
                ] = name
            done, _ = wait(running, return_when=FIRST_COMPLETED)
            for future in done:
                running.pop(future)
                name, text = future.result()
                rendered[name] = text
    return rendered
