"""Table 3 — 1-CPU vs 32-CPU jobs: breakage theory vs measurement.

The theory row is ``(N(1-U)/32) / floor(N(1-U)/32)`` per machine; the
actual row is the ratio of measured 32-CPU to 1-CPU omniscient
makespans from the Table 2 experiment (averaged over project sizes, as
the sizes barely matter for the ratio).
"""

from __future__ import annotations

import math

import numpy as np

from typing import Optional

from repro.experiments import table2
from repro.experiments.common import (
    MACHINE_LABELS,
    MACHINE_ORDER,
    TableResult,
)
from repro.experiments.context import RunContext, as_context
from repro.machines.presets import targets
from repro.theory import breakage_factor


def run(ctx: Optional[RunContext] = None) -> TableResult:
    """Build Table 3 (reuses the Table 2 runs via the shared context)."""
    ctx = as_context(ctx)
    t2 = table2.run(ctx)
    result = TableResult(
        exp_id="table3",
        title="Table 3: 32-CPU vs 1-CPU makespan ratio (breakage)",
        headers=["row"] + [MACHINE_LABELS[m] for m in MACHINE_ORDER],
    )
    theory_paper = []
    theory_measured = []
    actual = []
    for m in MACHINE_ORDER:
        machine = ctx.machine_for(m)
        points = t2.data["points"][m]
        measured_util = points[0]["utilization"]
        theory_paper.append(
            breakage_factor(machine.cpus, targets(m).utilization, 32)
        )
        theory_measured.append(
            breakage_factor(machine.cpus, measured_util, 32)
        )
        ratios = []
        by_size = {}
        for p in points:
            by_size.setdefault(p["nominal_peta"], {})[
                p["cpus_per_job"]
            ] = p["mean_makespan_s"]
        for size, widths in by_size.items():
            if 1 in widths and 32 in widths and widths[1] > 0:
                ratios.append(widths[32] / widths[1])
        actual.append(float(np.mean(ratios)) if ratios else math.nan)

    def fmt(x: float) -> str:
        return "inf" if math.isinf(x) else f"{x:.3f}"

    result.rows.append(["Theory (paper U)"] + [fmt(x) for x in theory_paper])
    result.rows.append(
        ["Theory (measured U)"] + [fmt(x) for x in theory_measured]
    )
    result.rows.append(["Actual (simulated)"] + [fmt(x) for x in actual])
    result.data["theory_paper_u"] = dict(zip(MACHINE_ORDER, theory_paper))
    result.data["theory_measured_u"] = dict(
        zip(MACHINE_ORDER, theory_measured)
    )
    result.data["actual"] = dict(zip(MACHINE_ORDER, actual))
    result.notes.append(
        "Paper: theory 1.035 / 1.020 / 1.346, actual 1.023 / 1.024 / "
        "1.105 for Ross / Blue Mountain / Blue Pacific."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
