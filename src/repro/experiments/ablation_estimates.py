"""Ablation — how user estimate quality shapes interstitial computing.

The paper blames grossly-overestimated (default) runtimes both for
delaying interstitial submission and for letting interstitial jobs
poach native backfill windows (§4.3).  This ablation replays the same
Blue Mountain trace with three estimate regimes:

* ``perfect``   — estimate equals actual runtime;
* ``default``   — the calibrated default-heavy estimates (baseline);
* ``inflated``  — the default estimates doubled again.

and measures native impact and interstitial throughput of a continual
32-CPU x 120 s @ 1 GHz stream under each.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.runners import run_continual
from repro.experiments.common import (
    TableResult,
    fmt_k,
)
from repro.experiments.context import RunContext, as_context
from repro.experiments.continual_tables import column_stats
from repro.jobs import InterstitialProject, Job

MACHINE = "blue_mountain"
CPUS = 32
RUNTIME_1GHZ = 120.0


def _with_estimates(jobs: List[Job], mode: str) -> List[Job]:
    out = []
    for job in jobs:
        copy = job.copy_unscheduled()
        if mode == "perfect":
            copy.estimate = copy.runtime
        elif mode == "inflated":
            copy.estimate = copy.estimate * 2.0
        elif mode != "default":
            raise ValueError(f"unknown estimate mode {mode!r}")
        out.append(copy)
    return out


def run(ctx: Optional[RunContext] = None) -> TableResult:
    ctx = as_context(ctx)
    scale = ctx.scale
    machine = ctx.machine_for(MACHINE)
    trace = ctx.trace_for(MACHINE)
    project = InterstitialProject(
        n_jobs=1, cpus_per_job=CPUS, runtime_1ghz=RUNTIME_1GHZ
    )
    result = TableResult(
        exp_id="ablation_estimates",
        title=(
            "Ablation: estimate quality vs interstitial effectiveness "
            f"(Blue Mountain, continual {CPUS}CPU x 120s@1GHz, "
            f"scale={scale.name})"
        ),
        headers=[
            "estimates",
            "interstitial jobs",
            "overall util",
            "native util",
            "native median wait",
            "native mean wait",
        ],
    )
    for mode in ("perfect", "default", "inflated"):
        jobs = _with_estimates(trace.jobs, mode)
        res, controller = run_continual(
            machine,
            jobs,
            project,
            horizon=trace.duration,
            check_invariants=ctx.check_invariants,
        )
        stats = column_stats(res)
        result.rows.append(
            [
                mode,
                str(stats["interstitial_jobs"]),
                f"{stats['overall_utilization']:.3f}",
                f"{stats['native_utilization']:.3f}",
                fmt_k(stats["median_wait_all_s"]),
                fmt_k(stats["mean_wait_all_s"]),
            ]
        )
        result.data[mode] = stats
    result.notes.append(
        "Expected: perfect estimates reduce native waits (no poached "
        "backfill windows) while keeping interstitial throughput "
        "comparable; further inflation mostly throttles interstitial "
        "submission."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
