"""Table 8 (second) — Limited continual interstitial on Blue Mountain.

Interstitial submission only while machine utilization (interstitial
included) stays below 90 / 95 / 98 %.  Paper shape: the 90 % cap drops
interstitial jobs ~40 % and overall utilization by ~6 points but
restores native waits toward the baseline; 98 % costs only ~10 % of the
interstitial jobs.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.experiments.common import (
    TableResult,
    fmt_k,
)
from repro.experiments.context import RunContext, as_context
from repro.experiments.continual_tables import column_stats

MACHINE = "blue_mountain"
CPUS = 32
RUNTIME_1GHZ = 120.0
CAPS: Tuple[float, ...] = (0.90, 0.95, 0.98)


def run(ctx: Optional[RunContext] = None) -> TableResult:
    ctx = as_context(ctx)
    scale = ctx.scale
    native_stats = column_stats(ctx.native_result_for(MACHINE))
    uncapped, _ = ctx.continual_result_for(MACHINE, CPUS, RUNTIME_1GHZ)
    uncapped_stats = column_stats(uncapped)
    columns = [("uncapped", uncapped_stats)]
    for cap in CAPS:
        res, _ = ctx.continual_result_for(
            MACHINE, CPUS, RUNTIME_1GHZ, max_utilization=cap
        )
        columns.append((f"util < {cap:.0%}", column_stats(res)))

    result = TableResult(
        exp_id="table8_limited",
        title=(
            "Table 8b: Limited continual interstitial computing on "
            f"Blue Mountain, {CPUS}CPU x 120s@1GHz (scale={scale.name})"
        ),
        headers=["row"] + [label for label, _ in columns],
    )
    result.data["native_baseline"] = native_stats
    result.data["columns"] = {label: s for label, s in columns}

    def row(label, fn):
        result.rows.append([label] + [fn(s) for _, s in columns])

    row("Interstitial jobs", lambda s: str(s["interstitial_jobs"]))
    row(
        "Interstitial vs uncapped",
        lambda s: f"{s['interstitial_jobs'] / max(1, uncapped_stats['interstitial_jobs']):.0%}",
    )
    row("Native jobs", lambda s: str(s["native_jobs"]))
    row("Overall Utilization", lambda s: f"{s['overall_utilization']:.3f}")
    row("Native Utilization", lambda s: f"{s['native_utilization']:.3f}")
    row(
        "Median Wait sec all / 5% largest",
        lambda s: (
            f"{fmt_k(s['median_wait_all_s'])} / "
            f"{fmt_k(s['median_wait_largest_s'])}"
        ),
    )
    result.notes.append(
        f"native baseline median wait all/5%: "
        f"{fmt_k(native_stats['median_wait_all_s'])} / "
        f"{fmt_k(native_stats['median_wait_largest_s'])}"
    )
    result.notes.append(
        "Paper: caps 90/95/98% keep 64/80/90% of interstitial jobs and "
        "cut overall utilization by 6/3/1 points vs uncapped."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
