"""Table 1 — Comparison of ASCI machines.

Reports each preset machine's configuration (CPUs, clock, TCycles,
queue algorithm — exact reproductions of the paper's rows) alongside
the synthetic trace's realized statistics (utilization, log days, job
count — calibrated substitutes for the proprietary logs).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    MACHINE_LABELS,
    MACHINE_ORDER,
    TableResult,
)
from repro.experiments.context import RunContext, as_context
from repro.machines.presets import targets
from repro.units import DAY


def run(ctx: Optional[RunContext] = None) -> TableResult:
    """Build the Table 1 comparison for the given run context."""
    ctx = as_context(ctx)
    scale = ctx.scale
    result = TableResult(
        exp_id="table1",
        title=(
            "Table 1: Comparison of ASCI Machines "
            f"(scale={scale.name}: logs at {scale.trace_scale:g}x length)"
        ),
        headers=["row"] + [MACHINE_LABELS[m] for m in MACHINE_ORDER],
    )
    machines = {m: ctx.machine_for(m) for m in MACHINE_ORDER}
    traces = {m: ctx.trace_for(m) for m in MACHINE_ORDER}
    natives = {m: ctx.native_result_for(m) for m in MACHINE_ORDER}

    def row(label, fn):
        result.rows.append([label] + [fn(m) for m in MACHINE_ORDER])

    row("Site", lambda m: machines[m].site)
    row("CPUs", lambda m: str(machines[m].cpus))
    row("clock GHz", lambda m: f"{machines[m].clock_ghz:.3f}")
    row("TCycles", lambda m: f"{machines[m].tera_cycles_per_s:.3f}")
    row("Utilization (paper)", lambda m: f"{targets(m).utilization:.3f}")
    row(
        "Utilization (measured)",
        lambda m: f"{natives[m].native_utilization:.3f}",
    )
    row("times days", lambda m: f"{traces[m].duration / DAY:.1f}")
    row("Jobs", lambda m: str(traces[m].n_jobs))
    row("Queue algorithm", lambda m: machines[m].queue_algorithm)

    for m in MACHINE_ORDER:
        result.data[m] = {
            "cpus": machines[m].cpus,
            "clock_ghz": machines[m].clock_ghz,
            "tera_cycles": machines[m].tera_cycles_per_s,
            "paper_utilization": targets(m).utilization,
            "measured_utilization": natives[m].native_utilization,
            "offered_utilization": traces[m].offered_utilization(
                machines[m]
            ),
            "n_jobs": traces[m].n_jobs,
            "duration_days": traces[m].duration / DAY,
        }
    result.notes.append(
        "Utilization (measured) is the realized native utilization of "
        "the calibrated synthetic trace under the machine's scheduler."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
