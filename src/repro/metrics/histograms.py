"""Wait-time histograms and CDFs (Figures 3, 5, 6).

Figures 5 and 6 bin native wait times by ``log10(seconds)`` into the
bins [0,1), [1,2), ..., [5,6).  Zero and sub-second waits land in the
first bin (the paper's "(0,1)" bin holds the never-waited mass).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError

#: The paper's log10(wait seconds) bin edges.
LOG10_WAIT_BINS: Tuple[float, ...] = (0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0)


def log10_wait_histogram(
    waits_s: Iterable[float],
    bins: Sequence[float] = LOG10_WAIT_BINS,
    normalize: bool = True,
) -> np.ndarray:
    """Histogram of wait times over log10-second bins.

    Waits below one second (including zero) are clamped into the first
    bin; waits beyond the last edge are clamped into the last bin so no
    probability mass is silently dropped.
    """
    waits = np.asarray(list(waits_s), dtype=float)
    if np.any(waits < 0):
        raise ValidationError("negative wait time")
    edges = np.asarray(bins, dtype=float)
    if edges.size < 2:
        raise ValidationError("need at least two bin edges")
    if waits.size == 0:
        return np.zeros(edges.size - 1)
    logs = np.log10(np.maximum(waits, 1.0))
    logs = np.clip(logs, edges[0], np.nextafter(edges[-1], -np.inf))
    counts, _ = np.histogram(logs, bins=edges)
    if normalize:
        return counts / counts.sum()
    return counts.astype(float)


def cdf(values: Iterable[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, P[X <= value]).

    Used for the Figure-3 makespan CDF plots/series.
    """
    data = np.sort(np.asarray(list(values), dtype=float))
    if data.size == 0:
        raise ValidationError("cannot build a CDF of nothing")
    probs = np.arange(1, data.size + 1) / data.size
    return data, probs


def survival(values: Iterable[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical survival function P[X > value] (Figure 3 plots
    ``CDF > Makespan`` on its y-axis, i.e. the survival form)."""
    data, probs = cdf(values)
    return data, 1.0 - probs
