"""Terminal renderings of the paper's figures.

The bench harness is text-only, so the figure drivers attach compact
Unicode renderings: :func:`sparkline` for time series (Figure 4's
utilization panels), :func:`hbar` rows for histograms (Figures 5/6) and
:func:`scatter` for the Figure 2 theory-vs-actual cloud.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError

#: Eight-level block characters, lowest to highest.
_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(
    values: Iterable[float],
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    width: Optional[int] = None,
) -> str:
    """Render a series as a one-line block-character sparkline.

    Values are scaled into ``[lo, hi]`` (defaulting to the data range);
    with ``width`` the series is first averaged into that many buckets.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValidationError("cannot sparkline an empty series")
    if width is not None and width > 0 and data.size > width:
        edges = np.linspace(0, data.size, width + 1).astype(int)
        data = np.array(
            [data[a:b].mean() for a, b in zip(edges[:-1], edges[1:])]
        )
    lo = float(data.min()) if lo is None else float(lo)
    hi = float(data.max()) if hi is None else float(hi)
    if hi <= lo:
        return _BLOCKS[-1] * data.size
    span = hi - lo
    out = []
    for v in np.clip(data, lo, hi):
        idx = int(round((v - lo) / span * (len(_BLOCKS) - 1)))
        out.append(_BLOCKS[idx])
    return "".join(out)


def hbar(fraction: float, width: int = 30, fill: str = "#") -> str:
    """A horizontal bar of ``fraction`` (clipped to [0, 1]) of ``width``."""
    if width <= 0:
        raise ValidationError(f"width must be positive: {width}")
    fraction = min(1.0, max(0.0, fraction))
    n = int(round(fraction * width))
    return fill * n + "." * (width - n)


def histogram_rows(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 30,
) -> List[str]:
    """Render a histogram as aligned ``label |#####  0.42`` rows,
    normalized to the largest bin."""
    if len(labels) != len(values):
        raise ValidationError("labels and values length mismatch")
    if not labels:
        return []
    peak = max(values) or 1.0
    label_w = max(len(label) for label in labels)
    return [
        f"{label.ljust(label_w)} |{hbar(v / peak, width)} {v:.3f}"
        for label, v in zip(labels, values)
    ]


def scatter(
    points: Sequence[Tuple[float, float]],
    rows: int = 12,
    cols: int = 48,
    marker: str = "o",
    diagonal: bool = True,
) -> List[str]:
    """Plot (x, y) points on a character grid (origin bottom-left).

    With ``diagonal`` the y=x line is drawn with ``/`` so theory-vs-
    actual clouds (Figure 2) show their relation to the ideal.
    """
    if rows < 2 or cols < 2:
        raise ValidationError("grid must be at least 2x2")
    if not points:
        return []
    xs = np.array([p[0] for p in points], dtype=float)
    ys = np.array([p[1] for p in points], dtype=float)
    hi = max(xs.max(), ys.max())
    lo = 0.0
    if hi <= lo:
        hi = lo + 1.0
    grid = [[" "] * cols for _ in range(rows)]
    if diagonal:
        for c in range(cols):
            x = lo + (c + 0.5) / cols * (hi - lo)
            r = int((x - lo) / (hi - lo) * (rows - 1))
            grid[rows - 1 - min(r, rows - 1)][c] = "/"
    for x, y in zip(xs, ys):
        c = int((x - lo) / (hi - lo) * (cols - 1))
        r = int((min(y, hi) - lo) / (hi - lo) * (rows - 1))
        grid[rows - 1 - r][min(c, cols - 1)] = marker
    return ["".join(row) for row in grid]
