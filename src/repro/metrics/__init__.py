"""Performance metrics over simulation results.

Everything the paper's tables and figures report: wait-time statistics
(median/mean, all jobs and the 5 % largest by CPU-seconds), expansion
factors, makespan distributions, utilization time series and log10
wait-time histograms — plus plain-text table rendering for the
benchmark harness.
"""

from repro.metrics.histograms import (
    LOG10_WAIT_BINS,
    cdf,
    log10_wait_histogram,
)
from repro.metrics.ascii_plots import histogram_rows, scatter, sparkline
from repro.metrics.cascade import CascadeReport, cascade_report, extra_waits
from repro.metrics.makespan import MakespanStats, makespan_stats
from repro.metrics.slowdown import (
    UserImpact,
    bounded_slowdowns,
    impact_concentration,
    per_user_impact,
)
from repro.metrics.tables import format_table
from repro.metrics.utilization import hourly_utilization, utilization_summary
from repro.metrics.waits import (
    WaitStats,
    expansion_factors,
    largest_fraction,
    wait_stats,
    wait_times,
)

__all__ = [
    "WaitStats",
    "wait_stats",
    "wait_times",
    "expansion_factors",
    "largest_fraction",
    "MakespanStats",
    "makespan_stats",
    "hourly_utilization",
    "utilization_summary",
    "log10_wait_histogram",
    "LOG10_WAIT_BINS",
    "cdf",
    "format_table",
    "bounded_slowdowns",
    "per_user_impact",
    "impact_concentration",
    "UserImpact",
    "cascade_report",
    "extra_waits",
    "CascadeReport",
    "sparkline",
    "histogram_rows",
    "scatter",
]
