"""Utilization time series and summaries (Figure 4; Tables 6-8)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.jobs import JobKind
from repro.sim.results import SimResult
from repro.units import HOUR


def hourly_utilization(
    result: SimResult,
    kind: Optional[JobKind] = None,
    bin_s: float = HOUR,
    t0: float = 0.0,
    t1: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Binned average utilization series (Figure 4's hourly curve).

    Returns (bin start times, utilization per bin).  ``kind`` filters to
    native or interstitial work; None sums both.
    """
    if bin_s <= 0:
        raise ValidationError(f"bin_s must be positive: {bin_s}")
    end = t1 if t1 is not None else result.metrics_end
    if end <= t0:
        raise ValidationError(f"empty window [{t0}, {end}]")
    profile = result.busy_profile(kind)
    n_bins = max(1, int(np.ceil((end - t0) / bin_s)))
    starts = t0 + bin_s * np.arange(n_bins)
    utils = np.empty(n_bins)
    denom = result.machine.cpus
    for i, s in enumerate(starts):
        e = min(s + bin_s, end)
        utils[i] = profile.integrate(s, e) / (denom * (e - s))
    return starts, utils


@dataclass(frozen=True)
class UtilizationSummary:
    """Overall / native / interstitial average utilizations."""

    overall: float
    native: float
    interstitial: float

    def describe(self) -> str:
        return (
            f"utilization overall {self.overall:.3f} "
            f"(native {self.native:.3f}, "
            f"interstitial {self.interstitial:.3f})"
        )


def utilization_summary(
    result: SimResult, t0: float = 0.0, t1: Optional[float] = None
) -> UtilizationSummary:
    """Average utilizations over the metrics window, split by kind
    (the "Overall Util" / "Native Util" rows of Tables 6-8)."""
    return UtilizationSummary(
        overall=result.utilization(None, t0, t1),
        native=result.utilization(JobKind.NATIVE, t0, t1),
        interstitial=result.utilization(JobKind.INTERSTITIAL, t0, t1),
    )
