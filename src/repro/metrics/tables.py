"""Plain-text table rendering for the benchmark harness.

Every bench prints the paper's table rows through this formatter, so
``pytest benchmarks/ --benchmark-only`` output can be compared against
the paper side by side (and is what EXPERIMENTS.md records).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width table.

    Cells are stringified; floats default to ``str`` so callers format
    numbers themselves (keeping table-specific precision where the data
    is produced).
    """
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)
