"""Wait-time and expansion-factor statistics.

The paper's native-impact tables (5, 6, 7, 8) report median and mean
wait times and expansion factors, both over all native jobs and over
the "5% largest jobs ... in terms of CPU-sec" (Figure 6's caption makes
the size metric explicit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.jobs import Job


def wait_times(jobs: Iterable[Job]) -> np.ndarray:
    """Wait times (start - submit) of started jobs, in seconds."""
    return np.array(
        [j.wait_time for j in jobs if j.start_time is not None], dtype=float
    )


def expansion_factors(jobs: Iterable[Job]) -> np.ndarray:
    """The paper's EF = 1 + wait / runtime per started job."""
    return np.array(
        [j.expansion_factor for j in jobs if j.start_time is not None],
        dtype=float,
    )


def largest_fraction(jobs: Sequence[Job], fraction: float = 0.05) -> List[Job]:
    """The ``fraction`` largest jobs by CPU-seconds (at least one job).

    Ties are broken deterministically by job id.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValidationError(f"fraction must be in (0, 1]: {fraction}")
    if not jobs:
        return []
    ranked = sorted(jobs, key=lambda j: (-j.area, j.job_id))
    count = max(1, int(round(len(ranked) * fraction)))
    return ranked[:count]


@dataclass(frozen=True)
class WaitStats:
    """Wait/EF summary over one job population."""

    n_jobs: int
    mean_wait_s: float
    median_wait_s: float
    mean_ef: float
    median_ef: float

    def describe(self) -> str:
        return (
            f"{self.n_jobs} jobs: wait mean {self.mean_wait_s:.0f}s / "
            f"median {self.median_wait_s:.0f}s, EF mean {self.mean_ef:.2f} "
            f"/ median {self.median_ef:.2f}"
        )


def wait_stats(jobs: Sequence[Job]) -> WaitStats:
    """Compute :class:`WaitStats` over started jobs."""
    waits = wait_times(jobs)
    if waits.size == 0:
        raise ValidationError("no started jobs to summarize")
    efs = expansion_factors(jobs)
    finite_efs = efs[np.isfinite(efs)]
    return WaitStats(
        n_jobs=int(waits.size),
        mean_wait_s=float(waits.mean()),
        median_wait_s=float(np.median(waits)),
        mean_ef=float(finite_efs.mean()) if finite_efs.size else float("inf"),
        median_ef=float(np.median(efs)),
    )
