"""Slowdown metrics and per-user fairness summaries.

The paper reports expansion factors (EF = 1 + wait/runtime); the
scheduling literature more commonly uses *bounded slowdown*, which
avoids letting seconds-long jobs dominate:

    bsld = max(1, (wait + runtime) / max(runtime, tau))

with ``tau`` conventionally 10 s (Feitelson's bound).  We provide both,
plus per-user aggregation so facilities can check that interstitial
computing doesn't concentrate its costs on a few native users — the
fair-share cascades of §4.3.2.1 make that a real risk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.jobs import Job

#: Conventional bounded-slowdown runtime floor (seconds).
DEFAULT_TAU_S = 10.0


def bounded_slowdowns(
    jobs: Iterable[Job], tau_s: float = DEFAULT_TAU_S
) -> np.ndarray:
    """Bounded slowdown per started job."""
    if tau_s <= 0:
        raise ValidationError(f"tau_s must be positive: {tau_s}")
    values: List[float] = []
    for job in jobs:
        if job.start_time is None:
            continue
        wait = job.start_time - job.submit_time
        values.append(
            max(1.0, (wait + job.runtime) / max(job.runtime, tau_s))
        )
    return np.asarray(values, dtype=float)


@dataclass(frozen=True)
class UserImpact:
    """Wait statistics of one user's native jobs."""

    user: str
    n_jobs: int
    mean_wait_s: float
    median_wait_s: float
    mean_bounded_slowdown: float


def per_user_impact(
    jobs: Sequence[Job], tau_s: float = DEFAULT_TAU_S
) -> Dict[str, UserImpact]:
    """Group started jobs by user and summarize each user's experience."""
    by_user: Dict[str, List[Job]] = {}
    for job in jobs:
        if job.start_time is None:
            continue
        by_user.setdefault(job.user, []).append(job)
    out: Dict[str, UserImpact] = {}
    for user, user_jobs in by_user.items():
        waits = np.array([j.start_time - j.submit_time for j in user_jobs])
        bsld = bounded_slowdowns(user_jobs, tau_s)
        out[user] = UserImpact(
            user=user,
            n_jobs=len(user_jobs),
            mean_wait_s=float(waits.mean()),
            median_wait_s=float(np.median(waits)),
            mean_bounded_slowdown=float(bsld.mean()),
        )
    return out


def impact_concentration(
    baseline: Sequence[Job],
    loaded: Sequence[Job],
    tau_s: float = DEFAULT_TAU_S,
) -> float:
    """How concentrated the added wait is across users, in [0, 1].

    Computes each user's share of the *additional* mean wait between a
    baseline run and an interstitial-loaded run and returns the largest
    share (1.0 = one user absorbs all the damage, 1/n_users = perfectly
    spread).  Users present in only one run are ignored.
    """
    base = per_user_impact(baseline, tau_s)
    load = per_user_impact(loaded, tau_s)
    deltas: Dict[str, float] = {}
    for user in base.keys() & load.keys():
        deltas[user] = max(
            0.0, load[user].mean_wait_s - base[user].mean_wait_s
        )
    total = sum(deltas.values())
    if not deltas or total <= 0.0:
        return 0.0
    return max(deltas.values()) / total
