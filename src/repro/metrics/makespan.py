"""Makespan summary statistics (Tables 2, 4; Figure 3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import ValidationError
from repro.units import HOUR


@dataclass(frozen=True)
class MakespanStats:
    """Mean +/- standard deviation of a set of project makespans."""

    n_samples: int
    mean_s: float
    std_s: float
    min_s: float
    max_s: float

    @property
    def mean_h(self) -> float:
        """Mean makespan in hours (the paper's table unit)."""
        return self.mean_s / HOUR

    @property
    def std_h(self) -> float:
        """Standard deviation in hours."""
        return self.std_s / HOUR

    def cell(self) -> str:
        """Render as a paper-style table cell: ``mean +- std`` hours."""
        return f"{self.mean_h:.1f} ± {self.std_h:.1f}"


def makespan_stats(makespans_s: Iterable[float]) -> MakespanStats:
    """Summarize a sample of makespans given in seconds."""
    data = np.asarray(list(makespans_s), dtype=float)
    if data.size == 0:
        raise ValidationError("no makespan samples")
    if np.any(data < 0):
        raise ValidationError("negative makespan")
    return MakespanStats(
        n_samples=int(data.size),
        mean_s=float(data.mean()),
        std_s=float(data.std(ddof=1)) if data.size > 1 else 0.0,
        min_s=float(data.min()),
        max_s=float(data.max()),
    )
