"""Delay-cascade analysis (paper §4.3.2.1).

"The delay caused by an individual interstitial job will be no longer
than the time of the interstitial job.  There is an additional effect
beyond this where some jobs get pushed into the [4,5) and [5,6) bins
due to a 'cascade' of delays ... An examination of this data shows that
only about 1% of the jobs are actually accounting for this large
difference."

Given a baseline (native-only) run and an interstitial-loaded run of
the *same trace*, this module classifies each native job's extra wait:

* ``undelayed`` — extra wait ≈ 0;
* ``direct``    — extra wait within one interstitial runtime (the
  first-order blocking the paper's intuition predicts);
* ``cascade``   — extra wait beyond one interstitial runtime
  (re-prioritization / propagation effects).

and reports how concentrated the total damage is — the paper's "1%"
number is :attr:`CascadeReport.cascade_fraction` together with
:attr:`CascadeReport.cascade_share_of_extra_wait`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.jobs import Job

#: Extra waits below this are measurement noise, not delays (seconds).
DELAY_EPSILON_S = 1.0


@dataclass(frozen=True)
class CascadeReport:
    """Classification of native extra waits under interstitial load."""

    n_jobs: int
    n_direct: int
    n_cascade: int
    #: Fraction of native jobs suffering beyond-one-runtime delays.
    cascade_fraction: float
    #: Share of the summed extra wait carried by cascade-delayed jobs.
    cascade_share_of_extra_wait: float
    mean_extra_wait_s: float
    max_extra_wait_s: float

    def describe(self) -> str:
        return (
            f"{self.n_jobs} native jobs: {self.n_direct} directly "
            f"delayed, {self.n_cascade} cascade-delayed "
            f"({self.cascade_fraction:.1%}); cascades carry "
            f"{self.cascade_share_of_extra_wait:.0%} of the "
            f"{self.mean_extra_wait_s:.0f}s mean extra wait "
            f"(max {self.max_extra_wait_s:.0f}s)"
        )


def _starts_by_id(jobs: Iterable[Job]) -> Dict[int, float]:
    out: Dict[int, float] = {}
    for job in jobs:
        if job.start_time is None:
            continue
        out[job.job_id] = job.start_time
    return out


def extra_waits(
    baseline_jobs: Sequence[Job],
    loaded_jobs: Sequence[Job],
) -> np.ndarray:
    """Per-job start-time delay of the loaded run vs the baseline.

    Jobs are matched by id (runs must replay the same trace).  Negative
    values (jobs that started *earlier* under load, which happens when
    re-prioritization reshuffles the queue) are kept, so callers can
    see both sides of the redistribution.
    """
    base = _starts_by_id(baseline_jobs)
    load = _starts_by_id(loaded_jobs)
    common = sorted(base.keys() & load.keys())
    if not common:
        raise ValidationError(
            "no common jobs between runs (did they replay the same trace?)"
        )
    return np.array([load[j] - base[j] for j in common])


def cascade_report(
    baseline_jobs: Sequence[Job],
    loaded_jobs: Sequence[Job],
    interstitial_runtime_s: float,
) -> CascadeReport:
    """Classify extra waits against the one-runtime delay bound."""
    if interstitial_runtime_s <= 0:
        raise ValidationError(
            f"interstitial_runtime_s must be positive: "
            f"{interstitial_runtime_s}"
        )
    deltas = extra_waits(baseline_jobs, loaded_jobs)
    delayed = deltas[deltas > DELAY_EPSILON_S]
    direct = delayed[delayed <= interstitial_runtime_s]
    cascade = delayed[delayed > interstitial_runtime_s]
    total_extra = float(delayed.sum())
    return CascadeReport(
        n_jobs=int(deltas.size),
        n_direct=int(direct.size),
        n_cascade=int(cascade.size),
        cascade_fraction=float(cascade.size) / deltas.size,
        cascade_share_of_extra_wait=(
            float(cascade.sum()) / total_extra if total_extra > 0 else 0.0
        ),
        mean_extra_wait_s=(
            float(np.maximum(deltas, 0.0).mean()) if deltas.size else 0.0
        ),
        max_extra_wait_s=float(deltas.max()) if deltas.size else 0.0,
    )
