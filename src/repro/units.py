"""Unit constants and conversion helpers.

The simulator's universal conventions, used everywhere in the package:

* **time** is measured in seconds of simulated wall-clock time, as a float,
  starting from 0.0 at the beginning of a trace;
* **clock speed** is measured in GHz;
* **work** (compute demand) is measured in *cycles*:
  ``cycles = cpus * runtime_seconds * clock_ghz * 1e9``.

The paper expresses interstitial project sizes in *peta-cycles*
(1 PC = 1e15 clock ticks) and interstitial job runtimes normalized to a
1 GHz processor ("120 sec @ 1 GHz"), so a 120 s @ 1 GHz job runs for
120 / 0.262 = 458 s on Blue Mountain's 262 MHz CPUs.
"""

from __future__ import annotations

#: Seconds per minute.
MINUTE = 60.0

#: Seconds per hour.
HOUR = 3600.0

#: Seconds per day.
DAY = 86400.0

#: Cycles per second of one 1 GHz CPU.
GHZ = 1.0e9

#: One tera-cycle (the paper's machine-capacity unit: CPUs x clock).
TERA = 1.0e12

#: One peta-cycle (the paper's project-size unit).
PETA = 1.0e15


def cycles(cpus: int, runtime_s: float, clock_ghz: float) -> float:
    """Compute work in cycles for ``cpus`` CPUs busy for ``runtime_s``
    seconds at ``clock_ghz`` GHz."""
    return float(cpus) * float(runtime_s) * float(clock_ghz) * GHZ


def peta_cycles(cpus: int, runtime_s: float, clock_ghz: float) -> float:
    """Same as :func:`cycles` but expressed in peta-cycles."""
    return cycles(cpus, runtime_s, clock_ghz) / PETA


def normalize_runtime(runtime_at_1ghz_s: float, clock_ghz: float) -> float:
    """Scale a runtime specified at 1 GHz to a machine's actual clock.

    The paper normalizes interstitial job runtimes to processor speed so
    that machine-to-machine makespan comparisons are fair: a
    ``120 sec @ 1 GHz`` job takes ``120 / 0.262 = 458 s`` on Blue
    Mountain (0.262 GHz).
    """
    if clock_ghz <= 0.0:
        raise ValueError(f"clock_ghz must be positive, got {clock_ghz}")
    return float(runtime_at_1ghz_s) / float(clock_ghz)


def hours(seconds: float) -> float:
    """Convert seconds to hours."""
    return seconds / HOUR


def days(seconds: float) -> float:
    """Convert seconds to days."""
    return seconds / DAY
