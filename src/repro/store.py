"""Content-addressed store for simulation runs.

Every simulation in this repo is a deterministic function of its full
configuration — machine, trace parameters, scheduler, interstitial
controller, fault model and experiment scale.  :class:`RunStore`
therefore memoizes run products under the SHA-256 digest of a
canonical JSON rendering of that configuration instead of ad-hoc name
tuples: two call sites that describe the same run always share one
entry, and two runs that differ in *any* configuration field (down to
a fault seed) can never collide.

The store has two layers:

* an in-process dictionary (always on), which is what makes replaying
  the ~25 paper experiments tractable — they endlessly reuse the same
  three machine baselines and continual logs; and
* an optional on-disk layer (``path=...``): each entry is pickled to
  ``<digest>.pkl`` with an atomic rename, so cooperating processes —
  the ``repro report --jobs N`` workers, or parallel bench sessions
  pointed at one ``REPRO_STORE_DIR`` — reuse each other's runs instead
  of recomputing them.

Unreadable or torn disk entries are treated as misses (a concurrent
writer may be mid-flight); determinism makes recomputation safe.

Disk-backed stores additionally coordinate *computation* across
processes: on a miss, ``get_or_compute`` takes a per-key ownership
lease (an ``O_EXCL`` lock file) before running ``compute``, and
processes that lose the race wait for the owner's entry instead of
recomputing it — the cache-stampede fix the serving daemon relies on
when many clients request the same uncached configuration at once.  A
lease whose owner died is considered stale after ``lease_timeout``
seconds and is broken by the next contender, so the guard degrades to
the old compute-everywhere behavior rather than deadlocking.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, TypeVar, Union

T = TypeVar("T")


def canonical_payload(value: Any) -> Any:
    """Reduce a key payload to canonically-ordered JSON primitives.

    Mappings are sorted by (string) key, sequences become lists, and
    floats are tagged with their ``repr`` so ``1.0`` and ``1`` hash
    differently and no precision is lost.  Anything else is rejected:
    run keys must be built from plain configuration values, never from
    live objects whose identity could leak into the address.
    """
    if isinstance(value, Mapping):
        out = {}
        for key in sorted(value):
            if not isinstance(key, str):
                raise TypeError(
                    f"payload keys must be strings, got {key!r}"
                )
            out[key] = canonical_payload(value[key])
        return out
    if isinstance(value, (list, tuple)):
        return [canonical_payload(v) for v in value]
    if isinstance(value, float):
        return f"float:{value!r}"
    if value is None or isinstance(value, (bool, int, str)):
        return value
    raise TypeError(
        f"run-key payloads must be JSON-like primitives, got "
        f"{type(value).__name__}: {value!r}"
    )


def content_key(payload: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of the canonicalized ``payload``."""
    text = json.dumps(
        canonical_payload(payload), separators=(",", ":"), sort_keys=True
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class RunStore:
    """Content-addressed memoization of run products.

    Parameters
    ----------
    path:
        Optional directory for the shared on-disk layer.  Created if
        missing.  ``None`` keeps the store purely in-memory.
    lease_timeout:
        Seconds after which another process's in-flight computation
        lease is presumed dead and may be broken (disk layer only).
    poll_interval:
        Seconds between polls while waiting on another process's
        lease (disk layer only).
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        *,
        lease_timeout: float = 60.0,
        poll_interval: float = 0.05,
    ) -> None:
        self._memory: Dict[str, Any] = {}
        self._path: Optional[Path] = None
        if path is not None:
            self._path = Path(path)
            self._path.mkdir(parents=True, exist_ok=True)
        self._lease_timeout = float(lease_timeout)
        self._poll_interval = float(poll_interval)
        #: Diagnostic counters (memory hits / disk hits / computes).
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0
        #: Times this store waited on another process's in-flight lease
        #: instead of stampeding into a duplicate computation.
        self.lease_waits = 0

    # ------------------------------------------------------------------
    @property
    def path(self) -> Optional[Path]:
        """Directory of the on-disk layer (None when memory-only)."""
        return self._path

    def key(self, payload: Mapping[str, Any]) -> str:
        """Content address for a configuration payload."""
        return content_key(payload)

    def __len__(self) -> int:
        return len(self._memory)

    def values(self) -> List[Any]:
        """Snapshot of the in-memory layer's stored products (insertion
        order).  Used by the observability layer to aggregate per-run
        counters across everything a context computed or loaded."""
        return list(self._memory.values())

    def __contains__(self, key: str) -> bool:
        return key in self._memory or self._disk_file(key) is not None

    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """Look up ``key`` in memory, then on disk; ``default`` on miss."""
        if key in self._memory:
            return self._memory[key]
        value = self._read_disk(key)
        if value is not _MISS:
            self._memory[key] = value
            return value
        return default

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` in memory and (if enabled) disk."""
        self._memory[key] = value
        self._write_disk(key, value)

    def get_or_compute(
        self, payload: Mapping[str, Any], compute: Callable[[], T]
    ) -> T:
        """The main entry point: memoized ``compute()`` keyed by the
        content address of ``payload``.

        With a disk layer, concurrent callers (threads or processes)
        missing on the same key elect a single owner through a lease
        file; the rest wait for the owner's entry instead of
        recomputing (see the module docstring).
        """
        key = content_key(payload)
        if key in self._memory:
            self.hits += 1
            return self._memory[key]
        value = self._read_disk(key)
        if value is not _MISS:
            self.disk_hits += 1
            self._memory[key] = value
            return value
        if self._path is None:
            return self._compute_and_store(key, compute)
        while True:
            claim = self._acquire_lease(key)
            if claim is not _LEASE_BUSY:
                try:
                    # The previous owner may have finished between our
                    # disk miss and taking over the lease.
                    value = self._read_disk(key)
                    if value is not _MISS:
                        self.disk_hits += 1
                        self._memory[key] = value
                        return value
                    return self._compute_and_store(key, compute)
                finally:
                    self._release_lease(claim)
            self.lease_waits += 1
            value = self._wait_for_entry(key)
            if value is not _MISS:
                self.disk_hits += 1
                self._memory[key] = value
                return value
            # Owner released without producing an entry (its compute
            # raised, or its lease went stale): contend for ownership.

    def clear(self) -> None:
        """Drop the in-memory layer (disk entries are left alone)."""
        self._memory.clear()

    def _compute_and_store(self, key: str, compute: Callable[[], T]) -> T:
        self.misses += 1
        value = compute()
        self.put(key, value)
        return value

    # ------------------------------------------------------------------
    # In-flight ownership leases (disk layer only)
    # ------------------------------------------------------------------
    def _lease_file(self, key: str) -> Path:
        return self._path / f"{key}.lock"

    def _acquire_lease(self, key: str) -> Any:
        """Try to claim ownership of computing ``key``.

        Returns a claim token to pass to :meth:`_release_lease`, or
        :data:`_LEASE_BUSY` when a live owner already holds the lease.
        Lease-file I/O failures disable coordination for this call
        (token ``None``): computing without a guard is always safe,
        just potentially duplicated.
        """
        lease = self._lease_file(key)
        for attempt in (0, 1):
            try:
                fd = os.open(
                    lease, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
                with os.fdopen(fd, "w") as fh:
                    fh.write(str(os.getpid()))
                return lease
            except FileExistsError:
                if attempt or not self._lease_stale(lease):
                    return _LEASE_BUSY
                # Stale owner: break the lease and retry the claim
                # once (a racing contender may beat us to it).
                try:
                    os.unlink(lease)
                except OSError:
                    return _LEASE_BUSY
            except OSError:
                return None
        return _LEASE_BUSY  # pragma: no cover - loop always returns

    def _release_lease(self, claim: Any) -> None:
        if claim is None:
            return
        try:
            os.unlink(claim)
        except OSError:
            pass

    def _lease_stale(self, lease: Path) -> bool:
        try:
            age = time.time() - lease.stat().st_mtime
        except OSError:
            # Vanished between the existence check and the stat: the
            # owner just released; not stale, re-contend immediately.
            return False
        return age > self._lease_timeout

    def _wait_for_entry(self, key: str) -> Any:
        """Poll for the lease owner's entry; ``_MISS`` when the owner
        released (or went stale) without producing one."""
        lease = self._lease_file(key)
        deadline = time.monotonic() + self._lease_timeout
        while True:
            value = self._read_disk(key)
            if value is not _MISS:
                return value
            if not lease.exists() or self._lease_stale(lease):
                return self._read_disk(key)
            if time.monotonic() > deadline:
                return _MISS
            time.sleep(self._poll_interval)

    # ------------------------------------------------------------------
    # Disk layer
    # ------------------------------------------------------------------
    def _disk_file(self, key: str) -> Optional[Path]:
        if self._path is None:
            return None
        file = self._path / f"{key}.pkl"
        return file if file.is_file() else None

    def _read_disk(self, key: str) -> Any:
        file = self._disk_file(key)
        if file is None:
            return _MISS
        try:
            with file.open("rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return _MISS

    def _write_disk(self, key: str, value: Any) -> None:
        if self._path is None:
            return
        final = self._path / f"{key}.pkl"
        try:
            fd, tmp = tempfile.mkstemp(
                prefix=f".{key[:12]}-", suffix=".tmp", dir=self._path
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, final)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            # The disk layer is an optimization; never fail a run on it.
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self._path) if self._path else "memory"
        return (
            f"RunStore({where}: {len(self._memory)} entries, "
            f"{self.hits}h/{self.disk_hits}d/{self.misses}m)"
        )


#: Unique disk-miss sentinel (None is a legal stored value).
_MISS = object()

#: Lease-claim sentinel: a live owner already holds the lease.
_LEASE_BUSY = object()
