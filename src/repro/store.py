"""Content-addressed store for simulation runs.

Every simulation in this repo is a deterministic function of its full
configuration — machine, trace parameters, scheduler, interstitial
controller, fault model and experiment scale.  :class:`RunStore`
therefore memoizes run products under the SHA-256 digest of a
canonical JSON rendering of that configuration instead of ad-hoc name
tuples: two call sites that describe the same run always share one
entry, and two runs that differ in *any* configuration field (down to
a fault seed) can never collide.

The store has two layers:

* an in-process dictionary (always on), which is what makes replaying
  the ~25 paper experiments tractable — they endlessly reuse the same
  three machine baselines and continual logs; and
* an optional on-disk layer (``path=...``): each entry is pickled to
  ``<digest>.pkl`` with an atomic rename, so cooperating processes —
  the ``repro report --jobs N`` workers, or parallel bench sessions
  pointed at one ``REPRO_STORE_DIR`` — reuse each other's runs instead
  of recomputing them.

Unreadable or torn disk entries are treated as misses (a concurrent
writer may be mid-flight); determinism makes recomputation safe.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, TypeVar, Union

T = TypeVar("T")


def canonical_payload(value: Any) -> Any:
    """Reduce a key payload to canonically-ordered JSON primitives.

    Mappings are sorted by (string) key, sequences become lists, and
    floats are tagged with their ``repr`` so ``1.0`` and ``1`` hash
    differently and no precision is lost.  Anything else is rejected:
    run keys must be built from plain configuration values, never from
    live objects whose identity could leak into the address.
    """
    if isinstance(value, Mapping):
        out = {}
        for key in sorted(value):
            if not isinstance(key, str):
                raise TypeError(
                    f"payload keys must be strings, got {key!r}"
                )
            out[key] = canonical_payload(value[key])
        return out
    if isinstance(value, (list, tuple)):
        return [canonical_payload(v) for v in value]
    if isinstance(value, float):
        return f"float:{value!r}"
    if value is None or isinstance(value, (bool, int, str)):
        return value
    raise TypeError(
        f"run-key payloads must be JSON-like primitives, got "
        f"{type(value).__name__}: {value!r}"
    )


def content_key(payload: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of the canonicalized ``payload``."""
    text = json.dumps(
        canonical_payload(payload), separators=(",", ":"), sort_keys=True
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class RunStore:
    """Content-addressed memoization of run products.

    Parameters
    ----------
    path:
        Optional directory for the shared on-disk layer.  Created if
        missing.  ``None`` keeps the store purely in-memory.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self._memory: Dict[str, Any] = {}
        self._path: Optional[Path] = None
        if path is not None:
            self._path = Path(path)
            self._path.mkdir(parents=True, exist_ok=True)
        #: Diagnostic counters (memory hits / disk hits / computes).
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @property
    def path(self) -> Optional[Path]:
        """Directory of the on-disk layer (None when memory-only)."""
        return self._path

    def key(self, payload: Mapping[str, Any]) -> str:
        """Content address for a configuration payload."""
        return content_key(payload)

    def __len__(self) -> int:
        return len(self._memory)

    def values(self) -> List[Any]:
        """Snapshot of the in-memory layer's stored products (insertion
        order).  Used by the observability layer to aggregate per-run
        counters across everything a context computed or loaded."""
        return list(self._memory.values())

    def __contains__(self, key: str) -> bool:
        return key in self._memory or self._disk_file(key) is not None

    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """Look up ``key`` in memory, then on disk; ``default`` on miss."""
        if key in self._memory:
            return self._memory[key]
        value = self._read_disk(key)
        if value is not _MISS:
            self._memory[key] = value
            return value
        return default

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` in memory and (if enabled) disk."""
        self._memory[key] = value
        self._write_disk(key, value)

    def get_or_compute(
        self, payload: Mapping[str, Any], compute: Callable[[], T]
    ) -> T:
        """The main entry point: memoized ``compute()`` keyed by the
        content address of ``payload``."""
        key = content_key(payload)
        if key in self._memory:
            self.hits += 1
            return self._memory[key]
        value = self._read_disk(key)
        if value is not _MISS:
            self.disk_hits += 1
            self._memory[key] = value
            return value
        self.misses += 1
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop the in-memory layer (disk entries are left alone)."""
        self._memory.clear()

    # ------------------------------------------------------------------
    # Disk layer
    # ------------------------------------------------------------------
    def _disk_file(self, key: str) -> Optional[Path]:
        if self._path is None:
            return None
        file = self._path / f"{key}.pkl"
        return file if file.is_file() else None

    def _read_disk(self, key: str) -> Any:
        file = self._disk_file(key)
        if file is None:
            return _MISS
        try:
            with file.open("rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return _MISS

    def _write_disk(self, key: str, value: Any) -> None:
        if self._path is None:
            return
        final = self._path / f"{key}.pkl"
        try:
            fd, tmp = tempfile.mkstemp(
                prefix=f".{key[:12]}-", suffix=".tmp", dir=self._path
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, final)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            # The disk layer is an optimization; never fail a run on it.
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self._path) if self._path else "memory"
        return (
            f"RunStore({where}: {len(self._memory)} entries, "
            f"{self.hits}h/{self.disk_hits}d/{self.misses}m)"
        )


#: Unique disk-miss sentinel (None is a legal stored value).
_MISS = object()
