"""Content-addressed store for simulation runs.

Every simulation in this repo is a deterministic function of its full
configuration — machine, trace parameters, scheduler, interstitial
controller, fault model and experiment scale.  :class:`RunStore`
therefore memoizes run products under the SHA-256 digest of a
canonical JSON rendering of that configuration instead of ad-hoc name
tuples: two call sites that describe the same run always share one
entry, and two runs that differ in *any* configuration field (down to
a fault seed) can never collide.

The store has two layers:

* an in-process dictionary (always on), which is what makes replaying
  the ~25 paper experiments tractable — they endlessly reuse the same
  three machine baselines and continual logs; and
* an optional on-disk layer (``path=...``): each entry is pickled to
  ``<digest>.pkl`` with an atomic rename, so cooperating processes —
  the ``repro report --jobs N`` workers, or parallel bench sessions
  pointed at one ``REPRO_STORE_DIR`` — reuse each other's runs instead
  of recomputing them.

Disk entries are integrity-checked: each file carries the SHA-256
digest of its pickled payload, verified on every read.  A corrupt or
truncated entry (bit rot, a torn write surviving a crash, a partial
copy) is *quarantined* — moved into a ``corrupt/`` subdirectory and
counted — instead of crashing the reader or silently serving garbage;
the lookup then reports a miss and determinism makes recomputation
safe.  Entries written by older versions (no digest header) are still
readable.

Disk-backed stores additionally coordinate *computation* across
processes: on a miss, ``get_or_compute`` takes a per-key ownership
lease (an ``O_EXCL`` lock file) before running ``compute``, and
processes that lose the race wait for the owner's entry instead of
recomputing it — the cache-stampede fix the serving daemon relies on
when many clients request the same uncached configuration at once.  A
lease whose owner died is considered stale after ``lease_timeout``
seconds and is broken by the next contender (a ``lease_breaks``
counter records each takeover), so the guard degrades to the old
compute-everywhere behavior rather than deadlocking.  The timeout is
configurable per store (``lease_timeout=...``) or process-wide via the
``REPRO_LEASE_TIMEOUT`` environment variable.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, TypeVar, Union

from repro.errors import ConfigurationError
from repro.obs import StoreCounters

T = TypeVar("T")

#: Header magic for integrity-checked (v2) disk entries.
_ENTRY_MAGIC = b"repro-store-v2\n"

#: Default stale-lease timeout when neither the constructor nor the
#: ``REPRO_LEASE_TIMEOUT`` environment variable specifies one.
DEFAULT_LEASE_TIMEOUT = 60.0


def default_lease_timeout() -> float:
    """The process-wide stale-lease timeout: ``REPRO_LEASE_TIMEOUT``
    seconds if set (must parse to a positive, finite float), else
    :data:`DEFAULT_LEASE_TIMEOUT`."""
    raw = os.environ.get("REPRO_LEASE_TIMEOUT")
    if raw is None or not raw.strip():
        return DEFAULT_LEASE_TIMEOUT
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_LEASE_TIMEOUT must be a number of seconds: {raw!r}"
        ) from None
    if not math.isfinite(value) or value <= 0.0:
        raise ConfigurationError(
            f"REPRO_LEASE_TIMEOUT must be positive and finite: {raw!r}"
        )
    return value


def canonical_payload(value: Any) -> Any:
    """Reduce a key payload to canonically-ordered JSON primitives.

    Mappings are sorted by (string) key, sequences become lists, and
    floats are tagged with their ``repr`` so ``1.0`` and ``1`` hash
    differently and no precision is lost.  Anything else is rejected:
    run keys must be built from plain configuration values, never from
    live objects whose identity could leak into the address.
    """
    if isinstance(value, Mapping):
        out = {}
        for key in sorted(value):
            if not isinstance(key, str):
                raise TypeError(
                    f"payload keys must be strings, got {key!r}"
                )
            out[key] = canonical_payload(value[key])
        return out
    if isinstance(value, (list, tuple)):
        return [canonical_payload(v) for v in value]
    if isinstance(value, float):
        return f"float:{value!r}"
    if value is None or isinstance(value, (bool, int, str)):
        return value
    raise TypeError(
        f"run-key payloads must be JSON-like primitives, got "
        f"{type(value).__name__}: {value!r}"
    )


def content_key(payload: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of the canonicalized ``payload``."""
    text = json.dumps(
        canonical_payload(payload), separators=(",", ":"), sort_keys=True
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class RunStore:
    """Content-addressed memoization of run products.

    Parameters
    ----------
    path:
        Optional directory for the shared on-disk layer.  Created if
        missing.  ``None`` keeps the store purely in-memory.
    lease_timeout:
        Seconds after which another process's in-flight computation
        lease is presumed dead and may be broken (disk layer only).
        ``None`` falls back to the ``REPRO_LEASE_TIMEOUT`` environment
        variable, then :data:`DEFAULT_LEASE_TIMEOUT`.
    poll_interval:
        Seconds between polls while waiting on another process's
        lease (disk layer only).
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        *,
        lease_timeout: Optional[float] = None,
        poll_interval: float = 0.05,
    ) -> None:
        self._memory: Dict[str, Any] = {}
        self._path: Optional[Path] = None
        if path is not None:
            self._path = Path(path)
            self._path.mkdir(parents=True, exist_ok=True)
        if lease_timeout is None:
            lease_timeout = default_lease_timeout()
        self._lease_timeout = float(lease_timeout)
        self._poll_interval = float(poll_interval)
        #: Diagnostic counters: cache behavior (hits/disk_hits/misses),
        #: cross-process coordination (lease_waits/lease_breaks) and
        #: entry integrity (integrity_failures/quarantined).
        self.counters = StoreCounters()

    # ------------------------------------------------------------------
    # Counter attribute shims: counters live in one obs registry, but
    # the historical flat attributes remain read/write.
    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        return self.counters.hits

    @hits.setter
    def hits(self, value: int) -> None:
        self.counters.hits = value

    @property
    def disk_hits(self) -> int:
        return self.counters.disk_hits

    @disk_hits.setter
    def disk_hits(self, value: int) -> None:
        self.counters.disk_hits = value

    @property
    def misses(self) -> int:
        return self.counters.misses

    @misses.setter
    def misses(self, value: int) -> None:
        self.counters.misses = value

    @property
    def lease_waits(self) -> int:
        return self.counters.lease_waits

    @lease_waits.setter
    def lease_waits(self, value: int) -> None:
        self.counters.lease_waits = value

    # ------------------------------------------------------------------
    @property
    def path(self) -> Optional[Path]:
        """Directory of the on-disk layer (None when memory-only)."""
        return self._path

    def key(self, payload: Mapping[str, Any]) -> str:
        """Content address for a configuration payload."""
        return content_key(payload)

    def __len__(self) -> int:
        return len(self._memory)

    def values(self) -> List[Any]:
        """Snapshot of the in-memory layer's stored products (insertion
        order).  Used by the observability layer to aggregate per-run
        counters across everything a context computed or loaded."""
        return list(self._memory.values())

    def __contains__(self, key: str) -> bool:
        return key in self._memory or self._disk_file(key) is not None

    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """Look up ``key`` in memory, then on disk; ``default`` on miss."""
        if key in self._memory:
            return self._memory[key]
        value = self._read_disk(key)
        if value is not _MISS:
            self._memory[key] = value
            return value
        return default

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` in memory and (if enabled) disk."""
        self._memory[key] = value
        self._write_disk(key, value)

    # ------------------------------------------------------------------
    # Fleet peer surface (see repro.service.fleet)
    # ------------------------------------------------------------------
    def peer_get(self, key: str) -> Any:
        """Serve a fleet peer's cache lookup for ``key``.

        Same memory-then-disk resolution as :meth:`get` but returns the
        :data:`PEER_MISS` sentinel (not a default) on a miss, so peers
        can cache ``None`` values faithfully, and counts the lookup in
        ``counters.peer_gets`` — the replica-side ledger of how much
        traffic the consistent-hash ring steered here.
        """
        self.counters.peer_gets += 1
        return self.get(key, PEER_MISS)

    def peer_put(self, key: str, value: Any) -> None:
        """Accept an entry replicated from the fleet replica that
        computed ``key`` without owning it.  First write wins: the
        computation is deterministic, so an existing entry is already
        byte-identical and re-writing it would only churn the disk."""
        self.counters.peer_puts += 1
        if key not in self._memory and self._disk_file(key) is None:
            self.put(key, value)

    # ------------------------------------------------------------------
    def get_or_compute(
        self, payload: Mapping[str, Any], compute: Callable[[], T]
    ) -> T:
        """The main entry point: memoized ``compute()`` keyed by the
        content address of ``payload``.

        With a disk layer, concurrent callers (threads or processes)
        missing on the same key elect a single owner through a lease
        file; the rest wait for the owner's entry instead of
        recomputing (see the module docstring).
        """
        key = content_key(payload)
        if key in self._memory:
            self.hits += 1
            return self._memory[key]
        value = self._read_disk(key)
        if value is not _MISS:
            self.disk_hits += 1
            self._memory[key] = value
            return value
        if self._path is None:
            return self._compute_and_store(key, compute)
        while True:
            claim = self._acquire_lease(key)
            if claim is not _LEASE_BUSY:
                try:
                    # The previous owner may have finished between our
                    # disk miss and taking over the lease.
                    value = self._read_disk(key)
                    if value is not _MISS:
                        self.disk_hits += 1
                        self._memory[key] = value
                        return value
                    return self._compute_and_store(key, compute)
                finally:
                    self._release_lease(claim)
            self.lease_waits += 1
            value = self._wait_for_entry(key)
            if value is not _MISS:
                self.disk_hits += 1
                self._memory[key] = value
                return value
            # Owner released without producing an entry (its compute
            # raised, or its lease went stale): contend for ownership.

    def clear(self) -> None:
        """Drop the in-memory layer (disk entries are left alone)."""
        self._memory.clear()

    def _compute_and_store(self, key: str, compute: Callable[[], T]) -> T:
        self.misses += 1
        value = compute()
        self.put(key, value)
        return value

    # ------------------------------------------------------------------
    # In-flight ownership leases (disk layer only)
    # ------------------------------------------------------------------
    def _lease_file(self, key: str) -> Path:
        return self._path / f"{key}.lock"

    def _acquire_lease(self, key: str) -> Any:
        """Try to claim ownership of computing ``key``.

        Returns a claim token to pass to :meth:`_release_lease`, or
        :data:`_LEASE_BUSY` when a live owner already holds the lease.
        Lease-file I/O failures disable coordination for this call
        (token ``None``): computing without a guard is always safe,
        just potentially duplicated.
        """
        lease = self._lease_file(key)
        for attempt in (0, 1):
            try:
                fd = os.open(
                    lease, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
                with os.fdopen(fd, "w") as fh:
                    fh.write(str(os.getpid()))
                return lease
            except FileExistsError:
                if attempt or not self._lease_stale(lease):
                    return _LEASE_BUSY
                # Stale owner: break the lease and retry the claim
                # once (a racing contender may beat us to it).
                try:
                    os.unlink(lease)
                except OSError:
                    return _LEASE_BUSY
                self.counters.lease_breaks += 1
            except OSError:
                return None
        return _LEASE_BUSY  # pragma: no cover - loop always returns

    def _release_lease(self, claim: Any) -> None:
        if claim is None:
            return
        try:
            os.unlink(claim)
        except OSError:
            pass

    def _lease_stale(self, lease: Path) -> bool:
        try:
            age = time.time() - lease.stat().st_mtime
        except OSError:
            # Vanished between the existence check and the stat: the
            # owner just released; not stale, re-contend immediately.
            return False
        return age > self._lease_timeout

    def _wait_for_entry(self, key: str) -> Any:
        """Poll for the lease owner's entry; ``_MISS`` when the owner
        released (or went stale) without producing one."""
        lease = self._lease_file(key)
        deadline = time.monotonic() + self._lease_timeout
        while True:
            value = self._read_disk(key)
            if value is not _MISS:
                return value
            if not lease.exists() or self._lease_stale(lease):
                return self._read_disk(key)
            if time.monotonic() > deadline:
                return _MISS
            time.sleep(self._poll_interval)

    # ------------------------------------------------------------------
    # Disk layer
    # ------------------------------------------------------------------
    def _disk_file(self, key: str) -> Optional[Path]:
        if self._path is None:
            return None
        file = self._path / f"{key}.pkl"
        return file if file.is_file() else None

    def _read_disk(self, key: str) -> Any:
        file = self._disk_file(key)
        if file is None:
            return _MISS
        try:
            data = file.read_bytes()
        except OSError:
            return _MISS
        if data.startswith(_ENTRY_MAGIC):
            # v2 entry: "<magic><64-hex digest>\n<pickled payload>".
            header_end = len(_ENTRY_MAGIC) + 65
            digest = data[len(_ENTRY_MAGIC):header_end - 1]
            payload = data[header_end:]
            if (
                len(data) < header_end
                or data[header_end - 1:header_end] != b"\n"
                or hashlib.sha256(payload).hexdigest().encode("ascii")
                != digest
            ):
                self._quarantine(file)
                return _MISS
        else:
            # Legacy (pre-integrity) entry: the whole file is pickle.
            payload = data
        try:
            return pickle.loads(payload)
        except Exception:  # noqa: BLE001 - any undecodable entry is corrupt
            self._quarantine(file)
            return _MISS

    def _quarantine(self, file: Path) -> None:
        """Move a corrupt/truncated entry into ``corrupt/`` (count it)
        so the reader recomputes instead of crashing — and so the bad
        bytes stick around for a post-mortem instead of being served
        or silently overwritten."""
        self.counters.integrity_failures += 1
        target_dir = self._path / "corrupt"
        try:
            target_dir.mkdir(exist_ok=True)
            os.replace(file, target_dir / file.name)
            self.counters.quarantined += 1
        except OSError:
            # Another reader may have quarantined it first, or the
            # filesystem refused; either way the lookup stays a miss.
            pass

    def _write_disk(self, key: str, value: Any) -> None:
        if self._path is None:
            return
        final = self._path / f"{key}.pkl"
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            digest = hashlib.sha256(payload).hexdigest().encode("ascii")
            fd, tmp = tempfile.mkstemp(
                prefix=f".{key[:12]}-", suffix=".tmp", dir=self._path
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(_ENTRY_MAGIC + digest + b"\n" + payload)
                os.replace(tmp, final)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            # The disk layer is an optimization; never fail a run on it.
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self._path) if self._path else "memory"
        return (
            f"RunStore({where}: {len(self._memory)} entries, "
            f"{self.hits}h/{self.disk_hits}d/{self.misses}m)"
        )


#: Unique disk-miss sentinel (None is a legal stored value).
_MISS = object()

#: Public miss sentinel returned by :meth:`RunStore.peer_get` (None is
#: a legal stored value, so peers need an out-of-band miss marker).
PEER_MISS = object()

#: Lease-claim sentinel: a live owner already holds the lease.
_LEASE_BUSY = object()
