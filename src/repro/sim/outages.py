"""Machine outage model.

The paper's Figure 4 notes that with continual interstitial computing
the machine runs "essentially at 100% except for outages".  To reproduce
that visual (and to stress the scheduler against capacity loss) the
engine accepts a schedule of outage windows.  Semantics:

* during ``[start, end)`` a window removes ``cpus`` processors from
  service;
* running jobs are *not* preempted (jobs are non-preemptive throughout
  the paper); the scheduler simply cannot start new work on the down
  capacity, so the machine drains into the outage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.errors import ValidationError


@dataclass(frozen=True)
class Outage:
    """One outage window taking ``cpus`` processors down."""

    start: float
    end: float
    cpus: int

    def __post_init__(self) -> None:
        if not (math.isfinite(self.start) and math.isfinite(self.end)):
            raise ValidationError("outage times must be finite")
        if self.end <= self.start:
            raise ValidationError(
                f"outage must have positive length: [{self.start}, {self.end})"
            )
        if self.cpus <= 0:
            raise ValidationError(f"outage cpus must be positive: {self.cpus}")

    @property
    def duration(self) -> float:
        return self.end - self.start


class OutageSchedule:
    """An ordered collection of outage windows.

    Overlapping windows stack (their down CPU counts add); the caller is
    responsible for not exceeding the machine size, which the engine
    validates at start-up.
    """

    def __init__(self, outages: Iterable[Outage] = ()) -> None:
        self._outages: List[Outage] = sorted(
            outages, key=lambda o: (o.start, o.end)
        )

    def __iter__(self) -> Iterator[Outage]:
        return iter(self._outages)

    def __len__(self) -> int:
        return len(self._outages)

    def __bool__(self) -> bool:
        return bool(self._outages)

    def max_down(self) -> int:
        """Maximum simultaneous down CPUs across the schedule."""
        events: List[Tuple[float, int]] = []
        for o in self._outages:
            events.append((o.start, o.cpus))
            events.append((o.end, -o.cpus))
        events.sort()
        down = peak = 0
        for _, delta in events:
            down += delta
            peak = max(peak, down)
        return peak

    def down_at(self, t: float) -> int:
        """CPUs down at time ``t``."""
        return sum(o.cpus for o in self._outages if o.start <= t < o.end)

    def transitions(self) -> Sequence[Tuple[float, int]]:
        """(time, cpu-delta) pairs for the engine's event queue."""
        events: List[Tuple[float, int]] = []
        for o in self._outages:
            events.append((o.start, o.cpus))
            events.append((o.end, -o.cpus))
        events.sort()
        return events

    def total_downtime_cpu_seconds(self) -> float:
        """Integral of down CPUs over time (for utilization accounting)."""
        return sum(o.cpus * o.duration for o in self._outages)
