"""The discrete-event scheduling engine.

The engine is deliberately policy-free: native job selection lives in a
:class:`~repro.sched.base.Scheduler` and interstitial job injection in an
:class:`~repro.core.base.InterstitialSource`.  Per the paper's Figure 1,
the scheduling algorithm runs "every time the system checks for new
jobs, e.g., when a native job is submitted, when any job is finished, or
at given time intervals" — i.e. after every event batch and at optional
periodic wake-ups.  Each pass first lets the native policy start and
backfill everything it can, then offers the remaining capacity to the
interstitial source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.jobs import Job, JobState
from repro.machines import Machine
from repro.sim.events import EventKind, EventQueue
from repro.sim.outages import OutageSchedule
from repro.sim.results import SimResult
from repro.sim.state import ClusterState

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.base import InterstitialSource
    from repro.sched.base import Scheduler


@dataclass(frozen=True)
class SimConfig:
    """Engine knobs.

    Parameters
    ----------
    horizon:
        Time after which the interstitial source is no longer consulted
        and which bounds the metrics window.  Native jobs and already
        started work always run to completion; the horizon only stops
        *new* interstitial submissions (how the continual experiments
        bound themselves to the trace length).
    wake_interval:
        Optional period for extra scheduling passes ("at given time
        intervals" in Figure 1).  Useful when the interstitial source
        should react to utilization thresholds between job events.
    until:
        Hard stop: events after this time are not processed and the
        result reports unfinished jobs.  Mostly for debugging.
    """

    horizon: Optional[float] = None
    wake_interval: Optional[float] = None
    until: Optional[float] = None

    def __post_init__(self) -> None:
        if self.wake_interval is not None and self.wake_interval <= 0:
            raise ConfigurationError(
                f"wake_interval must be positive, got {self.wake_interval}"
            )


class Engine:
    """Replays a native trace through a scheduler on a machine.

    Parameters
    ----------
    machine:
        Machine model (CPU count and clock).
    scheduler:
        Native queueing policy (see :mod:`repro.sched`).
    trace:
        Native jobs to replay.  Jobs are mutated in place (state, start
        and finish times); pass copies if the trace is reused.
    interstitial:
        Optional interstitial job source (see :mod:`repro.core`).
    outages:
        Optional downtime schedule.
    config:
        Engine options.
    """

    def __init__(
        self,
        machine: Machine,
        scheduler: "Scheduler",
        trace: Iterable[Job] = (),
        interstitial: Optional["InterstitialSource"] = None,
        outages: Optional[OutageSchedule] = None,
        config: Optional[SimConfig] = None,
    ) -> None:
        self.machine = machine
        self.scheduler = scheduler
        self.interstitial = interstitial
        self.outages = outages or OutageSchedule()
        self.config = config or SimConfig()
        self.cluster = ClusterState(machine)
        self.events = EventQueue()
        self._finished: List[Job] = []
        self._killed: List[Job] = []
        self._trace: List[Job] = list(trace)
        self._last_submit = 0.0
        self._validate()

    def _validate(self) -> None:
        for job in self._trace:
            if job.cpus > self.machine.cpus:
                raise ConfigurationError(
                    f"trace job {job.job_id} needs {job.cpus} CPUs but "
                    f"{self.machine.name} has {self.machine.cpus}"
                )
        if self.outages.max_down() > self.machine.cpus:
            raise ConfigurationError(
                "outage schedule takes down more CPUs than the machine has"
            )

    # ------------------------------------------------------------------
    def run(self) -> SimResult:
        """Run to completion and return the collected results."""
        for job in self._trace:
            self.events.push(job.submit_time, EventKind.SUBMIT, job)
            self._last_submit = max(self._last_submit, job.submit_time)
        for time, delta in self.outages.transitions():
            self.events.push(time, EventKind.OUTAGE, delta)
        wake_until = self._wake_until()
        if self.config.wake_interval is not None and wake_until > 0:
            self.events.push(self.config.wake_interval, EventKind.WAKE, None)

        t = 0.0
        while self.events:
            next_time = self.events.peek_time()
            assert next_time is not None
            if self.config.until is not None and next_time > self.config.until:
                t = self.config.until
                break
            batch = self.events.pop_batch()
            if batch[0].time < t:
                raise SimulationError(
                    f"time went backwards: {batch[0].time} < {t}"
                )
            t = batch[0].time
            for event in batch:
                self._handle(event, t, wake_until)
            self._scheduling_pass(t)
            if not self.events and self.scheduler.queue_length > 0:
                # Stall recovery: jobs remain queued (e.g. held by a
                # time-of-day policy) but no event will ever re-run the
                # scheduler.  Wake periodically until they drain —
                # progress is guaranteed because queued jobs fit the
                # machine and every hold (time-of-day windows, outages)
                # eventually opens.
                self.events.push(
                    t + self._stall_interval(), EventKind.WAKE, None
                )
        return self._collect(t)

    def _stall_interval(self) -> float:
        """Re-check period while the queue is stalled with no events."""
        if self.config.wake_interval is not None:
            return self.config.wake_interval
        return 900.0

    # ------------------------------------------------------------------
    def _wake_until(self) -> float:
        """Last time periodic wake events should fire."""
        if self.config.horizon is not None:
            return self.config.horizon
        return self._last_submit

    def _handle(self, event, t: float, wake_until: float) -> None:
        if event.kind is EventKind.SUBMIT:
            job: Job = event.payload
            job.state = JobState.QUEUED
            self.scheduler.submit(job, t)
        elif event.kind is EventKind.FINISH:
            job = event.payload
            if job.state is JobState.KILLED:
                return  # preempted earlier; its CPUs are already free
            self.cluster.finish(job)
            job.finish_time = t
            job.state = JobState.FINISHED
            self.scheduler.on_finish(job, t)
            self._finished.append(job)
        elif event.kind is EventKind.OUTAGE:
            self.cluster.down_cpus += int(event.payload)
            if self.cluster.down_cpus < 0:
                raise SimulationError("negative down CPU count")
        elif event.kind is EventKind.WAKE:
            # Periodic wake-ups re-arm themselves within their window;
            # stall-recovery wakes (pushed by the main loop) do not.
            interval = self.config.wake_interval
            if interval is not None and t + interval <= wake_until:
                self.events.push(t + interval, EventKind.WAKE, None)
        else:  # pragma: no cover - exhaustive
            raise SimulationError(f"unknown event kind {event.kind!r}")

    def _scheduling_pass(self, t: float) -> None:
        """One pass: native policy to quiescence, then (optionally)
        preemption of interstitial jobs for a blocked native head job,
        then interstitial feeding."""
        for job in self.scheduler.schedule(t, self.cluster):
            self._start(job, t)
        source = self.interstitial
        if source is None:
            return
        if source.preemptible and self.scheduler.queue_length > 0:
            if self._preempt_for_head(t):
                for job in self.scheduler.schedule(t, self.cluster):
                    self._start(job, t)
        horizon = self.config.horizon
        if horizon is not None and t >= horizon:
            return
        for job in source.offer(t, self.cluster, self.scheduler):
            self._start(job, t)

    def _preempt_for_head(self, t: float) -> bool:
        """Kill just enough interstitial jobs (youngest first) so the
        top-priority native job fits; returns True when anything was
        killed.  Killed work is wasted — jobs are non-preemptive with no
        checkpoint/restart — and the source is told to redo it."""
        head = self.scheduler.head_job(t)
        if head is None:
            return False
        deficit = head.cpus - self.cluster.free_cpus
        if deficit <= 0:
            return False
        victims = sorted(
            (
                rec
                for rec in self.cluster.running.values()
                if rec.job.is_interstitial
            ),
            key=lambda rec: (-rec.start_time, -rec.job.job_id),
        )
        if sum(rec.job.cpus for rec in victims) < deficit:
            # Even killing every interstitial job cannot seat the head
            # job (natives hold the rest) — killing now would only waste
            # work without helping, so wait for native releases instead.
            return False
        killed: List[Job] = []
        freed = 0
        for rec in victims:
            if freed >= deficit:
                break
            self.cluster.finish(rec.job)
            rec.job.state = JobState.KILLED
            rec.job.finish_time = t
            killed.append(rec.job)
            freed += rec.job.cpus
        self._killed.extend(killed)
        assert self.interstitial is not None
        self.interstitial.on_preempted(killed, t)
        return True

    def _start(self, job: Job, t: float) -> None:
        self.cluster.start(job, t)
        job.start_time = t
        job.state = JobState.RUNNING
        self.events.push(t + job.runtime, EventKind.FINISH, job)

    def _collect(self, t: float) -> SimResult:
        unfinished: List[Job] = [
            rec.job for rec in self.cluster.running.values()
        ]
        unfinished.extend(self.scheduler.pending_jobs())
        return SimResult(
            machine=self.machine,
            finished=self._finished,
            unfinished=unfinished,
            killed=self._killed,
            end_time=t,
            horizon=self.config.horizon,
            outages=self.outages,
        )
