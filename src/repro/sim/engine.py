"""The discrete-event scheduling engine.

The engine is deliberately policy-free: native job selection lives in a
:class:`~repro.sched.base.Scheduler` and interstitial job injection in an
:class:`~repro.core.base.InterstitialSource`.  Per the paper's Figure 1,
the scheduling algorithm runs "every time the system checks for new
jobs, e.g., when a native job is submitted, when any job is finished, or
at given time intervals" — i.e. after every event batch and at optional
periodic wake-ups.  Each pass first lets the native policy start and
backfill everything it can, then offers the remaining capacity to the
interstitial source.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.faults import FaultModel, RetryPolicy
from repro.jobs import Job, JobState
from repro.machines import Machine
from repro.obs import NULL_RECORDER, Counters, PhaseTimers, TraceRecord, TraceRecorder
from repro.sim.events import CalendarEventQueue, EventKind, EventQueue
from repro.sim.outages import OutageSchedule
from repro.sim.results import SimResult
from repro.sim.state import ClusterState

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.base import InterstitialSource
    from repro.sched.base import Scheduler

@dataclass(frozen=True)
class SimConfig:
    """Engine knobs.

    Parameters
    ----------
    horizon:
        Time after which the interstitial source is no longer consulted
        and which bounds the metrics window.  Native jobs and already
        started work always run to completion; the horizon only stops
        *new* interstitial submissions (how the continual experiments
        bound themselves to the trace length).
    wake_interval:
        Optional period for extra scheduling passes ("at given time
        intervals" in Figure 1).  Useful when the interstitial source
        should react to utilization thresholds between job events.
    until:
        Hard stop: events after this time are not processed and the
        result reports unfinished jobs.  Mostly for debugging.
    check_invariants:
        Validate cluster accounting (busy == sum of running widths, no
        double allocation, counters in range, monotone event times)
        after every event batch, raising :class:`SimulationError` with
        a diagnostic snapshot on violation.  There is deliberately no
        process-wide default: callers that want validation plumb the
        flag explicitly (the CLI threads it through
        :class:`~repro.experiments.context.RunContext`), keeping the
        engine free of global state.
    event_queue:
        Pending-event structure: ``"heap"`` (binary heap, the default)
        or ``"calendar"`` (bucketed calendar queue).  Both implement the
        identical ``(time, kind, seq)`` total order, so results are
        byte-identical either way; ``benchmarks/bench_engine.py``
        compares their throughput.
    """

    horizon: Optional[float] = None
    wake_interval: Optional[float] = None
    until: Optional[float] = None
    check_invariants: bool = False
    event_queue: str = "heap"

    def __post_init__(self) -> None:
        if self.wake_interval is not None and self.wake_interval <= 0:
            raise ConfigurationError(
                f"wake_interval must be positive, got {self.wake_interval}"
            )
        if self.event_queue not in ("heap", "calendar"):
            raise ConfigurationError(
                f"event_queue must be 'heap' or 'calendar', "
                f"got {self.event_queue!r}"
            )

    @property
    def invariants_enabled(self) -> bool:
        """Whether the accounting validator runs (alias kept for the
        engine's call sites)."""
        return bool(self.check_invariants)


class Engine:
    """Replays a native trace through a scheduler on a machine.

    Parameters
    ----------
    machine:
        Machine model (CPU count and clock).
    scheduler:
        Native queueing policy (see :mod:`repro.sched`).
    trace:
        Native jobs to replay.  Jobs are mutated in place (state, start
        and finish times); pass copies if the trace is reused.
    interstitial:
        Optional interstitial job source (see :mod:`repro.core`).
    outages:
        Optional downtime schedule (drain semantics: running jobs
        survive).
    faults:
        Optional stochastic node-failure model (crash semantics: jobs
        on the failed CPUs are killed; see :mod:`repro.faults`).
    retry:
        Resubmission policy for fault-killed *native* jobs (defaults to
        ``RetryPolicy()`` when ``faults`` is given).  Interstitial jobs
        instead route through the source's ``on_preempted`` path.
    config:
        Engine options.
    recorder:
        Optional :class:`~repro.obs.TraceRecorder` receiving one
        structured record per engine event.  Defaults to the shared
        :data:`~repro.obs.NULL_RECORDER` (a single attribute check per
        emission site); recorders observe but never influence the
        simulation.
    timers:
        Optional :class:`~repro.obs.PhaseTimers` accumulating
        wall-clock spans of event dispatch, the scheduling pass and
        fault application (``repro profile``).
    """

    def __init__(
        self,
        machine: Machine,
        scheduler: "Scheduler",
        trace: Iterable[Job] = (),
        interstitial: Optional["InterstitialSource"] = None,
        outages: Optional[OutageSchedule] = None,
        faults: Optional[FaultModel] = None,
        retry: Optional[RetryPolicy] = None,
        config: Optional[SimConfig] = None,
        recorder: Optional[TraceRecorder] = None,
        timers: Optional[PhaseTimers] = None,
    ) -> None:
        self.machine = machine
        self.scheduler = scheduler
        self.interstitial = interstitial
        self.outages = outages or OutageSchedule()
        self.faults = faults
        self.retry = retry if retry is not None else (
            RetryPolicy() if faults is not None else None
        )
        self.config = config or SimConfig()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        #: Hot-path gate: one attribute read decides whether records
        #: are constructed at all.
        self._rec = self.recorder.enabled
        self.timers = timers
        if timers is not None:
            self.scheduler.attach_timers(timers)
        self.counters = Counters()
        self.cluster = ClusterState(machine)
        self.events = (
            CalendarEventQueue()
            if self.config.event_queue == "calendar"
            else EventQueue()
        )
        self._finished: List[Job] = []
        self._killed: List[Job] = []
        self._dead_lettered: List[Job] = []
        self._trace: List[Job] = list(trace)
        #: Interstitial jobs are renumbered from here at offer time.
        #: Relying on the ids the source's constructor drew from the
        #: process-wide counter would make results depend on process
        #: history (and collide with unpickled traces in worker
        #: processes); renumbering pins ids — and therefore the
        #: id-ordered fault-victim and preemption draws — to the trace
        #: alone.
        self._interstitial_ids = itertools.count(
            max((job.job_id for job in self._trace), default=0) + 1
        )
        self._last_submit = 0.0
        #: job_id -> fault-kill count (retry accounting).
        self._attempts: Dict[int, int] = {}
        #: Fault-killed natives with a pending RESUBMIT event.
        self._awaiting_retry: Dict[int, Job] = {}
        #: job_id -> scheduled finish time of the *current* incarnation,
        #: used to discard stale FINISH events of killed-then-retried
        #: jobs.
        self._expected_finish: Dict[int, float] = {}
        self._fault_transitions: List[Tuple[float, int]] = []
        self._n_failures = 0
        #: Jobs started during the current scheduling pass (trace detail).
        self._pass_starts = 0
        self._victim_rng: Optional[np.random.Generator] = (
            faults.victim_rng() if faults is not None else None
        )
        self._validate()

    def _validate(self) -> None:
        for job in self._trace:
            if job.cpus > self.machine.cpus:
                raise ConfigurationError(
                    f"trace job {job.job_id} needs {job.cpus} CPUs but "
                    f"{self.machine.name} has {self.machine.cpus}"
                )
        if self.outages.max_down() > self.machine.cpus:
            raise ConfigurationError(
                "outage schedule takes down more CPUs than the machine has"
            )

    # ------------------------------------------------------------------
    def _record(
        self,
        time: float,
        kind: str,
        job: Optional[Job] = None,
        detail: Optional[int] = None,
    ) -> None:
        """Emit one trace record snapshotting queue/occupancy state.

        Callers gate on ``self._rec`` so a disabled recorder never even
        constructs the record.
        """
        self.recorder.record(
            TraceRecord(
                time=time,
                kind=kind,
                job_id=None if job is None else job.job_id,
                cpus=None if job is None else job.cpus,
                queue_depth=self.scheduler.queue_length,
                busy_cpus=self.cluster.busy_cpus,
                free_cpus=self.cluster.free_cpus,
                detail=detail,
            )
        )

    def run(self) -> SimResult:
        """Run to completion and return the collected results."""
        for job in self._trace:
            self.events.push(job.submit_time, EventKind.SUBMIT, job)
            self._last_submit = max(self._last_submit, job.submit_time)
        for time, delta in self.outages.transitions():
            self.events.push(time, EventKind.OUTAGE, delta)
        if self.faults is not None:
            schedule = self.faults.sample(self.machine, self._fault_until())
            for time, delta in schedule.transitions():
                kind = EventKind.FAILURE if delta > 0 else EventKind.REPAIR
                self.events.push(time, kind, abs(delta))
                self._fault_transitions.append((time, delta))
        wake_until = self._wake_until()
        if self.config.wake_interval is not None and wake_until > 0:
            self.events.push(self.config.wake_interval, EventKind.WAKE, None)
        check = self.config.invariants_enabled
        counters = self.counters
        timers = self.timers
        if self._rec:
            self.recorder.record(
                TraceRecord(
                    time=0.0,
                    kind="run_start",
                    cpus=self.machine.cpus,
                    free_cpus=self.machine.cpus,
                    detail=len(self._trace),
                )
            )

        t = 0.0
        while self.events:
            next_time = self.events.peek_time()
            if next_time is None:
                raise SimulationError(
                    "event queue reported non-empty but has no next event"
                )
            if self.config.until is not None and next_time > self.config.until:
                t = self.config.until
                break
            if timers is not None:
                timers.start("event_queue_ops")
            batch = self.events.pop_batch()
            if timers is not None:
                timers.stop("event_queue_ops")
            if batch[0].time < t:
                raise SimulationError(
                    f"time went backwards: {batch[0].time} < {t}"
                )
            t = batch[0].time
            counters.events += len(batch)
            if timers is not None:
                timers.start("event_dispatch")
            for event in batch:
                self._handle(event, t, wake_until)
            if timers is not None:
                timers.stop("event_dispatch")
                timers.start("scheduling_pass")
            self._scheduling_pass(t)
            if timers is not None:
                timers.stop("scheduling_pass")
            if check:
                self._check_invariants(t)
                counters.invariant_checks += 1
            if not self.events and self.scheduler.queue_length > 0:
                # Stall recovery: jobs remain queued (e.g. held by a
                # time-of-day policy) but no event will ever re-run the
                # scheduler.  Wake periodically until they drain —
                # progress is guaranteed because queued jobs fit the
                # machine and every hold (time-of-day windows, outages)
                # eventually opens.
                self.events.push(
                    t + self._stall_interval(), EventKind.WAKE, None
                )
        if self._rec:
            self._record(t, "run_end", detail=len(self._finished))
        return self._collect(t)

    def _stall_interval(self) -> float:
        """Re-check period while the queue is stalled with no events."""
        if self.config.wake_interval is not None:
            return self.config.wake_interval
        return 900.0

    # ------------------------------------------------------------------
    def _wake_until(self) -> float:
        """Last time periodic wake events should fire."""
        if self.config.horizon is not None:
            return self.config.horizon
        return self._last_submit

    def _fault_until(self) -> float:
        """End of the fault-sampling window.

        Failures are injected while the workload is active: up to the
        hard stop, the horizon, or the last native submission —
        whichever is latest among those configured.  Work running past
        that point winds down crash-free (an unbounded tail cannot be
        pre-sampled).
        """
        candidates = [self._last_submit]
        if self.config.horizon is not None:
            candidates.append(self.config.horizon)
        if self.config.until is not None:
            candidates.append(self.config.until)
        return max(candidates)

    def _handle(self, event, t: float, wake_until: float) -> None:
        if event.kind is EventKind.SUBMIT:
            job: Job = event.payload
            job.state = JobState.QUEUED
            self.scheduler.submit(job, t)
            self.counters.submits += 1
            if self._rec:
                self._record(t, "submit", job)
        elif event.kind is EventKind.FINISH:
            job = event.payload
            if job.state is not JobState.RUNNING:
                return  # preempted or fault-killed; CPUs already free
            if self._expected_finish.get(job.job_id) != event.time:
                return  # stale completion of a killed, retried incarnation
            self.cluster.finish(job)
            self._expected_finish.pop(job.job_id, None)
            job.finish_time = t
            job.state = JobState.FINISHED
            self.scheduler.on_finish(job, t)
            self._finished.append(job)
            self.counters.finishes += 1
            if self._rec:
                self._record(t, "finish", job)
        elif event.kind is EventKind.OUTAGE:
            self.cluster.apply_outage(int(event.payload))
            if self.cluster.down_cpus < 0:
                raise SimulationError("negative down CPU count")
            self.counters.outages += 1
            if self._rec:
                self._record(t, "outage", detail=int(event.payload))
        elif event.kind is EventKind.FAILURE:
            if self.timers is not None:
                self.timers.start("fault_apply")
            self._apply_failure(int(event.payload), t)
            if self.timers is not None:
                self.timers.stop("fault_apply")
        elif event.kind is EventKind.REPAIR:
            self.cluster.apply_failed(-int(event.payload))
            if self.cluster.failed_cpus < 0:
                raise SimulationError("negative failed CPU count")
            self.counters.repairs += 1
            if self._rec:
                self._record(t, "repair", detail=int(event.payload))
        elif event.kind is EventKind.RESUBMIT:
            job = event.payload
            self._awaiting_retry.pop(job.job_id, None)
            job.state = JobState.QUEUED
            job.start_time = None
            job.finish_time = None
            self.scheduler.submit(job, t)
            self.counters.requeues += 1
            if self._rec:
                self._record(t, "requeue", job)
        elif event.kind is EventKind.WAKE:
            # Periodic wake-ups re-arm themselves within their window;
            # stall-recovery wakes (pushed by the main loop) do not.
            self.counters.wakes += 1
            interval = self.config.wake_interval
            if interval is not None and t + interval <= wake_until:
                self.events.push(t + interval, EventKind.WAKE, None)
        else:  # pragma: no cover - exhaustive
            raise SimulationError(f"unknown event kind {event.kind!r}")

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def _apply_failure(self, cpus: int, t: float) -> None:
        """Crash ``cpus`` processors: remove them from service and kill
        the jobs running on them.

        Placement is not tracked, so which running work the failed CPUs
        were hosting is drawn from the model's seeded victim stream: the
        number of *busy* CPUs among the failed ones is hypergeometric in
        (busy, idle) in-service counts, and each busy hit belongs to a
        running job with probability proportional to its width.  A job
        is killed whole — losing one CPU of a wide job kills the job —
        so a single narrow failure can release more capacity than it
        took down.
        """
        in_service = self.cluster.available_cpus
        self.cluster.apply_failed(cpus)
        self._n_failures += 1
        self.counters.failures += 1
        if self._rec:
            self._record(t, "failure", detail=cpus)
        if self._victim_rng is None:
            raise SimulationError("FAILURE event without a fault model")
        busy_eff = min(self.cluster.busy_cpus, in_service)
        idle_eff = in_service - busy_eff
        sample = min(cpus, in_service)
        if sample <= 0 or busy_eff <= 0:
            hits = 0
        else:
            hits = int(
                self._victim_rng.hypergeometric(busy_eff, idle_eff, sample)
            )
        interstitial_victims: List[Job] = []
        # Sort the candidate pool once per FAILURE event; deleting each
        # victim in place preserves the job-id ordering, so the seeded
        # draw sequence is exactly what per-iteration re-sorting gave.
        recs = sorted(
            self.cluster.running.values(), key=lambda r: r.job.job_id
        )
        while hits > 0 and recs:
            widths = np.array([rec.job.cpus for rec in recs], dtype=float)
            index = int(
                self._victim_rng.choice(len(recs), p=widths / widths.sum())
            )
            victim = recs[index].job
            del recs[index]
            hits -= min(hits, victim.cpus)
            self.cluster.finish(victim)
            self._expected_finish.pop(victim.job_id, None)
            victim.state = JobState.KILLED
            victim.finish_time = t
            self.counters.fault_kills += 1
            if self._rec:
                self._record(t, "kill", victim)
            if victim.is_interstitial:
                self._killed.append(victim)
                interstitial_victims.append(victim)
            else:
                self._requeue_native(victim, t)
        if self.interstitial is not None:
            if interstitial_victims:
                self.interstitial.on_preempted(interstitial_victims, t)
            self.interstitial.on_fault(t, cpus)

    def _requeue_native(self, job: Job, t: float) -> None:
        """Record the wasted run fragment of a fault-killed native job
        and resubmit it per the retry policy (or dead-letter it)."""
        fragment = job.copy_unscheduled()
        fragment.state = JobState.KILLED
        fragment.start_time = job.start_time
        fragment.finish_time = t
        self._killed.append(fragment)
        attempts = self._attempts.get(job.job_id, 0) + 1
        self._attempts[job.job_id] = attempts
        if self.retry is None or not self.retry.allows(attempts):
            self._dead_lettered.append(job)
            return
        self._awaiting_retry[job.job_id] = job
        self.events.push(
            t + self.retry.delay(attempts), EventKind.RESUBMIT, job
        )

    def _check_invariants(self, t: float) -> None:
        """Post-batch consistency check (``check_invariants`` mode)."""
        self.cluster.check_invariants(t)
        next_time = self.events.peek_time()
        if next_time is not None and next_time < t:
            raise SimulationError(
                f"pending event at {next_time} is earlier than the "
                f"current time {t}"
            )

    def _scheduling_pass(self, t: float) -> None:
        """One pass: native policy to quiescence, then (optionally)
        shrink/preemption of interstitial jobs for a blocked native head
        job, then interstitial feeding and elastic grow-back."""
        self.counters.scheduling_passes += 1
        self._pass_starts = 0
        try:
            for job in self.scheduler.schedule(t, self.cluster):
                self._start(job, t)
            source = self.interstitial
            if source is None:
                return
            elastic = source.elastic
            if (
                (source.preemptible or elastic)
                and self.scheduler.queue_length > 0
            ):
                # Elastic sources repeat the carve-and-seat round until
                # no further native can be seated (each round shrinks
                # exactly the head's deficit, so arrivals behind it need
                # their own round); the kill-only path keeps its
                # historical single round.
                while self._preempt_for_head(t):
                    started = False
                    for job in self.scheduler.schedule(t, self.cluster):
                        self._start(job, t)
                        started = True
                    if not elastic or not started:
                        break
                    if self.scheduler.queue_length == 0:
                        break
            horizon = self.config.horizon
            if horizon is not None and t >= horizon:
                return
            if t < source.throttled_until:
                self.counters.fault_throttle_passes += 1
                if self._rec:
                    self._record(t, "fault_throttle")
            for job in source.offer(t, self.cluster, self.scheduler):
                job.job_id = next(self._interstitial_ids)
                if job.min_cpus is not None:
                    self.counters.molded_starts += 1
                self._start(job, t)
            if elastic:
                for job, width in source.grow_requests(
                    t, self.cluster, self.scheduler
                ):
                    self._resize(job, width, t, grow=True)
        finally:
            if self._rec:
                self._record(t, "sched_pass", detail=self._pass_starts)

    def _preempt_for_head(self, t: float) -> bool:
        """Carve just enough CPUs out of running interstitial jobs
        (youngest first) so the top-priority native job fits; returns
        True when anything was shrunk or killed.

        Elastic sources release CPUs the cheap way first: malleable
        jobs *shrink* toward their ``min_cpus`` floor with their
        remaining runtime re-scaled, so no work is lost (DESIGN §16).
        Any remaining deficit falls through to the historical kill path
        (preemptible sources only), where killed work is wasted — jobs
        are non-preemptive with no checkpoint/restart — and the source
        is told to redo it.
        """
        source = self.interstitial
        if source is None:
            raise SimulationError(
                "preemption pass without an interstitial source"
            )
        head = self.scheduler.head_job(t)
        if head is None:
            return False
        deficit = head.cpus - self.cluster.free_cpus
        if deficit <= 0:
            return False
        victims = sorted(
            (
                rec
                for rec in self.cluster.running.values()
                if rec.job.is_interstitial
            ),
            key=lambda rec: (-rec.start_time, -rec.job.job_id),
        )
        shrinkable = 0
        if source.elastic:
            shrinkable = sum(
                rec.job.cpus - rec.job.min_cpus
                for rec in victims
                if rec.job.malleable
            )
        killable = (
            sum(rec.job.cpus for rec in victims)
            if source.preemptible
            else 0
        )
        if shrinkable + killable < deficit:
            # Even shrinking every malleable job to its floor and
            # killing everything killable cannot seat the head job
            # (natives hold the rest) — carving now would only cost
            # interstitial throughput without helping, so wait for
            # native releases instead.
            return False
        freed = 0
        if shrinkable > 0:
            for rec in victims:
                if freed >= deficit:
                    break
                job = rec.job
                if not job.malleable:
                    continue
                give = min(job.cpus - job.min_cpus, deficit - freed)
                if give <= 0:
                    continue
                old_cpus = job.cpus
                self._resize(job, job.cpus - give, t, grow=False)
                source.on_shrunk(job, old_cpus, t)
                freed += give
        if freed >= deficit:
            return True
        killed: List[Job] = []
        for rec in victims:
            if freed >= deficit:
                break
            if rec.job.state is not JobState.RUNNING:
                continue  # defensive; shrinks never change state
            self.cluster.finish(rec.job)
            self._expected_finish.pop(rec.job.job_id, None)
            rec.job.state = JobState.KILLED
            rec.job.finish_time = t
            killed.append(rec.job)
            freed += rec.job.cpus
            self.counters.preempt_kills += 1
            if self._rec:
                self._record(t, "preempt", rec.job)
        self._killed.extend(killed)
        source.on_preempted(killed, t)
        return True

    def _resize(self, job: Job, new_cpus: int, t: float, grow: bool) -> None:
        """Change a running malleable job's width to ``new_cpus``,
        conserving CPU-seconds of remaining work.

        The remaining work at ``t`` is ``old_cpus * (finish - t)``
        CPU-seconds; at the new width it takes ``remaining * old/new``
        seconds, so the job's runtime/estimate become the elapsed time
        plus the re-scaled remainder, the cluster re-accounts the width
        (bumping its epoch, which invalidates scheduler pass-skip
        caches), and a fresh FINISH event replaces the old one — the
        stale event is discarded by the ``_expected_finish`` check,
        exactly like a killed-then-retried incarnation's.
        """
        old_cpus = job.cpus
        if new_cpus == old_cpus:
            return
        if job.min_cpus is None or job.max_cpus is None or not (
            job.min_cpus <= new_cpus <= job.max_cpus
        ):
            raise SimulationError(
                f"resize of job {job.job_id} to {new_cpus} CPUs outside "
                f"its elastic bounds [{job.min_cpus}, {job.max_cpus}]"
            )
        expected = self._expected_finish.get(job.job_id)
        if expected is None or job.state is not JobState.RUNNING:
            raise SimulationError(
                f"resize of job {job.job_id} which is not running"
            )
        started = job.start_time if job.start_time is not None else t
        remaining = max(0.0, expected - t)
        new_remaining = remaining * old_cpus / new_cpus
        if job.width_history is None:
            job.width_history = [(started, old_cpus)]
        job.width_history.append((t, new_cpus))
        job.cpus = new_cpus
        job.runtime = (t - started) + new_remaining
        job.estimate = job.runtime
        self.cluster.resize(job, old_cpus)
        event = self.events.push(t + new_remaining, EventKind.FINISH, job)
        self._expected_finish[job.job_id] = event.time
        if grow:
            self.counters.grows += 1
        else:
            self.counters.preempt_shrinks += 1
        if self._rec:
            self._record(t, "grow" if grow else "shrink", job,
                         detail=old_cpus)

    def _start(self, job: Job, t: float) -> None:
        self.cluster.start(job, t)
        job.start_time = t
        job.state = JobState.RUNNING
        event = self.events.push(t + job.runtime, EventKind.FINISH, job)
        self._expected_finish[job.job_id] = event.time
        self.counters.starts += 1
        self._pass_starts += 1
        if self._rec:
            self._record(t, "start", job)

    def _collect(self, t: float) -> SimResult:
        unfinished: List[Job] = [
            rec.job for rec in self.cluster.running.values()
        ]
        unfinished.extend(self.scheduler.pending_jobs())
        unfinished.extend(self._awaiting_retry.values())
        # Trace jobs whose SUBMIT event never fired (an ``until`` stop
        # before their submit time) are unfinished work too; without
        # them a truncated run silently under-reports its backlog.
        unfinished.extend(
            job for job in self._trace if job.state is JobState.CREATED
        )
        self.counters.backfill_starts = self.scheduler.backfill_starts
        self.counters.pass_skips = self.scheduler.n_pass_skips
        self.counters.priority_rekeys = self.scheduler.n_priority_rekeys
        self.counters.release_rebuilds = self.scheduler.n_release_rebuilds
        return SimResult(
            machine=self.machine,
            finished=self._finished,
            unfinished=unfinished,
            killed=self._killed,
            end_time=t,
            horizon=self.config.horizon,
            outages=self.outages,
            attempts=dict(self._attempts),
            dead_lettered=self._dead_lettered,
            fault_transitions=tuple(self._fault_transitions),
            n_failures=self._n_failures,
            counters=self.counters,
        )
