"""Event types and the time-ordered event queue.

Events are totally ordered by ``(time, priority, seq)``: ties at equal
times are broken first by event-kind priority (finishes before submits,
so capacity freed at time *t* is visible to jobs submitted at *t*) and
then by insertion order, which keeps the simulation fully deterministic.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import SimulationError


class EventKind(enum.IntEnum):
    """Kinds of simulator events, in tie-break priority order.

    Capacity changes (OUTAGE, FAILURE, REPAIR) process before job
    completions so a scheduling pass at time *t* sees the capacity that
    is actually in service at *t*; FINISH before SUBMIT so capacity
    freed at *t* is visible to jobs submitted at *t*.
    """

    #: A machine partition goes down or comes back (payload: cpu delta).
    OUTAGE = 0
    #: Nodes crash, killing the jobs on them (payload: failed cpus).
    FAILURE = 1
    #: Crashed nodes return to service (payload: repaired cpus).
    REPAIR = 2
    #: A running job completes (payload: the job).
    FINISH = 3
    #: A job arrives in the queue (payload: the job).
    SUBMIT = 4
    #: A fault-killed native job re-enters the queue (payload: the job).
    RESUBMIT = 5
    #: A periodic scheduler wake-up with no payload.
    WAKE = 6


@dataclass(frozen=True, order=True)
class Event:
    """A single simulator event; orderable by (time, kind, seq)."""

    time: float
    kind: EventKind
    seq: int
    payload: Any = field(compare=False, default=None)


#: Internal heap entry: ``(time, kind, seq, event)``.  The prefix is
#: exactly the event's compare key, and ``seq`` is unique, so ordering
#: is identical to comparing :class:`Event` objects — but the
#: comparisons run entirely in C tuple code instead of the dataclass's
#: generated ``__lt__`` (a measurable share of the hot loop).
_Entry = tuple


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event; returns the created :class:`Event`."""
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time!r}")
        seq = next(self._seq)
        event = Event(time, kind, seq, payload)
        heapq.heappush(self._heap, (time, kind, seq, event))
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)[3]

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def pop_batch(self) -> List[Event]:
        """Pop *all* events sharing the earliest timestamp.

        Processing same-time events as a batch lets the engine run a
        single scheduling pass per simulated instant, which is both what
        a real scheduler does and the main efficiency lever when an
        interstitial batch of hundreds of identical jobs finishes at the
        same moment.
        """
        heap = self._heap
        if not heap:
            raise SimulationError("pop_batch from an empty event queue")
        first = heapq.heappop(heap)
        batch = [first[3]]
        time = first[0]
        while heap and heap[0][0] == time:
            batch.append(heapq.heappop(heap)[3])
        return batch


class CalendarEventQueue:
    """A calendar-queue alternative to :class:`EventQueue`.

    Events are binned into fixed-width time buckets (a classic calendar
    queue); each bucket is a small heap, and a lazily-cleaned heap of
    bucket indices tracks the earliest non-empty bucket.  Pushing into
    the current simulation era touches a bucket of a few events instead
    of a heap of all pending events, which is the structure's claim to
    fame; ``benchmarks/bench_engine.py`` measures whether that pays off
    against :mod:`heapq`'s C implementation on our workloads.

    The interface and the ``(time, kind, seq)`` total order are
    identical to :class:`EventQueue` — a simulation produces the same
    bytes on either queue (asserted by the engine test suite) — so the
    engine can swap them behind ``SimConfig.event_queue``.

    Parameters
    ----------
    bucket_width:
        Bucket span in simulated seconds.  Correct for any positive
        width; only performance depends on it.
    """

    def __init__(self, bucket_width: float = 64.0) -> None:
        if not math.isfinite(bucket_width) or bucket_width <= 0:
            raise SimulationError(
                f"bucket_width must be positive and finite, "
                f"got {bucket_width!r}"
            )
        self._width = float(bucket_width)
        self._buckets: Dict[int, List[_Entry]] = {}
        self._bucket_heap: List[int] = []
        self._seq = itertools.count()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event; returns the created :class:`Event`."""
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time!r}")
        seq = next(self._seq)
        event = Event(time, kind, seq, payload)
        idx = int(time // self._width)
        bucket = self._buckets.get(idx)
        if bucket is None:
            self._buckets[idx] = bucket = []
            heapq.heappush(self._bucket_heap, idx)
        heapq.heappush(bucket, (time, kind, seq, event))
        self._size += 1
        return event

    def _min_bucket(self) -> Optional[List[_Entry]]:
        """The earliest non-empty bucket, discarding drained ones.

        Bucket indices order consistently with event times (all events
        in bucket *i* precede all events in bucket *j* > *i*), so the
        index heap's minimum live entry holds the global minimum event.
        """
        heap = self._bucket_heap
        while heap:
            bucket = self._buckets.get(heap[0])
            if bucket:
                return bucket
            self._buckets.pop(heapq.heappop(heap), None)
        return None

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        bucket = self._min_bucket()
        if bucket is None:
            raise SimulationError("pop from an empty event queue")
        self._size -= 1
        return heapq.heappop(bucket)[3]

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or None when empty."""
        bucket = self._min_bucket()
        return bucket[0][0] if bucket else None

    def pop_batch(self) -> List[Event]:
        """Pop *all* events sharing the earliest timestamp (equal times
        always share a bucket, so the batch drains from one heap)."""
        if self._size == 0:
            raise SimulationError("pop_batch from an empty event queue")
        first = self.pop()
        batch = [first]
        bucket = self._min_bucket()
        while bucket and bucket[0][0] == first.time:
            batch.append(heapq.heappop(bucket)[3])
            self._size -= 1
        return batch
