"""Event types and the time-ordered event queue.

Events are totally ordered by ``(time, priority, seq)``: ties at equal
times are broken first by event-kind priority (finishes before submits,
so capacity freed at time *t* is visible to jobs submitted at *t*) and
then by insertion order, which keeps the simulation fully deterministic.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.errors import SimulationError


class EventKind(enum.IntEnum):
    """Kinds of simulator events, in tie-break priority order.

    Capacity changes (OUTAGE, FAILURE, REPAIR) process before job
    completions so a scheduling pass at time *t* sees the capacity that
    is actually in service at *t*; FINISH before SUBMIT so capacity
    freed at *t* is visible to jobs submitted at *t*.
    """

    #: A machine partition goes down or comes back (payload: cpu delta).
    OUTAGE = 0
    #: Nodes crash, killing the jobs on them (payload: failed cpus).
    FAILURE = 1
    #: Crashed nodes return to service (payload: repaired cpus).
    REPAIR = 2
    #: A running job completes (payload: the job).
    FINISH = 3
    #: A job arrives in the queue (payload: the job).
    SUBMIT = 4
    #: A fault-killed native job re-enters the queue (payload: the job).
    RESUBMIT = 5
    #: A periodic scheduler wake-up with no payload.
    WAKE = 6


@dataclass(frozen=True, order=True)
class Event:
    """A single simulator event; orderable by (time, kind, seq)."""

    time: float
    kind: EventKind
    seq: int
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event; returns the created :class:`Event`."""
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time!r}")
        event = Event(time, kind, next(self._seq), payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or None when empty."""
        return self._heap[0].time if self._heap else None

    def pop_batch(self) -> List[Event]:
        """Pop *all* events sharing the earliest timestamp.

        Processing same-time events as a batch lets the engine run a
        single scheduling pass per simulated instant, which is both what
        a real scheduler does and the main efficiency lever when an
        interstitial batch of hundreds of identical jobs finishes at the
        same moment.
        """
        if not self._heap:
            raise SimulationError("pop_batch from an empty event queue")
        first = heapq.heappop(self._heap)
        batch = [first]
        while self._heap and self._heap[0].time == first.time:
            batch.append(heapq.heappop(self._heap))
        return batch
