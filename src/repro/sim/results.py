"""Simulation result container.

The engine collects raw per-job outcomes; :class:`SimResult` exposes
them together with lazily-built busy-CPU step functions so the metrics
layer (:mod:`repro.metrics`) can compute utilizations, wait statistics
and makespans without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.jobs import Job, JobKind
from repro.machines import Machine
from repro.obs import Counters
from repro.sim.outages import OutageSchedule
from repro.sim.profile import StepFunction


@dataclass(frozen=True)
class UsageSample:
    """One instant of cluster occupancy (diagnostic stream)."""

    time: float
    native_busy: int
    interstitial_busy: int
    down: int


@dataclass
class SimResult:
    """Everything a simulation run produced.

    Attributes
    ----------
    machine:
        The simulated machine.
    finished:
        Jobs that ran to completion (``start_time``/``finish_time`` set).
    unfinished:
        Jobs still running or queued when the run was truncated by
        ``until`` (empty for full runs).
    killed:
        Jobs (or run fragments) whose work was wasted: interstitial
        jobs preempted for native work or killed by node failures, and
        the partial runs of fault-killed natives awaiting retry.  Their
        partial occupancy counts as busy time.
    end_time:
        Time of the last processed event.
    horizon:
        Metrics window end: the configured horizon if one was set,
        otherwise ``end_time``.  Utilization averages use ``[0, horizon]``.
    outages:
        The outage schedule that was in force.
    attempts:
        Per-job fault-retry counters (job_id -> times the job was
        killed by a node failure); only jobs hit at least once appear.
    dead_lettered:
        Native jobs abandoned after exhausting the
        :class:`~repro.faults.RetryPolicy` attempt budget.
    fault_transitions:
        (time, cpu-delta) pairs of the compiled fault schedule, merged
        into :meth:`down_profile` alongside the outage transitions.
    n_failures:
        Number of FAILURE events processed.
    counters:
        The engine's :class:`~repro.obs.Counters` registry for this
        run (events handled, scheduling passes, preempt kills and
        elastic shrinks/grows, backfill
        starts, invariant checks, ...); always populated — counting is
        cheap enough to leave on.
    """

    machine: Machine
    finished: List[Job] = field(default_factory=list)
    unfinished: List[Job] = field(default_factory=list)
    killed: List[Job] = field(default_factory=list)
    end_time: float = 0.0
    horizon: Optional[float] = None
    outages: OutageSchedule = field(default_factory=OutageSchedule)
    attempts: Dict[int, int] = field(default_factory=dict)
    dead_lettered: List[Job] = field(default_factory=list)
    fault_transitions: Sequence[Tuple[float, int]] = ()
    n_failures: int = 0
    counters: Counters = field(default_factory=Counters)

    # ------------------------------------------------------------------
    # Job views
    # ------------------------------------------------------------------
    def jobs(self, kind: Optional[JobKind] = None) -> List[Job]:
        """Finished jobs, optionally filtered by kind."""
        if kind is None:
            return list(self.finished)
        return [j for j in self.finished if j.kind is kind]

    @property
    def native_jobs(self) -> List[Job]:
        """Finished native jobs."""
        return self.jobs(JobKind.NATIVE)

    @property
    def interstitial_jobs(self) -> List[Job]:
        """Finished interstitial jobs."""
        return self.jobs(JobKind.INTERSTITIAL)

    @property
    def metrics_end(self) -> float:
        """End of the metrics window (horizon or last event time)."""
        return self.horizon if self.horizon is not None else self.end_time

    # ------------------------------------------------------------------
    # Occupancy profiles
    # ------------------------------------------------------------------
    def busy_profile(self, kind: Optional[JobKind] = None) -> StepFunction:
        """Busy-CPU step function over time for finished jobs of ``kind``
        (all kinds when None).  Jobs truncated by an early stop contribute
        up to ``end_time``.

        Elastic jobs that resized while running (``width_history`` set)
        contribute their per-segment widths rather than a constant
        ``cpus``, so utilization reflects the CPUs actually held over
        time.
        """
        times: List[float] = []
        deltas: List[float] = []

        def add(job: Job, end: float) -> None:
            history = job.width_history
            if history:
                prev = 0
                for seg_start, seg_width in history:
                    times.append(seg_start)
                    deltas.append(seg_width - prev)
                    prev = seg_width
                times.append(end)
                deltas.append(-prev)
            else:
                times.append(job.start_time)  # type: ignore[arg-type]
                deltas.append(job.cpus)
                times.append(end)
                deltas.append(-job.cpus)

        for job in list(self.finished) + list(self.killed):
            if kind is not None and job.kind is not kind:
                continue
            add(job, job.finish_time)  # type: ignore[arg-type]
        for job in self.unfinished:
            if job.start_time is None:
                continue
            if kind is not None and job.kind is not kind:
                continue
            add(job, self.end_time)
        return StepFunction.from_deltas(times, deltas, base=0.0)

    def down_profile(self) -> StepFunction:
        """Down-CPU step function from the outage schedule plus any
        fault-injected crash windows."""
        transitions = list(self.outages.transitions())
        transitions.extend(self.fault_transitions)
        transitions.sort()
        return StepFunction.from_deltas(
            [t for t, _ in transitions], [d for _, d in transitions], base=0.0
        )

    # ------------------------------------------------------------------
    # Headline numbers (thin wrappers; richer stats in repro.metrics)
    # ------------------------------------------------------------------
    def utilization(
        self,
        kind: Optional[JobKind] = None,
        t0: float = 0.0,
        t1: Optional[float] = None,
    ) -> float:
        """Average utilization (busy CPU-time / machine CPU-time) over
        ``[t0, t1]``; the denominator includes outages, matching the
        paper's "including outages" convention."""
        end = t1 if t1 is not None else self.metrics_end
        if end <= t0:
            raise ValueError(f"empty utilization window [{t0}, {end}]")
        busy = self.busy_profile(kind).integrate(t0, end)
        return busy / (self.machine.cpus * (end - t0))

    @property
    def overall_utilization(self) -> float:
        """Average utilization of all work over the metrics window."""
        return self.utilization()

    @property
    def native_utilization(self) -> float:
        """Average utilization of native work over the metrics window."""
        return self.utilization(JobKind.NATIVE)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimResult({self.machine.name}: {len(self.finished)} finished, "
            f"{len(self.unfinished)} unfinished, end={self.end_time:.0f}s)"
        )
