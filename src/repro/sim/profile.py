"""Step functions over simulated time.

Two complementary representations:

* :class:`StepFunction` — an immutable, NumPy-backed step function built
  once from a batch of (time, delta) events.  Used for utilization
  time-series, the native *headroom profile* consumed by the omniscient
  packer, and any bulk analytics (vectorized per the HPC guides).
* :class:`CapacityProfile` — a small, mutable, list-based profile used by
  conservative backfill to carve out job reservations incrementally.  Its
  sizes are bounded by (queue length + running jobs), so plain Python
  lists with bisect are the right tool.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import CapacityError, ValidationError

#: Sentinel for "never" / unbounded times.
INFINITY = math.inf


class StepFunction:
    """An immutable right-open step function ``f(t) = values[i]`` for
    ``times[i] <= t < times[i+1]``, extending ``values[-1]`` to +inf and
    ``base`` before ``times[0]``.
    """

    __slots__ = ("times", "values", "base")

    def __init__(
        self,
        times: Sequence[float],
        values: Sequence[float],
        base: float = 0.0,
    ) -> None:
        self.times = np.asarray(times, dtype=float)
        self.values = np.asarray(values, dtype=float)
        self.base = float(base)
        if self.times.ndim != 1 or self.values.ndim != 1:
            raise ValidationError("times and values must be 1-D")
        if self.times.shape != self.values.shape:
            raise ValidationError(
                f"times ({self.times.shape}) and values "
                f"({self.values.shape}) must have equal length"
            )
        if self.times.size and np.any(np.diff(self.times) <= 0):
            raise ValidationError("times must be strictly increasing")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_deltas(
        cls,
        event_times: Iterable[float],
        deltas: Iterable[float],
        base: float = 0.0,
    ) -> "StepFunction":
        """Build from (time, delta) events: the function starts at
        ``base`` and steps by the summed delta at each distinct time."""
        t = np.asarray(list(event_times), dtype=float)
        d = np.asarray(list(deltas), dtype=float)
        if t.shape != d.shape:
            raise ValidationError("event_times and deltas length mismatch")
        if t.size == 0:
            return cls(np.empty(0), np.empty(0), base=base)
        order = np.argsort(t, kind="stable")
        t = t[order]
        d = d[order]
        # Aggregate duplicate timestamps.
        unique_t, inverse = np.unique(t, return_inverse=True)
        summed = np.zeros(unique_t.size)
        np.add.at(summed, inverse, d)
        values = base + np.cumsum(summed)
        return cls(unique_t, values, base=base)

    @classmethod
    def constant(cls, value: float) -> "StepFunction":
        """A step function equal to ``value`` everywhere."""
        return cls(np.empty(0), np.empty(0), base=value)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __call__(self, t: float) -> float:
        return self.value_at(t)

    def value_at(self, t: float) -> float:
        """Value of the function at time ``t``."""
        idx = int(np.searchsorted(self.times, t, side="right")) - 1
        if idx < 0:
            return self.base
        return float(self.values[idx])

    def min_over(self, t0: float, t1: float) -> float:
        """Minimum of the function over the half-open window ``[t0, t1)``.

        ``t0 == t1`` returns the value at ``t0`` (a zero-length window is
        treated as a point query, which is what reservation checks want).
        """
        if t1 < t0:
            raise ValidationError(f"empty window: t0={t0} > t1={t1}")
        if t1 == t0:
            return self.value_at(t0)
        lo = int(np.searchsorted(self.times, t0, side="right"))
        hi = int(np.searchsorted(self.times, t1, side="left"))
        best = self.value_at(t0)
        if hi > lo:
            best = min(best, float(self.values[lo:hi].min()))
        return best

    def integrate(self, t0: float, t1: float) -> float:
        """Integral of the function over ``[t0, t1]``."""
        if t1 < t0:
            raise ValidationError(f"empty window: t0={t0} > t1={t1}")
        if t1 == t0 or self.times.size == 0:
            return self.base * (t1 - t0)
        # Breakpoints strictly inside the window.
        lo = int(np.searchsorted(self.times, t0, side="right"))
        hi = int(np.searchsorted(self.times, t1, side="left"))
        inner_times = self.times[lo:hi]
        edges = np.concatenate(([t0], inner_times, [t1]))
        # Value on each sub-interval is the function value at its left edge.
        left_vals = np.empty(edges.size - 1)
        left_vals[0] = self.value_at(t0)
        if hi > lo:
            left_vals[1:] = self.values[lo:hi]
        return float(np.sum(left_vals * np.diff(edges)))

    def average(self, t0: float, t1: float) -> float:
        """Time-average of the function over ``[t0, t1]``."""
        if t1 <= t0:
            raise ValidationError(f"window must have positive length")
        return self.integrate(t0, t1) / (t1 - t0)

    def sample(self, sample_times: Sequence[float]) -> np.ndarray:
        """Vectorized evaluation at many times."""
        st = np.asarray(sample_times, dtype=float)
        idx = np.searchsorted(self.times, st, side="right") - 1
        out = np.full(st.shape, self.base)
        mask = idx >= 0
        out[mask] = self.values[idx[mask]]
        return out

    def shift_values(self, offset: float) -> "StepFunction":
        """Return a copy with ``offset`` added to every value."""
        return StepFunction(
            self.times.copy(), self.values + offset, base=self.base + offset
        )

    def negate_from(self, total: float) -> "StepFunction":
        """Return ``total - f``, e.g. turning a busy-CPU profile into a
        free-CPU (headroom) profile."""
        return StepFunction(
            self.times.copy(), total - self.values, base=total - self.base
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StepFunction({self.times.size} breakpoints, "
            f"base={self.base:g})"
        )


class CapacityProfile:
    """A mutable step function of *remaining capacity* over time.

    Starts as a constant ``capacity`` over all time; :meth:`reserve`
    carves out (cpus x duration) rectangles.  Intended for small working
    sets (scheduler reservations), where list + bisect beats NumPy's
    array-rebuild cost.
    """

    def __init__(self, capacity: float, start: float = 0.0) -> None:
        if capacity < 0:
            raise ValidationError(f"capacity must be >= 0, got {capacity}")
        self._times: List[float] = [float(start)]
        self._caps: List[float] = [float(capacity)]

    @classmethod
    def from_claims(
        cls,
        capacity: float,
        start: float,
        claims: Iterable[Tuple[float, float]],
    ) -> "CapacityProfile":
        """Profile of ``capacity`` minus running jobs' active claims.

        ``claims`` is (estimated finish, cpus) per running job; each
        claim with ``finish > start`` occupies ``[start, finish)``.
        Equivalent to ``reserve(start, finish, cpus, check=False)`` per
        claim but built in one linear sweep instead of R quadratic
        inserts: capacity/claim widths are integer-valued, so float
        addition is exact and the summation order cannot change any
        segment value.
        """
        active = sorted(
            (float(f), float(c)) for f, c in claims if f > start
        )
        profile = cls(capacity, start=start)
        if not active:
            return profile
        times = profile._times
        caps = profile._caps
        current = float(capacity) - sum(c for _f, c in active)
        caps[0] = current
        for finish, cpus in active:
            current += cpus
            if finish == times[-1]:
                caps[-1] = current
            else:
                times.append(finish)
                caps.append(current)
        return profile

    # ------------------------------------------------------------------
    @property
    def breakpoints(self) -> Tuple[float, ...]:
        """The profile's breakpoint times (ascending)."""
        return tuple(self._times)

    def copy(self) -> "CapacityProfile":
        dup = CapacityProfile.__new__(CapacityProfile)
        dup._times = list(self._times)
        dup._caps = list(self._caps)
        return dup

    def _segment_index(self, t: float) -> int:
        """Index of the segment containing time ``t`` (clamped left)."""
        return max(0, bisect.bisect_right(self._times, t) - 1)

    def _ensure_breakpoint(self, t: float) -> int:
        """Insert a breakpoint at ``t`` if absent; return its index."""
        idx = bisect.bisect_left(self._times, t)
        if idx < len(self._times) and self._times[idx] == t:
            return idx
        if t < self._times[0]:
            raise ValidationError(
                f"time {t} precedes profile start {self._times[0]}"
            )
        self._times.insert(idx, t)
        self._caps.insert(idx, self._caps[idx - 1])
        return idx

    # ------------------------------------------------------------------
    def capacity_at(self, t: float) -> float:
        """Remaining capacity at time ``t``."""
        return self._caps[self._segment_index(t)]

    def min_over(self, t0: float, t1: float) -> float:
        """Minimum remaining capacity over ``[t0, t1)``; a zero-length
        window is a point query."""
        if t1 < t0:
            raise ValidationError(f"empty window: t0={t0} > t1={t1}")
        i0 = self._segment_index(t0)
        if t1 == t0 or math.isinf(t0):
            return self._caps[i0]
        if math.isinf(t1):
            return min(self._caps[i0:])
        i1 = bisect.bisect_left(self._times, t1)
        return min(self._caps[i0:max(i1, i0 + 1)])

    def reserve(
        self, t0: float, t1: float, cpus: float, check: bool = True
    ) -> None:
        """Subtract ``cpus`` over ``[t0, t1)``.

        With ``check`` (default) raises :class:`CapacityError` if the
        reservation would drive any segment negative; the profile is left
        unmodified in that case.
        """
        if t1 <= t0:
            raise ValidationError(f"reservation window empty: [{t0}, {t1})")
        if cpus < 0:
            raise ValidationError(f"cpus must be >= 0, got {cpus}")
        if cpus == 0:
            return
        if check and self.min_over(t0, t1) < cpus:
            raise CapacityError(
                f"reserving {cpus} CPUs over [{t0}, {t1}) exceeds capacity "
                f"(min available {self.min_over(t0, t1)})"
            )
        i0 = self._ensure_breakpoint(t0)
        if math.isinf(t1):
            i1 = len(self._times)
        else:
            i1 = self._ensure_breakpoint(t1)
        for i in range(i0, i1):
            self._caps[i] -= cpus

    def earliest_fit(
        self, t_from: float, duration: float, cpus: float
    ) -> float:
        """Earliest ``t >= t_from`` with ``min_over(t, t+duration) >= cpus``.

        Candidate start times are ``t_from`` and later breakpoints
        (capacity only changes at breakpoints, so these are the only
        times the answer can change).  Rather than re-scanning the
        window at every candidate — O(k^2) over k segments — the scan
        jumps straight past each *blocking* segment: a segment below
        ``cpus`` keeps intersecting the window of every candidate
        before its end, so no skipped candidate can fit.  Because the
        profile is constant after its last breakpoint, a fit always
        exists provided the final capacity is at least ``cpus``;
        otherwise :data:`INFINITY` is returned.
        """
        if duration < 0:
            raise ValidationError(f"duration must be >= 0, got {duration}")
        if cpus <= 0:
            return t_from
        times = self._times
        caps = self._caps
        n = len(times)
        candidate = t_from
        i = max(0, bisect.bisect_right(times, candidate) - 1)
        while True:
            end = candidate + duration
            blocked = -1
            j = i
            while j < n:
                if caps[j] < cpus:
                    blocked = j
                    break
                if j + 1 >= n or times[j + 1] >= end:
                    break
                j += 1
            if blocked < 0:
                return candidate
            if blocked + 1 >= n:
                return INFINITY
            candidate = times[blocked + 1]
            i = blocked + 1

    def as_step_function(self) -> StepFunction:
        """Snapshot the profile as an immutable :class:`StepFunction`."""
        return StepFunction(
            list(self._times), list(self._caps), base=self._caps[0]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CapacityProfile({len(self._times)} segments)"
