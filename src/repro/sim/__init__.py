"""Discrete-event simulation core.

The engine replays a native job trace through a pluggable scheduler
(:mod:`repro.sched`) on a machine model (:mod:`repro.machines`), offering
leftover capacity to an optional interstitial source (:mod:`repro.core`)
after every native scheduling pass — the paper's "meta-backfilled from a
low-priority queue after no more of the native jobs can be backfilled"
semantics.
"""

from repro.sim.engine import Engine, SimConfig
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.outages import Outage, OutageSchedule
from repro.sim.profile import CapacityProfile, StepFunction
from repro.sim.results import SimResult, UsageSample
from repro.sim.state import ClusterState, RunningJob

__all__ = [
    "Engine",
    "SimConfig",
    "Event",
    "EventKind",
    "EventQueue",
    "Outage",
    "OutageSchedule",
    "CapacityProfile",
    "StepFunction",
    "SimResult",
    "UsageSample",
    "ClusterState",
    "RunningJob",
]
