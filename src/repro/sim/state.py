"""Live cluster state: which jobs are running on how many CPUs.

The scheduler sees only what a real batch system sees: the set of
running jobs with their *estimated* completion times, the free CPU
count, and the queue it manages itself.  Actual runtimes live only in
the engine's event queue.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import CapacityError, SchedulingError, SimulationError
from repro.jobs import Job, JobState
from repro.machines import Machine


@dataclass(frozen=True)
class RunningJob:
    """A running job together with its scheduler-visible completion time."""

    job: Job
    start_time: float

    @property
    def estimated_finish(self) -> float:
        """When the scheduler must assume the job will release its CPUs
        (start + user estimate; the batch system kills at this point)."""
        return self.start_time + self.job.estimate

    @property
    def cpus(self) -> int:
        return self.job.cpus


class ClusterState:
    """Tracks CPU allocation on one machine during a simulation."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.running: Dict[int, RunningJob] = {}
        self.busy_cpus: int = 0
        #: CPUs removed from service by drain-style outages (see
        #: repro.sim.outages); running jobs survive these.
        self.down_cpus: int = 0
        #: CPUs removed from service by node crashes (see repro.faults);
        #: the jobs running on them were killed.
        self.failed_cpus: int = 0
        #: Monotone counter bumped on every allocation change — start,
        #: finish/kill, outage and failure/repair transitions.  While it
        #: is unchanged, nothing a scheduler derives from this state
        #: (free CPUs, release claims) can have changed; schedulers key
        #: cached views and pass-skip decisions on it (DESIGN §13).
        self.epoch: int = 0
        #: Release timeline: ``(estimated finish, cpus, start seq)`` of
        #: every running job, kept sorted incrementally on start/finish
        #: instead of being rebuilt and re-sorted every scheduling pass.
        #: The ``start seq`` tie-break reproduces dict insertion order
        #: (= chronological start order), which is what a stable sort of
        #: ``running.values()`` by ``(finish, cpus)`` used to yield.
        self._release_keys: List[Tuple[float, float, int]] = []
        self._release_key_of: Dict[int, Tuple[float, float, int]] = {}
        self._start_seq = itertools.count()
        #: ``release_claims()`` view, cached per epoch (multiple readers
        #: per scheduling pass; none of them mutates the list).
        self._claims_view: List[Tuple[float, float]] = []
        self._claims_epoch: int = -1

    # ------------------------------------------------------------------
    @property
    def total_cpus(self) -> int:
        """Machine size (independent of outages)."""
        return self.machine.cpus

    @property
    def available_cpus(self) -> int:
        """CPUs in service right now (total minus down minus failed).

        Clamped at zero: an outage window overlapping a burst of node
        failures can nominally take down more capacity than exists.
        """
        return max(0, self.total_cpus - self.down_cpus - self.failed_cpus)

    @property
    def free_cpus(self) -> int:
        """CPUs a new job could occupy right now.

        During an outage the in-service count can momentarily be lower
        than the busy count (running jobs are not preempted), in which
        case no CPUs are free.
        """
        return max(0, self.available_cpus - self.busy_cpus)

    @property
    def instantaneous_utilization(self) -> float:
        """busy / total, the quantity the paper's utilization caps test."""
        return self.busy_cpus / self.total_cpus

    def fits_now(self, cpus: int) -> bool:
        """Whether a ``cpus``-wide job can start at this instant."""
        return cpus <= self.free_cpus

    # ------------------------------------------------------------------
    def start(self, job: Job, t: float) -> RunningJob:
        """Allocate CPUs to ``job`` at time ``t``."""
        if job.job_id in self.running:
            raise SchedulingError(f"job {job.job_id} already running")
        if job.cpus > self.machine.cpus:
            raise CapacityError(
                f"job {job.job_id} needs {job.cpus} CPUs but "
                f"{self.machine.name} has only {self.machine.cpus}"
            )
        if job.cpus > self.free_cpus:
            raise CapacityError(
                f"job {job.job_id} needs {job.cpus} CPUs but only "
                f"{self.free_cpus} are free"
            )
        record = RunningJob(job=job, start_time=t)
        self.running[job.job_id] = record
        self.busy_cpus += job.cpus
        key = (record.estimated_finish, float(job.cpus), next(self._start_seq))
        bisect.insort(self._release_keys, key)
        self._release_key_of[job.job_id] = key
        self.epoch += 1
        return record

    def finish(self, job: Job) -> RunningJob:
        """Release the CPUs of ``job``."""
        try:
            record = self.running.pop(job.job_id)
        except KeyError:
            raise SchedulingError(
                f"job {job.job_id} finished but was not running"
            ) from None
        self.busy_cpus -= job.cpus
        if self.busy_cpus < 0:
            raise SchedulingError("negative busy CPU count")
        key = self._release_key_of.pop(job.job_id)
        del self._release_keys[bisect.bisect_left(self._release_keys, key)]
        self.epoch += 1
        return record

    def resize(self, job: Job, old_cpus: int) -> RunningJob:
        """Re-account a running elastic job whose width (and estimate)
        the engine just changed from ``old_cpus`` to ``job.cpus``.

        The caller mutates ``job.cpus``/``job.estimate`` first and then
        reports the old width here; this updates the busy counter and
        re-keys the job's entry in the release timeline (its estimated
        finish moved with the re-scaled remaining runtime).  The start
        sequence number is preserved so timeline tie-breaking still
        reflects chronological start order.  Bumps :attr:`epoch`, which
        is what keeps scheduler pass-skip caches sound across resizes
        (DESIGN §13).
        """
        record = self.running.get(job.job_id)
        if record is None:
            raise SchedulingError(
                f"job {job.job_id} resized but was not running"
            )
        grow = job.cpus - old_cpus
        if grow > 0 and grow > self.free_cpus:
            raise CapacityError(
                f"job {job.job_id} grew by {grow} CPUs but only "
                f"{self.free_cpus} are free"
            )
        self.busy_cpus += grow
        if self.busy_cpus < 0:
            raise SchedulingError("negative busy CPU count")
        old_key = self._release_key_of.pop(job.job_id)
        del self._release_keys[bisect.bisect_left(self._release_keys, old_key)]
        key = (record.estimated_finish, float(job.cpus), old_key[2])
        bisect.insort(self._release_keys, key)
        self._release_key_of[job.job_id] = key
        self.epoch += 1
        return record

    def apply_outage(self, delta: int) -> None:
        """Apply a drain-outage transition (``delta`` CPUs down/up)."""
        self.down_cpus += delta
        self.epoch += 1

    def apply_failed(self, delta: int) -> None:
        """Apply a node-failure/repair transition to the failed count."""
        self.failed_cpus += delta
        self.epoch += 1

    # ------------------------------------------------------------------
    def estimated_releases(self) -> List[RunningJob]:
        """Running jobs sorted by estimated completion time.

        This is the only view of the future a fallible scheduler has;
        backfill shadow times and the interstitial ``backfillWallTime``
        are computed from it.
        """
        return sorted(
            self.running.values(), key=lambda r: (r.estimated_finish, r.job.job_id)
        )

    def release_claims(self) -> List[Tuple[float, float]]:
        """``(estimated finish, cpus)`` of every running job, ascending
        by finish time.

        Backed by the incrementally maintained timeline and cached per
        :attr:`epoch`, so repeat reads within one scheduling pass are a
        single attribute load, not a rebuild-and-sort of ``running``.
        Callers must treat the returned list as read-only.
        """
        if self._claims_epoch != self.epoch:
            self._claims_view = [
                (finish, cpus) for finish, cpus, _seq in self._release_keys
            ]
            self._claims_epoch = self.epoch
        return self._claims_view

    def next_release_after(self, t: float) -> float:
        """Earliest estimated release time strictly after ``t``
        (``math.inf`` when none)."""
        keys = self._release_keys
        idx = bisect.bisect_right(keys, (t, float("inf"), -1))
        return keys[idx][0] if idx < len(keys) else float("inf")

    def earliest_fit_estimate(self, cpus: int, t: float) -> float:
        """Earliest time (>= t) at which ``cpus`` CPUs are expected to be
        free, based on running jobs' *estimated* completions.

        This is the paper's ``backfillWallTime`` for a ``cpus``-wide head
        job.  Returns ``t`` when the job already fits.  When even after
        all running jobs release there is not enough in-service capacity
        (deep outage), returns ``math.inf``.
        """
        if self.fits_now(cpus):
            return t
        free = self.free_cpus
        for finish, released, _seq in self._release_keys:
            free += released
            if free >= cpus:
                return max(t, finish)
        return float("inf")

    # ------------------------------------------------------------------
    def check_invariants(self, t: float) -> None:
        """Validate cluster accounting; raise :class:`SimulationError`
        with a diagnostic snapshot on any violation.

        Checked invariants:

        * the busy counter equals the sum of running-job widths
          (no double allocation, no leaked release);
        * busy never exceeds the machine size;
        * down/failed counters are within ``[0, total]``;
        * free is exactly ``max(0, available - busy)``;
        * every tracked job is in the RUNNING state.

        ``busy <= available`` is deliberately *not* required: drain
        outages let running jobs survive capacity loss, so busy may
        exceed in-service capacity during a window.
        """
        problems: List[str] = []
        width_sum = sum(rec.job.cpus for rec in self.running.values())
        if self.busy_cpus != width_sum:
            problems.append(
                f"busy_cpus={self.busy_cpus} != sum of running widths "
                f"{width_sum}"
            )
        if not 0 <= self.busy_cpus <= self.total_cpus:
            problems.append(
                f"busy_cpus={self.busy_cpus} outside [0, {self.total_cpus}]"
            )
        for name in ("down_cpus", "failed_cpus"):
            value = getattr(self, name)
            if not 0 <= value <= self.total_cpus:
                problems.append(
                    f"{name}={value} outside [0, {self.total_cpus}]"
                )
        expected_free = max(0, self.available_cpus - self.busy_cpus)
        if self.free_cpus != expected_free:
            problems.append(
                f"free_cpus={self.free_cpus} != expected {expected_free}"
            )
        if len(self._release_keys) != len(self.running) or any(
            a > b
            for a, b in zip(self._release_keys, self._release_keys[1:])
        ):
            problems.append(
                f"release timeline out of sync: {len(self._release_keys)} "
                f"entries for {len(self.running)} running jobs"
            )
        not_running = [
            rec.job.job_id
            for rec in self.running.values()
            if rec.job.state is not JobState.RUNNING
        ]
        if not_running:
            problems.append(
                f"jobs tracked as running but not in RUNNING state: "
                f"{not_running[:10]}"
            )
        if problems:
            raise SimulationError(
                f"cluster invariant violation at t={t}: "
                + "; ".join(problems)
                + f" [snapshot: total={self.total_cpus} "
                f"busy={self.busy_cpus} down={self.down_cpus} "
                f"failed={self.failed_cpus} free={self.free_cpus} "
                f"running={len(self.running)}]"
            )
