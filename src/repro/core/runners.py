"""High-level one-call experiment runners.

These wrap machine presets, scheduler construction, trace copying and
the engine into the handful of configurations the paper evaluates.  All
runners copy the input trace so the same trace can be replayed through
many configurations, and all accept ``check_invariants`` so callers
(e.g. a :class:`~repro.experiments.context.RunContext` honouring the
CLI's ``--check-invariants``) can enable the engine's accounting
validator without any process-global switch.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.controller import InterstitialController
from repro.core.omniscient import OmniscientPacking, pack_project
from repro.errors import ConfigurationError
from repro.faults import FaultModel, RetryPolicy
from repro.jobs import InterstitialProject, Job
from repro.machines import Machine
from repro.obs import PhaseTimers, TraceRecorder
from repro.sched.base import Scheduler
from repro.sched.presets import scheduler_for
from repro.sim.engine import Engine, SimConfig
from repro.sim.outages import OutageSchedule
from repro.sim.results import SimResult


def _copy_trace(trace: Iterable[Job]) -> List[Job]:
    return [job.copy_unscheduled() for job in trace]


def _trace_end(trace: Sequence[Job]) -> float:
    return max((job.submit_time for job in trace), default=0.0)


def run_native(
    machine: Machine,
    trace: Sequence[Job],
    scheduler: Optional[Scheduler] = None,
    outages: Optional[OutageSchedule] = None,
    faults: Optional[FaultModel] = None,
    retry: Optional[RetryPolicy] = None,
    horizon: Optional[float] = None,
    wake_interval: Optional[float] = None,
    check_invariants: bool = False,
    recorder: Optional[TraceRecorder] = None,
    timers: Optional[PhaseTimers] = None,
) -> SimResult:
    """Replay the native trace with no interstitial jobs (the baseline
    every experiment compares against)."""
    engine = Engine(
        machine=machine,
        scheduler=scheduler or scheduler_for(machine),
        trace=_copy_trace(trace),
        outages=outages,
        faults=faults,
        retry=retry,
        config=SimConfig(
            horizon=horizon,
            wake_interval=wake_interval,
            check_invariants=check_invariants,
        ),
        recorder=recorder,
        timers=timers,
    )
    return engine.run()


def run_with_controller(
    machine: Machine,
    trace: Sequence[Job],
    controller: InterstitialController,
    scheduler: Optional[Scheduler] = None,
    outages: Optional[OutageSchedule] = None,
    faults: Optional[FaultModel] = None,
    retry: Optional[RetryPolicy] = None,
    horizon: Optional[float] = None,
    wake_interval: Optional[float] = None,
    check_invariants: bool = False,
    recorder: Optional[TraceRecorder] = None,
    timers: Optional[PhaseTimers] = None,
) -> SimResult:
    """Replay the native trace alongside a configured interstitial
    controller (finite project, continual or limited)."""
    engine = Engine(
        machine=machine,
        scheduler=scheduler or scheduler_for(machine),
        trace=_copy_trace(trace),
        interstitial=controller,
        outages=outages,
        faults=faults,
        retry=retry,
        config=SimConfig(
            horizon=horizon,
            wake_interval=wake_interval,
            check_invariants=check_invariants,
        ),
        recorder=recorder,
        timers=timers,
    )
    return engine.run()


def run_continual(
    machine: Machine,
    trace: Sequence[Job],
    project: InterstitialProject,
    max_utilization: Optional[float] = None,
    scheduler: Optional[Scheduler] = None,
    outages: Optional[OutageSchedule] = None,
    faults: Optional[FaultModel] = None,
    retry: Optional[RetryPolicy] = None,
    horizon: Optional[float] = None,
    wake_interval: Optional[float] = None,
    check_invariants: bool = False,
    recorder: Optional[TraceRecorder] = None,
    timers: Optional[PhaseTimers] = None,
) -> Tuple[SimResult, InterstitialController]:
    """Continual interstitial computing (§4.3.2): feed interstitial jobs
    from the start of the run until ``horizon`` (default: last native
    submission), optionally under a utilization cap (§4.3.2.2)."""
    controller = InterstitialController(
        machine=machine,
        project=project,
        continual=True,
        max_utilization=max_utilization,
    )
    if horizon is None:
        horizon = _trace_end(trace)
    result = run_with_controller(
        machine,
        trace,
        controller,
        scheduler=scheduler,
        outages=outages,
        faults=faults,
        retry=retry,
        horizon=horizon,
        wake_interval=wake_interval,
        check_invariants=check_invariants,
        recorder=recorder,
        timers=timers,
    )
    return result, controller


def run_single_project(
    machine: Machine,
    trace: Sequence[Job],
    project: InterstitialProject,
    start_time: float,
    scheduler: Optional[Scheduler] = None,
    outages: Optional[OutageSchedule] = None,
    check_invariants: bool = False,
    recorder: Optional[TraceRecorder] = None,
    timers: Optional[PhaseTimers] = None,
) -> Tuple[SimResult, InterstitialController]:
    """Drop one finite project into the job stream at ``start_time``
    (§4.3.1 without the continual-sampling shortcut)."""
    controller = InterstitialController(
        machine=machine,
        project=project,
        start_time=start_time,
    )
    result = run_with_controller(
        machine,
        trace,
        controller,
        scheduler=scheduler,
        outages=outages,
        check_invariants=check_invariants,
        recorder=recorder,
        timers=timers,
    )
    return result, controller


def run_omniscient_samples(
    machine: Machine,
    trace: Sequence[Job],
    project: InterstitialProject,
    n_samples: int = 20,
    rng: Optional[np.random.Generator] = None,
    native_result: Optional[SimResult] = None,
    scheduler: Optional[Scheduler] = None,
    outages: Optional[OutageSchedule] = None,
    faults: Optional[FaultModel] = None,
    retry: Optional[RetryPolicy] = None,
    check_invariants: bool = False,
) -> Tuple[np.ndarray, List[OmniscientPacking]]:
    """The §4.1 experiment: pack the project omnisciently at
    ``n_samples`` random start times within the native log; returns the
    makespans (seconds) and the packings.

    The (expensive) native-only simulation is run once and reused; pass
    ``native_result`` to share it across project sizes.  ``faults`` and
    ``retry`` shape that native timeline (omniscient sampling on a
    faulty machine); they conflict with a pre-computed ``native_result``
    — the caller must bake the fault model into the shared run instead
    — so passing both raises :class:`ConfigurationError` rather than
    silently ignoring the fault model.
    """
    if native_result is not None and (faults is not None or retry is not None):
        raise ConfigurationError(
            "faults/retry cannot be applied to a pre-computed "
            "native_result; run the faulty baseline yourself (e.g. "
            "run_native(..., faults=...)) and pass that as native_result"
        )
    rng = rng or np.random.default_rng(0)
    if native_result is None:
        native_result = run_native(
            machine,
            trace,
            scheduler=scheduler,
            outages=outages,
            faults=faults,
            retry=retry,
            check_invariants=check_invariants,
        )
    t_end = _trace_end(trace)
    makespans = np.empty(n_samples)
    packings: List[OmniscientPacking] = []
    for i in range(n_samples):
        start = float(rng.uniform(0.0, t_end)) if t_end > 0 else 0.0
        packing = pack_project(native_result, project, start_time=start)
        makespans[i] = packing.makespan
        packings.append(packing)
    return makespans, packings
