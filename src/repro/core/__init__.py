"""Interstitial computing — the paper's primary contribution.

Three ways to exploit the interstices:

* :class:`~repro.core.controller.InterstitialController` — the Figure-1
  algorithm: after every native scheduling pass, submit
  ``floor(free / size)`` interstitial jobs when the queue is empty or
  the head job cannot start (by estimates) for longer than one
  interstitial runtime.  Supports finite projects, continual feeds
  (``n_jobs=None``) and utilization caps (§4.3.2.2's "limited" mode).
* :func:`~repro.core.omniscient.pack_project` — the §4.1 omniscient
  baseline: pack a project into the *exact* headroom profile of a
  native-only run, guaranteeing zero native impact by construction.
* :func:`~repro.core.sampling.sample_short_projects` — the §4.3.1 trick
  of extracting statistically-many short-project makespans from a
  single continual run.
"""

from repro.core.base import InterstitialSource
from repro.core.composite import CompositeInterstitialSource
from repro.core.controller import ControllerDecision, InterstitialController
from repro.core.guidelines import Advice, advise, recommend_width
from repro.core.omniscient import (
    OmniscientPacking,
    pack_continual,
    pack_project,
)
from repro.core.runners import (
    run_continual,
    run_native,
    run_omniscient_samples,
    run_with_controller,
)
from repro.core.sampling import sample_short_projects

__all__ = [
    "InterstitialSource",
    "InterstitialController",
    "CompositeInterstitialSource",
    "ControllerDecision",
    "Advice",
    "advise",
    "recommend_width",
    "OmniscientPacking",
    "pack_project",
    "pack_continual",
    "sample_short_projects",
    "run_native",
    "run_continual",
    "run_with_controller",
    "run_omniscient_samples",
]
