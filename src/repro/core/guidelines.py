"""Project-design guidelines (paper §5 "Discussion").

The paper closes with practical characteristics of a successful
interstitial computing project: job width must stay well below the
machine's typical free pool (breakage), job runtime must stay short
relative to native queue dynamics (delay bound ≈ one interstitial
runtime, re-prioritization poaching), and facilities that care about
their largest native jobs should cap submission by utilization.

:func:`advise` turns those rules into a machine-checkable report for a
concrete (machine, utilization, project) triple, and
:func:`recommend_width` picks the widest job size that keeps breakage
under a tolerance — the "how should I shape my sweep" question every
interstitial user has.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ValidationError
from repro.jobs import InterstitialProject
from repro.machines import Machine
from repro.theory.breakage import breakage_factor
from repro.theory.makespan import ideal_makespan_for
from repro.units import HOUR


@dataclass(frozen=True)
class Advice:
    """The guideline evaluation of one project on one machine.

    Attributes
    ----------
    ok:
        True when every guideline passes.
    breakage:
        The analytic breakage factor for the project's width.
    expected_makespan_s:
        Breakage-corrected ideal makespan.
    max_native_delay_s:
        The paper's per-event delay bound: one interstitial runtime
        (cascades can exceed it; this is the first-order bound).
    warnings:
        Human-readable guideline violations (empty when ``ok``).
    """

    ok: bool
    breakage: float
    expected_makespan_s: float
    max_native_delay_s: float
    warnings: Tuple[str, ...] = ()

    def describe(self) -> str:
        lines = [
            f"breakage factor: {self.breakage:.3f}",
            f"expected makespan: {self.expected_makespan_s / HOUR:.1f} h",
            "max per-event native delay: "
            f"{self.max_native_delay_s:.0f} s",
        ]
        if self.warnings:
            lines.append("guideline violations:")
            lines.extend(f"  - {w}" for w in self.warnings)
        else:
            lines.append("all guidelines satisfied")
        return "\n".join(lines)


#: Default guideline thresholds (tunable per facility).
MAX_BREAKAGE = 1.10
MAX_WIDTH_FREE_POOL_FRACTION = 0.25
MAX_RUNTIME_S = 2.0 * HOUR
MAX_MAKESPAN_LOG_FRACTION = 0.5


def advise(
    machine: Machine,
    project: InterstitialProject,
    utilization: float,
    log_duration_s: Optional[float] = None,
    max_breakage: float = MAX_BREAKAGE,
    max_width_fraction: float = MAX_WIDTH_FREE_POOL_FRACTION,
    max_runtime_s: float = MAX_RUNTIME_S,
) -> Advice:
    """Evaluate the paper's §5 guidelines for a project.

    Parameters
    ----------
    machine, project:
        The pairing to evaluate.
    utilization:
        Average native utilization of the machine (measured or from
        Table-1 style accounting).
    log_duration_s:
        Optional campaign deadline / log length; when given, warns if
        the expected makespan exceeds half of it (projects that
        straddle most of a log inherit its worst utilization stretches
        — the paper's Figure 3 tail).
    max_breakage, max_width_fraction, max_runtime_s:
        Facility-tunable thresholds.
    """
    if not (0.0 <= utilization < 1.0):
        raise ValidationError(
            f"utilization must be in [0, 1): {utilization}"
        )
    warnings: List[str] = []
    free_pool = machine.cpus * (1.0 - utilization)
    width = project.cpus_per_job
    runtime = project.runtime_on(machine)

    breakage = breakage_factor(machine.cpus, utilization, width)
    if math.isinf(breakage):
        warnings.append(
            f"jobs of {width} CPUs exceed the average free pool "
            f"({free_pool:.0f} CPUs): the project only progresses "
            "during utilization dips"
        )
    elif breakage > max_breakage:
        warnings.append(
            f"breakage {breakage:.3f} exceeds {max_breakage:.2f}: "
            f"shrink jobs below {free_pool:.0f}-CPU-pool granularity "
            f"(try {recommend_width(machine, utilization)} CPUs)"
        )
    if width > max_width_fraction * free_pool:
        warnings.append(
            f"width {width} is over {max_width_fraction:.0%} of the "
            f"average free pool ({free_pool:.0f} CPUs); submission "
            "opportunities will be scarce"
        )
    if runtime > max_runtime_s:
        warnings.append(
            f"per-job runtime {runtime:.0f} s exceeds {max_runtime_s:.0f} s: "
            "native jobs can be delayed by up to one interstitial "
            "runtime per event, and re-prioritization cascades grow "
            "with it (paper §4.3.2.1)"
        )

    expected = ideal_makespan_for(project, machine, utilization)
    if math.isfinite(breakage):
        expected *= breakage
    else:
        expected = math.inf
    if (
        log_duration_s is not None
        and math.isfinite(expected)
        and expected > MAX_MAKESPAN_LOG_FRACTION * log_duration_s
    ):
        warnings.append(
            f"expected makespan {expected / HOUR:.0f} h exceeds "
            f"{MAX_MAKESPAN_LOG_FRACTION:.0%} of the campaign window "
            f"({log_duration_s / HOUR:.0f} h): expect a heavy right "
            "tail (paper Figure 3)"
        )

    return Advice(
        ok=not warnings,
        breakage=breakage,
        expected_makespan_s=expected,
        max_native_delay_s=runtime,
        warnings=tuple(warnings),
    )


def recommend_width(
    machine: Machine,
    utilization: float,
    max_breakage: float = MAX_BREAKAGE,
    candidates: Optional[Tuple[int, ...]] = None,
) -> int:
    """Widest power-of-two job size whose breakage stays under the
    tolerance.

    Wider jobs mean fewer of them (less scheduler overhead, fewer
    result files) so users want the *largest* width that still tiles
    the free pool cleanly.
    """
    if not (0.0 <= utilization < 1.0):
        raise ValidationError(
            f"utilization must be in [0, 1): {utilization}"
        )
    if candidates is None:
        top = max(1, int(machine.cpus * (1.0 - utilization)))
        candidates = tuple(
            2 ** k for k in range(int(math.log2(top)) + 1)
        )
    best = 1
    for width in sorted(candidates):
        factor = breakage_factor(machine.cpus, utilization, width)
        if math.isfinite(factor) and factor <= max_breakage:
            best = max(best, width)
    return best
