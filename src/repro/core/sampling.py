"""Short-project makespans sampled from one continual run (paper §4.3.1).

"Rather than enduring the considerable simulation time that would go
into generating a statistically significant number of cases, we instead
run a continual interstitial project and then we select from within the
continual project a random start time ... if a short-term interstitial
project with N jobs starts at time t1 then simply find the time t2 when
N interstitial jobs have run from the continual interstitial log."

Given the interstitial jobs of a continual run, a sampled short project
starting at ``t1`` consists of the next ``n_jobs`` interstitial jobs the
controller started at or after ``t1``; its makespan is the latest finish
among them minus ``t1``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.jobs import Job


def _start_finish_arrays(jobs: Iterable[Job]):
    records = [
        (j.start_time, j.finish_time)
        for j in jobs
        if j.start_time is not None and j.finish_time is not None
    ]
    if not records:
        raise ValidationError("no completed interstitial jobs to sample from")
    records.sort()
    starts = np.array([r[0] for r in records], dtype=float)
    finishes = np.array([r[1] for r in records], dtype=float)
    return starts, finishes


def makespan_from(
    starts: np.ndarray,
    finishes: np.ndarray,
    t1: float,
    n_jobs: int,
) -> Optional[float]:
    """Makespan of the ``n_jobs`` jobs starting at/after ``t1``.

    ``starts`` must be ascending with ``finishes`` aligned to it.
    Returns None when fewer than ``n_jobs`` jobs start after ``t1``
    (the sampled project would outlive the log — the paper marks such
    cells "makespan >= log time").
    """
    i0 = int(np.searchsorted(starts, t1, side="left"))
    i1 = i0 + n_jobs
    if i1 > starts.size:
        return None
    return float(finishes[i0:i1].max() - t1)


def sample_short_projects(
    interstitial_jobs: Sequence[Job],
    n_jobs: int,
    n_samples: int,
    rng: np.random.Generator,
    t_max: Optional[float] = None,
) -> np.ndarray:
    """Sample ``n_samples`` short-project makespans from a continual run.

    Parameters
    ----------
    interstitial_jobs:
        Completed interstitial jobs of the continual run.
    n_jobs:
        Size of the sampled short project.
    n_samples:
        Number of random start times to draw.
    rng:
        Source of randomness (uniform start times).
    t_max:
        Upper bound for start-time draws (defaults to the last
        interstitial start).  Draws whose project would not complete
        within the log are redrawn up to a bounded number of times and
        then dropped, mirroring the paper's exclusion of ">= log time"
        samples.

    Returns
    -------
    numpy.ndarray
        The sampled makespans (possibly fewer than ``n_samples`` when
        the log is too short for the requested project size).
    """
    if n_jobs <= 0:
        raise ValidationError(f"n_jobs must be positive, got {n_jobs}")
    if n_samples <= 0:
        raise ValidationError(f"n_samples must be positive, got {n_samples}")
    starts, finishes = _start_finish_arrays(interstitial_jobs)
    if starts.size < n_jobs:
        return np.empty(0)
    hi = float(starts[-1]) if t_max is None else float(t_max)
    lo = float(starts[0])
    if hi <= lo:
        hi = lo + 1.0
    makespans = []
    attempts = 0
    max_attempts = 20 * n_samples
    while len(makespans) < n_samples and attempts < max_attempts:
        attempts += 1
        t1 = float(rng.uniform(lo, hi))
        span = makespan_from(starts, finishes, t1, n_jobs)
        if span is not None:
            makespans.append(span)
    return np.asarray(makespans, dtype=float)
