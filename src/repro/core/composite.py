"""Multiple interstitial projects sharing the interstices.

The paper studies one project at a time, but a production facility
would run several concurrently (its §4.3.1 short projects arrive
continually in practice).  :class:`CompositeInterstitialSource` multiplexes
child sources over each scheduling pass's leftover capacity under one
of two policies:

* ``round_robin`` (default) — the offer order rotates every pass, so
  equal-hunger projects converge to equal shares of the interstices;
* ``priority`` — fixed order: earlier sources harvest first and later
  ones take what remains (e.g. a paying project over a best-effort one).

Children see a *budgeted view* of the cluster that already accounts for
CPUs granted to sources earlier in the same pass, so the combined offer
can never overcommit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

from repro.core.base import InterstitialSource
from repro.errors import ConfigurationError
from repro.jobs import Job
from repro.sim.state import ClusterState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.base import Scheduler

POLICIES = ("round_robin", "priority")


class _BudgetedView:
    """A read-only cluster facade with extra CPUs marked busy.

    Forwards everything interesting to the real state but reports the
    capacity already granted to sibling sources this pass as busy, so
    each child plans against what is genuinely left.
    """

    def __init__(self, cluster: ClusterState, granted_cpus: int) -> None:
        self._cluster = cluster
        self._granted = granted_cpus

    @property
    def machine(self):
        return self._cluster.machine

    @property
    def running(self):
        return self._cluster.running

    @property
    def total_cpus(self) -> int:
        return self._cluster.total_cpus

    @property
    def available_cpus(self) -> int:
        return self._cluster.available_cpus

    @property
    def busy_cpus(self) -> int:
        return self._cluster.busy_cpus + self._granted

    @property
    def down_cpus(self) -> int:
        return self._cluster.down_cpus

    @property
    def free_cpus(self) -> int:
        return max(0, self._cluster.free_cpus - self._granted)

    @property
    def instantaneous_utilization(self) -> float:
        return self.busy_cpus / self.total_cpus

    def fits_now(self, cpus: int) -> bool:
        return cpus <= self.free_cpus

    @property
    def epoch(self) -> int:
        return self._cluster.epoch

    def estimated_releases(self):
        return self._cluster.estimated_releases()

    def release_claims(self):
        # Sibling grants occupy CPUs but have no known finish time, so
        # the claim timeline is the real cluster's unchanged (exactly as
        # ``estimated_releases`` above).
        return self._cluster.release_claims()

    def next_release_after(self, t: float):
        return self._cluster.next_release_after(t)

    def earliest_fit_estimate(self, cpus: int, t: float) -> float:
        if self.fits_now(cpus):
            return t
        return self._cluster.earliest_fit_estimate(
            cpus + self._granted, t
        )


class CompositeInterstitialSource(InterstitialSource):
    """Multiplexes several interstitial sources over shared leftovers.

    Parameters
    ----------
    sources:
        Child sources (e.g. :class:`InterstitialController` instances).
    policy:
        ``round_robin`` or ``priority`` (see module docstring).

    Notes
    -----
    Preemption is delegated: the composite is preemptible iff *any*
    child is, and preemption notifications are routed to the child that
    submitted each killed job.
    """

    def __init__(
        self,
        sources: Sequence[InterstitialSource],
        policy: str = "round_robin",
    ) -> None:
        if not sources:
            raise ConfigurationError("composite needs at least one source")
        if policy not in POLICIES:
            raise ConfigurationError(
                f"policy must be one of {POLICIES}: {policy!r}"
            )
        self.sources: List[InterstitialSource] = list(sources)
        self.policy = policy
        self._next = 0
        #: job_id -> originating source (for preemption routing).
        self._owner: dict = {}

    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        return all(source.exhausted for source in self.sources)

    @property
    def preemptible(self) -> bool:
        return any(source.preemptible for source in self.sources)

    def offer(
        self, t: float, cluster: ClusterState, scheduler: "Scheduler"
    ) -> List[Job]:
        order = list(range(len(self.sources)))
        if self.policy == "round_robin":
            order = order[self._next:] + order[: self._next]
            self._next = (self._next + 1) % len(self.sources)
        granted = 0
        jobs: List[Job] = []
        for idx in order:
            source = self.sources[idx]
            if source.exhausted:
                continue
            view = _BudgetedView(cluster, granted)
            batch = source.offer(t, view, scheduler)  # type: ignore[arg-type]
            for job in batch:
                self._owner[job.job_id] = source
                granted += job.cpus
            jobs.extend(batch)
        return jobs

    def on_preempted(self, jobs: List[Job], t: float) -> None:
        by_source: dict = {}
        for job in jobs:
            source = self._owner.get(job.job_id)
            if source is not None:
                by_source.setdefault(id(source), (source, []))[1].append(
                    job
                )
        for source, killed in by_source.values():
            source.on_preempted(killed, t)

    def on_fault(self, t: float, cpus: int) -> None:
        for source in self.sources:
            source.on_fault(t, cpus)
